//! End-to-end verification tests: small networks, every middlebox type,
//! both verdict polarities.

use vmn::{Invariant, Network, Verdict, Verifier, VerifyOptions};
use vmn_mbox::models;
use vmn_net::{Address, FailureScenario, NodeId, Prefix, RoutingConfig, Rule, Topology};

fn addr(s: &str) -> Address {
    s.parse().unwrap()
}

fn px(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// outside / inside pair with a middlebox steering all traffic, both
/// directions, through `mb`.
struct Guarded {
    net: Network,
    outside: NodeId,
    inside: NodeId,
    mb: NodeId,
}

fn guarded(mbox_type: &str, model: vmn_mbox::MboxModel) -> Guarded {
    let mut topo = Topology::new();
    let outside = topo.add_host("outside", addr("8.8.8.8"));
    let inside = topo.add_host("inside", addr("10.0.0.5"));
    let sw = topo.add_switch("sw");
    let mb = topo.add_middlebox("mb", mbox_type, vec![]);
    topo.add_link(outside, sw);
    topo.add_link(inside, sw);
    topo.add_link(mb, sw);
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), outside, mb).with_priority(10));
    tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), inside, mb).with_priority(10));
    let mut net = Network::new(topo, tables);
    net.set_model(mb, model);
    Guarded { net, outside, inside, mb }
}

#[test]
fn stateful_firewall_blocks_unsolicited_but_not_replies() {
    let g = guarded(
        "stateful-firewall",
        models::learning_firewall("stateful-firewall", vec![(px("10.0.0.0/8"), px("0.0.0.0/0"))]),
    );
    let v = Verifier::new(&g.net, VerifyOptions::default()).unwrap();

    // Unsolicited node isolation is NOT guaranteed (inside could initiate,
    // punching a hole) — flow isolation is the right invariant and holds.
    let flow = v.verify(&Invariant::FlowIsolation { src: g.outside, dst: g.inside }).unwrap();
    assert!(flow.verdict.holds(), "flow isolation must hold");

    // Plain node isolation is violated exactly because replies flow.
    let node = v.verify(&Invariant::NodeIsolation { src: g.outside, dst: g.inside }).unwrap();
    match &node.verdict {
        Verdict::Violated { trace, .. } => {
            // The witness must contain an inside-initiated packet first.
            let sends: Vec<_> =
                trace.steps.iter().filter(|s| s.kind == vmn::StepKind::HostSend).collect();
            assert!(
                sends.iter().any(|s| s.actor == Some(g.inside)),
                "hole punching requires an inside send:\n{}",
                trace.render(&g.net)
            );
        }
        Verdict::Holds => panic!("node isolation should be violated via hole punching"),
    }
}

#[test]
fn deny_all_firewall_gives_node_isolation() {
    let g = guarded("stateful-firewall", models::learning_firewall("stateful-firewall", vec![]));
    let v = Verifier::new(&g.net, VerifyOptions::default()).unwrap();
    let node = v.verify(&Invariant::NodeIsolation { src: g.outside, dst: g.inside }).unwrap();
    assert!(node.verdict.holds(), "no ACL entries: nothing can ever flow");
    let node2 = v.verify(&Invariant::NodeIsolation { src: g.inside, dst: g.outside }).unwrap();
    assert!(node2.verdict.holds());
}

#[test]
fn acl_scope_matters() {
    // ACL allows outside→inside, so outside CAN reach inside directly.
    let g = guarded(
        "stateful-firewall",
        models::learning_firewall("stateful-firewall", vec![(px("8.8.8.8/32"), px("10.0.0.0/8"))]),
    );
    let v = Verifier::new(&g.net, VerifyOptions::default()).unwrap();
    let r = v.verify(&Invariant::NodeIsolation { src: g.outside, dst: g.inside }).unwrap();
    assert!(!r.verdict.holds(), "ACL-permitted traffic must be found");
    // And even flow isolation is violated (outside initiates).
    let r = v.verify(&Invariant::FlowIsolation { src: g.outside, dst: g.inside }).unwrap();
    assert!(!r.verdict.holds());
}

#[test]
fn nat_hides_internal_hosts() {
    let g = guarded("nat", models::nat("nat", px("10.0.0.0/8"), addr("1.2.3.4")));
    let v = Verifier::new(&g.net, VerifyOptions::default()).unwrap();
    // Outside cannot open a connection to the inside host: flow isolation.
    let r = v.verify(&Invariant::FlowIsolation { src: g.outside, dst: g.inside }).unwrap();
    assert!(r.verdict.holds(), "NAT must block unsolicited inbound");
    // Source-address based reachability is *not* violated outbound — the
    // NAT rewrites the source — but the inside host's data still reaches
    // outside (origin is preserved through the NAT).
    assert!(!v.can_reach(g.inside, g.outside).unwrap(), "src address is rewritten");
    let leak = v.verify(&Invariant::DataIsolation { origin: g.inside, dst: g.outside }).unwrap();
    assert!(!leak.verdict.holds(), "outbound data flows through the NAT");
}

#[test]
fn idps_verdict_depends_on_oracle() {
    let g = guarded("idps", models::idps("idps"));
    let v = Verifier::new(&g.net, VerifyOptions::default()).unwrap();
    // The IDPS only drops malicious packets; benign traffic passes, so
    // isolation is violated (the oracle may classify the packet benign).
    let r = v.verify(&Invariant::NodeIsolation { src: g.outside, dst: g.inside }).unwrap();
    assert!(!r.verdict.holds());
    match r.verdict {
        Verdict::Violated { trace, .. } => {
            // The step that delivered the offending packet must be an IDPS
            // processing step that classified it as non-malicious.
            let proc = trace
                .steps
                .iter()
                .find(|s| s.delivered_to == Some(g.inside))
                .expect("some step delivers to inside");
            assert_eq!(proc.actor, Some(g.mb));
            assert_eq!(proc.oracle_values.get("malicious?"), Some(&false));
        }
        _ => unreachable!(),
    }
}

#[test]
fn traversal_invariant_detects_bypass() {
    // Two configurations: one steers src traffic through the IDPS, the
    // other (misconfigured) lets it go direct.
    let mut topo = Topology::new();
    let src = topo.add_host("src", addr("8.8.8.8"));
    let dst = topo.add_host("dst", addr("10.0.0.5"));
    let sw = topo.add_switch("sw");
    let idps = topo.add_middlebox("idps", "idps", vec![]);
    topo.add_link(src, sw);
    topo.add_link(dst, sw);
    topo.add_link(idps, sw);
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);

    // Correct configuration: src traffic steered through the IDPS.
    let mut good = rc.build(&topo, &FailureScenario::none());
    good.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), src, idps).with_priority(10));
    let mut net = Network::new(topo.clone(), good);
    net.set_model(idps, models::idps("idps"));
    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    let inv = Invariant::Traversal { dst, through: vec![idps], from: Some(src) };
    assert!(v.verify(&inv).unwrap().verdict.holds(), "pipelined config traverses the IDPS");

    // Misconfigured: no steering rule — traffic goes direct.
    let bad = rc.build(&topo, &FailureScenario::none());
    let mut net2 = Network::new(topo, bad);
    net2.set_model(idps, models::idps("idps"));
    let v2 = Verifier::new(&net2, VerifyOptions::default()).unwrap();
    let r = v2.verify(&inv).unwrap();
    assert!(!r.verdict.holds(), "bypass must be detected");
}

#[test]
fn cache_leaks_data_without_acl() {
    // The §5.2 shape: a firewall confines the server's data to the client
    // group, and a cache sits between the hosts and the firewall. If the
    // cache's deny ACL is missing, `other` obtains the server's data from
    // the cache even though the firewall blocks the direct path.
    //
    //   {client, other} --- sw1 --- cache --- sw1 --- fw --- sw2 --- server
    let mut topo = Topology::new();
    let server = topo.add_host("server", addr("10.1.0.1"));
    let client = topo.add_host("client", addr("10.2.0.1"));
    let other = topo.add_host("other", addr("10.3.0.1"));
    let sw1 = topo.add_switch("sw1");
    let sw2 = topo.add_switch("sw2");
    let cache = topo.add_middlebox("cache", "content-cache", vec![]);
    let fw = topo.add_middlebox("fw", "acl-firewall", vec![]);
    for n in [client, other, cache, fw] {
        topo.add_link(n, sw1);
    }
    topo.add_link(server, sw2);
    topo.add_link(fw, sw2);
    topo.add_link(sw1, sw2);
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let base = rc.build(&topo, &FailureScenario::none());

    let build = |deny: Vec<(Prefix, Prefix)>| {
        let mut tables = base.clone();
        // Client-side requests to the server hit the cache first, then the
        // firewall; server responses pass the firewall then the cache.
        for h in [client, other] {
            tables
                .add_rule(sw1, Rule::from_neighbor(px("10.1.0.0/16"), h, cache).with_priority(10));
        }
        tables.add_rule(sw1, Rule::from_neighbor(px("10.1.0.0/16"), cache, fw).with_priority(10));
        tables.add_rule(sw2, Rule::from_neighbor(px("10.2.0.0/15"), server, fw).with_priority(10));
        tables.add_rule(sw1, Rule::from_neighbor(px("10.2.0.0/15"), fw, cache).with_priority(10));
        let mut net = Network::new(topo.clone(), tables);
        net.set_model(cache, models::content_cache("content-cache", [px("10.1.0.0/16")], deny));
        // The firewall only allows the client group to talk to the server.
        net.set_model(
            fw,
            models::acl_firewall(
                "acl-firewall",
                vec![
                    (px("10.2.0.0/16"), px("10.1.0.0/16")),
                    (px("10.1.0.0/16"), px("10.2.0.0/16")),
                ],
            ),
        );
        net
    };

    // Without a deny entry, `other` can obtain the server's data — but
    // only via the cache (the firewall blocks the direct path).
    let open = build(vec![]);
    let v = Verifier::new(&open, VerifyOptions::default()).unwrap();
    let inv = Invariant::DataIsolation { origin: server, dst: other };
    let r = v.verify(&inv).unwrap();
    match &r.verdict {
        Verdict::Violated { trace, .. } => {
            let leak_step = trace
                .steps
                .iter()
                .find(|s| s.delivered_to == Some(other))
                .expect("a step delivers to other");
            assert_eq!(leak_step.actor, Some(cache), "the leak must come from the cache");
        }
        Verdict::Holds => panic!("cache must leak data when its ACL is missing"),
    }

    // With the deny ACL, the invariant holds.
    let closed = build(vec![(px("10.3.0.0/16"), px("10.1.0.0/16"))]);
    let v2 = Verifier::new(&closed, VerifyOptions::default()).unwrap();
    let r2 = v2.verify(&inv).unwrap();
    if let Verdict::Violated { trace, .. } = &r2.verdict {
        panic!("deny ACL should restore data isolation:\n{}", trace.render(&closed));
    }
}

#[test]
fn load_balancer_reaches_some_backend() {
    let mut topo = Topology::new();
    let client = topo.add_host("client", addr("8.8.8.8"));
    let b1 = topo.add_host("b1", addr("10.0.0.1"));
    let b2 = topo.add_host("b2", addr("10.0.0.2"));
    let sw = topo.add_switch("sw");
    let lb = topo.add_middlebox("lb", "load-balancer", vec![addr("10.0.0.100")]);
    for n in [client, b1, b2, lb] {
        topo.add_link(n, sw);
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    rc.destination(px("10.0.0.100/32"), lb);
    let tables = rc.build(&topo, &FailureScenario::none());
    let mut net = Network::new(topo, tables);
    net.set_model(
        lb,
        models::load_balancer(
            "load-balancer",
            addr("10.0.0.100"),
            vec![addr("10.0.0.1"), addr("10.0.0.2")],
        ),
    );
    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    // The client can reach both backends (the solver picks the choice).
    assert!(v.can_reach(client, b1).unwrap());
    assert!(v.can_reach(client, b2).unwrap());
}

#[test]
fn reports_carry_metadata() {
    let g = guarded("stateful-firewall", models::learning_firewall("stateful-firewall", vec![]));
    let v = Verifier::new(&g.net, VerifyOptions::default()).unwrap();
    let r = v.verify(&Invariant::NodeIsolation { src: g.outside, dst: g.inside }).unwrap();
    assert!(r.encoded_nodes >= 3, "slice holds both hosts and the middlebox");
    assert!(r.steps >= 3);
    assert!(r.scenarios_checked >= 1);
    assert!(!r.inherited);
}

#[test]
fn verify_all_uses_symmetry() {
    // Four identical inside hosts: isolation invariants against them are
    // symmetric and only one should be verified directly.
    let mut topo = Topology::new();
    let outside = topo.add_host("outside", addr("8.8.8.8"));
    let insides: Vec<NodeId> =
        (0..4).map(|i| topo.add_host(format!("in{i}"), Address(0x0A000005 + i))).collect();
    let sw = topo.add_switch("sw");
    let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
    topo.add_link(outside, sw);
    topo.add_link(fw, sw);
    for &h in &insides {
        topo.add_link(h, sw);
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), outside, fw).with_priority(10));
    let mut net = Network::new(topo, tables);
    net.set_model(fw, models::learning_firewall("stateful-firewall", vec![]));

    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    let invs: Vec<Invariant> =
        insides.iter().map(|&dst| Invariant::NodeIsolation { src: outside, dst }).collect();
    let reports = v.verify_all(&invs, 2).unwrap();
    assert_eq!(reports.len(), 4);
    assert!(reports.iter().all(|r| r.verdict.holds()));
    let inherited = reports.iter().filter(|r| r.inherited).count();
    assert_eq!(inherited, 3, "three of four verdicts come from symmetry");
}
