//! Randomized differential fuzzing of the whole incremental solving
//! stack: random topologies (hosts, stateful/stateless firewalls, load
//! balancers), random steering with failover priorities, random policy
//! groups and random failure scenarios — verified by four engines that
//! must agree on every observable:
//!
//! * the from-scratch oracle (`incremental: false`: fresh slice, encoder
//!   and solver per scenario);
//! * the single-union incremental sweep (`cluster_threshold: 0.0` — the
//!   PR-2 engine);
//! * the clustered incremental sweep (the default threshold);
//! * the per-scenario-session extreme (`cluster_threshold: 1.0`).
//!
//! Verdicts, scenario counts and first violating scenarios must match
//! pairwise, every violation witness must replay into a real forbidden
//! reception on the concrete simulator, and re-verifying on the clustered
//! engine (re-entering its pooled, cost-modelled sessions) must be
//! stable. Every engine additionally runs with `emit_proofs` on, and the
//! independent trusted checker (`vmn_check`) validates each report's
//! certificate — UNSAT derivations for refuted scenarios, replayable
//! models for violations — so the proof log is fuzzed against the same
//! random workloads as the solver itself.
//!
//! On top of the four certified engines, every case re-runs with proofs
//! off under `Backend::Auto` (incremental and baseline), where stateless
//! slices are answered by the BDD dataplane fast path instead of the
//! solver: verdicts, scenario counts and first violating scenarios must
//! still match the SMT oracle, and BDD-synthesized witnesses must replay
//! on the concrete simulator exactly like SMT ones. The same sweep also
//! runs the auto-partitioned modular engine (`PartitionMode::Auto`),
//! whose backend split additionally counts contract-answered scenarios
//! and must still agree on every observable. Finally, every case
//! runs a mixed-backend `verify_all` sweep with a duplicated invariant:
//! the inherited report must zero all cost fields (elapsed, solver
//! deltas, BDD deltas, certificate) while keeping the representative's
//! provenance counts. Cases are generated
//! from the proptest harness's deterministic per-test seed, so failures
//! reproduce exactly; set `VMN_FUZZ_CASES` to bound the case count (CI
//! pins a small subset, the default is 200).

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::collections::HashMap;
use vmn::{Invariant, Network, PartitionMode, Verdict, Verifier, VerifyOptions};
use vmn_mbox::exec::KeyVal;
use vmn_mbox::models;
use vmn_net::{Address, FailureScenario, Header, NodeId, Prefix, RoutingConfig, Rule, Topology};
use vmn_sim::Simulator;

fn fuzz_cases() -> u32 {
    match std::env::var("VMN_FUZZ_CASES") {
        Ok(v) => v.parse().expect("VMN_FUZZ_CASES must be a number"),
        Err(_) => 200,
    }
}

fn px(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// One generated verification problem.
struct Case {
    net: Network,
    hint: Option<Vec<Vec<NodeId>>>,
    inv: Invariant,
    label: String,
}

/// Derives a random network + invariant from the fuzz RNG. The shape is
/// constrained to what the bounded encoding supports by construction
/// (hub topology, host-keyed steering with failover priorities, no
/// middlebox-to-middlebox chains), but everything else — counts, kinds,
/// ACLs, backends, steering, scenarios, policy groups, invariant — is
/// drawn at random.
fn generate(rng: &mut TestRng) -> Case {
    let mut topo = Topology::new();
    let sw = topo.add_switch("sw");

    // 2..=3 host pairs: a_i = 10.(i+1).0.1, b_i = 10.(i+1).0.2.
    let pairs = 2 + rng.below(2) as usize;
    let mut hosts: Vec<NodeId> = Vec::new();
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    for i in 0..pairs {
        let a = topo.add_host(format!("a{i}"), Address(0x0A00_0001 + ((i as u32 + 1) << 16)));
        let b = topo.add_host(format!("b{i}"), Address(0x0A00_0002 + ((i as u32 + 1) << 16)));
        topo.add_link(a, sw);
        topo.add_link(b, sw);
        hosts.extend([a, b]);
        groups.push(vec![a, b]);
    }

    // 0..=2 middleboxes: learning firewall, stateless ACL firewall, or a
    // load balancer (VIP outside 10/8 so host steering never captures
    // VIP traffic and pipelines stay one middlebox deep).
    let vip = Address(0xC0A8_0001);
    let n_mbox = rng.below(3) as usize;
    let mut mboxes: Vec<NodeId> = Vec::new();
    let mut lb: Option<NodeId> = None;
    let mut kinds: Vec<&'static str> = Vec::new();
    let mut label = format!("pairs={pairs}");
    for m in 0..n_mbox {
        let kind = rng.below(3);
        let (node, name) = match kind {
            2 if lb.is_none() => {
                let node = topo.add_middlebox(format!("lb{m}"), "load-balancer", vec![vip]);
                lb = Some(node);
                (node, "lb")
            }
            _ => {
                let stateful = kind != 1;
                let name = if stateful { "fw" } else { "aclfw" };
                let node = topo.add_middlebox(
                    format!("{name}{m}"),
                    if stateful { "stateful-firewall" } else { "acl-firewall" },
                    vec![],
                );
                (node, name)
            }
        };
        topo.add_link(node, sw);
        mboxes.push(node);
        kinds.push(name);
        label.push_str(&format!(" {name}{m}"));
    }

    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    if let Some(lb) = lb {
        rc.destination(Prefix::host(vip), lb);
    }
    let mut tables = rc.build(&topo, &FailureScenario::none());

    // Random steering: traffic from a host to 10/8 goes through a random
    // subset of the (non-LB) middleboxes, primary-then-backup by
    // priority — exactly the shape whose re-converged slices diverge
    // across failure scenarios.
    for &h in &hosts {
        for (mi, &m) in mboxes.iter().enumerate() {
            if Some(m) == lb || rng.below(2) == 0 {
                continue;
            }
            let prio = 30 - 5 * mi as i32;
            tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), h, m).with_priority(prio));
        }
    }

    let mut net = Network::new(topo, tables);

    // Random models: ACLs drawn from the per-pair prefixes.
    let prefix_pool: Vec<Prefix> = (0..pairs as u32)
        .map(|i| Prefix::new(Address(0x0A00_0000 + ((i + 1) << 16)), 16))
        .chain([px("10.0.0.0/8"), px("0.0.0.0/0")])
        .collect();
    for (mi, &m) in mboxes.iter().enumerate() {
        if Some(m) == lb {
            // 1..=2 random backends.
            let mut backends: Vec<Address> = Vec::new();
            for _ in 0..=rng.below(2) {
                backends.push(net.host_address(hosts[rng.below(hosts.len() as u64) as usize]));
            }
            backends.dedup();
            net.set_model(m, models::load_balancer("load-balancer", vip, backends));
            continue;
        }
        let mut acl: Vec<(Prefix, Prefix)> = Vec::new();
        for _ in 0..rng.below(3) {
            let s = prefix_pool[rng.below(prefix_pool.len() as u64) as usize];
            let d = prefix_pool[rng.below(prefix_pool.len() as u64) as usize];
            acl.push((s, d));
        }
        if kinds[mi] == "fw" {
            net.set_model(m, models::learning_firewall("stateful-firewall", acl));
        } else {
            net.set_model(m, models::acl_firewall("acl-firewall", acl));
        }
    }

    // 1..=3 random failure scenarios over middleboxes (and, lacking any,
    // hosts — failed endpoints are legal and exercise fail-stop).
    let n_scen = 1 + rng.below(3);
    for _ in 0..n_scen {
        let targets: &[NodeId] = if mboxes.is_empty() { &hosts } else { &mboxes };
        let mut failed: Vec<NodeId> = Vec::new();
        for _ in 0..=rng.below(2) {
            failed.push(targets[rng.below(targets.len() as u64) as usize]);
        }
        failed.sort();
        failed.dedup();
        net.add_scenario(FailureScenario::nodes(failed));
    }

    // Random invariant over distinct hosts. Data isolation (trace bound
    // ~8) is drawn less often to keep the 200-case debug run fast.
    let src = hosts[rng.below(hosts.len() as u64) as usize];
    let dst = loop {
        let d = hosts[rng.below(hosts.len() as u64) as usize];
        if d != src {
            break d;
        }
    };
    // Traversal candidates exclude the load balancer: its endpoints join
    // the slice, and walking the slice closure over the LB's own VIP is
    // a static forwarding loop — the documented §3.5 exception, not a
    // verification problem.
    let through_pool: Vec<NodeId> = mboxes.iter().copied().filter(|&m| Some(m) != lb).collect();
    let inv = match rng.below(8) {
        0..=2 => Invariant::NodeIsolation { src, dst },
        3 | 4 => Invariant::FlowIsolation { src, dst },
        5 => Invariant::DataIsolation { origin: src, dst },
        _ if !through_pool.is_empty() => Invariant::Traversal {
            dst,
            through: vec![through_pool[rng.below(through_pool.len() as u64) as usize]],
            from: Some(src),
        },
        _ => Invariant::NodeIsolation { src, dst },
    };

    // Random policy grouping: the natural per-pair hint, or computed by
    // partition refinement (None) every fourth case.
    let hint = if rng.below(4) == 0 { None } else { Some(groups) };
    label.push_str(&format!(" scen={n_scen} inv={inv}"));
    Case { net, hint, inv, label }
}

fn opts(case: &Case, incremental: bool, cluster_threshold: f64) -> VerifyOptions {
    VerifyOptions {
        policy_hint: case.hint.clone(),
        incremental,
        cluster_threshold,
        emit_proofs: true,
        ..Default::default()
    }
}

/// Replays a violation witness on the concrete simulator and asserts it
/// produces at least one real reception.
fn assert_witness_replays(net: &Network, verdict: &Verdict, label: &str, engine: &str) {
    if let Verdict::Violated { trace, scenario } = verdict {
        let receptions = trace
            .replay(net, scenario)
            .unwrap_or_else(|e| panic!("{label}: {engine} witness fails to replay: {e}"));
        assert!(!receptions.is_empty(), "{label}: {engine} witness replays to no reception");
    }
}

/// Runs the trusted checker on a report's certificate: every UNSAT check
/// must be derivable by reverse unit propagation, every SAT check's model
/// must satisfy the live clause set, and the SAT/UNSAT split must agree
/// with the verdict.
fn assert_certificate_checks(report: &vmn::Report, label: &str, engine: &str) {
    let bundle = report
        .certificate
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: {engine} must attach a certificate"));
    let summary = vmn::check::check_bundle(bundle)
        .unwrap_or_else(|e| panic!("{label}: {engine} certificate rejected: {e}"));
    assert!(summary.checks > 0, "{label}: {engine} certificate covers no checks");
    match report.verdict {
        Verdict::Holds => assert_eq!(
            summary.sat_checks, 0,
            "{label}: {engine} certifies a model for a holding invariant"
        ),
        Verdict::Violated { .. } => assert!(
            summary.sat_checks >= 1,
            "{label}: {engine} violation carries no certified model"
        ),
    }
}

/// Static-analysis cross-check on the generated network:
///
/// * **unified classifiers** — `vmn_analysis` and the (delegating)
///   `vmn_bdd::dataplane::statefulness` must give every model the same
///   BDD-eligibility verdict, and no generated model may trip the
///   annotation-soundness gate (the builders declare honestly);
/// * **dynamic confirmation** — after concretely simulating cross
///   traffic between every host pair, a model the analysis calls
///   stateless must have accumulated no state, and a model inferred
///   flow-parallel must hold only flow-shaped keys.
fn assert_analysis_consistent(net: &Network, label: &str) {
    for model in net.models.values() {
        let a = vmn::analysis::analyze(model);
        assert_eq!(
            a.bdd_blocker.is_some(),
            vmn_bdd::dataplane::statefulness(model).is_some(),
            "{label}: analysis and dataplane disagree on {:?}",
            model.type_name
        );
        assert!(
            vmn::analysis::annotation_error(model).is_none(),
            "{label}: builder model {:?} fails the annotation gate",
            model.type_name
        );
    }

    let models: HashMap<NodeId, &vmn_mbox::MboxModel> =
        net.models.iter().map(|(k, v)| (*k, v)).collect();
    let mut sim = Simulator::new(&net.topo, &net.tables, FailureScenario::none(), models);
    let hosts: Vec<NodeId> = net.topo.hosts().collect();
    for &a in &hosts {
        for &b in &hosts {
            if a == b {
                continue;
            }
            let h = Header::tcp(net.host_address(a), 1000, net.host_address(b), 80);
            // Drops and forwarding quirks are fine — only the state the
            // middleboxes accumulate matters here.
            let _ = sim.send_and_settle(a, h);
        }
    }
    for (&m, model) in &net.models {
        let a = vmn::analysis::analyze(model);
        let Some(state) = sim.mbox_state(m) else { continue };
        if a.statefulness.is_none() {
            assert!(
                state.is_empty(),
                "{label}: analysis-stateless model {:?} accumulated state",
                model.type_name
            );
        }
        if a.inferred_parallelism == vmn_mbox::Parallelism::FlowParallel {
            for (set, entries) in state.sets() {
                for (key, _) in entries {
                    assert!(
                        matches!(key, KeyVal::Flow(_)),
                        "{label}: flow-parallel model {:?} holds non-flow key {key:?} in {set:?}",
                        model.type_name
                    );
                }
            }
        }
    }
}

fn run_case(seed: u64) {
    let mut rng = TestRng::new(seed);
    let case = generate(&mut rng);
    let label = &case.label;
    assert_analysis_consistent(&case.net, label);

    let oracle = Verifier::new(&case.net, opts(&case, false, 0.0)).expect("valid network");
    let want = oracle.verify(&case.inv).expect("oracle verifies");
    assert_witness_replays(&case.net, &want.verdict, label, "oracle");
    assert_certificate_checks(&want, label, "oracle");

    let engines = [
        ("single-union", 0.0),
        ("clustered", VerifyOptions::default().cluster_threshold),
        ("per-scenario", 1.0),
    ];
    for (engine, threshold) in engines {
        let v = Verifier::new(&case.net, opts(&case, true, threshold)).expect("valid network");
        let got = v.verify(&case.inv).expect("incremental verify succeeds");
        assert_eq!(
            got.verdict.holds(),
            want.verdict.holds(),
            "{label}: {engine} verdict diverges from oracle"
        );
        assert_eq!(
            got.scenarios_checked, want.scenarios_checked,
            "{label}: {engine} scenario count diverges"
        );
        if let (Verdict::Violated { scenario: gs, .. }, Verdict::Violated { scenario: ws, .. }) =
            (&got.verdict, &want.verdict)
        {
            assert_eq!(gs, ws, "{label}: {engine} first violating scenario diverges");
        }
        assert_witness_replays(&case.net, &got.verdict, label, engine);
        assert_certificate_checks(&got, label, engine);

        // Second pass on the same verifier: re-enters the pooled,
        // cost-modelled sessions and must be observably identical — and
        // its certificate, sliced from the re-entered session's shared
        // log, must validate independently.
        let again = v.verify(&case.inv).expect("re-verify succeeds");
        assert_eq!(
            again.verdict.holds(),
            got.verdict.holds(),
            "{label}: {engine} verdict unstable across session reuse"
        );
        assert_eq!(again.scenarios_checked, got.scenarios_checked, "{label}: {engine} re-sweep");
        assert_certificate_checks(&again, label, &format!("{engine} (re-entered)"));
    }

    // Multi-backend routing (proofs off, `Backend::Auto`): scenarios
    // whose slices carry no mutable middlebox state are answered by the
    // BDD dataplane instead of the solver — generated ACL firewalls and
    // middlebox-free cases exercise it heavily. The router must agree
    // with the SMT oracle on every observable, and its witnesses must
    // replay concretely. No certificate assertions: the fast path emits
    // no proofs, which is exactly why `Auto` only uses it when proofs
    // are off.
    // `modular` adds the auto-partitioned modular engine to the sweep:
    // on hub topologies the partition is usually degenerate (one
    // module), so this pins the recovery property — modular mode must
    // reproduce the monolithic engine exactly when nothing cross-module
    // is discharged — while the multi-site battery in
    // `modular_vs_monolithic.rs` covers the contract fast path.
    for (engine, incremental, partition) in [
        ("auto-routed", true, PartitionMode::Off),
        ("auto-routed-baseline", false, PartitionMode::Off),
        ("modular", true, PartitionMode::Auto),
    ] {
        let options = VerifyOptions {
            policy_hint: case.hint.clone(),
            incremental,
            partition,
            ..Default::default()
        };
        let v = Verifier::new(&case.net, options).expect("valid network");
        let got = v.verify(&case.inv).expect("routed verify succeeds");
        assert_eq!(
            got.verdict.holds(),
            want.verdict.holds(),
            "{label}: {engine} verdict diverges from oracle"
        );
        assert_eq!(
            got.scenarios_checked, want.scenarios_checked,
            "{label}: {engine} scenario count diverges"
        );
        assert_eq!(
            got.smt_scenarios + got.bdd_scenarios + got.contract_scenarios,
            got.scenarios_checked,
            "{label}: {engine} backend split must cover the sweep"
        );
        if let (Verdict::Violated { scenario: gs, .. }, Verdict::Violated { scenario: ws, .. }) =
            (&got.verdict, &want.verdict)
        {
            assert_eq!(gs, ws, "{label}: {engine} first violating scenario diverges");
        }
        assert_witness_replays(&case.net, &got.verdict, label, engine);
    }

    // Mixed-backend sweep hygiene: duplicating the invariant forces the
    // second report to be inherited from its symmetric representative,
    // and `Backend::Auto` routes the representative's scenarios across
    // both solver and BDD dataplane. Inherited reports must zero every
    // cost field — elapsed, solver deltas, BDD deltas, certificate — so
    // summing costs over a run counts each backend run exactly once,
    // while keeping the representative's provenance counts.
    let options = VerifyOptions { policy_hint: case.hint.clone(), ..Default::default() };
    let v = Verifier::new(&case.net, options).expect("valid network");
    let reports =
        v.verify_all(&[case.inv.clone(), case.inv.clone()], 1).expect("verify_all succeeds");
    assert!(!reports[0].inherited, "{label}: the representative is verified directly");
    assert!(reports[1].inherited, "{label}: a duplicated invariant must inherit");
    let (rep, inh) = (&reports[0], &reports[1]);
    assert_eq!(
        inh.elapsed,
        std::time::Duration::ZERO,
        "{label}: inherited elapsed must not double-count"
    );
    let solver_work = inh.solver.decisions + inh.solver.propagations + inh.solver.conflicts;
    assert_eq!(solver_work, 0, "{label}: inherited solver stats must be zeroed");
    assert_eq!(
        inh.bdd,
        vmn_bdd::BddStats::default(),
        "{label}: inherited bdd stats must be zeroed"
    );
    assert!(inh.certificate.is_none(), "{label}: the representative carries the certificate");
    assert_eq!(inh.verdict.holds(), rep.verdict.holds(), "{label}: inherited verdict diverges");
    assert_eq!(inh.scenarios_checked, rep.scenarios_checked, "{label}: provenance is kept");
    assert_eq!(inh.smt_scenarios, rep.smt_scenarios, "{label}: smt provenance is kept");
    assert_eq!(inh.bdd_scenarios, rep.bdd_scenarios, "{label}: bdd provenance is kept");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Four engines, one verdict — on fully random networks.
    #[test]
    fn engines_agree_on_random_networks(seed in any::<u64>()) {
        run_case(seed);
    }
}
