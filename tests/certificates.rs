//! End-to-end certificate tests: with `VerifyOptions::emit_proofs` every
//! report carries a [`vmn::check::CertificateBundle`] that the trusted
//! checker accepts, whose SAT/UNSAT check counts agree with the verdict,
//! and that round-trips through the on-disk text format. Tampering with
//! any part of a stored bundle must be detected.

use vmn::check::{check_bundle, parse_bundles, write_bundles, Outcome, ProofStep};
use vmn::{Invariant, Network, Verdict, Verifier, VerifyOptions};
use vmn_mbox::models;
use vmn_net::{FailureScenario, Prefix, RoutingConfig, Rule, Topology};

/// The quickstart network (outside --- sw --- inside through a stateful
/// firewall), with one middlebox-failure scenario so sweeps have more
/// than one scenario to certify.
fn firewalled_network() -> (Network, vmn_net::NodeId, vmn_net::NodeId) {
    let mut topo = Topology::new();
    let outside = topo.add_host("outside", "8.8.8.8".parse().unwrap());
    let inside = topo.add_host("inside", "10.0.0.5".parse().unwrap());
    let sw = topo.add_switch("sw");
    let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
    for n in [outside, inside, fw] {
        topo.add_link(n, sw);
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    let all: Prefix = "0.0.0.0/0".parse().unwrap();
    tables.add_rule(sw, Rule::from_neighbor(all, outside, fw).with_priority(10));
    tables.add_rule(sw, Rule::from_neighbor(all, inside, fw).with_priority(10));
    let mut net = Network::new(topo, tables);
    net.set_model(
        fw,
        models::learning_firewall("stateful-firewall", vec![("10.0.0.0/8".parse().unwrap(), all)]),
    );
    (net, outside, inside)
}

/// Validates a report's certificate and asserts its check counts are
/// consistent with the verdict: a holding invariant certifies only UNSAT
/// checks, a violated one at least one SAT model.
fn validate_report(report: &vmn::Report, context: &str) {
    let bundle = report
        .certificate
        .as_ref()
        .unwrap_or_else(|| panic!("{context}: emit_proofs must attach a certificate"));
    let summary = check_bundle(bundle)
        .unwrap_or_else(|e| panic!("{context}: checker rejected the certificate: {e}"));
    assert!(summary.checks > 0, "{context}: certificate must cover at least one check");
    match &report.verdict {
        Verdict::Holds => {
            assert_eq!(summary.sat_checks, 0, "{context}: a holding verdict must have no models")
        }
        Verdict::Violated { .. } => assert!(
            summary.sat_checks >= 1,
            "{context}: a violation must certify a satisfying model"
        ),
    }
}

#[test]
fn certificates_cover_all_engine_configs() {
    let (net, outside, inside) = firewalled_network();
    let invariants = [
        Invariant::FlowIsolation { src: outside, dst: inside }, // holds
        Invariant::NodeIsolation { src: outside, dst: inside }, // violated
    ];
    for (incremental, reuse) in [(false, false), (true, false), (true, true)] {
        let opts = VerifyOptions {
            emit_proofs: true,
            incremental,
            reuse_sessions: reuse,
            ..VerifyOptions::default()
        };
        let v = Verifier::new(&net, opts).unwrap();
        for inv in &invariants {
            let report = v.verify(inv).unwrap();
            validate_report(&report, &format!("inc={incremental} reuse={reuse} {inv}"));
        }
    }
}

#[test]
fn proofs_off_by_default() {
    let (net, outside, inside) = firewalled_network();
    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    let report = v.verify(&Invariant::FlowIsolation { src: outside, dst: inside }).unwrap();
    assert!(report.certificate.is_none(), "no certificate unless emit_proofs is set");
}

#[test]
fn pooled_sessions_slice_certificates_per_invariant() {
    // Two invariants sharing one pooled session: the second certificate
    // is cut from the session's *shared* log (its steps include the first
    // invariant's derivations) but carries only its own check records —
    // and still validates standalone.
    let (net, outside, inside) = firewalled_network();
    let opts =
        VerifyOptions { emit_proofs: true, steps_override: Some(4), ..VerifyOptions::default() };
    let v = Verifier::new(&net, opts).unwrap();
    let r1 = v.verify(&Invariant::NodeIsolation { src: outside, dst: inside }).unwrap();
    assert_eq!(v.pooled_sessions(), 1, "the proof-logging session must pool normally");
    let r2 = v.verify(&Invariant::DataIsolation { origin: outside, dst: inside }).unwrap();
    assert_eq!(v.pooled_sessions(), 1, "the second invariant re-entered the session");
    validate_report(&r1, "first invariant on the session");
    validate_report(&r2, "second invariant on the shared session");
    let (c1, c2) = (r1.certificate.unwrap(), r2.certificate.unwrap());
    let checks = |b: &vmn::check::CertificateBundle| {
        b.sessions.iter().map(|s| s.checks.len()).sum::<usize>()
    };
    assert!(checks(&c1) > 0 && checks(&c2) > 0);
    if let (Some(s1), Some(s2)) = (c1.sessions.first(), c2.sessions.first()) {
        assert!(s2.steps.len() >= s1.steps.len(), "the shared log only grows across invariants");
    }
}

#[test]
fn inherited_reports_carry_no_certificate() {
    let (net, outside, inside) = firewalled_network();
    let opts = VerifyOptions { emit_proofs: true, ..VerifyOptions::default() };
    let v = Verifier::new(&net, opts).unwrap();
    let inv = Invariant::FlowIsolation { src: outside, dst: inside };
    let reports = v.verify_all(&[inv.clone(), inv], 1).unwrap();
    assert!(reports[0].certificate.is_some(), "the representative certifies its run");
    assert!(reports[1].inherited);
    assert!(reports[1].certificate.is_none(), "inherited verdicts have no run to certify");
}

#[test]
fn stored_bundles_roundtrip_and_tampering_is_detected() {
    let (net, outside, inside) = firewalled_network();
    let opts = VerifyOptions { emit_proofs: true, ..VerifyOptions::default() };
    let v = Verifier::new(&net, opts).unwrap();
    let hold = v.verify(&Invariant::FlowIsolation { src: outside, dst: inside }).unwrap();
    let broken = v.verify(&Invariant::NodeIsolation { src: outside, dst: inside }).unwrap();
    let bundles = vec![hold.certificate.unwrap(), broken.certificate.unwrap()];

    // Round-trip through the on-disk format (what `vmn-cli check` reads).
    let text = write_bundles(&bundles);
    let parsed = parse_bundles(&text).expect("engine-written bundles parse");
    assert_eq!(parsed.len(), 2);
    for (b, orig) in parsed.iter().zip(&bundles) {
        assert_eq!(b.label, orig.label);
        check_bundle(b).expect("round-tripped bundle still checks");
    }

    // Tamper 1: flip a literal inside a derived clause of the UNSAT
    // bundle. Either RUP fails on the mutated step or the final
    // assumption derivation breaks — the checker must reject.
    let mut tampered = parsed.clone();
    let mutated =
        tampered[0].sessions.iter_mut().flat_map(|s| s.steps.iter_mut()).find_map(|st| match st {
            ProofStep::Derived { lits, .. } if !lits.is_empty() => {
                lits[0] = -lits[0];
                Some(())
            }
            _ => None,
        });
    assert!(mutated.is_some(), "a holding sweep must contain derived clauses");
    assert!(
        tampered.iter().any(|b| check_bundle(b).is_err()),
        "flipping a derived literal must invalidate the bundle"
    );

    // Tamper 2: claim SAT where the engine proved UNSAT by grafting the
    // violation bundle's model onto the holding bundle's check record.
    let model = parsed[1]
        .sessions
        .iter()
        .flat_map(|s| s.checks.iter())
        .find_map(|c| match &c.outcome {
            Outcome::Sat { model } => Some(model.clone()),
            Outcome::Unsat => None,
        })
        .expect("the violated invariant certifies a model");
    let mut forged = parsed[0].clone();
    let check = forged
        .sessions
        .iter_mut()
        .flat_map(|s| s.checks.iter_mut())
        .next()
        .expect("holding bundle has checks");
    check.outcome = Outcome::Sat { model };
    assert!(check_bundle(&forged).is_err(), "a forged model must be rejected");

    // Tamper 3: corrupt the text itself (truncate mid-session).
    let cut = text.len() / 2;
    let truncated = &text[..cut];
    let r = parse_bundles(truncated);
    assert!(
        r.is_err() || r.is_ok_and(|bs| bs.iter().any(|b| check_bundle(b).is_err())),
        "a truncated bundle must not parse and check clean"
    );
}
