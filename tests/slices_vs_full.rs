//! The central soundness claim of slicing (§4): an invariant holds on the
//! slice iff it holds on the whole network. These tests cross-check
//! verdicts between sliced and whole-network verification, and confirm
//! the scaling behaviour (slice size independent of network size).

use vmn::{Invariant, Network, Verifier, VerifyOptions};
use vmn_mbox::models;
use vmn_net::{Address, FailureScenario, NodeId, Prefix, RoutingConfig, Rule, Topology};

fn px(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// A datacenter-flavoured network with `groups` policy groups of two hosts
/// each, every group guarded by one shared stateful firewall. Group i may
/// only talk within itself; `broken_group`'s ACL entries are deleted to
/// plant a violation.
fn grouped_network(groups: usize, broken_group: Option<usize>) -> (Network, Vec<(NodeId, NodeId)>) {
    let mut topo = Topology::new();
    let sw = topo.add_switch("sw");
    let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
    topo.add_link(fw, sw);
    let mut pairs = Vec::new();
    for g in 0..groups {
        let a = topo.add_host(format!("a{g}"), Address(0x0A000000 + (g as u32) * 256 + 1));
        let b = topo.add_host(format!("b{g}"), Address(0x0A000000 + (g as u32) * 256 + 2));
        topo.add_link(a, sw);
        topo.add_link(b, sw);
        pairs.push((a, b));
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    for &(a, b) in &pairs {
        for h in [a, b] {
            tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), h, fw).with_priority(10));
        }
    }
    // Firewall ACL: intra-group traffic only.
    let mut acl = Vec::new();
    for g in 0..groups {
        if broken_group == Some(g) {
            continue; // deleted rules: this group cannot communicate
        }
        let base = 0x0A000000 + (g as u32) * 256;
        let p = Prefix::new(Address(base), 24);
        acl.push((p, p));
    }
    let mut net = Network::new(topo, tables);
    net.set_model(fw, models::learning_firewall("stateful-firewall", acl));
    (net, pairs)
}

#[test]
fn verdicts_agree_between_slice_and_whole_network() {
    let (net, pairs) = grouped_network(3, None);
    let sliced = Verifier::new(&net, VerifyOptions::default()).unwrap();
    let whole = Verifier::new(&net, VerifyOptions::whole_network()).unwrap();

    let mut invariants = Vec::new();
    // Cross-group isolation must hold; intra-group reachability must be
    // violated (traffic is allowed).
    invariants.push(Invariant::NodeIsolation { src: pairs[0].0, dst: pairs[1].0 });
    invariants.push(Invariant::NodeIsolation { src: pairs[1].1, dst: pairs[2].0 });
    invariants.push(Invariant::NodeIsolation { src: pairs[0].0, dst: pairs[0].1 });
    invariants.push(Invariant::FlowIsolation { src: pairs[2].0, dst: pairs[0].0 });

    for inv in &invariants {
        let a = sliced.verify(inv).unwrap();
        let b = whole.verify(inv).unwrap();
        assert_eq!(
            a.verdict.holds(),
            b.verdict.holds(),
            "slice/whole disagree on {inv}: slice={:?} whole={:?}",
            a.verdict.holds(),
            b.verdict.holds()
        );
        assert!(a.encoded_nodes <= b.encoded_nodes);
    }
}

#[test]
fn planted_violation_found_in_both_modes() {
    let (net, pairs) = grouped_network(3, Some(1));
    let inv = Invariant::NodeIsolation { src: pairs[1].0, dst: pairs[1].1 };
    // Group 1 lost its ACL entries, so even intra-group traffic is blocked
    // — isolation (vacuously) holds for group 1 now...
    let sliced = Verifier::new(&net, VerifyOptions::default()).unwrap();
    let whole = Verifier::new(&net, VerifyOptions::whole_network()).unwrap();
    assert!(sliced.verify(&inv).unwrap().verdict.holds());
    assert!(whole.verify(&inv).unwrap().verdict.holds());
    // ...while the healthy groups still communicate, in both modes.
    let ok = Invariant::NodeIsolation { src: pairs[0].0, dst: pairs[0].1 };
    assert!(!sliced.verify(&ok).unwrap().verdict.holds());
    assert!(!whole.verify(&ok).unwrap().verdict.holds());
}

#[test]
fn slice_size_is_independent_of_network_size() {
    let mut slice_sizes = Vec::new();
    let mut whole_sizes = Vec::new();
    for groups in [2usize, 6, 12] {
        let (net, pairs) = grouped_network(groups, None);
        let inv = Invariant::NodeIsolation { src: pairs[0].0, dst: pairs[0].1 };
        let sliced = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let r = sliced.verify(&inv).unwrap();
        slice_sizes.push(r.encoded_nodes);
        whole_sizes.push(net.topo.terminals().count());
    }
    assert!(
        slice_sizes.windows(2).all(|w| w[0] == w[1]),
        "slice sizes must not grow with the network: {slice_sizes:?}"
    );
    assert!(
        whole_sizes.windows(2).all(|w| w[0] < w[1]),
        "whole-network sizes do grow: {whole_sizes:?}"
    );
}

#[test]
fn sliced_verification_is_faster_on_larger_networks() {
    // Not a strict benchmark (that lives in vmn-bench), but the ratio
    // should be clearly visible even in a debug build.
    let (net, pairs) = grouped_network(8, None);
    let inv = Invariant::NodeIsolation { src: pairs[0].0, dst: pairs[1].0 };
    let sliced = Verifier::new(&net, VerifyOptions::default()).unwrap();
    let whole = Verifier::new(&net, VerifyOptions::whole_network()).unwrap();
    let t0 = std::time::Instant::now();
    let a = sliced.verify(&inv).unwrap();
    let slice_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let b = whole.verify(&inv).unwrap();
    let whole_time = t1.elapsed();
    assert_eq!(a.verdict.holds(), b.verdict.holds());
    assert!(slice_time < whole_time, "slice {slice_time:?} should beat whole {whole_time:?}");
}
