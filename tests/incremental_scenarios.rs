//! Differential test for the incremental (assumption-based) scenario
//! sweep: `Verifier::verify` with `options.incremental` must return
//! verdicts *identical* to the fresh-solver-per-scenario oracle
//! (`incremental: false`) — same holds/violated answer, same first
//! violating scenario, same scenario count — across the bundled
//! `vmn_scenarios` workloads and their misconfigured variants.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vmn::{Invariant, Network, Verdict, Verifier, VerifyOptions};
use vmn_net::NodeId;
use vmn_scenarios::datacenter::{Datacenter, DatacenterParams};
use vmn_scenarios::enterprise::{Enterprise, EnterpriseParams, SubnetKind};
use vmn_scenarios::multi_tenant::{MultiTenant, MultiTenantParams};

fn opts(hint: Vec<Vec<NodeId>>, incremental: bool) -> VerifyOptions {
    VerifyOptions { policy_hint: Some(hint), incremental, ..Default::default() }
}

/// Runs both engines on the same (network, invariant) and asserts the
/// reports agree on everything observable.
fn assert_same_verdict(net: &Network, hint: Vec<Vec<NodeId>>, inv: &Invariant, label: &str) {
    let fast = Verifier::new(net, opts(hint.clone(), true)).expect("valid network");
    let slow = Verifier::new(net, opts(hint, false)).expect("valid network");
    let got = fast.verify(inv).expect("incremental verify succeeds");
    let want = slow.verify(inv).expect("oracle verify succeeds");
    assert_eq!(got.verdict.holds(), want.verdict.holds(), "{label}: verdicts disagree for {inv:?}");
    assert_eq!(got.scenarios_checked, want.scenarios_checked, "{label}: scenario counts differ");
    // (steps/encoded_nodes may legitimately differ: the incremental sweep
    // encodes the union of the per-scenario slices at the largest bound.)
    if let (
        Verdict::Violated { scenario: got_s, trace: got_t },
        Verdict::Violated { scenario: want_s, trace: want_t },
    ) = (&got.verdict, &want.verdict)
    {
        assert_eq!(got_s, want_s, "{label}: first violating scenario differs");
        // Both witnesses must replay into a real forbidden reception on
        // the concrete simulator (traces themselves may differ — models
        // are not unique).
        for (t, s) in [(got_t, got_s), (want_t, want_s)] {
            let receptions = t.replay(net, s).expect("trace replays");
            assert!(!receptions.is_empty(), "{label}: witness replays to no reception");
        }
    }
}

fn dc(policy_groups: usize) -> Datacenter {
    Datacenter::build(DatacenterParams {
        racks: policy_groups * 2,
        hosts_per_rack: 2,
        policy_groups,
        redundant: true,
        with_failures: true,
    })
}

#[test]
fn datacenter_clean_matches_oracle() {
    let dc = dc(2);
    assert!(dc.net.all_scenarios().len() > 1, "sweep needs several failure scenarios");
    for inv in dc.isolation_invariants() {
        assert_same_verdict(&dc.net, dc.policy_hint(), &inv, "dc/clean/isolation");
    }
    for inv in dc.traversal_invariants() {
        assert_same_verdict(&dc.net, dc.policy_hint(), &inv, "dc/clean/traversal");
    }
}

#[test]
fn datacenter_rule_misconfig_matches_oracle() {
    let mut dc = dc(2);
    let mut rng = StdRng::seed_from_u64(7);
    let pairs = dc.inject_rule_misconfig(&mut rng, 1);
    // The affected pair is violated in the very first (no-failure)
    // scenario; every invariant must still agree with the oracle.
    let inv = dc.pair_isolation(pairs[0].0, pairs[0].1);
    assert_same_verdict(&dc.net, dc.policy_hint(), &inv, "dc/rules/hit");
    for inv in dc.isolation_invariants() {
        assert_same_verdict(&dc.net, dc.policy_hint(), &inv, "dc/rules/all");
    }
}

#[test]
fn datacenter_redundancy_misconfig_matches_oracle() {
    // Violation exists only under a *failure* scenario, so this exercises
    // the interesting path: scenario 1 UNSAT, a later scenario SAT — the
    // incremental engine must find it in the same scenario as the oracle.
    let mut dc = dc(2);
    let mut rng = StdRng::seed_from_u64(11);
    let pairs = dc.inject_redundancy_misconfig(&mut rng, 1);
    let inv = dc.pair_isolation(pairs[0].0, pairs[0].1);
    let verifier = Verifier::new(&dc.net, opts(dc.policy_hint(), true)).unwrap();
    let report = verifier.verify(&inv).unwrap();
    if let Verdict::Violated { scenario, .. } = &report.verdict {
        assert!(scenario.fault_count() > 0, "redundancy bug needs a failure to show");
    } else {
        panic!("redundancy misconfiguration must be detected");
    }
    assert_same_verdict(&dc.net, dc.policy_hint(), &inv, "dc/redundancy/hit");
}

#[test]
fn enterprise_matches_oracle() {
    let e = Enterprise::build(EnterpriseParams { subnets: 3, hosts_per_subnet: 2 });
    for kind in [SubnetKind::Public, SubnetKind::Private, SubnetKind::Quarantined] {
        assert_same_verdict(&e.net, e.policy_hint(), &e.invariant_for(kind), "enterprise");
    }
}

#[test]
fn multi_tenant_matches_oracle() {
    let m = MultiTenant::build(MultiTenantParams { tenants: 2, vms_per_group: 2 });
    for inv in [m.priv_priv(0, 1), m.pub_priv(0, 1), m.priv_pub(0, 1)] {
        assert_same_verdict(&m.net, m.policy_hint(), &inv, "multi-tenant");
    }
}

#[test]
fn verify_all_matches_oracle_reports() {
    // Whole-set verification (symmetry machinery on top of the sweep).
    let dc = dc(2);
    let invs = dc.isolation_invariants();
    let fast = Verifier::new(&dc.net, opts(dc.policy_hint(), true)).unwrap();
    let slow = Verifier::new(&dc.net, opts(dc.policy_hint(), false)).unwrap();
    let got = fast.verify_all(&invs, 1).unwrap();
    let want = slow.verify_all(&invs, 1).unwrap();
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.verdict.holds(), w.verdict.holds());
        assert_eq!(g.inherited, w.inherited);
    }
}
