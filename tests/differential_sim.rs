//! Differential testing between the verifier and the concrete simulator.
//!
//! Soundness direction: every violation trace the verifier produces must
//! replay concretely — the scripted simulator run must exhibit the very
//! reception the invariant forbids.
//!
//! Completeness direction (sampled): random concrete schedules that
//! stumble on a violation imply the verifier must find one too.

use vmn::{Invariant, Network, Verdict, Verifier, VerifyOptions};
use vmn_mbox::models;
use vmn_net::{Address, FailureScenario, Header, NodeId, Prefix, RoutingConfig, Rule, Topology};

fn addr(s: &str) -> Address {
    s.parse().unwrap()
}

fn px(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// Asserts that a violated invariant's trace replays concretely: some
/// reception in the simulator log matches the invariant's predicate.
fn assert_replays(net: &Network, inv: &Invariant, report: &vmn::Report) {
    let Verdict::Violated { trace, scenario } = &report.verdict else {
        panic!("expected a violation for {inv}");
    };
    let receptions = trace.replay(net, scenario).expect("replay must not hit fabric errors");
    let ok = receptions.iter().any(|o| match inv {
        Invariant::NodeIsolation { src, dst } => {
            o.at == *dst && o.header.src == net.host_address(*src)
        }
        Invariant::DataIsolation { origin, dst } => {
            o.at == *dst && o.header.origin == net.host_address(*origin)
        }
        Invariant::FlowIsolation { src, dst } => {
            // Sufficient check: dst received something from src's address.
            o.at == *dst && o.header.src == net.host_address(*src)
        }
        Invariant::Traversal { dst, .. } => o.at == *dst,
    });
    assert!(
        ok,
        "replay did not reproduce the violation of {inv}:\ntrace:\n{}\nreceptions: {receptions:?}",
        trace.render(net)
    );
}

#[test]
fn firewall_hole_punch_trace_replays() {
    let mut topo = Topology::new();
    let outside = topo.add_host("outside", addr("8.8.8.8"));
    let inside = topo.add_host("inside", addr("10.0.0.5"));
    let sw = topo.add_switch("sw");
    let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
    for n in [outside, inside, fw] {
        topo.add_link(n, sw);
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), outside, fw).with_priority(10));
    tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), inside, fw).with_priority(10));
    let mut net = Network::new(topo, tables);
    net.set_model(
        fw,
        models::learning_firewall("stateful-firewall", vec![(px("10.0.0.0/8"), px("0.0.0.0/0"))]),
    );

    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    let inv = Invariant::NodeIsolation { src: outside, dst: inside };
    let report = v.verify(&inv).unwrap();
    assert_replays(&net, &inv, &report);
}

#[test]
fn idps_oracle_trace_replays() {
    let mut topo = Topology::new();
    let outside = topo.add_host("outside", addr("8.8.8.8"));
    let inside = topo.add_host("inside", addr("10.0.0.5"));
    let sw = topo.add_switch("sw");
    let idps = topo.add_middlebox("idps", "idps", vec![]);
    for n in [outside, inside, idps] {
        topo.add_link(n, sw);
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), outside, idps).with_priority(10));
    let mut net = Network::new(topo, tables);
    net.set_model(idps, models::idps("idps"));

    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    let inv = Invariant::NodeIsolation { src: outside, dst: inside };
    let report = v.verify(&inv).unwrap();
    assert_replays(&net, &inv, &report);
}

#[test]
fn load_balancer_choice_replays() {
    let mut topo = Topology::new();
    let client = topo.add_host("client", addr("8.8.8.8"));
    let b1 = topo.add_host("b1", addr("10.0.0.1"));
    let b2 = topo.add_host("b2", addr("10.0.0.2"));
    let sw = topo.add_switch("sw");
    let lb = topo.add_middlebox("lb", "load-balancer", vec![addr("10.0.0.100")]);
    for n in [client, b1, b2, lb] {
        topo.add_link(n, sw);
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    rc.destination(px("10.0.0.100/32"), lb);
    let tables = rc.build(&topo, &FailureScenario::none());
    let mut net = Network::new(topo, tables);
    net.set_model(
        lb,
        models::load_balancer(
            "load-balancer",
            addr("10.0.0.100"),
            vec![addr("10.0.0.1"), addr("10.0.0.2")],
        ),
    );
    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    // Target backend 2 specifically: the scripted replay must reproduce
    // the same load-balancing choice.
    let inv = Invariant::NodeIsolation { src: client, dst: b2 };
    let report = v.verify(&inv).unwrap();
    assert_replays(&net, &inv, &report);
}

#[test]
fn cache_leak_trace_replays() {
    let mut topo = Topology::new();
    let server = topo.add_host("server", addr("10.1.0.1"));
    let client = topo.add_host("client", addr("10.2.0.1"));
    let other = topo.add_host("other", addr("10.3.0.1"));
    let sw = topo.add_switch("sw");
    let cache = topo.add_middlebox("cache", "content-cache", vec![]);
    for n in [server, client, other, cache] {
        topo.add_link(n, sw);
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    for h in [client, other] {
        tables.add_rule(sw, Rule::from_neighbor(px("10.1.0.0/16"), h, cache).with_priority(10));
    }
    tables.add_rule(sw, Rule::from_neighbor(px("10.2.0.0/15"), server, cache).with_priority(10));
    let mut net = Network::new(topo, tables);
    net.set_model(cache, models::content_cache("content-cache", [px("10.1.0.0/16")], vec![]));

    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    let inv = Invariant::DataIsolation { origin: server, dst: other };
    let report = v.verify(&inv).unwrap();
    assert_replays(&net, &inv, &report);
}

/// Random-schedule search on the simulator: any violation it finds, the
/// verifier must find as well (completeness cross-check).
#[test]
fn random_simulation_never_beats_the_verifier() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;
    use vmn_sim::{SimOp, Simulator};

    // Firewall with a partial ACL: outside may reach port-range hosts.
    let mut topo = Topology::new();
    let outside = topo.add_host("outside", addr("8.8.8.8"));
    let inside = topo.add_host("inside", addr("10.0.0.5"));
    let peer = topo.add_host("peer", addr("10.0.0.6"));
    let sw = topo.add_switch("sw");
    let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
    for n in [outside, inside, peer, fw] {
        topo.add_link(n, sw);
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    for h in [outside, inside, peer] {
        tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), h, fw).with_priority(10));
    }
    let mut net = Network::new(topo, tables);
    // Misconfigured: 10.0.0.6 (peer) is reachable from anywhere.
    net.set_model(
        fw,
        models::learning_firewall(
            "stateful-firewall",
            vec![(px("10.0.0.0/8"), px("0.0.0.0/0")), (px("0.0.0.0/0"), px("10.0.0.6/32"))],
        ),
    );

    // Random concrete exploration.
    let mut rng = StdRng::seed_from_u64(7);
    let mut sim_violations: Vec<Invariant> = Vec::new();
    for _ in 0..50 {
        let models: HashMap<NodeId, &vmn_mbox::MboxModel> =
            net.topo.middleboxes().map(|m| (m, net.model(m))).collect();
        let mut sim = Simulator::new(&net.topo, &net.tables, FailureScenario::none(), models);
        for _ in 0..12 {
            if rng.gen_bool(0.6) {
                let hosts = [outside, inside, peer];
                let src = hosts[rng.gen_range(0..3usize)];
                let dst = hosts[rng.gen_range(0..3usize)];
                if src == dst {
                    continue;
                }
                let h = Header::tcp(
                    net.host_address(src),
                    rng.gen_range(1000..32000),
                    net.host_address(dst),
                    rng.gen_range(1..1024),
                );
                sim.exec(&SimOp::Send { host: src, header: h }).unwrap();
            } else {
                sim.exec(&SimOp::Process { mbox: fw }).unwrap();
            }
        }
        // Unsolicited outside→inside delivery would violate flow isolation.
        if sim.host_received(inside, |h| h.src == net.host_address(outside)) {
            sim_violations.push(Invariant::FlowIsolation { src: outside, dst: inside });
        }
        if sim.host_received(peer, |h| h.src == net.host_address(outside)) {
            sim_violations.push(Invariant::NodeIsolation { src: outside, dst: peer });
        }
    }
    sim_violations.dedup();

    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    // The peer hole is real and random search should trip over it.
    assert!(
        sim_violations.iter().any(|i| matches!(i, Invariant::NodeIsolation { .. })),
        "random search should find the peer hole"
    );
    for inv in &sim_violations {
        let rep = v.verify(inv).unwrap();
        assert!(
            !rep.verdict.holds(),
            "simulator found a violation of {inv} but the verifier claims it holds"
        );
    }
    // And the verifier correctly proves what the simulator cannot refute.
    let rep = v.verify(&Invariant::FlowIsolation { src: outside, dst: inside }).unwrap();
    assert!(rep.verdict.holds(), "inside is flow-isolated");
}

/// Exhaustive concrete enumeration vs the verifier: for a small firewalled
/// network and a tiny concrete header space, enumerate *every* schedule of
/// sends and processings up to a depth. Any violation the enumeration
/// finds must also be found by the verifier (which searches symbolically
/// over a superset of behaviours).
#[test]
fn exhaustive_enumeration_never_beats_the_verifier() {
    use std::collections::HashMap;
    use vmn_sim::{SimOp, Simulator};

    // Firewall ACLs to try: each yields a different verdict pattern.
    let acl_variants: Vec<Vec<(Prefix, Prefix)>> = vec![
        vec![],                                     // deny all
        vec![(px("10.0.0.0/8"), px("0.0.0.0/0"))],  // inside out
        vec![(px("8.8.8.8/32"), px("10.0.0.0/8"))], // outside in
        vec![(px("0.0.0.0/0"), px("0.0.0.0/0"))],   // allow all
    ];

    for acl in acl_variants {
        let mut topo = Topology::new();
        let outside = topo.add_host("outside", addr("8.8.8.8"));
        let inside = topo.add_host("inside", addr("10.0.0.5"));
        let sw = topo.add_switch("sw");
        let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
        for n in [outside, inside, fw] {
            topo.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), outside, fw).with_priority(10));
        tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), inside, fw).with_priority(10));
        let mut net = Network::new(topo, tables);
        net.set_model(fw, models::learning_firewall("stateful-firewall", acl.clone()));

        // Concrete alphabet: each host can send a canonical packet to the
        // other, or the firewall processes. Depth 4 covers send/process
        // interleavings including hole punching.
        let h_out = Header::tcp(addr("8.8.8.8"), 777, addr("10.0.0.5"), 80);
        let h_in = Header::tcp(addr("10.0.0.5"), 80, addr("8.8.8.8"), 777);
        let alphabet = [
            SimOp::Send { host: outside, header: h_out },
            SimOp::Send { host: inside, header: h_in },
            SimOp::Process { mbox: fw },
        ];
        let mut concrete_violation = false;
        let depth = 4;
        let mut stack: Vec<Vec<usize>> = (0..alphabet.len()).map(|i| vec![i]).collect();
        while let Some(seq) = stack.pop() {
            let models: HashMap<NodeId, &vmn_mbox::MboxModel> =
                net.topo.middleboxes().map(|m| (m, net.model(m))).collect();
            let mut sim = Simulator::new(&net.topo, &net.tables, FailureScenario::none(), models);
            for &i in &seq {
                sim.exec(&alphabet[i]).unwrap();
            }
            if sim.host_received(inside, |h| h.src == addr("8.8.8.8")) {
                concrete_violation = true;
                break;
            }
            if seq.len() < depth {
                for i in 0..alphabet.len() {
                    let mut next = seq.clone();
                    next.push(i);
                    stack.push(next);
                }
            }
        }

        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let inv = Invariant::NodeIsolation { src: outside, dst: inside };
        let rep = v.verify(&inv).unwrap();
        if concrete_violation {
            assert!(
                !rep.verdict.holds(),
                "enumeration found a violation the verifier missed (acl {acl:?})"
            );
        }
        // Ground truth for these ACLs: only the deny-all firewall keeps
        // outside fully node-isolated from inside.
        let expect_holds = acl.is_empty();
        assert_eq!(rep.verdict.holds(), expect_holds, "unexpected verdict for acl {acl:?}");
    }
}
