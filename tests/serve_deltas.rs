//! Randomized differential testing of the serving layer's delta path:
//! a [`vmn_serve::NetSession`] fed a random stream of delta batches —
//! model swaps, invariant registrations and retirements, failure
//! scenarios coming and going, structural node/link additions — must
//! at every step hold exactly the state a from-scratch verifier
//! derives from the same symbolic spec:
//!
//! * every cached (invariant, scenario) verdict equals a fresh
//!   `Verifier::verify_under` on a fresh materialisation of the spec;
//! * every cached violation witness replays into a real forbidden
//!   reception on the concrete simulator;
//! * the aggregated per-invariant verdicts (`NetSession::verdicts`)
//!   report the first violating scenario in configured sweep order;
//! * the delta report's cache accounting is conserved: every pair is
//!   prefiltered, contract-answered, fingerprint-hit, or re-checked —
//!   nothing is dropped.
//!
//! This is the soundness argument for the daemon's verdict cache: the
//! prefilter / contract / fingerprint / recheck ladder may skip
//! arbitrary solver work, but must never change an answer. Cases derive
//! from the proptest per-test seed; `VMN_FUZZ_CASES` bounds the case
//! count (CI pins a small subset, the default is 60). A deterministic
//! companion (`module_confined_deltas`) drives a partitioned two-site
//! estate and pins the modular ladder rung: single-module deltas leave
//! the other module's pairs prefiltered and its pooled sessions alive,
//! while cross-module pairs are re-answered from boundary contracts.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::collections::BTreeSet;
use vmn::{Verdict, Verifier, VerifyOptions};
use vmn_serve::{scenario_key, Delta, NetSession, NodeSpec};

fn fuzz_cases() -> u32 {
    match std::env::var("VMN_FUZZ_CASES") {
        Ok(v) => v.parse().expect("VMN_FUZZ_CASES must be a number"),
        Err(_) => 60,
    }
}

/// The generated base network plus the mutation vocabulary the delta
/// stream draws from.
struct Gen {
    config: String,
    hosts: Vec<String>,
    fws: Vec<String>,
    /// Invariant specs the stream may register (superset of the ones
    /// registered at load).
    pool: Vec<String>,
}

const PREFIXES: [&str; 5] =
    ["10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16", "10.0.0.0/8", "0.0.0.0/0"];

/// Random `allow`-list arguments for a firewall model.
fn acl_args(rng: &mut TestRng) -> Vec<String> {
    let n = rng.below(3);
    if n == 0 {
        return Vec::new();
    }
    let mut args = vec!["allow".to_string()];
    for i in 0..n {
        if i > 0 {
            args.push(",".into());
        }
        args.push(PREFIXES[rng.below(PREFIXES.len() as u64) as usize].into());
        args.push("->".into());
        args.push(PREFIXES[rng.below(PREFIXES.len() as u64) as usize].into());
    }
    args
}

fn fw_kind(rng: &mut TestRng) -> &'static str {
    if rng.below(2) == 0 {
        "firewall"
    } else {
        "acl-firewall"
    }
}

/// Derives a random hub network in `.vmn` config text: host pairs on
/// per-pair /16s, one or two firewalls (stateful or ACL) with random
/// allow-lists, random host-keyed steering with failover priorities,
/// two registered invariants, and possibly an initial failure scenario.
fn generate(rng: &mut TestRng) -> Gen {
    let pairs = 2 + rng.below(2) as usize;
    let mut config = String::new();
    let mut hosts = Vec::new();
    for i in 0..pairs {
        for (role, last) in [("a", 1), ("b", 2)] {
            let name = format!("{role}{i}");
            config.push_str(&format!("host {name} 10.{}.0.{last}\n", i + 1));
            hosts.push(name);
        }
    }
    config.push_str("switch sw\n");
    let nfw = 1 + rng.below(2) as usize;
    let mut fws = Vec::new();
    for f in 0..nfw {
        let name = format!("fw{f}");
        let args = acl_args(rng);
        config.push_str(&format!("{} {name} {}\n", fw_kind(rng), args.join(" ")));
        fws.push(name);
    }
    for n in hosts.iter().chain(&fws) {
        config.push_str(&format!("link {n} sw\n"));
    }
    config.push_str("autoroute\n");
    for h in &hosts {
        for (fi, f) in fws.iter().enumerate() {
            if rng.below(2) == 0 {
                config.push_str(&format!(
                    "steer sw from {h} 10.0.0.0/8 {f} prio {}\n",
                    30 - 5 * fi as i32
                ));
            }
        }
    }

    // The invariant vocabulary: isolation between every ordered host
    // pair, plus a data-isolation and a traversal probe on the first
    // pair (kept rare — they are the expensive encodings).
    let mut pool = Vec::new();
    for s in &hosts {
        for d in &hosts {
            if s != d {
                pool.push(format!("node-isolation {s} -> {d}"));
                pool.push(format!("flow-isolation {s} -> {d}"));
            }
        }
    }
    pool.push(format!("data-isolation {} -> {}", hosts[0], hosts[1]));
    pool.push(format!("traversal {} -> {} via {}", hosts[0], hosts[1], fws[0]));

    // Register two distinct invariants up front.
    let mut registered = BTreeSet::new();
    while registered.len() < 2 {
        registered.insert(pool[rng.below(pool.len() as u64) as usize].clone());
    }
    for spec in &registered {
        config.push_str(&format!("verify {spec}\n"));
    }
    if rng.below(2) == 0 {
        config.push_str(&format!("fail {}\n", fws[rng.below(fws.len() as u64) as usize]));
    }
    Gen { config, hosts, fws, pool }
}

/// One random delta batch against the session's *current* spec. Always
/// applicable: toggles consult the live spec so adds never duplicate
/// and removals never miss.
fn next_batch(rng: &mut TestRng, gen: &Gen, session: &NetSession, step: usize) -> Vec<Delta> {
    let registered: Vec<String> = session.spec().verify_specs().map(str::to_string).collect();
    match rng.below(5) {
        // Reconfigure a firewall: new kind, new allow-list.
        0 => vec![Delta::SetModel {
            name: gen.fws[rng.below(gen.fws.len() as u64) as usize].clone(),
            kind: fw_kind(rng).into(),
            args: acl_args(rng),
        }],
        // Toggle a failure scenario (single box, or all boxes at once).
        1 => {
            let mut cands: Vec<Vec<String>> = gen.fws.iter().map(|f| vec![f.clone()]).collect();
            if gen.fws.len() > 1 {
                cands.push(gen.fws.clone());
            }
            let fail = cands[rng.below(cands.len() as u64) as usize].clone();
            let key = scenario_key(&fail);
            let present = session.spec().fail_specs().any(|f| scenario_key(f) == key);
            if present {
                vec![Delta::RemoveScenario { fail }]
            } else {
                vec![Delta::AddScenario { fail }]
            }
        }
        // Register an invariant not currently present.
        2 => {
            let fresh: Vec<&String> =
                gen.pool.iter().filter(|s| !registered.contains(*s)).collect();
            match fresh.is_empty() {
                true => vec![Delta::RetireInvariant { spec: registered[0].clone() }],
                false => vec![Delta::AddInvariant {
                    spec: fresh[rng.below(fresh.len() as u64) as usize].clone(),
                }],
            }
        }
        // Retire one (keeping at least one registered).
        3 => {
            if registered.len() > 1 {
                vec![Delta::RetireInvariant {
                    spec: registered[rng.below(registered.len() as u64) as usize].clone(),
                }]
            } else {
                let fresh: Vec<&String> =
                    gen.pool.iter().filter(|s| !registered.contains(*s)).collect();
                vec![Delta::AddInvariant {
                    spec: fresh[rng.below(fresh.len() as u64) as usize].clone(),
                }]
            }
        }
        // Structural churn: a new (unsteered) host joins the hub.
        _ => {
            let name = format!("hx{step}");
            vec![
                Delta::AddNode(NodeSpec::Host {
                    name: name.clone(),
                    addr: format!("10.9.0.{}", step + 1),
                }),
                Delta::AddLink { a: name, b: "sw".into() },
            ]
        }
    }
}

/// The core oracle: the daemon's cached state must be indistinguishable
/// from a verifier built from scratch off the same symbolic spec.
fn assert_matches_scratch(session: &NetSession, label: &str) {
    let m = session.spec().materialize().expect("live spec rematerializes");
    let fresh = Verifier::new(&m.net, VerifyOptions::default()).expect("valid network");
    let scenarios = session.scenario_list();
    let verdicts = session.verdicts();
    assert_eq!(verdicts.len(), session.invariants().len(), "{label}: one verdict per invariant");

    for (spec, inv) in session.invariants() {
        let mut first_violation: Option<(String, usize)> = None;
        for (skey, scenario) in &scenarios {
            let entry = session
                .cached(spec, skey)
                .unwrap_or_else(|| panic!("{label}: no cache entry for {spec:?} / {skey:?}"));
            let want = fresh
                .verify_under(inv, vec![scenario.clone()])
                .expect("from-scratch verify succeeds");
            assert_eq!(
                entry.verdict.holds(),
                want.verdict.holds(),
                "{label}: cached verdict for {spec:?} under {skey:?} diverges from scratch"
            );
            if let Verdict::Violated { trace, scenario: vs } = &entry.verdict {
                let receptions = trace.replay(&m.net, vs).unwrap_or_else(|e| {
                    panic!("{label}: witness for {spec:?} / {skey:?} fails to replay: {e}")
                });
                assert!(
                    !receptions.is_empty(),
                    "{label}: witness for {spec:?} / {skey:?} replays to no reception"
                );
                if first_violation.is_none() {
                    first_violation = Some((skey.clone(), trace.steps.len()));
                }
            }
        }
        let iv = verdicts
            .iter()
            .find(|iv| iv.spec == *spec)
            .unwrap_or_else(|| panic!("{label}: {spec:?} missing from verdicts"));
        assert_eq!(iv.holds, first_violation.is_none(), "{label}: {spec:?} aggregate diverges");
        assert_eq!(
            iv.violation, first_violation,
            "{label}: {spec:?} first violating scenario diverges"
        );
    }
}

fn run_case(seed: u64) {
    let mut rng = TestRng::new(seed);
    let gen = generate(&mut rng);
    let label = format!("hosts={} fws={}", gen.hosts.len(), gen.fws.len());
    let (mut session, load_report) = NetSession::load(&gen.config, VerifyOptions::default())
        .unwrap_or_else(|e| panic!("{label}: generated config rejected: {e}\n{}", gen.config));
    let pairs = session.invariants().len() * session.scenario_list().len();
    assert_eq!(load_report.pairs, pairs, "{label}: load sweeps every pair");
    assert_eq!(load_report.rechecked, pairs, "{label}: cold cache solves every pair");
    assert_matches_scratch(&session, &format!("{label} after load"));

    for step in 0..4 {
        let batch = next_batch(&mut rng, &gen, &session, step);
        let report = session
            .apply(&batch)
            .unwrap_or_else(|e| panic!("{label} step {step}: delta rejected: {e}\n{batch:?}"));
        assert_eq!(
            report.prefiltered + report.contract_answered + report.cache_hits + report.rechecked,
            report.pairs,
            "{label} step {step}: cache accounting must conserve pairs: {report:?}"
        );
        assert_eq!(
            report.pairs,
            session.invariants().len() * session.scenario_list().len(),
            "{label} step {step}: pair count tracks the live spec"
        );
        assert_matches_scratch(&session, &format!("{label} step {step} ({batch:?})"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// The delta-applied daemon and a from-scratch verifier must agree
    /// on every observable, at every point of a random delta stream.
    #[test]
    fn delta_stream_matches_from_scratch(seed in any::<u64>()) {
        run_case(seed);
    }
}

/// A two-site estate under `partition auto`: deltas confined to one
/// site must re-check only that module's pairs — the other site's
/// intra-module pairs stay prefiltered, cross-module pairs are
/// re-answered by the boundary contracts without touching a solver, and
/// only a strict subset of the pooled sessions is retired. The
/// from-scratch oracle runs monolithically, so every step is also a
/// modular-vs-monolithic differential check.
#[test]
fn module_confined_deltas() {
    let config = "\
host a1 10.1.0.1
host a2 10.1.0.2
host b1 10.2.0.1
host b2 10.2.0.2
switch asw
switch bsw
switch core
acl-firewall afw allow 10.1.0.0/16 -> 0.0.0.0/0
acl-firewall bfw allow 10.2.0.0/16 -> 0.0.0.0/0
firewall sfw allow 10.2.0.0/16 -> 10.2.0.0/16
link a1 asw
link a2 asw
link b1 bsw
link b2 bsw
link sfw bsw
link asw afw
link afw core
link bsw bfw
link bfw core
autoroute
steer asw from a1 10.0.0.0/8 afw prio -10
steer asw from a2 10.0.0.0/8 afw prio -10
steer bsw from b1 10.0.0.0/8 bfw prio -10
steer bsw from b2 10.0.0.0/8 bfw prio -10
steer bsw from b2 10.2.0.0/16 sfw prio 10
steer core from afw 10.2.0.0/16 bfw
steer core from bfw 10.1.0.0/16 afw
partition auto
fail afw
verify node-isolation a1 -> b1
verify node-isolation b1 -> a1
verify node-isolation a2 -> a1
verify node-isolation b2 -> b1
";
    let (mut session, load) =
        NetSession::load(config, VerifyOptions::default()).expect("estate loads");
    assert!(load.modules >= 2, "partition auto must split the estate: {load:?}");
    assert_eq!(session.module_count(), load.modules);
    // Cross-site pairs (2 invariants x 2 scenarios) are discharged by
    // the boundary contracts already at load; the intra-site pairs hit
    // the exact engine.
    assert_eq!(load.contract_answered, 4, "{load:?}");
    assert_eq!(
        load.prefiltered + load.contract_answered + load.cache_hits + load.rechecked,
        load.pairs,
        "{load:?}"
    );
    assert_matches_scratch(&session, "after load");

    // A model rewrite confined to site A: one module touched, site B's
    // intra pair stays prefiltered, cross pairs re-answered from the
    // contracts, and only part of the warmed session pool is retired.
    let pooled_before = session.verifier().pooled_sessions();
    assert!(pooled_before > 0, "load warms the session pool");
    let delta = Delta::SetModel {
        name: "afw".into(),
        kind: "acl-firewall".into(),
        args: ["allow", "10.1.0.0/24", "->", "0.0.0.0/0"].map(String::from).to_vec(),
    };
    let report = session.apply(std::slice::from_ref(&delta)).expect("delta applies");
    assert_eq!(report.modules_touched, Some(1), "{report:?}");
    assert_eq!(report.contract_answered, 4, "{report:?}");
    assert!(report.prefiltered >= 1, "site B's intra pair must stay prefiltered: {report:?}");
    assert_eq!(
        report.prefiltered + report.contract_answered + report.cache_hits + report.rechecked,
        report.pairs,
        "{report:?}"
    );
    assert!(
        report.retired < pooled_before,
        "an afw-only delta must not retire site B's sessions: {report:?}"
    );
    assert_matches_scratch(&session, "after site-A rewrite");

    // Opening site B's firewall to foreign sources flips both
    // cross-site verdicts: the contracts (soundly) stop concluding and
    // the pairs fall back to the exact engine, still matching scratch.
    let delta = Delta::SetModel {
        name: "bfw".into(),
        kind: "acl-firewall".into(),
        args: ["allow", "10.0.0.0/8", "->", "0.0.0.0/0"].map(String::from).to_vec(),
    };
    let report = session.apply(std::slice::from_ref(&delta)).expect("delta applies");
    assert_eq!(report.modules_touched, Some(1), "{report:?}");
    let flipped: Vec<&str> = report.changed.iter().map(|(inv, _, _, _)| inv.as_str()).collect();
    assert!(flipped.contains(&"node-isolation a1 -> b1"), "{report:?}");
    assert_matches_scratch(&session, "after opening bfw");

    // An invariant-only delta has an empty touch footprint: even the
    // contract-answered entries are prefiltered instead of re-derived.
    let delta = Delta::AddInvariant { spec: "flow-isolation a2 -> b2".into() };
    let report = session.apply(std::slice::from_ref(&delta)).expect("delta applies");
    assert!(report.prefiltered >= 4, "untouched pairs stay cached: {report:?}");
    assert_matches_scratch(&session, "after invariant add");
}
