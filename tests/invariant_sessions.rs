//! Differential tests for cross-invariant solver sessions:
//! `Verifier::verify_all` with the session pool (`reuse_sessions`, the
//! default) must return verdicts *identical* to per-invariant fresh
//! solver stacks (`reuse_sessions: false`) — same holds/violated answer
//! per invariant, same first violating scenario, same scenario counts,
//! same symmetry inheritance — and every violation witness must replay
//! into a real forbidden reception on the concrete simulator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vmn::{Invariant, Network, Verdict, Verifier, VerifyOptions};
use vmn_net::NodeId;
use vmn_scenarios::datacenter::{Datacenter, DatacenterParams};
use vmn_scenarios::enterprise::{Enterprise, EnterpriseParams, SubnetKind};

fn opts(hint: Vec<Vec<NodeId>>, reuse_sessions: bool) -> VerifyOptions {
    VerifyOptions { policy_hint: Some(hint), reuse_sessions, ..Default::default() }
}

/// Runs `verify_all` with and without session reuse and asserts the
/// reports agree on everything observable; violated invariants must
/// replay on the simulator under both engines.
fn assert_fleet_matches(net: &Network, hint: Vec<Vec<NodeId>>, invs: &[Invariant], label: &str) {
    let pooled = Verifier::new(net, opts(hint.clone(), true)).expect("valid network");
    let fresh = Verifier::new(net, opts(hint, false)).expect("valid network");
    let got = pooled.verify_all(invs, 1).expect("session verify_all succeeds");
    let want = fresh.verify_all(invs, 1).expect("fresh verify_all succeeds");
    assert!(pooled.pooled_sessions() > 0, "{label}: the pool must have been exercised");
    assert_eq!(fresh.pooled_sessions(), 0, "{label}: the oracle must not pool");
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        let inv = &g.invariant;
        assert_eq!(g.verdict.holds(), w.verdict.holds(), "{label}: verdicts differ for {inv}");
        assert_eq!(g.inherited, w.inherited, "{label}: inheritance differs for {inv}");
        assert_eq!(
            g.scenarios_checked, w.scenarios_checked,
            "{label}: scenario counts differ for {inv}"
        );
        if let (
            Verdict::Violated { scenario: gs, trace: gt },
            Verdict::Violated { scenario: ws, trace: wt },
        ) = (&g.verdict, &w.verdict)
        {
            assert_eq!(gs, ws, "{label}: first violating scenario differs for {inv}");
            for (t, s) in [(gt, gs), (wt, ws)] {
                let receptions = t.replay(net, s).expect("trace replays");
                assert!(!receptions.is_empty(), "{label}: witness replays to no reception");
            }
        }
    }
}

fn dc() -> Datacenter {
    Datacenter::build(DatacenterParams {
        racks: 4,
        hosts_per_rack: 2,
        policy_groups: 2,
        redundant: true,
        with_failures: true,
    })
}

/// A per-direction isolation + traversal fleet over the two policy
/// groups — the invariants whose direction pairs share a session key.
fn dc_fleet(dc: &Datacenter) -> Vec<Invariant> {
    let hint = dc.policy_hint();
    let (a, b) = (hint[0][0], hint[1][0]);
    let mut invs = vec![
        Invariant::NodeIsolation { src: a, dst: b },
        Invariant::NodeIsolation { src: b, dst: a },
        Invariant::FlowIsolation { src: a, dst: b },
        Invariant::FlowIsolation { src: b, dst: a },
    ];
    invs.extend(dc.traversal_invariants());
    invs
}

#[test]
fn datacenter_clean_fleet_matches_fresh_stacks() {
    let dc = dc();
    assert!(dc.net.all_scenarios().len() > 1, "sweep needs several failure scenarios");
    assert_fleet_matches(&dc.net, dc.policy_hint(), &dc_fleet(&dc), "dc/clean");
}

#[test]
fn datacenter_misconfigured_fleet_matches_fresh_stacks() {
    // A rule misconfiguration makes one cross-group pair reachable: the
    // violated invariant sits in the middle of the fleet, so the session
    // serving its key sees an UNSAT neighbour before and after a SAT
    // extraction — verdicts and witnesses must still match the oracle.
    let mut dc = dc();
    let mut rng = StdRng::seed_from_u64(7);
    let pairs = dc.inject_rule_misconfig(&mut rng, 1);
    let mut invs = dc_fleet(&dc);
    invs.insert(2, dc.pair_isolation(pairs[0].0, pairs[0].1));
    assert_fleet_matches(&dc.net, dc.policy_hint(), &invs, "dc/misconfig");
}

#[test]
fn enterprise_families_match_fresh_stacks() {
    let e = Enterprise::build(EnterpriseParams { subnets: 3, hosts_per_subnet: 2 });
    let mut invs = Vec::new();
    for (kind, inv) in e.invariants() {
        let host = e.subnet_of_kind(kind).expect("subnet exists")[0];
        invs.push(inv);
        invs.push(Invariant::NodeIsolation { src: host, dst: e.internet });
        if kind == SubnetKind::Private {
            invs.push(Invariant::FlowIsolation { src: host, dst: e.internet });
        }
    }
    assert_fleet_matches(&e.net, e.policy_hint(), &invs, "enterprise");
}

#[test]
fn threaded_session_pool_matches_single_thread() {
    // Workers check sessions out of one shared pool; the reports must be
    // indistinguishable from the single-threaded run (and from the
    // fresh-stack oracle, by transitivity with the tests above).
    let dc = dc();
    let invs = dc_fleet(&dc);
    let pooled = Verifier::new(&dc.net, opts(dc.policy_hint(), true)).unwrap();
    let single = pooled.verify_all(&invs, 1).unwrap();
    let threaded = pooled.verify_all(&invs, 4).unwrap();
    assert_eq!(single.len(), threaded.len());
    for (s, t) in single.iter().zip(&threaded) {
        assert_eq!(s.verdict.holds(), t.verdict.holds(), "{}", s.invariant);
        assert_eq!(s.inherited, t.inherited);
        assert_eq!(s.scenarios_checked, t.scenarios_checked);
    }
}
