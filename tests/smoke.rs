//! Smoke test: the README quickstart path, end to end.
//!
//! Builds the tiny firewalled network (a stateful firewall between
//! `outside` and `inside`), runs the verifier, and asserts the two
//! verdicts the quickstart promises:
//!
//! * **flow isolation** outside → inside HOLDS (outside can never
//!   *initiate* contact through the learning firewall), and
//! * **node isolation** outside → inside is VIOLATED (inside can punch a
//!   hole and invite a reply), with a counterexample trace that replays
//!   on the concrete simulator.

use vmn::{Invariant, Network, Verdict, Verifier, VerifyOptions};
use vmn_mbox::models;
use vmn_net::{FailureScenario, Prefix, RoutingConfig, Rule, Topology};

/// The quickstart network: outside --- sw --- inside, all traffic steered
/// through a stateful firewall that admits only inside-initiated flows.
fn quickstart_network() -> (Network, vmn_net::NodeId, vmn_net::NodeId) {
    let mut topo = Topology::new();
    let outside = topo.add_host("outside", "8.8.8.8".parse().unwrap());
    let inside = topo.add_host("inside", "10.0.0.5".parse().unwrap());
    let sw = topo.add_switch("sw");
    let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
    topo.add_link(outside, sw);
    topo.add_link(inside, sw);
    topo.add_link(fw, sw);

    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    let all: Prefix = "0.0.0.0/0".parse().unwrap();
    tables.add_rule(sw, Rule::from_neighbor(all, outside, fw).with_priority(10));
    tables.add_rule(sw, Rule::from_neighbor(all, inside, fw).with_priority(10));

    let mut net = Network::new(topo, tables);
    net.set_model(
        fw,
        models::learning_firewall("stateful-firewall", vec![("10.0.0.0/8".parse().unwrap(), all)]),
    );
    (net, outside, inside)
}

#[test]
fn quickstart_firewall_verdicts() {
    let (net, outside, inside) = quickstart_network();
    net.validate().expect("every middlebox has a model");
    let verifier = Verifier::new(&net, VerifyOptions::default()).expect("valid network");

    // Flow isolation holds: the firewall blocks outside-initiated flows.
    let flow_iso = Invariant::FlowIsolation { src: outside, dst: inside };
    let report = verifier.verify(&flow_iso).expect("verification runs");
    assert!(
        report.verdict.holds(),
        "stateful firewall must enforce flow isolation outside -> inside"
    );
    assert!(report.encoded_nodes > 0, "the slice must contain at least the endpoints");

    // Node isolation is violated: inside punches a hole, outside replies.
    let node_iso = Invariant::NodeIsolation { src: outside, dst: inside };
    let report = verifier.verify(&node_iso).expect("verification runs");
    match &report.verdict {
        Verdict::Holds => panic!("hole punching must violate node isolation"),
        Verdict::Violated { trace, scenario } => {
            assert_eq!(scenario.fault_count(), 0, "no failures needed for this violation");
            // The witness must replay concretely: at least one packet
            // reaches `inside`.
            let receptions = trace.replay(&net, &FailureScenario::none()).expect("trace replays");
            assert!(
                !receptions.is_empty(),
                "the counterexample trace must deliver a packet to inside"
            );
        }
    }

    // The reachability convenience agrees with the node-isolation dual.
    assert!(verifier.can_reach(outside, inside).expect("reachability query runs"));
}
