//! Verification under failure scenarios (§2.1, §5.1): invariants that
//! hold in the fault-free network but break when redundancy is
//! misconfigured.

use vmn::{Invariant, Network, Verdict, Verifier, VerifyOptions};
use vmn_mbox::models;
use vmn_net::{Address, FailureScenario, NodeId, Prefix, RoutingConfig, Rule, Topology};

fn addr(s: &str) -> Address {
    s.parse().unwrap()
}

fn px(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// outside/inside guarded by a primary firewall with a backup: traffic is
/// steered through fw1, falling back to fw2 when fw1 is down.
struct Redundant {
    net: Network,
    outside: NodeId,
    inside: NodeId,
    fw1: NodeId,
}

fn redundant(primary_acl: Vec<(Prefix, Prefix)>, backup_acl: Vec<(Prefix, Prefix)>) -> Redundant {
    let mut topo = Topology::new();
    let outside = topo.add_host("outside", addr("8.8.8.8"));
    let inside = topo.add_host("inside", addr("10.0.0.5"));
    let sw = topo.add_switch("sw");
    let fw1 = topo.add_middlebox("fw1", "stateful-firewall", vec![]);
    let fw2 = topo.add_middlebox("fw2", "stateful-firewall", vec![]);
    for n in [outside, inside, fw1, fw2] {
        topo.add_link(n, sw);
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    // Primary steering (priority 20), backup steering (priority 10): when
    // fw1 is dead, lookups fall through to fw2.
    for h in [outside, inside] {
        tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), h, fw1).with_priority(20));
        tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), h, fw2).with_priority(10));
    }
    let mut net = Network::new(topo, tables);
    net.set_model(fw1, models::learning_firewall("stateful-firewall", primary_acl));
    net.set_model(fw2, models::learning_firewall("stateful-firewall", backup_acl));
    // Check the fault-free network and every single-middlebox failure.
    for s in net.topo.single_middlebox_failures() {
        net.add_scenario(s);
    }
    Redundant { net, outside, inside, fw1 }
}

#[test]
fn correctly_configured_backup_preserves_invariants() {
    let acl = vec![(px("10.0.0.0/8"), px("0.0.0.0/0"))];
    let r = redundant(acl.clone(), acl);
    let v = Verifier::new(&r.net, VerifyOptions::default()).unwrap();
    let rep = v.verify(&Invariant::FlowIsolation { src: r.outside, dst: r.inside }).unwrap();
    assert!(rep.verdict.holds(), "identical backup keeps the invariant under failures");
    assert!(rep.scenarios_checked >= 3, "no-failure plus two single-failure scenarios");
}

#[test]
fn misconfigured_backup_breaks_invariant_only_under_failure() {
    // The backup firewall allows *everything* — §5.1 "Misconfigured
    // Redundant Firewalls": the bug is invisible until the primary fails.
    let strict = vec![(px("10.0.0.0/8"), px("0.0.0.0/0"))];
    let permissive = vec![(px("0.0.0.0/0"), px("0.0.0.0/0"))];
    let r = redundant(strict, permissive);
    let inv = Invariant::FlowIsolation { src: r.outside, dst: r.inside };

    // Fault-free only: the invariant appears to hold.
    let mut no_failures = r.net.clone();
    no_failures.scenarios.clear();
    let v0 = Verifier::new(&no_failures, VerifyOptions::default()).unwrap();
    assert!(
        v0.verify(&inv).unwrap().verdict.holds(),
        "without failure scenarios the misconfiguration is invisible"
    );

    // With failure scenarios, the violation surfaces — in the scenario
    // where the primary firewall is dead.
    let v = Verifier::new(&r.net, VerifyOptions::default()).unwrap();
    let rep = v.verify(&inv).unwrap();
    match &rep.verdict {
        Verdict::Violated { scenario, .. } => {
            assert!(scenario.is_failed(r.fw1), "violation requires the primary to fail");
        }
        Verdict::Holds => panic!("misconfigured backup must be detected"),
    }
}

#[test]
fn no_backup_means_fail_closed_blocks_everything() {
    // One firewall, no backup rule: when it fails, traffic has nowhere to
    // go (the steering rule's next hop is dead and no other rule matches
    // with equal coverage) — isolation still holds.
    let mut topo = Topology::new();
    let outside = topo.add_host("outside", addr("8.8.8.8"));
    let inside = topo.add_host("inside", addr("10.0.0.5"));
    let sw = topo.add_switch("sw");
    let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
    for n in [outside, inside, fw] {
        topo.add_link(n, sw);
    }
    // NOTE: no base host routes for cross-host traffic — all forwarding is
    // via the steering rules, so a dead firewall means dropped packets.
    let mut tables = vmn_net::ForwardingTables::new();
    for h in [outside, inside] {
        tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), h, fw).with_priority(10));
    }
    tables.add_rule(sw, Rule::new(px("8.8.8.8/32"), outside));
    tables.add_rule(sw, Rule::new(px("10.0.0.5/32"), inside));
    let mut net = Network::new(topo, tables);
    net.set_model(
        fw,
        models::learning_firewall("stateful-firewall", vec![(px("0.0.0.0/0"), px("0.0.0.0/0"))]),
    );
    net.add_scenario(FailureScenario::nodes([fw]));
    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    // With the firewall up, outside reaches inside (ACL allows all).
    assert!(v.can_reach(outside, inside).unwrap());
    // Under failure the network fails closed: still reachable in scenario
    // 0, so `can_reach` is true; but check the failed scenario alone:
    let mut only_failed = net.clone();
    only_failed.scenarios.clear();
    // Replace the default no-failure check by putting the failure first:
    // verify() always checks no-failure too, so instead check that the
    // *invariant* holds in the failed scenario by making it the only
    // difference — simplest: a network where fw is failed from the start.
    only_failed.add_scenario(FailureScenario::nodes([net.topo.by_name("fw").unwrap()]));
    let v2 = Verifier::new(&only_failed, VerifyOptions::default()).unwrap();
    let rep = v2.verify(&Invariant::NodeIsolation { src: outside, dst: inside }).unwrap();
    // Violated in the healthy scenario (ACL allows), and the report's
    // scenario must be the healthy one, not the failed one.
    match rep.verdict {
        Verdict::Violated { scenario, .. } => {
            assert_eq!(scenario, FailureScenario::none());
        }
        Verdict::Holds => panic!("healthy network allows the traffic"),
    }
}

#[test]
fn traversal_bypass_via_backup_routing() {
    // §5.1 "Misconfigured Redundant Routing": backup routes (used when
    // the IDPS fails) skip the IDPS entirely.
    let mut topo = Topology::new();
    let src = topo.add_host("src", addr("8.8.8.8"));
    let dst = topo.add_host("dst", addr("10.0.0.5"));
    let sw = topo.add_switch("sw");
    let idps1 = topo.add_middlebox("idps1", "idps", vec![]);
    let idps2 = topo.add_middlebox("idps2", "idps", vec![]);
    for n in [src, dst, idps1, idps2] {
        topo.add_link(n, sw);
    }
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);

    // Good config: primary steering to idps1, backup to idps2.
    let mut good = rc.build(&topo, &FailureScenario::none());
    good.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), src, idps1).with_priority(20));
    good.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), src, idps2).with_priority(10));
    let mut net = Network::new(topo.clone(), good);
    net.set_model(idps1, models::idps("idps"));
    net.set_model(idps2, models::idps("idps"));
    net.add_scenario(FailureScenario::nodes([idps1]));
    let inv = Invariant::Traversal { dst, through: vec![idps1, idps2], from: Some(src) };
    let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
    assert!(v.verify(&inv).unwrap().verdict.holds(), "backup IDPS keeps the pipeline");

    // Bad config: no backup steering — failure of idps1 falls through to
    // the direct route.
    let mut bad = rc.build(&topo, &FailureScenario::none());
    bad.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), src, idps1).with_priority(20));
    let mut net2 = Network::new(topo, bad);
    net2.set_model(idps1, models::idps("idps"));
    net2.set_model(idps2, models::idps("idps"));
    net2.add_scenario(FailureScenario::nodes([idps1]));
    let v2 = Verifier::new(&net2, VerifyOptions::default()).unwrap();
    let rep = v2.verify(&inv).unwrap();
    match rep.verdict {
        Verdict::Violated { scenario, .. } => {
            assert!(scenario.is_failed(net2.topo.by_name("idps1").unwrap()));
        }
        Verdict::Holds => panic!("failure-induced bypass must be detected"),
    }
}
