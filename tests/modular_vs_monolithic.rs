//! Randomized differential battery for the modular engine: random
//! multi-site topologies (hosts behind an in-line per-site ACL
//! firewall, sites joined by a core switch), random ACL openings,
//! random failure scenarios and random partitions — per-site, arbitrary
//! (nodes shuffled into modules with no topological sense), automatic,
//! and degenerate single-module. For every case the modular engine must
//! agree with the monolithic oracle on the verdict, the scenario count
//! and the first violating scenario; every violation witness must
//! replay into a real forbidden reception on the concrete simulator;
//! and the backend split (smt + bdd + contract) must cover the sweep.
//!
//! Declared contracts are exercised in both directions: sound
//! (everything-admitting) contracts must change no verdict, and
//! deliberately unsound contracts must surface as a typed
//! [`VerifyError::Contract`] at verifier construction — never a silent
//! pass.
//!
//! Cases derive from the proptest harness's deterministic per-test
//! seed; set `VMN_FUZZ_CASES` to bound the case count.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use vmn::{Invariant, Network, PartitionMode, Verdict, Verifier, VerifyError, VerifyOptions};
use vmn_analysis::{ContractError, Module, ModuleContract, PortContract, WindowSet};
use vmn_mbox::models;
use vmn_net::{Address, FailureScenario, NodeId, Prefix, RoutingConfig, Rule, Topology};

fn fuzz_cases() -> u32 {
    match std::env::var("VMN_FUZZ_CASES") {
        Ok(v) => v.parse().expect("VMN_FUZZ_CASES must be a number"),
        Err(_) => 96,
    }
}

fn px(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn site_prefix(b: usize) -> Prefix {
    Prefix::new(Address::from_octets([10, b as u8 + 1, 0, 0]), 16)
}

/// One generated verification problem over a multi-site estate.
struct Case {
    net: Network,
    /// Per site: host ids. Firewalls are `fw<b>`, site switches
    /// `ssw<b>`, the core switch is `core`.
    hosts: Vec<Vec<NodeId>>,
    firewalls: Vec<NodeId>,
    inv: Invariant,
    label: String,
}

/// Builds a random estate: 2..=3 sites of 2..=3 hosts each, hosts on a
/// site switch, an in-line ACL firewall toward the core. Each firewall
/// admits its own site's sources; with probability ~1/3 it is also
/// (mis)opened to one foreign site, creating cross-site violations.
fn generate(rng: &mut TestRng) -> Case {
    let sites = 2 + rng.below(2) as usize;
    let per_site = 2 + rng.below(2) as usize;
    let mut topo = Topology::new();
    let core = topo.add_switch("core");
    let mut hosts: Vec<Vec<NodeId>> = Vec::new();
    let mut switches: Vec<NodeId> = Vec::new();
    let mut firewalls: Vec<NodeId> = Vec::new();
    for b in 0..sites {
        let ssw = topo.add_switch(format!("ssw{b}"));
        let fw = topo.add_middlebox(format!("fw{b}"), format!("site-fw-{b}"), vec![]);
        topo.add_link(ssw, fw);
        topo.add_link(fw, core);
        let mut site_hosts = Vec::new();
        for k in 0..per_site {
            let h = topo.add_host(
                format!("h{b}x{k}"),
                Address::from_octets([10, b as u8 + 1, 0, k as u8 + 1]),
            );
            topo.add_link(h, ssw);
            site_hosts.push(h);
        }
        hosts.push(site_hosts);
        switches.push(ssw);
        firewalls.push(fw);
    }

    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    // The firewalls sit in line and BFS routing never transits a
    // terminal, so the inter-site legs are explicit `from`-scoped rules
    // (an unscoped rule would bounce a firewall's re-emission straight
    // back into it).
    for b in 0..sites {
        for &h in &hosts[b] {
            tables.add_rule(
                switches[b],
                Rule::from_neighbor(px("10.0.0.0/8"), h, firewalls[b]).with_priority(-10),
            );
        }
    }
    for from in 0..sites {
        for to in 0..sites {
            if from != to {
                tables.add_rule(
                    core,
                    Rule::from_neighbor(site_prefix(to), firewalls[from], firewalls[to]),
                );
            }
        }
    }

    let mut net = Network::new(topo, tables);
    let mut label = format!("sites={sites} per_site={per_site}");
    for (b, &fw) in firewalls.iter().enumerate() {
        let mut allow = vec![(site_prefix(b), Prefix::default_route())];
        if rng.below(3) == 0 {
            // A misconfigured opening toward one foreign site.
            let other = (b + 1 + rng.below(sites as u64 - 1) as usize) % sites;
            allow.push((site_prefix(other), site_prefix(b)));
            label.push_str(&format!(" open:{other}->{b}"));
        }
        net.set_model(fw, models::acl_firewall(&format!("site-fw-{b}"), allow));
    }

    // 1..=2 failure scenarios over the firewalls.
    for _ in 0..=rng.below(2) {
        let mut failed = vec![firewalls[rng.below(sites as u64) as usize]];
        if rng.below(3) == 0 {
            failed.push(firewalls[rng.below(sites as u64) as usize]);
        }
        failed.sort();
        failed.dedup();
        net.add_scenario(FailureScenario::nodes(failed));
    }

    // A random isolation invariant over distinct hosts (cross- or
    // intra-site, so both the contract fast path and the exact fallback
    // are exercised).
    let all: Vec<NodeId> = hosts.iter().flatten().copied().collect();
    let src = all[rng.below(all.len() as u64) as usize];
    let dst = loop {
        let d = all[rng.below(all.len() as u64) as usize];
        if d != src {
            break d;
        }
    };
    let inv = if rng.below(2) == 0 {
        Invariant::NodeIsolation { src, dst }
    } else {
        Invariant::FlowIsolation { src, dst }
    };
    label.push_str(&format!(" inv={inv}"));
    Case { net, hosts, firewalls, inv, label }
}

/// The natural per-site partition (plus a core module).
fn site_partition(case: &Case) -> vmn_analysis::Partition {
    let name = |n: NodeId| case.net.topo.node(n).name.clone();
    let mut modules: Vec<Module> = (0..case.hosts.len())
        .map(|b| {
            let mut nodes: std::collections::BTreeSet<String> =
                [format!("ssw{b}"), name(case.firewalls[b])].into();
            nodes.extend(case.hosts[b].iter().map(|&h| name(h)));
            Module { name: format!("site{b}"), nodes }
        })
        .collect();
    modules.push(Module { name: "core".into(), nodes: ["core".to_string()].into() });
    vmn_analysis::Partition { modules }
}

/// An arbitrary partition: every node shuffled into one of `k` modules
/// with no topological sense. Soundness must not depend on the cut
/// being a good one.
fn random_partition(case: &Case, k: usize, rng: &mut TestRng) -> vmn_analysis::Partition {
    let mut modules: Vec<Module> =
        (0..k).map(|i| Module { name: format!("m{i}"), nodes: Default::default() }).collect();
    for (i, (_, node)) in case.net.topo.nodes().enumerate() {
        // Every module must be non-empty for the partition to validate;
        // pin the first k nodes, scatter the rest.
        let m = if i < k { i } else { rng.below(k as u64) as usize };
        modules[m].nodes.insert(node.name.clone());
    }
    vmn_analysis::Partition { modules }
}

fn verify_with(case: &Case, partition: PartitionMode) -> vmn::Report {
    let options = VerifyOptions { partition, ..Default::default() };
    let v = Verifier::new(&case.net, options).expect("valid network");
    v.verify(&case.inv).expect("verify succeeds")
}

fn run_case(seed: u64) {
    let mut rng = TestRng::new(seed);
    let case = generate(&mut rng);
    let label = &case.label;

    let want = verify_with(&case, PartitionMode::Off);
    if let Verdict::Violated { trace, scenario } = &want.verdict {
        let receptions = trace.replay(&case.net, scenario).expect("oracle witness replays");
        assert!(!receptions.is_empty(), "{label}: oracle witness replays to no reception");
    }

    // Sound everything-admitting declared contracts on one boundary
    // edge: must be accepted and must change nothing.
    let declared = vec![ModuleContract {
        module: "site0".into(),
        ingress: vec![PortContract {
            from: "core".into(),
            to: case.net.topo.node(case.firewalls[0]).name.clone(),
            windows: WindowSet::any(),
        }],
        egress: vec![PortContract {
            from: case.net.topo.node(case.firewalls[0]).name.clone(),
            to: "core".into(),
            windows: WindowSet::any(),
        }],
    }];
    let mut partitions = vec![
        (
            "site-partition",
            PartitionMode::Explicit { partition: site_partition(&case), contracts: vec![] },
        ),
        (
            "site-partition+contracts",
            PartitionMode::Explicit { partition: site_partition(&case), contracts: declared },
        ),
        ("auto", PartitionMode::Auto),
        (
            "degenerate",
            PartitionMode::Explicit {
                partition: random_partition(&case, 1, &mut rng),
                contracts: vec![],
            },
        ),
    ];
    let k = 2 + rng.below(2) as usize;
    partitions.push((
        "random-partition",
        PartitionMode::Explicit {
            partition: random_partition(&case, k, &mut rng),
            contracts: vec![],
        },
    ));

    for (engine, mode) in partitions {
        let got = verify_with(&case, mode);
        assert_eq!(
            got.verdict.holds(),
            want.verdict.holds(),
            "{label}: {engine} verdict diverges from the monolithic oracle"
        );
        assert_eq!(
            got.scenarios_checked, want.scenarios_checked,
            "{label}: {engine} scenario count diverges"
        );
        assert_eq!(
            got.smt_scenarios + got.bdd_scenarios + got.contract_scenarios,
            got.scenarios_checked,
            "{label}: {engine} backend split must cover the sweep"
        );
        if let (Verdict::Violated { scenario: gs, trace }, Verdict::Violated { scenario: ws, .. }) =
            (&got.verdict, &want.verdict)
        {
            assert_eq!(gs, ws, "{label}: {engine} first violating scenario diverges");
            let receptions = trace.replay(&case.net, gs).expect("modular witness replays");
            assert!(!receptions.is_empty(), "{label}: {engine} witness replays to no reception");
        }
    }

    // A deliberately unsound declared contract: an egress guarantee that
    // admits only a bogus block no site uses. The verifier must reject
    // it with the typed contract error at construction — silently
    // accepting it would let every cross-site check pass vacuously.
    let unsound = vec![ModuleContract {
        module: "site0".into(),
        ingress: vec![],
        egress: vec![PortContract {
            from: case.net.topo.node(case.firewalls[0]).name.clone(),
            to: "core".into(),
            windows: WindowSet::window(px("192.168.0.0/16"), px("192.168.0.0/16")),
        }],
    }];
    let options = VerifyOptions {
        partition: PartitionMode::Explicit { partition: site_partition(&case), contracts: unsound },
        ..Default::default()
    };
    match Verifier::new(&case.net, options) {
        Err(VerifyError::Contract(ContractError::Unsound { from, to, .. })) => {
            assert_eq!(from, case.net.topo.node(case.firewalls[0]).name);
            assert_eq!(to, "core");
        }
        Err(e) => panic!("{label}: unsound contract surfaced as the wrong error: {e}"),
        Ok(_) => panic!("{label}: unsound contract silently accepted"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Modular and monolithic engines agree on random estates under
    /// random partitions; unsound contracts are typed errors.
    #[test]
    fn modular_matches_monolithic(seed in any::<u64>()) {
        run_case(seed);
    }
}
