//! Randomized differential battery for the modular engine: random
//! multi-site topologies (hosts behind an in-line per-site boundary
//! box, sites joined by a core switch), random ACL openings, random
//! failure scenarios and random partitions — per-site, arbitrary
//! (nodes shuffled into modules with no topological sense), automatic,
//! and degenerate single-module. A site's boundary box is an ACL
//! firewall, or — the shape that keeps the contract synthesizer honest
//! — a *rewriting* middlebox on the cut path: a load balancer whose
//! VIP is the only address the core routes toward the site, a NAT
//! exposing a single external address, or a content cache fronting the
//! site's servers. For every case the modular engine must agree with
//! the monolithic oracle on the verdict, the scenario count and the
//! first violating scenario; every violation witness must replay into
//! a real forbidden reception on the concrete simulator; and the
//! backend split (smt + bdd + contract) must cover the sweep.
//!
//! Declared contracts are exercised in both directions: sound
//! (everything-admitting) contracts must change no verdict, and
//! deliberately unsound contracts must surface as a typed
//! [`VerifyError::Contract`] at verifier construction — never a silent
//! pass.
//!
//! Cases derive from the proptest harness's deterministic per-test
//! seed; set `VMN_FUZZ_CASES` to bound the case count.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use vmn::{Invariant, Network, PartitionMode, Verdict, Verifier, VerifyError, VerifyOptions};
use vmn_analysis::{ContractError, Module, ModuleContract, PortContract, WindowSet};
use vmn_mbox::models;
use vmn_net::{Address, FailureScenario, NodeId, Prefix, RoutingConfig, Rule, Topology};

fn fuzz_cases() -> u32 {
    match std::env::var("VMN_FUZZ_CASES") {
        Ok(v) => v.parse().expect("VMN_FUZZ_CASES must be a number"),
        Err(_) => 96,
    }
}

fn px(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn site_prefix(b: usize) -> Prefix {
    Prefix::new(Address::from_octets([10, b as u8 + 1, 0, 0]), 16)
}

/// One generated verification problem over a multi-site estate.
struct Case {
    net: Network,
    /// Per site: host ids. Boundary boxes are `fw<b>`, site switches
    /// `ssw<b>`, the core switch is `core`.
    hosts: Vec<Vec<NodeId>>,
    firewalls: Vec<NodeId>,
    inv: Invariant,
    label: String,
}

/// The kind of box a site places in line on its cut path to the core.
#[derive(Clone, Copy, PartialEq)]
enum SiteKind {
    /// ACL firewall admitting the site's own sources (plus any opens).
    Acl,
    /// Load balancer exposing a VIP for the site's hosts; the core
    /// routes only the VIP toward the site, so every header arriving
    /// at the box has the VIP destination and the rewritten
    /// (VIP→backend) emission is exactly what a sound synthesis must
    /// not lose.
    Lb,
    /// NAT hiding the site behind one external address; likewise only
    /// the external address is routed in, and inbound deliveries exist
    /// only as restored (rewritten) headers of inside-opened flows.
    Nat,
    /// Content cache fronting the site's hosts as servers; replayed
    /// responses carry headers unrelated to the arrived request.
    Cache,
}

impl SiteKind {
    fn type_name(self, b: usize) -> String {
        match self {
            SiteKind::Acl => format!("site-fw-{b}"),
            SiteKind::Lb => format!("site-lb-{b}"),
            SiteKind::Nat => format!("site-nat-{b}"),
            SiteKind::Cache => format!("site-cache-{b}"),
        }
    }

    fn short(self) -> &'static str {
        match self {
            SiteKind::Acl => "acl",
            SiteKind::Lb => "lb",
            SiteKind::Nat => "nat",
            SiteKind::Cache => "cache",
        }
    }
}

fn vip(b: usize) -> Address {
    Address::from_octets([10, b as u8 + 1, 0, 100])
}

fn external(b: usize) -> Address {
    Address::from_octets([172, 16, b as u8 + 1, 1])
}

/// The prefix the core routes toward a site's boundary box. Rewriting
/// boxes expose a single service address — the configuration where a
/// synthesis that intersects the box's emission with its arrivals
/// drops every rewritten (backend / internal-host) header on the
/// floor.
fn site_entry(kind: SiteKind, b: usize) -> Prefix {
    match kind {
        SiteKind::Acl | SiteKind::Cache => site_prefix(b),
        SiteKind::Lb => Prefix::host(vip(b)),
        SiteKind::Nat => Prefix::host(external(b)),
    }
}

/// The shape of a multi-site estate.
struct EstateSpec {
    kinds: Vec<SiteKind>,
    per_site: usize,
    /// `(other, b)`: site `b`'s ACL firewall is (mis)opened to sources
    /// from site `other`, creating cross-site violations.
    opens: Vec<(usize, usize)>,
}

/// Builds an estate from a spec: hosts on a site switch, the site's
/// boundary box in line toward the core.
fn build_estate(spec: &EstateSpec) -> (Network, Vec<Vec<NodeId>>, Vec<NodeId>) {
    let sites = spec.kinds.len();
    let mut topo = Topology::new();
    let core = topo.add_switch("core");
    let mut hosts: Vec<Vec<NodeId>> = Vec::new();
    let mut switches: Vec<NodeId> = Vec::new();
    let mut firewalls: Vec<NodeId> = Vec::new();
    for (b, &kind) in spec.kinds.iter().enumerate() {
        let ssw = topo.add_switch(format!("ssw{b}"));
        let owned = match kind {
            SiteKind::Lb => vec![vip(b)],
            SiteKind::Nat => vec![external(b)],
            _ => vec![],
        };
        let fw = topo.add_middlebox(format!("fw{b}"), kind.type_name(b), owned);
        topo.add_link(ssw, fw);
        topo.add_link(fw, core);
        let mut site_hosts = Vec::new();
        for k in 0..spec.per_site {
            let h = topo.add_host(
                format!("h{b}x{k}"),
                Address::from_octets([10, b as u8 + 1, 0, k as u8 + 1]),
            );
            topo.add_link(h, ssw);
            site_hosts.push(h);
        }
        hosts.push(site_hosts);
        switches.push(ssw);
        firewalls.push(fw);
    }

    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    // The boundary boxes sit in line and BFS routing never transits a
    // terminal, so the inter-site legs are explicit `from`-scoped rules
    // (an unscoped rule would bounce a box's re-emission straight back
    // into it). The outbound leg matches any destination so service
    // addresses outside 10/8 (a NAT external) still route out.
    for b in 0..sites {
        for &h in &hosts[b] {
            tables.add_rule(
                switches[b],
                Rule::from_neighbor(Prefix::default_route(), h, firewalls[b]).with_priority(-10),
            );
        }
    }
    for from in 0..sites {
        for to in 0..sites {
            if from != to {
                tables.add_rule(
                    core,
                    Rule::from_neighbor(
                        site_entry(spec.kinds[to], to),
                        firewalls[from],
                        firewalls[to],
                    ),
                );
            }
        }
    }

    let mut net = Network::new(topo, tables);
    for (b, &fw) in firewalls.iter().enumerate() {
        let model = match spec.kinds[b] {
            SiteKind::Acl => {
                let mut allow = vec![(site_prefix(b), Prefix::default_route())];
                for &(other, at) in &spec.opens {
                    if at == b {
                        allow.push((site_prefix(other), site_prefix(b)));
                    }
                }
                models::acl_firewall(&SiteKind::Acl.type_name(b), allow)
            }
            SiteKind::Lb => {
                let backends = hosts[b].iter().map(|&h| net.host_address(h)).collect();
                models::load_balancer(&SiteKind::Lb.type_name(b), vip(b), backends)
            }
            SiteKind::Nat => models::nat(&SiteKind::Nat.type_name(b), site_prefix(b), external(b)),
            SiteKind::Cache => {
                models::content_cache(&SiteKind::Cache.type_name(b), [site_prefix(b)], vec![])
            }
        };
        net.set_model(fw, model);
    }
    (net, hosts, firewalls)
}

/// Draws a random estate: 2..=3 sites of 2..=3 hosts each. Each site's
/// boundary box is an ACL firewall (admitting its own site's sources,
/// with probability ~1/3 also (mis)opened to one foreign site) or,
/// with probability ~1/3, a rewriting service box (LB, NAT or cache)
/// on the cut path.
fn generate(rng: &mut TestRng) -> Case {
    let sites = 2 + rng.below(2) as usize;
    let per_site = 2 + rng.below(2) as usize;
    let kinds: Vec<SiteKind> = (0..sites)
        .map(|_| {
            if rng.below(3) == 0 {
                match rng.below(3) {
                    0 => SiteKind::Lb,
                    1 => SiteKind::Nat,
                    _ => SiteKind::Cache,
                }
            } else {
                SiteKind::Acl
            }
        })
        .collect();
    let mut opens: Vec<(usize, usize)> = Vec::new();
    let mut label = format!("sites={sites} per_site={per_site}");
    for (b, &kind) in kinds.iter().enumerate() {
        if kind != SiteKind::Acl {
            label.push_str(&format!(" {}{b}", kind.short()));
        } else if rng.below(3) == 0 {
            // A misconfigured opening toward one foreign site.
            let other = (b + 1 + rng.below(sites as u64 - 1) as usize) % sites;
            opens.push((other, b));
            label.push_str(&format!(" open:{other}->{b}"));
        }
    }
    let spec = EstateSpec { kinds, per_site, opens };
    let (mut net, hosts, firewalls) = build_estate(&spec);

    // 1..=2 failure scenarios over the boundary boxes.
    for _ in 0..=rng.below(2) {
        let mut failed = vec![firewalls[rng.below(sites as u64) as usize]];
        if rng.below(3) == 0 {
            failed.push(firewalls[rng.below(sites as u64) as usize]);
        }
        failed.sort();
        failed.dedup();
        net.add_scenario(FailureScenario::nodes(failed));
    }

    // A random isolation invariant over distinct hosts (cross- or
    // intra-site, so both the contract fast path and the exact fallback
    // are exercised).
    let all: Vec<NodeId> = hosts.iter().flatten().copied().collect();
    let src = all[rng.below(all.len() as u64) as usize];
    let dst = loop {
        let d = all[rng.below(all.len() as u64) as usize];
        if d != src {
            break d;
        }
    };
    let inv = if rng.below(2) == 0 {
        Invariant::NodeIsolation { src, dst }
    } else {
        Invariant::FlowIsolation { src, dst }
    };
    label.push_str(&format!(" inv={inv}"));
    Case { net, hosts, firewalls, inv, label }
}

/// The natural per-site partition (plus a core module).
fn site_partition(case: &Case) -> vmn_analysis::Partition {
    let name = |n: NodeId| case.net.topo.node(n).name.clone();
    let mut modules: Vec<Module> = (0..case.hosts.len())
        .map(|b| {
            let mut nodes: std::collections::BTreeSet<String> =
                [format!("ssw{b}"), name(case.firewalls[b])].into();
            nodes.extend(case.hosts[b].iter().map(|&h| name(h)));
            Module { name: format!("site{b}"), nodes }
        })
        .collect();
    modules.push(Module { name: "core".into(), nodes: ["core".to_string()].into() });
    vmn_analysis::Partition { modules }
}

/// An arbitrary partition: every node shuffled into one of `k` modules
/// with no topological sense. Soundness must not depend on the cut
/// being a good one.
fn random_partition(case: &Case, k: usize, rng: &mut TestRng) -> vmn_analysis::Partition {
    let mut modules: Vec<Module> =
        (0..k).map(|i| Module { name: format!("m{i}"), nodes: Default::default() }).collect();
    for (i, (_, node)) in case.net.topo.nodes().enumerate() {
        // Every module must be non-empty for the partition to validate;
        // pin the first k nodes, scatter the rest.
        let m = if i < k { i } else { rng.below(k as u64) as usize };
        modules[m].nodes.insert(node.name.clone());
    }
    vmn_analysis::Partition { modules }
}

fn verify_with(case: &Case, partition: PartitionMode) -> vmn::Report {
    let options = VerifyOptions { partition, ..Default::default() };
    let v = Verifier::new(&case.net, options).expect("valid network");
    v.verify(&case.inv).expect("verify succeeds")
}

fn run_case(seed: u64) {
    let mut rng = TestRng::new(seed);
    let case = generate(&mut rng);
    let label = &case.label;

    let want = verify_with(&case, PartitionMode::Off);
    if let Verdict::Violated { trace, scenario } = &want.verdict {
        let receptions = trace.replay(&case.net, scenario).expect("oracle witness replays");
        assert!(!receptions.is_empty(), "{label}: oracle witness replays to no reception");
    }

    // Sound everything-admitting declared contracts on one boundary
    // edge: must be accepted and must change nothing.
    let declared = vec![ModuleContract {
        module: "site0".into(),
        ingress: vec![PortContract {
            from: "core".into(),
            to: case.net.topo.node(case.firewalls[0]).name.clone(),
            windows: WindowSet::any(),
        }],
        egress: vec![PortContract {
            from: case.net.topo.node(case.firewalls[0]).name.clone(),
            to: "core".into(),
            windows: WindowSet::any(),
        }],
    }];
    let mut partitions = vec![
        (
            "site-partition",
            PartitionMode::Explicit { partition: site_partition(&case), contracts: vec![] },
        ),
        (
            "site-partition+contracts",
            PartitionMode::Explicit { partition: site_partition(&case), contracts: declared },
        ),
        ("auto", PartitionMode::Auto),
        (
            "degenerate",
            PartitionMode::Explicit {
                partition: random_partition(&case, 1, &mut rng),
                contracts: vec![],
            },
        ),
    ];
    let k = 2 + rng.below(2) as usize;
    partitions.push((
        "random-partition",
        PartitionMode::Explicit {
            partition: random_partition(&case, k, &mut rng),
            contracts: vec![],
        },
    ));

    for (engine, mode) in partitions {
        let got = verify_with(&case, mode);
        assert_eq!(
            got.verdict.holds(),
            want.verdict.holds(),
            "{label}: {engine} verdict diverges from the monolithic oracle"
        );
        assert_eq!(
            got.scenarios_checked, want.scenarios_checked,
            "{label}: {engine} scenario count diverges"
        );
        assert_eq!(
            got.smt_scenarios + got.bdd_scenarios + got.contract_scenarios,
            got.scenarios_checked,
            "{label}: {engine} backend split must cover the sweep"
        );
        if let (Verdict::Violated { scenario: gs, trace }, Verdict::Violated { scenario: ws, .. }) =
            (&got.verdict, &want.verdict)
        {
            assert_eq!(gs, ws, "{label}: {engine} first violating scenario diverges");
            let receptions = trace.replay(&case.net, gs).expect("modular witness replays");
            assert!(!receptions.is_empty(), "{label}: {engine} witness replays to no reception");
        }
    }

    // A deliberately unsound declared contract: an egress guarantee that
    // admits only a bogus block no site uses. The verifier must reject
    // it with the typed contract error at construction — silently
    // accepting it would let every cross-site check pass vacuously.
    let unsound = vec![ModuleContract {
        module: "site0".into(),
        ingress: vec![],
        egress: vec![PortContract {
            from: case.net.topo.node(case.firewalls[0]).name.clone(),
            to: "core".into(),
            windows: WindowSet::window(px("192.168.0.0/16"), px("192.168.0.0/16")),
        }],
    }];
    let options = VerifyOptions {
        partition: PartitionMode::Explicit { partition: site_partition(&case), contracts: unsound },
        ..Default::default()
    };
    match Verifier::new(&case.net, options) {
        Err(VerifyError::Contract(ContractError::Unsound { from, to, .. })) => {
            assert_eq!(from, case.net.topo.node(case.firewalls[0]).name);
            assert_eq!(to, "core");
        }
        Err(e) => panic!("{label}: unsound contract surfaced as the wrong error: {e}"),
        Ok(_) => panic!("{label}: unsound contract silently accepted"),
    }
}

/// A fixed two-site estate with the given boundary boxes, verifying
/// cross-site `NodeIsolation { src: h0x0, dst: h1x0 }`.
fn fixed_case(kinds: Vec<SiteKind>, opens: Vec<(usize, usize)>, label: &str) -> Case {
    let spec = EstateSpec { kinds, per_site: 2, opens };
    let (net, hosts, firewalls) = build_estate(&spec);
    let inv = Invariant::NodeIsolation { src: hosts[0][0], dst: hosts[1][0] };
    Case { net, hosts, firewalls, inv, label: label.into() }
}

/// Asserts the modular engine (site partition and auto) matches the
/// monolithic oracle on verdict, first violating scenario and witness
/// replay, and returns the oracle's report.
fn assert_modular_agrees(case: &Case) -> vmn::Report {
    let label = &case.label;
    let want = verify_with(case, PartitionMode::Off);
    for (engine, mode) in [
        (
            "site-partition",
            PartitionMode::Explicit { partition: site_partition(case), contracts: vec![] },
        ),
        ("auto", PartitionMode::Auto),
    ] {
        let got = verify_with(case, mode);
        assert_eq!(
            got.verdict.holds(),
            want.verdict.holds(),
            "{label}: {engine} verdict diverges from the monolithic oracle"
        );
        if let (Verdict::Violated { scenario: gs, trace }, Verdict::Violated { scenario: ws, .. }) =
            (&got.verdict, &want.verdict)
        {
            assert_eq!(gs, ws, "{label}: {engine} first violating scenario diverges");
            let receptions = trace.replay(&case.net, gs).expect("modular witness replays");
            assert!(!receptions.is_empty(), "{label}: {engine} witness replays to no reception");
        }
    }
    want
}

/// Regression for the synthesize soundness bug: a load balancer on a
/// cut path. The core routes only the VIP toward the service site, so
/// every header arriving at the LB carries `dst = VIP`; modeling its
/// emission as `arrived ∩ anything == arrived` lost the rewritten
/// VIP→backend headers, the backend-facing crossings synthesized
/// empty, and the contract fast path "proved" an isolation invariant
/// the monolithic engine refutes.
#[test]
fn load_balancer_on_cut_path_is_not_proven_isolated() {
    let case = fixed_case(vec![SiteKind::Acl, SiteKind::Lb], vec![], "lb-on-cut");
    let want = assert_modular_agrees(&case);
    assert!(!want.verdict.holds(), "the LB hands VIP traffic to its backends");
}

/// Same shape with a NAT: only the external address routes into the
/// site, and inbound deliveries exist only as restored (rewritten)
/// headers of flows the inside opened — headers no inbound window
/// ever carried across the cut.
#[test]
fn nat_on_cut_path_is_not_proven_isolated() {
    let case = fixed_case(vec![SiteKind::Acl, SiteKind::Nat], vec![], "nat-on-cut");
    let want = assert_modular_agrees(&case);
    assert!(
        !want.verdict.holds(),
        "a reply through the inside-opened flow is restored to the internal host"
    );
}

/// A content cache on the cut path: replayed responses carry headers
/// unrelated to the arrived request, so its synthesis must widen too.
#[test]
fn content_cache_on_cut_path_agrees_with_monolithic() {
    let case = fixed_case(vec![SiteKind::Acl, SiteKind::Cache], vec![], "cache-on-cut");
    let want = assert_modular_agrees(&case);
    assert!(!want.verdict.holds(), "the cache forwards the client's request to the server");
}

/// Declared contracts must name real partition modules, exactly once
/// each: a typo'd name used to be accepted silently, and two contracts
/// sharing a name skipped the egress-implies-ingress check between
/// them (the composition loop skips same-module pairs).
#[test]
fn contract_module_names_are_validated() {
    let case = fixed_case(vec![SiteKind::Acl, SiteKind::Acl], vec![], "contract-names");
    let partition = site_partition(&case);
    let empty =
        |module: &str| ModuleContract { module: module.into(), ingress: vec![], egress: vec![] };
    let opts = |contracts| VerifyOptions {
        partition: PartitionMode::Explicit { partition: partition.clone(), contracts },
        ..Default::default()
    };
    match Verifier::new(&case.net, opts(vec![empty("sight0")])) {
        Err(VerifyError::Contract(ContractError::UnknownModule { module })) => {
            assert_eq!(module, "sight0");
        }
        Err(e) => panic!("typo'd module name surfaced as the wrong error: {e}"),
        Ok(_) => panic!("typo'd module name silently accepted"),
    }
    match Verifier::new(&case.net, opts(vec![empty("site0"), empty("site0")])) {
        Err(VerifyError::Contract(ContractError::DuplicateModule { module })) => {
            assert_eq!(module, "site0");
        }
        Err(e) => panic!("duplicated module name surfaced as the wrong error: {e}"),
        Ok(_) => panic!("duplicated module name silently accepted"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Modular and monolithic engines agree on random estates under
    /// random partitions; unsound contracts are typed errors.
    #[test]
    fn modular_matches_monolithic(seed in any::<u64>()) {
        run_case(seed);
    }
}
