//! Emits `BENCH_invariants.json`: wall-clock time of `verify_all` over a
//! mixed invariant fleet, with cross-invariant solver sessions (one
//! warmed-up solver per (node-set, trace-bound) key, re-entered per
//! invariant) versus fresh per-invariant solver stacks — on the §5.1
//! datacenter and the §5.2 enterprise workloads.
//!
//! Usage:
//!   bench_invariants [--samples N] [--out PATH]
//!
//! Defaults: 7 samples per row, output written to BENCH_invariants.json
//! in the current directory — exactly the shape of the committed copy at
//! the repository root, the trajectory record for this optimisation.

use std::time::Instant;
use vmn::{Invariant, Network, Verifier, VerifyOptions};
use vmn_bench::{invariant_sweep_enterprise, invariant_sweep_mixed, invariant_sweep_workload};
use vmn_net::NodeId;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

struct Row {
    label: &'static str,
    invariants: usize,
    reuse_median: f64,
    reuse_min: f64,
    fresh_median: f64,
    fresh_min: f64,
    conflicts_reuse: u64,
    conflicts_fresh: u64,
}

fn sample(
    net: &Network,
    hint: &[Vec<NodeId>],
    invs: &[Invariant],
    reuse_sessions: bool,
) -> (f64, u64) {
    let opts =
        VerifyOptions { policy_hint: Some(hint.to_vec()), reuse_sessions, ..Default::default() };
    // A fresh verifier per sample: the session pool must be re-warmed
    // within the measured run, exactly like a cold `verify_all`.
    let verifier = Verifier::new(net, opts).expect("valid network");
    let t0 = Instant::now();
    let reports = verifier.verify_all(invs, 1).expect("verifies");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(reports.len(), invs.len());
    // Per-invariant attribution (stats deltas): summing them yields the
    // run's total solver work exactly once.
    (ms, reports.iter().map(|r| r.solver.conflicts).sum())
}

fn run_row(
    label: &'static str,
    net: &Network,
    hint: &[Vec<NodeId>],
    invs: &[Invariant],
    samples: usize,
) -> Row {
    // Interleave the two series sample by sample so slow machine drift
    // (thermal throttling, background load) hits both equally instead of
    // biasing whichever series runs last.
    let mut reuse_ms = Vec::with_capacity(samples);
    let mut fresh_ms = Vec::with_capacity(samples);
    let mut conflicts_reuse = 0;
    let mut conflicts_fresh = 0;
    for s in 0..samples {
        let (ms, c) = sample(net, hint, invs, true);
        reuse_ms.push(ms);
        // Single-threaded verify_all is deterministic, so every sample
        // must report identical solver work; the committed JSON relies
        // on that to publish one conflict count per series.
        assert!(s == 0 || c == conflicts_reuse, "non-deterministic session-reuse sample");
        conflicts_reuse = c;
        let (ms, c) = sample(net, hint, invs, false);
        fresh_ms.push(ms);
        assert!(s == 0 || c == conflicts_fresh, "non-deterministic fresh-stacks sample");
        conflicts_fresh = c;
    }
    let fold_min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let (reuse_min, fresh_min) = (fold_min(&reuse_ms), fold_min(&fresh_ms));
    let (reuse_median, fresh_median) = (median_ms(reuse_ms), median_ms(fresh_ms));
    eprintln!(
        "{label:<12} {} invariants  sessions {reuse_median:>9.2} ms  \
         fresh {fresh_median:>9.2} ms  speedup {:>5.2}x",
        invs.len(),
        fresh_median / reuse_median
    );
    Row {
        label,
        invariants: invs.len(),
        reuse_median,
        reuse_min,
        fresh_median,
        fresh_min,
        conflicts_reuse,
        conflicts_fresh,
    }
}

fn main() {
    let mut samples = 7usize;
    let mut out = "BENCH_invariants.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--samples" => {
                samples = args.next().expect("--samples needs a value").parse().expect("number")
            }
            "--out" => out = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut rows = Vec::new();
    for scenarios in [2usize, 4] {
        let (net, hint, invs) = invariant_sweep_workload(scenarios);
        let label: &'static str = if scenarios == 2 { "dc-fleet/2" } else { "dc-fleet/4" };
        rows.push(run_row(label, &net, &hint, &invs, samples));
    }
    {
        let (net, hint, invs) = invariant_sweep_mixed(2);
        rows.push(run_row("dc-mixed/2", &net, &hint, &invs, samples));
    }
    {
        let (net, hint, invs) = invariant_sweep_enterprise();
        rows.push(run_row("enterprise", &net, &hint, &invs, samples));
    }

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"invariants\": {}, \
                 \"session_reuse_median_ms\": {:.3}, \"session_reuse_min_ms\": {:.3}, \
                 \"fresh_stacks_median_ms\": {:.3}, \"fresh_stacks_min_ms\": {:.3}, \
                 \"conflicts_session_reuse\": {}, \"conflicts_fresh_stacks\": {}, \
                 \"speedup_median\": {:.3}}}",
                r.label,
                r.invariants,
                r.reuse_median,
                r.reuse_min,
                r.fresh_median,
                r.fresh_min,
                r.conflicts_reuse,
                r.conflicts_fresh,
                r.fresh_median / r.reuse_median
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"invariant_sweep\",\n  \"workloads\": \
         \"dc-fleet/N = \\u00a75.1 datacenter (6 racks, 3 policy groups, redundant) with N \
         failure scenarios and a per-direction node/flow-isolation + traversal fleet; \
         dc-mixed/N = 2-group datacenter with data-isolation included (the heavyweight, \
         reuse-neutral regime); enterprise = \\u00a75.2 enterprise (3 subnets) with per-kind \
         invariant families\",\n  \
         \"unit\": \"wall-clock milliseconds per verify_all (1 thread)\",\n  \
         \"series\": \"session_reuse = cross-invariant solver sessions (VerifyOptions \
         reuse_sessions, the default); fresh_stacks = a fresh solver stack per \
         representative invariant\",\n  \
         \"samples_per_point\": {samples},\n  \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_invariants.json");
    eprintln!("wrote {out}");
}
