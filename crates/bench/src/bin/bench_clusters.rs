//! Emits `BENCH_clusters.json`: the slice-similarity clustering and
//! cost-driven session-policy numbers.
//!
//! Three question blocks, one JSON row each:
//!
//! * **divergent/G** — one invariant swept over wildly-divergent
//!   per-scenario slices (`divergent_slice_workload`): the clustered
//!   sweep (default threshold) versus the single-union sweep
//!   (`cluster_threshold: 0.0`, the PR-2 engine) and the per-scenario
//!   extreme (`1.0`). Clustering must beat both.
//! * **scenario_sweep/8, dc-fleet/2** — the existing nesting-slice
//!   workloads, clustered versus single-union: clustering must not
//!   regress where one union was already right.
//! * **dc-mixed/2** — the heavyweight mixed fleet (data isolation at
//!   trace bound 11): cost-modelled sessions versus fresh per-invariant
//!   stacks. PR 3's blind retirement cutoff managed 1.09×; the cost
//!   model plus cone-tagged forgetting must lift that.
//!
//! Usage:
//!   bench_clusters [--samples N] [--out PATH]
//!
//! Defaults: 7 samples per row, output written to BENCH_clusters.json in
//! the current directory — exactly the shape of the committed copy at
//! the repository root, the trajectory record for this optimisation.

use std::time::Instant;
use vmn::{Invariant, Network, Verifier, VerifyOptions};
use vmn_bench::{
    divergent_slice_workload, invariant_sweep_mixed, invariant_sweep_workload,
    scenario_sweep_workload,
};
use vmn_net::NodeId;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn fold_min(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::INFINITY, f64::min)
}

/// One measured series: median/min wall-clock of `verify` sweeps with a
/// cold verifier per sample.
fn measure_verify(
    net: &Network,
    hint: &[Vec<NodeId>],
    inv: &Invariant,
    threshold: f64,
    samples: usize,
) -> Vec<f64> {
    let opts = VerifyOptions {
        policy_hint: Some(hint.to_vec()),
        cluster_threshold: threshold,
        ..Default::default()
    };
    let mut ms = Vec::with_capacity(samples);
    for _ in 0..samples {
        let verifier = Verifier::new(net, opts.clone()).expect("valid network");
        let t0 = Instant::now();
        let report = verifier.verify(inv).expect("verifies");
        ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(report.verdict.holds(), "bench workloads hold by construction");
        assert_eq!(report.scenarios_checked, net.all_scenarios().len(), "no early stop expected");
    }
    ms
}

fn measure_verify_all(
    net: &Network,
    hint: &[Vec<NodeId>],
    invs: &[Invariant],
    reuse_sessions: bool,
    threshold: f64,
    samples: usize,
) -> Vec<f64> {
    let opts = VerifyOptions {
        policy_hint: Some(hint.to_vec()),
        reuse_sessions,
        cluster_threshold: threshold,
        ..Default::default()
    };
    let mut ms = Vec::with_capacity(samples);
    for _ in 0..samples {
        // A fresh verifier per sample: pool and cost model re-warm within
        // the measured run, exactly like a cold `verify_all`.
        let verifier = Verifier::new(net, opts.clone()).expect("valid network");
        let t0 = Instant::now();
        let reports = verifier.verify_all(invs, 1).expect("verifies");
        ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(reports.len(), invs.len());
    }
    ms
}

fn main() {
    let mut samples = 7usize;
    let mut out = "BENCH_clusters.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--samples" => {
                samples = args.next().expect("--samples needs a value").parse().expect("number")
            }
            "--out" => out = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let default_threshold = VerifyOptions::default().cluster_threshold;
    let mut rows: Vec<String> = Vec::new();

    // Block 1: divergent slices — clustered vs both extremes.
    for groups in [2usize, 3, 4] {
        let (net, hint, inv) = divergent_slice_workload(groups);
        let scenarios = net.all_scenarios().len();
        // Interleave the series sample by sample so machine drift hits
        // all three equally.
        let mut clustered = Vec::new();
        let mut union = Vec::new();
        let mut per_scenario = Vec::new();
        for _ in 0..samples {
            clustered.extend(measure_verify(&net, &hint, &inv, default_threshold, 1));
            union.extend(measure_verify(&net, &hint, &inv, 0.0, 1));
            per_scenario.extend(measure_verify(&net, &hint, &inv, 1.0, 1));
        }
        let (cm, um, pm) =
            (median_ms(clustered.clone()), median_ms(union), median_ms(per_scenario));
        eprintln!(
            "divergent/{groups}  {scenarios} scenarios  clustered {cm:>8.2} ms  \
             one-union {um:>8.2} ms  per-scenario {pm:>8.2} ms  \
             vs-union {:>5.2}x  vs-per-scenario {:>5.2}x",
            um / cm,
            pm / cm
        );
        rows.push(format!(
            "    {{\"workload\": \"divergent/{groups}\", \"scenarios\": {scenarios}, \
             \"clustered_median_ms\": {cm:.3}, \"clustered_min_ms\": {:.3}, \
             \"one_union_median_ms\": {um:.3}, \"per_scenario_median_ms\": {pm:.3}, \
             \"speedup_vs_one_union\": {:.3}, \"speedup_vs_per_scenario\": {:.3}}}",
            fold_min(&clustered),
            um / cm,
            pm / cm
        ));
    }

    // Block 2: nesting slices — clustering must not regress.
    {
        let (net, hint, inv) = scenario_sweep_workload(8);
        let mut clustered = Vec::new();
        let mut union = Vec::new();
        for _ in 0..samples {
            clustered.extend(measure_verify(&net, &hint, &inv, default_threshold, 1));
            union.extend(measure_verify(&net, &hint, &inv, 0.0, 1));
        }
        let (cm, um) = (median_ms(clustered), median_ms(union));
        eprintln!(
            "scenario_sweep/8  clustered {cm:>8.2} ms  one-union {um:>8.2} ms  ratio {:>5.2}x",
            um / cm
        );
        rows.push(format!(
            "    {{\"workload\": \"scenario_sweep/8\", \"scenarios\": 9, \
             \"clustered_median_ms\": {cm:.3}, \"one_union_median_ms\": {um:.3}, \
             \"speedup_vs_one_union\": {:.3}}}",
            um / cm
        ));
    }
    {
        let (net, hint, invs) = invariant_sweep_workload(2);
        let mut clustered = Vec::new();
        let mut union = Vec::new();
        for _ in 0..samples {
            clustered.extend(measure_verify_all(&net, &hint, &invs, true, default_threshold, 1));
            union.extend(measure_verify_all(&net, &hint, &invs, true, 0.0, 1));
        }
        let (cm, um) = (median_ms(clustered), median_ms(union));
        eprintln!(
            "dc-fleet/2  clustered {cm:>8.2} ms  one-union {um:>8.2} ms  ratio {:>5.2}x",
            um / cm
        );
        rows.push(format!(
            "    {{\"workload\": \"dc-fleet/2\", \"invariants\": {}, \
             \"clustered_median_ms\": {cm:.3}, \"one_union_median_ms\": {um:.3}, \
             \"speedup_vs_one_union\": {:.3}}}",
            invs.len(),
            um / cm
        ));
    }

    // Block 3: the heavyweight regime — cost-modelled sessions vs fresh
    // stacks (PR 3's blind cutoff measured 1.09× here on its own machine
    // state; rerun the PR-3 engine on the same machine for an honest
    // contemporaneous reference — see the committed JSON's notes).
    {
        let (net, hint, invs) = invariant_sweep_mixed(2);
        let mut sessions = Vec::new();
        let mut fresh = Vec::new();
        for _ in 0..samples {
            sessions.extend(measure_verify_all(&net, &hint, &invs, true, default_threshold, 1));
            fresh.extend(measure_verify_all(&net, &hint, &invs, false, default_threshold, 1));
        }
        let (sm, fm) = (median_ms(sessions), median_ms(fresh));
        eprintln!(
            "dc-mixed/2  sessions {sm:>8.2} ms  fresh {fm:>8.2} ms  speedup {:>5.2}x",
            fm / sm
        );
        rows.push(format!(
            "    {{\"workload\": \"dc-mixed/2\", \"invariants\": {}, \
             \"cost_model_sessions_median_ms\": {sm:.3}, \"fresh_stacks_median_ms\": {fm:.3}, \
             \"speedup_vs_fresh_stacks\": {:.3}}}",
            invs.len(),
            fm / sm
        ));

        // Steady state: one *persistent* verifier re-verifying the fleet
        // (the monitoring-service shape the ROADMAP targets). This is
        // where the policy split is structural, not noise: the cost
        // model keeps the heavyweight data-isolation sessions warm
        // across rounds — each re-verify is assumption calls on
        // already-registered invariants — while PR 3's blind cutoff
        // retired exactly those sessions at every checkin, re-paying
        // the full proofs each round.
        let steady = |reuse_sessions: bool| -> Vec<f64> {
            let opts = VerifyOptions {
                policy_hint: Some(hint.to_vec()),
                reuse_sessions,
                ..Default::default()
            };
            let verifier = Verifier::new(&net, opts).expect("valid network");
            let warmup = verifier.verify_all(&invs, 1).expect("verifies");
            assert_eq!(warmup.len(), invs.len());
            (0..samples)
                .map(|_| {
                    let t0 = Instant::now();
                    let reports = verifier.verify_all(&invs, 1).expect("verifies");
                    assert_eq!(reports.len(), invs.len());
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .collect()
        };
        let (sm, fm) = (median_ms(steady(true)), median_ms(steady(false)));
        eprintln!(
            "dc-mixed/2 steady  sessions {sm:>8.2} ms  fresh {fm:>8.2} ms  speedup {:>5.2}x",
            fm / sm
        );
        rows.push(format!(
            "    {{\"workload\": \"dc-mixed/2-steady\", \"invariants\": {}, \
             \"cost_model_sessions_median_ms\": {sm:.3}, \"fresh_stacks_median_ms\": {fm:.3}, \
             \"speedup_vs_fresh_stacks\": {:.3}}}",
            invs.len(),
            fm / sm
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"cluster_sweep\",\n  \"workloads\": \
         \"divergent/G = one isolation invariant behind a primary firewall+IDPS chain, G \
         shallow backup chains (firewall + three alternative IDPSes) and one deep last-resort \
         gateway pipeline; each failure scenario re-converges through a different slice \
         (within-group Jaccard 0.6, cross-group ~0.3) and the deep chain drags the union's \
         trace bound from 5 to 9, so the single-union sweep pays the worst scenario's bound \
         and node count on every check. scenario_sweep/8 and dc-fleet/2 are the PR-2/PR-3 \
         nesting-slice workloads (clustering must collapse to one union there, i.e. ratio \
         ~1.0). dc-mixed/2 is the heavyweight data-isolation fleet (trace bound 11); \
         dc-mixed/2-steady re-verifies it on one persistent verifier, the monitoring-service \
         shape — the regime where the cost-driven session policy beats PR 3's blind \
         retire-past-10k-conflicts cutoff structurally, since the cutoff retired exactly the \
         heavyweight sessions at every checkin and re-paid their proofs each round\",\n  \
         \"unit\": \"wall-clock milliseconds (1 thread; cold verifier per sample unless \
         -steady)\",\n  \
         \"series\": \"clustered = VerifyOptions default (threshold {:.2}); one_union = \
         cluster_threshold 0.0 (the PR-2 single-union sweep); per_scenario = cluster_threshold \
         1.0; fresh_stacks = reuse_sessions off\",\n  \
         \"pr3_reference\": \"the PR-3 engine rerun on this machine adjacent in time measured \
         dc-mixed/2 at 0.98-1.06x (its committed 1.088 is not reproducible under current \
         machine load); the cost-model engine's deterministic work ratio vs fresh stacks is \
         -4.0 percent conflicts / -9.8 percent propagations, and its steady-state row has no \
         PR-3 analogue because the cutoff discarded the warmed sessions\",\n  \
         \"samples_per_point\": {samples},\n  \"rows\": [\n{}\n  ]\n}}\n",
        default_threshold,
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_clusters.json");
    eprintln!("wrote {out}");
}
