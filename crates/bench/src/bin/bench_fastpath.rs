//! Emits `BENCH_fastpath.json`: the BDD dataplane fast path versus the
//! full SMT pipeline on the stateless-heavy estate
//! (`fastpath_workload`).
//!
//! One JSON row per pod count. Each sample verifies the whole invariant
//! fleet — every pod's isolation invariant plus the stateful core pair —
//! on a cold verifier, once under `Backend::Auto` (pod invariants route
//! to the BDD dataplane, the core stays on SMT) and once under
//! `Backend::Smt` (everything pays for a solver). Rows record end-to-end
//! wall clock for both, the per-backend scenario-query split, per-query
//! latency on the invariants each backend answered alone, and the number
//! of verdict divergences between the two runs (must be zero — the fast
//! path is only a fast path if it is also right).
//!
//! Usage:
//!   bench_fastpath [--samples N] [--out PATH]
//!
//! Defaults: 5 samples per row, output written to BENCH_fastpath.json in
//! the current directory — exactly the shape of the committed copy at
//! the repository root.

use std::time::Instant;
use vmn::{Backend, Invariant, Network, Verifier, VerifyOptions};
use vmn_net::NodeId;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

fn fold_min(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::INFINITY, f64::min)
}

/// One cold sweep over the fleet with the given backend.
struct Run {
    total_ms: f64,
    holds: Vec<bool>,
    bdd_queries: usize,
    smt_queries: usize,
    /// Per-scenario-query latency (µs) of the invariants this backend
    /// answered *entirely* on the BDD dataplane / entirely on SMT.
    bdd_query_us: Vec<f64>,
    smt_query_us: Vec<f64>,
}

fn run(net: &Network, hint: &[Vec<NodeId>], invs: &[Invariant], backend: Backend) -> Run {
    let opts = VerifyOptions { policy_hint: Some(hint.to_vec()), backend, ..Default::default() };
    let verifier = Verifier::new(net, opts).expect("valid network");
    let t0 = Instant::now();
    // `verify` per invariant (not `verify_all`): symmetry inheritance
    // would collapse the structurally-identical pod invariants into one
    // representative and measure a fraction of the fleet.
    let reports: Vec<vmn::Report> =
        invs.iter().map(|i| verifier.verify(i).expect("verifies")).collect();
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut out = Run {
        total_ms,
        holds: reports.iter().map(|r| r.verdict.holds()).collect(),
        bdd_queries: 0,
        smt_queries: 0,
        bdd_query_us: Vec::new(),
        smt_query_us: Vec::new(),
    };
    for r in &reports {
        out.bdd_queries += r.bdd_scenarios;
        out.smt_queries += r.smt_scenarios;
        let us = r.elapsed.as_secs_f64() * 1e6 / r.scenarios_checked.max(1) as f64;
        if r.smt_scenarios == 0 && r.bdd_scenarios > 0 {
            out.bdd_query_us.push(us);
        } else if r.bdd_scenarios == 0 && r.smt_scenarios > 0 {
            out.smt_query_us.push(us);
        }
    }
    out
}

fn main() {
    let mut samples = 5usize;
    let mut out = "BENCH_fastpath.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--samples" => {
                samples = args.next().expect("--samples needs a value").parse().expect("number")
            }
            "--out" => out = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<String> = Vec::new();
    for pods in [4usize, 8, 16] {
        let (net, hint, invs) = vmn_bench::fastpath_workload(pods);
        let scenarios = net.all_scenarios().len();
        let mut auto_ms = Vec::new();
        let mut smt_ms = Vec::new();
        let mut bdd_query_us = Vec::new();
        let mut smt_query_us = Vec::new();
        let mut divergences = 0usize;
        let mut split = (0usize, 0usize, 0usize);
        // Interleave the two series sample by sample so machine drift
        // hits both equally.
        for _ in 0..samples {
            let a = run(&net, &hint, &invs, Backend::Auto);
            let s = run(&net, &hint, &invs, Backend::Smt);
            divergences += a.holds.iter().zip(&s.holds).filter(|(x, y)| x != y).count();
            auto_ms.push(a.total_ms);
            smt_ms.push(s.total_ms);
            bdd_query_us.extend(a.bdd_query_us);
            smt_query_us.extend(s.smt_query_us);
            split = (a.bdd_queries, a.smt_queries, s.smt_queries);
        }
        let (am, sm) = (median(auto_ms.clone()), median(smt_ms));
        let (bq, sq) = (median(bdd_query_us), median(smt_query_us));
        eprintln!(
            "fastpath/{pods}  {} invariants, {scenarios} scenarios  auto {am:>8.2} ms  \
             forced-smt {sm:>8.2} ms  end-to-end {:>6.2}x  \
             bdd query {bq:>8.1} us  smt query {sq:>10.1} us  per-query {:>7.1}x  \
             divergences {divergences}",
            invs.len(),
            sm / am,
            sq / bq
        );
        rows.push(format!(
            "    {{\"workload\": \"fastpath/{pods}\", \"invariants\": {}, \
             \"scenarios\": {scenarios}, \
             \"auto_median_ms\": {am:.3}, \"auto_min_ms\": {:.3}, \
             \"forced_smt_median_ms\": {sm:.3}, \"speedup_end_to_end\": {:.3}, \
             \"auto_bdd_queries\": {}, \"auto_smt_queries\": {}, \"forced_smt_queries\": {}, \
             \"bdd_query_median_us\": {bq:.2}, \"smt_query_median_us\": {sq:.2}, \
             \"speedup_per_query\": {:.1}, \"verdict_divergences\": {divergences}}}",
            invs.len(),
            fold_min(&auto_ms),
            sm / am,
            split.0,
            split.1,
            split.2,
            sq / bq
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"fastpath_sweep\",\n  \"workloads\": \
         \"fastpath/P = P stateless pods (hosts behind a deny-all ACL firewall with a \
         failover ACL fronting an IDPS-gateway chain) plus one stateful core pair behind a \
         deny-all learning firewall; one node-isolation invariant per pod plus one for the \
         core, all holding in every scenario (no-failure plus up to three pod-ACL failovers), \
         so both backends sweep every scenario and the wall clocks compare the full fleet\",\n  \
         \"unit\": \"wall-clock milliseconds end-to-end (1 thread; cold verifier per sample); \
         per-query latencies in microseconds over the invariants answered entirely by one \
         backend\",\n  \
         \"series\": \"auto = VerifyOptions default (stateless slices on the BDD dataplane, \
         the stateful core on SMT); forced_smt = Backend::Smt (the pre-fast-path engine); \
         verdict_divergences counts per-invariant holds/violated disagreements between the \
         two and must be 0\",\n  \
         \"samples_per_point\": {samples},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_fastpath.json");
    eprintln!("wrote {out}");
}
