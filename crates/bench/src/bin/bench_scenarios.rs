//! Emits `BENCH_scenarios.json`: wall-clock time of one invariant's
//! failure-scenario sweep on the §5.1 datacenter, incremental
//! (assumption-based, one persistent solver) versus from-scratch (fresh
//! encoder + solver per scenario), as the number of scenarios grows.
//!
//! Usage:
//!   bench_scenarios [--samples N] [--max-scenarios M] [--out PATH]
//!
//! Defaults: 7 samples per point, scenario counts 1..=8, output written
//! to BENCH_scenarios.json in the current directory — exactly the shape
//! of the committed copy at the repository root, which is the trajectory
//! record for this optimisation.

use std::time::Instant;
use vmn::{Verifier, VerifyOptions};
use vmn_bench::scenario_sweep_workload;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn measure(incremental: bool, scenarios: usize, samples: usize) -> (f64, f64) {
    let (net, hint, inv) = scenario_sweep_workload(scenarios);
    let opts = VerifyOptions { policy_hint: Some(hint), incremental, ..Default::default() };
    let verifier = Verifier::new(&net, opts).expect("valid network");
    let mut ms = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let report = verifier.verify(&inv).expect("verifies");
        ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(report.verdict.holds(), "sweep workload invariant must hold");
        assert_eq!(report.scenarios_checked, scenarios + 1, "no early stop expected");
    }
    let min = ms.iter().copied().fold(f64::INFINITY, f64::min);
    (median_ms(ms), min)
}

fn main() {
    let mut samples = 7usize;
    let mut max_scenarios = 8usize;
    let mut out = "BENCH_scenarios.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--samples" => {
                samples = args.next().expect("--samples needs a value").parse().expect("number")
            }
            "--max-scenarios" => {
                max_scenarios =
                    args.next().expect("--max-scenarios needs a value").parse().expect("number")
            }
            "--out" => out = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut rows = Vec::new();
    for n in 1..=max_scenarios {
        let (inc_med, inc_min) = measure(true, n, samples);
        let (scr_med, scr_min) = measure(false, n, samples);
        let speedup = scr_med / inc_med;
        eprintln!(
            "scenarios={n:>2}  incremental {inc_med:>9.2} ms  from-scratch {scr_med:>9.2} ms  \
             speedup {speedup:>5.2}x"
        );
        rows.push(format!(
            "    {{\"scenarios\": {n}, \"checks\": {}, \
             \"incremental_median_ms\": {inc_med:.3}, \"incremental_min_ms\": {inc_min:.3}, \
             \"from_scratch_median_ms\": {scr_med:.3}, \"from_scratch_min_ms\": {scr_min:.3}, \
             \"speedup_median\": {speedup:.3}}}",
            n + 1
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"scenario_sweep\",\n  \"workload\": \
         \"datacenter (4 racks, 2 hosts/rack, 2 policy groups, redundant), \
         cross-group isolation, holds in all scenarios\",\n  \
         \"unit\": \"wall-clock milliseconds per full sweep\",\n  \
         \"samples_per_point\": {samples},\n  \"series\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_scenarios.json");
    eprintln!("wrote {out}");
}
