//! Emits `BENCH_deltas.json`: the serving layer's delta-driven
//! re-verification versus from-scratch re-verification, on a steady
//! stream of configuration deltas against P-pod networks.
//!
//! One JSON row per pod count. Each row loads a P-pod estate (hosts
//! behind a per-pod learning firewall, one flow-isolation invariant per
//! pod, one standing failure scenario) into a warmed
//! [`vmn_serve::NetSession`], then drives a steady-state delta stream —
//! firewall reconfigurations rotating over the pods, an invariant
//! toggling in and out, a failure scenario toggling in and out — and
//! times every delta twice:
//!
//! * **daemon**: `NetSession::apply`, which retires only the touched
//!   pooled sessions and answers untouched (invariant, scenario) pairs
//!   from the verdict cache via the prefilter / fingerprint ladder;
//! * **scratch**: apply the same delta to a mirror spec, materialise,
//!   build a fresh `Verifier`, and re-verify every pair — what a
//!   stateless CLI invocation pays on every configuration change.
//!
//! Rows record p50/p99 per-delta latency for both series, the cache
//! accounting (mean prefiltered / fingerprint-hit / re-checked pairs
//! per delta), and the number of per-pair verdict divergences between
//! the two (must be zero — the cache is only a cache if it is right).
//!
//! Usage:
//!   bench_deltas [--samples N] [--out PATH]
//!
//! Defaults: 30 deltas per row, output written to BENCH_deltas.json in
//! the current directory — exactly the shape of the committed copy at
//! the repository root.

use std::time::Instant;
use vmn::{Verifier, VerifyOptions};
use vmn_net::{FailureScenario, NodeId};
use vmn_serve::{scenario_key, Delta, NetSession, NetSpec, NONE_SCENARIO};

fn pct(mut v: Vec<f64>, p: f64) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[((v.len() - 1) as f64 * p).round() as usize]
}

/// The P-pod estate in `.vmn` config text: per-pod hosts + learning
/// firewall on a pod switch, pod switches on a core, host traffic
/// steered through the pod firewall, one invariant per pod, one
/// standing failure scenario.
fn config(pods: usize) -> String {
    let mut c = String::from("switch core\n");
    for p in 0..pods {
        let net = p + 1;
        c.push_str(&format!("host a{p} 10.{net}.0.1\n"));
        c.push_str(&format!("host b{p} 10.{net}.0.2\n"));
        c.push_str(&format!("switch sw{p}\n"));
        c.push_str(&format!("firewall fw{p} allow 10.{net}.0.0/16 -> 10.{net}.0.0/16\n"));
        c.push_str(&format!("link a{p} sw{p}\nlink b{p} sw{p}\nlink fw{p} sw{p}\n"));
        c.push_str(&format!("link sw{p} core\n"));
    }
    c.push_str("autoroute\n");
    for p in 0..pods {
        c.push_str(&format!("steer sw{p} from a{p} 10.0.0.0/8 fw{p} prio 10\n"));
    }
    for p in 0..pods {
        c.push_str(&format!("verify flow-isolation a{p} -> b{p}\n"));
    }
    c.push_str("fail fw0\n");
    c
}

/// The steady-state delta at stream position `i`: firewall
/// reconfigurations rotating over the pods, interleaved with an
/// invariant and a failure scenario toggling in and out.
fn delta_at(i: usize, pods: usize, spec: &NetSpec) -> Delta {
    match i % 3 {
        0 => {
            let p = (i / 3) % pods;
            let net = p + 1;
            // Alternate between the baseline pod ACL and a widened one:
            // a real model change every time, confined to one box.
            let mut args = format!("allow 10.{net}.0.0/16 -> 10.{net}.0.0/16");
            if (i / 3).is_multiple_of(2) {
                args.push_str(&format!(" , 10.0.0.0/8 -> 10.{net}.0.2/32"));
            }
            Delta::SetModel {
                name: format!("fw{p}"),
                kind: "firewall".into(),
                args: args.split_whitespace().map(str::to_string).collect(),
            }
        }
        1 => {
            let spec_text = "node-isolation a0 -> b0".to_string();
            if spec.verify_specs().any(|s| s == spec_text) {
                Delta::RetireInvariant { spec: spec_text }
            } else {
                Delta::AddInvariant { spec: spec_text }
            }
        }
        _ => {
            let fail = vec![format!("fw{}", 1 % pods)];
            if spec.fail_specs().any(|f| scenario_key(f) == scenario_key(&fail)) {
                Delta::RemoveScenario { fail }
            } else {
                Delta::AddScenario { fail }
            }
        }
    }
}

/// From-scratch re-verification of every (invariant, scenario) pair —
/// the cost of a stateless run. Returns (elapsed ms, per-pair holds).
fn scratch(spec: &NetSpec) -> (f64, Vec<(String, String, bool)>) {
    let t0 = Instant::now();
    let m = spec.materialize().expect("spec materialises");
    let verifier = Verifier::new(&m.net, VerifyOptions::default()).expect("valid network");
    let mut scenarios = vec![(NONE_SCENARIO.to_string(), FailureScenario::none())];
    for fail in spec.fail_specs() {
        let nodes: Vec<NodeId> = fail.iter().filter_map(|n| m.names.get(n).copied()).collect();
        scenarios.push((scenario_key(fail), FailureScenario::nodes(nodes)));
    }
    let mut holds = Vec::new();
    for (inv_spec, inv) in &m.invariants {
        for (skey, scenario) in &scenarios {
            let r = verifier.verify_under(inv, vec![scenario.clone()]).expect("verifies");
            holds.push((inv_spec.clone(), skey.clone(), r.verdict.holds()));
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, holds)
}

fn main() {
    let mut samples = 30usize;
    let mut out = "BENCH_deltas.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--samples" => {
                samples = args.next().expect("--samples needs a value").parse().expect("number")
            }
            "--out" => out = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<String> = Vec::new();
    for pods in [4usize, 8] {
        let text = config(pods);
        let t0 = Instant::now();
        let (mut session, load_report) =
            NetSession::load(&text, VerifyOptions::default()).expect("estate loads");
        let load_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(load_report.rechecked, load_report.pairs, "cold load solves every pair");

        let mut daemon_ms = Vec::new();
        let mut scratch_ms = Vec::new();
        let mut divergences = 0usize;
        let (mut prefiltered, mut cache_hits, mut rechecked, mut pairs_total) = (0, 0, 0, 0);
        for i in 0..samples {
            let delta = delta_at(i, pods, session.spec());
            let t0 = Instant::now();
            let report = session.apply(std::slice::from_ref(&delta)).expect("delta applies");
            daemon_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            prefiltered += report.prefiltered;
            cache_hits += report.cache_hits;
            rechecked += report.rechecked;
            pairs_total += report.pairs;

            let (ms, holds) = scratch(session.spec());
            scratch_ms.push(ms);
            for (inv_spec, skey, want) in holds {
                let got = session
                    .cached(&inv_spec, &skey)
                    .unwrap_or_else(|| panic!("no cache entry for {inv_spec:?}/{skey:?}"))
                    .verdict
                    .holds();
                if got != want {
                    divergences += 1;
                }
            }
        }

        let (dp50, dp99) = (pct(daemon_ms.clone(), 0.50), pct(daemon_ms.clone(), 0.99));
        let (sp50, sp99) = (pct(scratch_ms.clone(), 0.50), pct(scratch_ms.clone(), 0.99));
        let n = samples as f64;
        eprintln!(
            "deltas/{pods}  load {load_ms:>8.2} ms  delta p50 {dp50:>7.3} ms p99 {dp99:>7.3} ms  \
             scratch p50 {sp50:>8.2} ms p99 {sp99:>8.2} ms  speedup p50 {:>6.1}x p99 {:>6.1}x  \
             mean prefiltered {:.1} hits {:.1} rechecked {:.1} of {:.1}  divergences {divergences}",
            sp50 / dp50,
            sp99 / dp99,
            prefiltered as f64 / n,
            cache_hits as f64 / n,
            rechecked as f64 / n,
            pairs_total as f64 / n
        );
        rows.push(format!(
            "    {{\"workload\": \"deltas/{pods}\", \"invariants\": {}, \"scenarios\": {}, \
             \"load_ms\": {load_ms:.3}, \
             \"delta_p50_ms\": {dp50:.3}, \"delta_p99_ms\": {dp99:.3}, \
             \"scratch_p50_ms\": {sp50:.3}, \"scratch_p99_ms\": {sp99:.3}, \
             \"speedup_p50\": {:.1}, \"speedup_p99\": {:.1}, \
             \"mean_pairs\": {:.1}, \"mean_prefiltered\": {:.1}, \"mean_cache_hits\": {:.1}, \
             \"mean_rechecked\": {:.1}, \"verdict_divergences\": {divergences}}}",
            session.invariants().len(),
            session.scenario_list().len(),
            sp50 / dp50,
            sp99 / dp99,
            pairs_total as f64 / n,
            prefiltered as f64 / n,
            cache_hits as f64 / n,
            rechecked as f64 / n
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"delta_sweep\",\n  \"workloads\": \
         \"deltas/P = P pods (two hosts behind a per-pod learning firewall on a pod switch, \
         pods joined by a core switch) with one flow-isolation invariant per pod and one \
         standing firewall-failure scenario; the delta stream rotates firewall ACL rewrites \
         across the pods and toggles an extra invariant and an extra failure scenario\",\n  \
         \"unit\": \"wall-clock milliseconds per delta (1 thread); daemon = \
         NetSession::apply on the long-lived session (touched sessions retired, untouched \
         pairs answered by slice-footprint prefilter or verdict-fingerprint cache hit); \
         scratch = re-apply to a mirror spec, rebuild the verifier, re-verify every \
         (invariant, scenario) pair\",\n  \
         \"series\": \"p50/p99 over the delta stream, interleaved so machine drift hits both \
         equally; verdict_divergences counts per-pair holds/violated disagreements between \
         the daemon cache and the from-scratch run and must be 0\",\n  \
         \"samples_per_point\": {samples},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_deltas.json");
    eprintln!("wrote {out}");
}
