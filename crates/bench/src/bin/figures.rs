//! Regenerates every figure of the paper's evaluation as text tables.
//!
//! Usage:
//!   figures [--fig 2|3|4|5|7|8|9b|9c|all] [--samples N]
//!
//! Default: all figures, 3 samples per point. The output of a full run is
//! recorded in EXPERIMENTS.md (paper-vs-measured).

use vmn_bench::{figures, print_series};

fn main() {
    let mut which = "all".to_string();
    let mut samples = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fig" => which = args.next().expect("--fig needs a value"),
            "--samples" => {
                samples = args.next().expect("--samples needs a value").parse().expect("number")
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let run = |f: &str| which == "all" || which == f;
    if run("2") {
        print_series(
            "Figure 2: per-invariant time, datacenter misconfigurations",
            &figures::fig2(samples),
        );
    }
    if run("3") {
        print_series("Figure 3: all invariants vs policy complexity", &figures::fig3(samples));
    }
    if run("4") {
        print_series(
            "Figure 4: data-isolation per-invariant time vs policy complexity",
            &figures::fig4(samples),
        );
    }
    if run("5") {
        print_series(
            "Figure 5: all data-isolation invariants vs policy complexity",
            &figures::fig5(samples),
        );
    }
    if run("7") {
        print_series("Figure 7: enterprise — slice vs whole network", &figures::fig7(samples));
    }
    if run("8") {
        print_series("Figure 8: multi-tenant — slice vs whole network", &figures::fig8(samples));
    }
    if run("9b") {
        print_series(
            "Figure 9(b): ISP — slice vs whole network (subnets)",
            &figures::fig9b(samples),
        );
    }
    if run("9c") {
        print_series(
            "Figure 9(c): ISP — slice vs whole network (peering points)",
            &figures::fig9c(samples),
        );
    }
    if run("ablation") {
        print_series(
            "Ablation: slices and symmetry toggled independently",
            &figures::ablation(samples),
        );
    }
}
