//! Emits `BENCH_modular.json`: modular (contract-composed) verification
//! versus the monolithic engine, on generated campus / ISP estates two
//! orders of magnitude bigger than the `dc-fleet` workloads.
//!
//! One JSON row per estate size. Each row builds a
//! [`vmn_scenarios::estate`] network (sites of subnet switches and
//! hosts behind an in-line per-site ACL firewall, joined by a core),
//! derives the per-site [`Partition`], and verifies the same invariant
//! battery twice with [`Verifier::verify_all`]:
//!
//! * **monolithic**: `PartitionMode::Off` — every (invariant, scenario)
//!   pair goes to the exact engine (BDD fast path or SMT);
//! * **modular**: `PartitionMode::Explicit` over the per-site partition
//!   — cross-site isolation pairs are discharged by the synthesized
//!   boundary contracts without encoding anything, and only intra-site
//!   pairs fall back to the exact engine.
//!
//! The battery mixes cross-site node- and flow-isolation invariants
//! (hold; the modular win) with intra-site isolation invariants
//! (violated; both engines must find the same first scenario), so the
//! row is also a differential check: `verdict_divergences` counts
//! per-invariant disagreements in verdict or first violating scenario
//! and must be 0.
//!
//! Usage:
//!   bench_modular [--threads N] [--out PATH]
//!
//! Defaults: 4 worker threads, output written to BENCH_modular.json in
//! the current directory — exactly the shape of the committed copy at
//! the repository root.

use std::time::Instant;
use vmn::{Invariant, PartitionMode, Verdict, Verifier, VerifyOptions};
use vmn_scenarios::estate::{Estate, EstateParams, EstateStyle};

struct Row {
    label: &'static str,
    params: EstateParams,
    /// Cross-site invariants per family (node- and flow-isolation).
    cross: usize,
    /// Intra-site (violated) invariants.
    local: usize,
}

fn battery(e: &Estate, row: &Row) -> Vec<Invariant> {
    let mut invs = e.cross_site_isolation(row.cross);
    invs.extend(e.cross_site_flow_isolation(row.cross));
    invs.extend(e.local_reachability(row.local));
    invs
}

/// Runs `verify_all` and reduces the reports to (elapsed ms, verdict
/// fingerprints, scenarios answered per backend).
struct Run {
    ms: f64,
    setup_ms: f64,
    verdicts: Vec<(bool, Option<String>)>,
    contract: usize,
    smt: usize,
    bdd: usize,
}

fn run(e: &Estate, invs: &[Invariant], options: VerifyOptions, threads: usize) -> Run {
    let t0 = Instant::now();
    let v = Verifier::new(&e.net, options).expect("estate verifies");
    let setup_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let reports = v.verify_all(invs, threads).expect("battery verifies");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let verdicts = reports
        .iter()
        .map(|r| match &r.verdict {
            Verdict::Holds => (true, None),
            Verdict::Violated { scenario, .. } => (false, Some(format!("{scenario:?}"))),
        })
        .collect();
    let (mut contract, mut smt, mut bdd) = (0, 0, 0);
    for r in reports.iter().filter(|r| !r.inherited) {
        contract += r.contract_scenarios;
        smt += r.smt_scenarios;
        bdd += r.bdd_scenarios;
    }
    Run { ms, setup_ms, verdicts, contract, smt, bdd }
}

fn main() {
    let mut threads = 4usize;
    let mut out = "BENCH_modular.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args.next().expect("--threads needs a value").parse().expect("number")
            }
            "--out" => out = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let rows = [
        Row {
            label: "campus/4",
            params: EstateParams {
                style: EstateStyle::Campus,
                sites: 4,
                subnets_per_site: 16,
                hosts_per_subnet: 16,
                with_failures: true,
            },
            cross: 8,
            local: 2,
        },
        Row {
            label: "campus/8",
            params: EstateParams {
                style: EstateStyle::Campus,
                sites: 8,
                subnets_per_site: 16,
                hosts_per_subnet: 16,
                with_failures: true,
            },
            cross: 8,
            local: 2,
        },
        Row { label: "campus/13", params: EstateParams::campus(), cross: 8, local: 2 },
        Row { label: "isp/20", params: EstateParams::isp(), cross: 8, local: 2 },
    ];

    let mut json_rows: Vec<String> = Vec::new();
    for row in &rows {
        let e = Estate::build(row.params.clone());
        let nodes = row.params.node_count();
        let partition = e.partition();
        let modules = partition.modules.len();
        let hint = Some(e.policy_hint());
        let invs = battery(&e, row);

        let mono = run(
            &e,
            &invs,
            VerifyOptions { policy_hint: hint.clone(), ..Default::default() },
            threads,
        );
        let modular = run(
            &e,
            &invs,
            VerifyOptions {
                partition: PartitionMode::Explicit { partition, contracts: vec![] },
                policy_hint: hint,
                ..Default::default()
            },
            threads,
        );
        assert_eq!(mono.contract, 0, "monolithic run must not touch contracts");

        let divergences =
            mono.verdicts.iter().zip(&modular.verdicts).filter(|(a, b)| a != b).count();
        let speedup = mono.ms / modular.ms;
        eprintln!(
            "{:<10} nodes {nodes:>5}  modules {modules:>3}  invariants {:>3}  \
             mono {:>9.2} ms (setup {:>8.2})  modular {:>8.2} ms (setup {:>8.2})  \
             speedup {speedup:>6.1}x  contract/smt/bdd {}/{}/{}  divergences {divergences}",
            row.label,
            invs.len(),
            mono.ms,
            mono.setup_ms,
            modular.ms,
            modular.setup_ms,
            modular.contract,
            modular.smt,
            modular.bdd,
        );
        json_rows.push(format!(
            "    {{\"workload\": \"{}\", \"nodes\": {nodes}, \"modules\": {modules}, \
             \"invariants\": {}, \
             \"mono_ms\": {:.3}, \"mono_setup_ms\": {:.3}, \
             \"modular_ms\": {:.3}, \"modular_setup_ms\": {:.3}, \
             \"speedup\": {speedup:.1}, \
             \"contract_scenarios\": {}, \"smt_scenarios\": {}, \"bdd_scenarios\": {}, \
             \"mono_smt_scenarios\": {}, \"mono_bdd_scenarios\": {}, \
             \"verdict_divergences\": {divergences}}}",
            row.label,
            invs.len(),
            mono.ms,
            mono.setup_ms,
            modular.ms,
            modular.setup_ms,
            modular.contract,
            modular.smt,
            modular.bdd,
            mono.smt,
            mono.bdd,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"modular_sweep\",\n  \"workloads\": \
         \"campus/S = S buildings of 16 floors x 16 hosts behind an in-line per-site ACL \
         firewall, joined by a core switch; isp/20 = 20 POPs of 10 access switches x 16 \
         customers. The battery is 8 cross-site node-isolation + 8 cross-site flow-isolation \
         invariants (hold) and 2 intra-site isolation invariants (violated), each checked \
         under the no-failure scenario plus two standing failure scenarios\",\n  \
         \"unit\": \"wall-clock milliseconds per verify_all sweep; mono = PartitionMode::Off \
         (every pair on the exact engine), modular = PartitionMode::Explicit over the \
         per-site partition (cross-site pairs discharged by synthesized boundary contracts, \
         intra-site pairs on the exact engine); setup = Verifier::new, including contract \
         synthesis\",\n  \
         \"series\": \"verdict_divergences counts invariants whose verdict or first violating \
         scenario differs between the two engines and must be 0\",\n  \
         \"threads\": {threads},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_modular.json");
    eprintln!("wrote {out}");
}
