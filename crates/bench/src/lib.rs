//! Benchmark harness for reproducing every figure of the paper's
//! evaluation (§5).
//!
//! Two entry points share the workload definitions in this crate:
//!
//! * `cargo bench -p vmn-bench` — Criterion micro-benchmarks, one per
//!   figure, measuring the core verification calls on slice-sized
//!   configurations (plus the smallest whole-network points);
//! * `cargo run -p vmn-bench --release --bin figures` — the full sweeps:
//!   regenerates each figure's series as a text table, recorded in
//!   `EXPERIMENTS.md`.
//!
//! ## Scale mapping
//!
//! The paper ran Z3 on 10-core Xeons against networks of up to 1000
//! hosts / 250 subnets / 30 peering points. This reproduction runs its
//! own solver; to keep every sweep finishing in minutes rather than
//! hours, whole-network sweeps use proportionally smaller maxima (the
//! `*_AXIS` constants below). The *shapes* the paper reports — flat
//! slice-time vs growing whole-network time, linear growth in policy
//! classes, faster violation checks than proofs — are all preserved and
//! asserted in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};
use vmn::{Invariant, Network, Report, Verifier, VerifyOptions};
use vmn_net::NodeId;

/// Whole-network x-axes (see module docs for the paper mapping).
pub const FIG3_CLASSES: &[usize] = &[5, 10, 15, 25];
pub const FIG4_CLASSES: &[usize] = &[4, 6, 8, 10];
pub const FIG7_SUBNETS: &[usize] = &[3, 15, 30];
pub const FIG8_TENANTS: &[usize] = &[2, 4, 6, 8];
pub const FIG9B_SUBNETS: &[usize] = &[3, 9, 15, 21];
pub const FIG9C_PEERS: &[usize] = &[1, 2, 3, 4];

/// One measured data point: a labelled collection of sample durations.
#[derive(Clone, Debug)]
pub struct Point {
    pub x: String,
    pub samples: Vec<Duration>,
}

impl Point {
    pub fn new(x: impl Into<String>) -> Point {
        Point { x: x.into(), samples: Vec::new() }
    }

    fn sorted_secs(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.samples.iter().map(Duration::as_secs_f64).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        v
    }

    pub fn min(&self) -> f64 {
        self.sorted_secs().first().copied().unwrap_or(0.0)
    }

    pub fn max(&self) -> f64 {
        self.sorted_secs().last().copied().unwrap_or(0.0)
    }

    pub fn percentile(&self, p: f64) -> f64 {
        let v = self.sorted_secs();
        if v.is_empty() {
            return 0.0;
        }
        let idx = ((v.len() - 1) as f64 * p / 100.0).round() as usize;
        v[idx]
    }

    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

/// A labelled series of points (one line in a figure).
#[derive(Clone, Debug)]
pub struct Series {
    pub label: String,
    pub points: Vec<Point>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Series {
        Series { label: label.into(), points: Vec::new() }
    }
}

/// Prints the paper-style table for a figure: one row per x value with
/// min / 5th / median / 95th / max columns (the paper's box-and-whisker
/// content).
pub fn print_series(title: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    for s in series {
        println!("--- {} ---", s.label);
        println!(
            "{:>16} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "x", "min(s)", "p5(s)", "median(s)", "p95(s)", "max(s)"
        );
        for p in &s.points {
            println!(
                "{:>16} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                p.x,
                p.min(),
                p.percentile(5.0),
                p.median(),
                p.percentile(95.0),
                p.max()
            );
        }
    }
}

/// Times `samples` runs of verifying `inv` and returns the durations plus
/// the last report.
pub fn time_verify(
    net: &Network,
    options: &VerifyOptions,
    inv: &Invariant,
    samples: usize,
) -> (Vec<Duration>, Report) {
    let verifier = Verifier::new(net, options.clone()).expect("valid network");
    let mut durations = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let t0 = Instant::now();
        let report = verifier.verify(inv).expect("verification succeeds");
        durations.push(t0.elapsed());
        last = Some(report);
    }
    (durations, last.expect("at least one sample"))
}

/// Times verifying a whole invariant set with symmetry (single-threaded,
/// matching the paper's single-core measurements).
pub fn time_verify_all(
    net: &Network,
    options: &VerifyOptions,
    invariants: &[Invariant],
    samples: usize,
) -> Vec<Duration> {
    let verifier = Verifier::new(net, options.clone()).expect("valid network");
    let mut durations = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let reports = verifier.verify_all(invariants, 1).expect("verification succeeds");
        assert_eq!(reports.len(), invariants.len());
        durations.push(t0.elapsed());
    }
    durations
}

/// Convenience: slice-mode options with a policy hint.
pub fn sliced(hint: Vec<Vec<NodeId>>) -> VerifyOptions {
    VerifyOptions { policy_hint: Some(hint), ..Default::default() }
}

/// Convenience: whole-network options with a policy hint.
pub fn whole(hint: Vec<Vec<NodeId>>) -> VerifyOptions {
    VerifyOptions { policy_hint: Some(hint), ..VerifyOptions::whole_network() }
}

/// Workload shared by the `scenario_sweep` bench and the
/// `bench_scenarios` emitter: the §5.1 datacenter with `n` middlebox
/// failure scenarios attached, plus a cross-group isolation invariant
/// that *holds* in every scenario — so a verification sweep visits all
/// `n + 1` scenarios (no-failure first) instead of stopping early.
pub fn scenario_sweep_workload(n: usize) -> (Network, Vec<Vec<NodeId>>, Invariant) {
    let (dc, net) = sweep_datacenter(n, 2);
    (net, dc.policy_hint(), dc.pair_isolation(0, 1))
}

/// The §5.1 datacenter (two racks and one host pair per policy group,
/// redundant middleboxes) with `n` middlebox failure scenarios attached —
/// the shared substrate of the `scenario_sweep` and `invariant_sweep`
/// benches.
fn sweep_datacenter(
    n: usize,
    policy_groups: usize,
) -> (vmn_scenarios::datacenter::Datacenter, Network) {
    use vmn_net::FailureScenario;
    use vmn_scenarios::datacenter::{Datacenter, DatacenterParams};
    let dc = Datacenter::build(DatacenterParams {
        racks: policy_groups * 2,
        hosts_per_rack: 2,
        policy_groups,
        redundant: true,
        with_failures: false,
    });
    let mut net = dc.net.clone();
    let fw2 = dc.fw2.expect("redundant build has a backup firewall");
    let idps2 = dc.idps2.expect("redundant build has a backup IDPS");
    let mut faults: Vec<FailureScenario> = [dc.fw1, dc.idps1, fw2, idps2, dc.lb1]
        .into_iter()
        .map(|m| FailureScenario::nodes([m]))
        .collect();
    faults.push(FailureScenario::nodes([dc.fw1, dc.idps1]));
    faults.push(FailureScenario::nodes([fw2, idps2]));
    faults.push(FailureScenario::nodes([dc.fw1, idps2]));
    assert!(n <= faults.len(), "at most {} failure scenarios available", faults.len());
    for s in faults.into_iter().take(n) {
        net.add_scenario(s);
    }
    (dc, net)
}

/// Primary workload of the `invariant_sweep` bench and the
/// `bench_invariants` emitter: the sweep datacenter with *three* policy
/// groups, `n` failure scenarios, and the paper's §5.1 fleet shape — one
/// node-isolation and one flow-isolation invariant per *direction* of
/// every cross-group pair, plus per-group IDPS traversal (15 invariants).
/// The two directions of a pair share their slice union and trace bound,
/// so a `verify_all` with session reuse re-enters one warmed-up solver
/// per (node-set, bound) key instead of building a fresh stack per
/// representative; no two of them are symmetric (their policy-class
/// signatures differ), so the symmetry machinery cannot collapse them
/// and the session layer is genuinely exercised.
pub fn invariant_sweep_workload(n: usize) -> (Network, Vec<Vec<NodeId>>, Vec<Invariant>) {
    let (dc, net) = sweep_datacenter(n, 3);
    let hint = dc.policy_hint();
    let mut invs = Vec::new();
    for a in 0..hint.len() {
        for b in (a + 1)..hint.len() {
            let (ha, hb) = (hint[a][0], hint[b][0]);
            invs.push(Invariant::NodeIsolation { src: ha, dst: hb });
            invs.push(Invariant::NodeIsolation { src: hb, dst: ha });
            invs.push(Invariant::FlowIsolation { src: ha, dst: hb });
            invs.push(Invariant::FlowIsolation { src: hb, dst: ha });
        }
    }
    invs.extend(dc.traversal_invariants());
    (net, hint, invs)
}

/// Adversarial variant: the two-group sweep datacenter with a mixed fleet
/// that *includes* data-isolation (trace bound 11, the heaviest query
/// class). A data-isolation check wears its session past the retirement
/// threshold, so its direction partner gets a fresh stack and session
/// reuse degenerates to parity there — this workload keeps the bench
/// honest about that regime.
pub fn invariant_sweep_mixed(n: usize) -> (Network, Vec<Vec<NodeId>>, Vec<Invariant>) {
    let (dc, net) = sweep_datacenter(n, 2);
    let hint = dc.policy_hint();
    let (a, b) = (hint[0][0], hint[1][0]);
    let mut invs = vec![
        Invariant::NodeIsolation { src: a, dst: b },
        Invariant::NodeIsolation { src: b, dst: a },
        Invariant::FlowIsolation { src: a, dst: b },
        Invariant::FlowIsolation { src: b, dst: a },
        Invariant::DataIsolation { origin: a, dst: b },
        Invariant::DataIsolation { origin: b, dst: a },
    ];
    invs.extend(dc.traversal_invariants());
    (net, hint, invs)
}

/// Workload of the `cluster_sweep` bench and the `bench_clusters`
/// emitter: one invariant whose per-scenario slices *diverge wildly* —
/// the regime the ROADMAP flagged where the single union-of-all-slices
/// sweep encodes far more than any one scenario needs, and where
/// slice-similarity clustering must beat both the one-union and the
/// per-scenario extremes.
///
/// Shape: hosts `a → b` behind a primary firewall→IDPS chain, `groups`
/// shallow backup chains (a firewall fronting three alternative
/// IDPSes), and one *deep* last-resort chain (a firewall feeding a long
/// gateway pipeline with a failover tail). Failure scenario `(g, i)`
/// kills every earlier firewall plus `i` of group `g`'s IDPSes, so
/// traffic re-converges through a different 4-node slice each time; the
/// two final scenarios kill every other firewall and route through the
/// deep chain, whose pipeline depth drags the trace bound from 5 up
/// to 9. Within a group the slices overlap at Jaccard 0.6, across
/// groups only at the endpoints (≈0.3) — the default threshold merges
/// per group and keeps groups apart. The single union therefore pays
/// the deep chain's bound *and* node count on **every** scenario's
/// check, while the clustered sweep checks the shallow majority on
/// 4-node, bound-5 sessions and quarantines the deep slice in its own
/// cluster; the per-scenario extreme re-encodes per distinct slice.
/// All firewalls deny everything, so the isolation invariant holds in
/// every scenario and a sweep visits all of them. Shallow scenarios are
/// interleaved across groups, proving the engine preserves configured
/// order while routing checks to per-cluster sessions.
pub fn divergent_slice_workload(groups: usize) -> (Network, Vec<Vec<NodeId>>, Invariant) {
    use vmn_mbox::models;
    use vmn_net::{FailureScenario, Prefix, RoutingConfig, Rule, Topology};

    let px = |s: &str| -> Prefix { s.parse().unwrap() };
    let mut topo = Topology::new();
    let sw = topo.add_switch("sw");
    let a = topo.add_host("a", "10.1.0.1".parse().unwrap());
    let b = topo.add_host("b", "10.2.0.1".parse().unwrap());
    topo.add_link(a, sw);
    topo.add_link(b, sw);

    const IDPS_PER_GROUP: usize = 3;
    const DEEP_GATEWAYS: usize = 5;
    let fw_p = topo.add_middlebox("fwP", "stateful-firewall", vec![]);
    let idps_p = topo.add_middlebox("idpsP", "idps", vec![]);
    topo.add_link(fw_p, sw);
    topo.add_link(idps_p, sw);
    let mut backup: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for g in 0..groups {
        let fw = topo.add_middlebox(format!("fw{g}"), "stateful-firewall", vec![]);
        topo.add_link(fw, sw);
        let idpses: Vec<NodeId> = (0..IDPS_PER_GROUP)
            .map(|i| {
                let idps = topo.add_middlebox(format!("idps{g}.{i}"), "idps", vec![]);
                topo.add_link(idps, sw);
                idps
            })
            .collect();
        backup.push((fw, idpses));
    }
    // The deep last-resort chain: fwD → gw0 → … → gw4, with an alternate
    // final hop gw4' (its failover scenario keeps the slices similar
    // enough to share the deep cluster).
    let fw_d = topo.add_middlebox("fwD", "stateful-firewall", vec![]);
    topo.add_link(fw_d, sw);
    let gws: Vec<NodeId> = (0..DEEP_GATEWAYS)
        .map(|i| {
            let gw = topo.add_middlebox(format!("gw{i}"), "gateway", vec![]);
            topo.add_link(gw, sw);
            gw
        })
        .collect();
    let gw_alt = topo.add_middlebox("gw4alt", "gateway", vec![]);
    topo.add_link(gw_alt, sw);

    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    let all = px("10.0.0.0/8");
    // a's traffic: primary chain, then the shallow groups in priority
    // order, then the deep chain as last resort.
    tables.add_rule(sw, Rule::from_neighbor(all, a, fw_p).with_priority(100));
    for (g, &(fw, _)) in backup.iter().enumerate() {
        tables.add_rule(sw, Rule::from_neighbor(all, a, fw).with_priority(90 - 2 * g as i32));
    }
    tables.add_rule(sw, Rule::from_neighbor(all, a, fw_d).with_priority(50));
    tables.add_rule(sw, Rule::from_neighbor(all, fw_p, idps_p).with_priority(100));
    for &(fw, ref idpses) in &backup {
        for (i, &idps) in idpses.iter().enumerate() {
            tables.add_rule(sw, Rule::from_neighbor(all, fw, idps).with_priority(80 - i as i32));
        }
    }
    // The deep pipeline: fwD → gw0 → … → gw4 (gw4' as failover tail).
    tables.add_rule(sw, Rule::from_neighbor(all, fw_d, gws[0]).with_priority(80));
    for w in gws.windows(2) {
        tables.add_rule(sw, Rule::from_neighbor(all, w[0], w[1]).with_priority(80));
    }
    let before_last = gws[DEEP_GATEWAYS - 2];
    tables.add_rule(sw, Rule::from_neighbor(all, before_last, gw_alt).with_priority(79));

    let mut net = Network::new(topo, tables);
    net.set_model(fw_p, models::learning_firewall("stateful-firewall", vec![]));
    net.set_model(idps_p, models::idps("idps"));
    for &(fw, ref idpses) in &backup {
        net.set_model(fw, models::learning_firewall("stateful-firewall", vec![]));
        for &idps in idpses {
            net.set_model(idps, models::idps("idps"));
        }
    }
    net.set_model(fw_d, models::learning_firewall("stateful-firewall", vec![]));
    for &gw in gws.iter().chain([gw_alt].iter()) {
        net.set_model(gw, models::gateway("gateway"));
    }

    // Shallow scenarios, interleaved across groups round by round…
    for round in 0..IDPS_PER_GROUP {
        for (g, (_, idpses)) in backup.iter().enumerate() {
            let mut failed = vec![fw_p];
            failed.extend(backup.iter().take(g).map(|&(fw, _)| fw));
            failed.extend(idpses.iter().take(round).copied());
            net.add_scenario(FailureScenario::nodes(failed));
        }
    }
    // …then the two deep ones (all shallow firewalls down; the second
    // additionally fails the deep chain's last gateway).
    let mut all_fw_down = vec![fw_p];
    all_fw_down.extend(backup.iter().map(|&(fw, _)| fw));
    net.add_scenario(FailureScenario::nodes(all_fw_down.clone()));
    all_fw_down.push(gws[DEEP_GATEWAYS - 1]);
    net.add_scenario(FailureScenario::nodes(all_fw_down));

    let inv = Invariant::NodeIsolation { src: a, dst: b };
    (net, vec![vec![a], vec![b]], inv)
}

/// Workload of the `fastpath_sweep` bench and the `bench_fastpath`
/// emitter: a *stateless-heavy* estate — `pods` leaf pods whose traffic
/// is policed purely by forwarding, ACL firewalls and classification
/// chains (no mutable middlebox state anywhere in their slices), plus a
/// small stateful core pair behind a learning firewall.
///
/// Shape: pod `p` has hosts `a_p`/`b_p`; `a_p`'s traffic is steered
/// through a deny-all ACL firewall (with a deny-all backup for the
/// failover scenarios) that fronts an IDPS → gateway chain, so the pod
/// slices are several middleboxes deep — expensive to encode
/// symbolically, trivial to compose as BDD transfer predicates. The core
/// pair `c0`/`c1` sits behind a deny-all *learning* firewall, which is
/// stateful and pins its invariant to the SMT path under every backend
/// choice. Every invariant *holds* in every scenario, so both backends
/// sweep all scenarios and end-to-end wall clocks compare the full
/// workload: under `Backend::Auto` the pod invariants route to the BDD
/// dataplane and only the core pays for a solver; under `Backend::Smt`
/// everything does.
pub fn fastpath_workload(pods: usize) -> (Network, Vec<Vec<NodeId>>, Vec<Invariant>) {
    use vmn_mbox::models;
    use vmn_net::{Address, FailureScenario, Prefix, RoutingConfig, Rule, Topology};

    let px = |s: &str| -> Prefix { s.parse().unwrap() };
    let mut topo = Topology::new();
    let sw = topo.add_switch("sw");
    // The small stateful core.
    let c0 = topo.add_host("c0", "10.0.1.1".parse().unwrap());
    let c1 = topo.add_host("c1", "10.0.2.1".parse().unwrap());
    let fw_c = topo.add_middlebox("fwC", "stateful-firewall", vec![]);
    for n in [c0, c1, fw_c] {
        topo.add_link(n, sw);
    }
    // The stateless pods: hosts behind an ACL (plus failover ACL) that
    // fronts an IDPS → gateway chain.
    struct Pod {
        a: NodeId,
        b: NodeId,
        acl: NodeId,
        acl_backup: NodeId,
        idps: NodeId,
        gw: NodeId,
    }
    let mut pod_nodes: Vec<Pod> = Vec::new();
    for p in 0..pods {
        let subnet = (p as u32 + 8) << 16;
        let a = topo.add_host(format!("a{p}"), Address(0x0A00_0001 + subnet));
        let b = topo.add_host(format!("b{p}"), Address(0x0A00_0002 + subnet));
        let acl = topo.add_middlebox(format!("acl{p}"), "acl-firewall", vec![]);
        let acl_backup = topo.add_middlebox(format!("aclb{p}"), "acl-firewall", vec![]);
        let idps = topo.add_middlebox(format!("idps{p}"), "idps", vec![]);
        let gw = topo.add_middlebox(format!("gw{p}"), "gateway", vec![]);
        for n in [a, b, acl, acl_backup, idps, gw] {
            topo.add_link(n, sw);
        }
        pod_nodes.push(Pod { a, b, acl, acl_backup, idps, gw });
    }

    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    let all = px("10.0.0.0/8");
    tables.add_rule(sw, Rule::from_neighbor(all, c0, fw_c).with_priority(20));
    for pod in &pod_nodes {
        tables.add_rule(sw, Rule::from_neighbor(all, pod.a, pod.acl).with_priority(20));
        tables.add_rule(sw, Rule::from_neighbor(all, pod.a, pod.acl_backup).with_priority(10));
        tables.add_rule(sw, Rule::from_neighbor(all, pod.acl, pod.idps).with_priority(20));
        tables.add_rule(sw, Rule::from_neighbor(all, pod.acl_backup, pod.idps).with_priority(20));
        tables.add_rule(sw, Rule::from_neighbor(all, pod.idps, pod.gw).with_priority(20));
    }

    let mut net = Network::new(topo, tables);
    net.set_model(fw_c, models::learning_firewall("stateful-firewall", vec![]));
    for pod in &pod_nodes {
        net.set_model(pod.acl, models::acl_firewall("acl-firewall", vec![]));
        net.set_model(pod.acl_backup, models::acl_firewall("acl-firewall", vec![]));
        net.set_model(pod.idps, models::idps("idps"));
        net.set_model(pod.gw, models::gateway("gateway"));
    }
    // Failover scenarios: up to three pods lose their primary ACL and
    // re-converge through the backup (keeps sweep length bounded as the
    // pod axis grows).
    for pod in pod_nodes.iter().take(3) {
        net.add_scenario(FailureScenario::nodes([pod.acl]));
    }

    let mut invs: Vec<Invariant> =
        pod_nodes.iter().map(|p| Invariant::NodeIsolation { src: p.a, dst: p.b }).collect();
    invs.push(Invariant::NodeIsolation { src: c0, dst: c1 });
    let mut hint: Vec<Vec<NodeId>> = pod_nodes.iter().map(|p| vec![p.a, p.b]).collect();
    hint.push(vec![c0, c1]);
    (net, hint, invs)
}

/// Enterprise variant of the invariant sweep: the paper's per-subnet-kind
/// invariant plus its natural direction partners for each kind — egress
/// node isolation (subnet must not reach the internet), egress flow
/// isolation (no subnet-initiated flows outbound) and data-leak isolation
/// (internal data must not surface at the internet host) — so every
/// subnet contributes a key-sharing family of invariants.
pub fn invariant_sweep_enterprise() -> (Network, Vec<Vec<NodeId>>, Vec<Invariant>) {
    use vmn_scenarios::enterprise::{Enterprise, EnterpriseParams, SubnetKind};
    let e = Enterprise::build(EnterpriseParams { subnets: 3, hosts_per_subnet: 2 });
    let mut invs = Vec::new();
    for (kind, inv) in e.invariants() {
        let host = e.subnet_of_kind(kind).expect("subnet exists")[0];
        invs.push(inv);
        invs.push(Invariant::NodeIsolation { src: host, dst: e.internet });
        if kind == SubnetKind::Private {
            invs.push(Invariant::FlowIsolation { src: host, dst: e.internet });
            invs.push(Invariant::DataIsolation { origin: host, dst: e.internet });
        }
    }
    (e.net.clone(), e.policy_hint(), invs)
}

pub mod figures;

#[cfg(test)]
mod workload_tests {
    use super::*;
    use vmn::Backend;

    /// The fastpath workload's routing contract: under `Auto` every pod
    /// invariant is answered entirely by the BDD dataplane, the stateful
    /// core stays on SMT, everything holds, and the verdicts match a
    /// forced-SMT run — the assumptions the committed BENCH_fastpath.json
    /// numbers rest on.
    #[test]
    fn fastpath_workload_routes_pods_to_bdd_and_core_to_smt() {
        let (net, hint, invs) = fastpath_workload(2);
        let scenarios = net.all_scenarios().len();
        let auto = Verifier::new(
            &net,
            VerifyOptions { policy_hint: Some(hint.clone()), ..Default::default() },
        )
        .expect("valid network");
        let smt = Verifier::new(
            &net,
            VerifyOptions { policy_hint: Some(hint), backend: Backend::Smt, ..Default::default() },
        )
        .expect("valid network");
        let (core, pods) = invs.split_last().expect("core invariant is last");
        for inv in pods {
            let ra = auto.verify(inv).expect("verifies");
            let rs = smt.verify(inv).expect("verifies");
            assert!(ra.verdict.holds() && rs.verdict.holds(), "{inv}");
            assert_eq!(ra.scenarios_checked, scenarios, "{inv}: full sweep");
            assert_eq!(ra.bdd_scenarios, scenarios, "{inv}: pod slices are stateless");
            assert_eq!(ra.smt_scenarios, 0, "{inv}");
            assert_eq!(rs.bdd_scenarios, 0, "{inv}");
        }
        let ra = auto.verify(core).expect("verifies");
        assert!(ra.verdict.holds());
        assert_eq!(ra.bdd_scenarios, 0, "the learning-firewall core must stay on smt");
        assert_eq!(ra.smt_scenarios, scenarios);
    }
}
