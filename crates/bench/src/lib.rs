//! Benchmark harness for reproducing every figure of the paper's
//! evaluation (§5).
//!
//! Two entry points share the workload definitions in this crate:
//!
//! * `cargo bench -p vmn-bench` — Criterion micro-benchmarks, one per
//!   figure, measuring the core verification calls on slice-sized
//!   configurations (plus the smallest whole-network points);
//! * `cargo run -p vmn-bench --release --bin figures` — the full sweeps:
//!   regenerates each figure's series as a text table, recorded in
//!   `EXPERIMENTS.md`.
//!
//! ## Scale mapping
//!
//! The paper ran Z3 on 10-core Xeons against networks of up to 1000
//! hosts / 250 subnets / 30 peering points. This reproduction runs its
//! own solver; to keep every sweep finishing in minutes rather than
//! hours, whole-network sweeps use proportionally smaller maxima (the
//! `*_AXIS` constants below). The *shapes* the paper reports — flat
//! slice-time vs growing whole-network time, linear growth in policy
//! classes, faster violation checks than proofs — are all preserved and
//! asserted in `EXPERIMENTS.md`.

use std::time::{Duration, Instant};
use vmn::{Invariant, Network, Report, Verifier, VerifyOptions};
use vmn_net::NodeId;

/// Whole-network x-axes (see module docs for the paper mapping).
pub const FIG3_CLASSES: &[usize] = &[5, 10, 15, 25];
pub const FIG4_CLASSES: &[usize] = &[4, 6, 8, 10];
pub const FIG7_SUBNETS: &[usize] = &[3, 15, 30];
pub const FIG8_TENANTS: &[usize] = &[2, 4, 6, 8];
pub const FIG9B_SUBNETS: &[usize] = &[3, 9, 15, 21];
pub const FIG9C_PEERS: &[usize] = &[1, 2, 3, 4];

/// One measured data point: a labelled collection of sample durations.
#[derive(Clone, Debug)]
pub struct Point {
    pub x: String,
    pub samples: Vec<Duration>,
}

impl Point {
    pub fn new(x: impl Into<String>) -> Point {
        Point { x: x.into(), samples: Vec::new() }
    }

    fn sorted_secs(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.samples.iter().map(Duration::as_secs_f64).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        v
    }

    pub fn min(&self) -> f64 {
        self.sorted_secs().first().copied().unwrap_or(0.0)
    }

    pub fn max(&self) -> f64 {
        self.sorted_secs().last().copied().unwrap_or(0.0)
    }

    pub fn percentile(&self, p: f64) -> f64 {
        let v = self.sorted_secs();
        if v.is_empty() {
            return 0.0;
        }
        let idx = ((v.len() - 1) as f64 * p / 100.0).round() as usize;
        v[idx]
    }

    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

/// A labelled series of points (one line in a figure).
#[derive(Clone, Debug)]
pub struct Series {
    pub label: String,
    pub points: Vec<Point>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Series {
        Series { label: label.into(), points: Vec::new() }
    }
}

/// Prints the paper-style table for a figure: one row per x value with
/// min / 5th / median / 95th / max columns (the paper's box-and-whisker
/// content).
pub fn print_series(title: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    for s in series {
        println!("--- {} ---", s.label);
        println!(
            "{:>16} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "x", "min(s)", "p5(s)", "median(s)", "p95(s)", "max(s)"
        );
        for p in &s.points {
            println!(
                "{:>16} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                p.x,
                p.min(),
                p.percentile(5.0),
                p.median(),
                p.percentile(95.0),
                p.max()
            );
        }
    }
}

/// Times `samples` runs of verifying `inv` and returns the durations plus
/// the last report.
pub fn time_verify(
    net: &Network,
    options: &VerifyOptions,
    inv: &Invariant,
    samples: usize,
) -> (Vec<Duration>, Report) {
    let verifier = Verifier::new(net, options.clone()).expect("valid network");
    let mut durations = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let t0 = Instant::now();
        let report = verifier.verify(inv).expect("verification succeeds");
        durations.push(t0.elapsed());
        last = Some(report);
    }
    (durations, last.expect("at least one sample"))
}

/// Times verifying a whole invariant set with symmetry (single-threaded,
/// matching the paper's single-core measurements).
pub fn time_verify_all(
    net: &Network,
    options: &VerifyOptions,
    invariants: &[Invariant],
    samples: usize,
) -> Vec<Duration> {
    let verifier = Verifier::new(net, options.clone()).expect("valid network");
    let mut durations = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let reports = verifier.verify_all(invariants, 1).expect("verification succeeds");
        assert_eq!(reports.len(), invariants.len());
        durations.push(t0.elapsed());
    }
    durations
}

/// Convenience: slice-mode options with a policy hint.
pub fn sliced(hint: Vec<Vec<NodeId>>) -> VerifyOptions {
    VerifyOptions { policy_hint: Some(hint), ..Default::default() }
}

/// Convenience: whole-network options with a policy hint.
pub fn whole(hint: Vec<Vec<NodeId>>) -> VerifyOptions {
    VerifyOptions { policy_hint: Some(hint), ..VerifyOptions::whole_network() }
}

/// Workload shared by the `scenario_sweep` bench and the
/// `bench_scenarios` emitter: the §5.1 datacenter with `n` middlebox
/// failure scenarios attached, plus a cross-group isolation invariant
/// that *holds* in every scenario — so a verification sweep visits all
/// `n + 1` scenarios (no-failure first) instead of stopping early.
pub fn scenario_sweep_workload(n: usize) -> (Network, Vec<Vec<NodeId>>, Invariant) {
    let (dc, net) = sweep_datacenter(n, 2);
    (net, dc.policy_hint(), dc.pair_isolation(0, 1))
}

/// The §5.1 datacenter (two racks and one host pair per policy group,
/// redundant middleboxes) with `n` middlebox failure scenarios attached —
/// the shared substrate of the `scenario_sweep` and `invariant_sweep`
/// benches.
fn sweep_datacenter(
    n: usize,
    policy_groups: usize,
) -> (vmn_scenarios::datacenter::Datacenter, Network) {
    use vmn_net::FailureScenario;
    use vmn_scenarios::datacenter::{Datacenter, DatacenterParams};
    let dc = Datacenter::build(DatacenterParams {
        racks: policy_groups * 2,
        hosts_per_rack: 2,
        policy_groups,
        redundant: true,
        with_failures: false,
    });
    let mut net = dc.net.clone();
    let fw2 = dc.fw2.expect("redundant build has a backup firewall");
    let idps2 = dc.idps2.expect("redundant build has a backup IDPS");
    let mut faults: Vec<FailureScenario> = [dc.fw1, dc.idps1, fw2, idps2, dc.lb1]
        .into_iter()
        .map(|m| FailureScenario::nodes([m]))
        .collect();
    faults.push(FailureScenario::nodes([dc.fw1, dc.idps1]));
    faults.push(FailureScenario::nodes([fw2, idps2]));
    faults.push(FailureScenario::nodes([dc.fw1, idps2]));
    assert!(n <= faults.len(), "at most {} failure scenarios available", faults.len());
    for s in faults.into_iter().take(n) {
        net.add_scenario(s);
    }
    (dc, net)
}

/// Primary workload of the `invariant_sweep` bench and the
/// `bench_invariants` emitter: the sweep datacenter with *three* policy
/// groups, `n` failure scenarios, and the paper's §5.1 fleet shape — one
/// node-isolation and one flow-isolation invariant per *direction* of
/// every cross-group pair, plus per-group IDPS traversal (15 invariants).
/// The two directions of a pair share their slice union and trace bound,
/// so a `verify_all` with session reuse re-enters one warmed-up solver
/// per (node-set, bound) key instead of building a fresh stack per
/// representative; no two of them are symmetric (their policy-class
/// signatures differ), so the symmetry machinery cannot collapse them
/// and the session layer is genuinely exercised.
pub fn invariant_sweep_workload(n: usize) -> (Network, Vec<Vec<NodeId>>, Vec<Invariant>) {
    let (dc, net) = sweep_datacenter(n, 3);
    let hint = dc.policy_hint();
    let mut invs = Vec::new();
    for a in 0..hint.len() {
        for b in (a + 1)..hint.len() {
            let (ha, hb) = (hint[a][0], hint[b][0]);
            invs.push(Invariant::NodeIsolation { src: ha, dst: hb });
            invs.push(Invariant::NodeIsolation { src: hb, dst: ha });
            invs.push(Invariant::FlowIsolation { src: ha, dst: hb });
            invs.push(Invariant::FlowIsolation { src: hb, dst: ha });
        }
    }
    invs.extend(dc.traversal_invariants());
    (net, hint, invs)
}

/// Adversarial variant: the two-group sweep datacenter with a mixed fleet
/// that *includes* data-isolation (trace bound 11, the heaviest query
/// class). A data-isolation check wears its session past the retirement
/// threshold, so its direction partner gets a fresh stack and session
/// reuse degenerates to parity there — this workload keeps the bench
/// honest about that regime.
pub fn invariant_sweep_mixed(n: usize) -> (Network, Vec<Vec<NodeId>>, Vec<Invariant>) {
    let (dc, net) = sweep_datacenter(n, 2);
    let hint = dc.policy_hint();
    let (a, b) = (hint[0][0], hint[1][0]);
    let mut invs = vec![
        Invariant::NodeIsolation { src: a, dst: b },
        Invariant::NodeIsolation { src: b, dst: a },
        Invariant::FlowIsolation { src: a, dst: b },
        Invariant::FlowIsolation { src: b, dst: a },
        Invariant::DataIsolation { origin: a, dst: b },
        Invariant::DataIsolation { origin: b, dst: a },
    ];
    invs.extend(dc.traversal_invariants());
    (net, hint, invs)
}

/// Enterprise variant of the invariant sweep: the paper's per-subnet-kind
/// invariant plus its natural direction partners for each kind — egress
/// node isolation (subnet must not reach the internet), egress flow
/// isolation (no subnet-initiated flows outbound) and data-leak isolation
/// (internal data must not surface at the internet host) — so every
/// subnet contributes a key-sharing family of invariants.
pub fn invariant_sweep_enterprise() -> (Network, Vec<Vec<NodeId>>, Vec<Invariant>) {
    use vmn_scenarios::enterprise::{Enterprise, EnterpriseParams, SubnetKind};
    let e = Enterprise::build(EnterpriseParams { subnets: 3, hosts_per_subnet: 2 });
    let mut invs = Vec::new();
    for (kind, inv) in e.invariants() {
        let host = e.subnet_of_kind(kind).expect("subnet exists")[0];
        invs.push(inv);
        invs.push(Invariant::NodeIsolation { src: host, dst: e.internet });
        if kind == SubnetKind::Private {
            invs.push(Invariant::FlowIsolation { src: host, dst: e.internet });
            invs.push(Invariant::DataIsolation { origin: host, dst: e.internet });
        }
    }
    (e.net.clone(), e.policy_hint(), invs)
}

pub mod figures;
