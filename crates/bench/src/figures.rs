//! The per-figure sweep implementations behind the `figures` binary.
//!
//! Each function builds the paper's workload, measures the relevant
//! verification calls, and returns the series that a plotting script (or
//! `EXPERIMENTS.md`) consumes as text tables.

use crate::{
    sliced, time_verify, time_verify_all, whole, Point, Series, FIG3_CLASSES, FIG4_CLASSES,
    FIG7_SUBNETS, FIG8_TENANTS, FIG9B_SUBNETS, FIG9C_PEERS,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmn_scenarios::data_isolation::{DataIsolation, DataIsolationParams};
use vmn_scenarios::datacenter::{Datacenter, DatacenterParams};
use vmn_scenarios::enterprise::{Enterprise, EnterpriseParams, SubnetKind};
use vmn_scenarios::isp::{Isp, IspParams};
use vmn_scenarios::multi_tenant::{MultiTenant, MultiTenantParams};

fn dc_params(policy_groups: usize) -> DatacenterParams {
    DatacenterParams {
        racks: policy_groups * 2,
        hosts_per_rack: 4,
        policy_groups,
        redundant: true,
        with_failures: true,
    }
}

/// Figure 2: time to verify one invariant for the three §5.1 scenarios,
/// split into violated / holds cases.
pub fn fig2(samples: usize) -> Vec<Series> {
    let mut rng = StdRng::seed_from_u64(2);
    let mut out = Vec::new();

    // Rules: incorrect firewall rules on all firewalls.
    let mut dc = Datacenter::build(dc_params(5));
    let pairs = dc.inject_rule_misconfig(&mut rng, 2);
    let opts = sliced(dc.policy_hint());
    let mut violated = Point::new("Rules/violated");
    let (d, rep) = time_verify(&dc.net, &opts, &dc.pair_isolation(pairs[0].0, pairs[0].1), samples);
    assert!(!rep.verdict.holds());
    violated.samples = d;
    let mut holds = Point::new("Rules/holds");
    // A pair unaffected by the injection (recompute to be safe).
    let clean = (0..5)
        .flat_map(|a| (0..5).map(move |b| (a, b)))
        .find(|&(a, b)| a != b && !pairs.contains(&(a, b)))
        .expect("some clean pair");
    let (d, rep) = time_verify(&dc.net, &opts, &dc.pair_isolation(clean.0, clean.1), samples);
    assert!(rep.verdict.holds());
    holds.samples = d;
    out.push(Series { label: "Rules".into(), points: vec![violated, holds] });

    // Redundancy: misconfigured backup firewall (violation needs failure).
    let mut dc = Datacenter::build(dc_params(5));
    let pairs = dc.inject_redundancy_misconfig(&mut rng, 1);
    let opts = sliced(dc.policy_hint());
    let mut violated = Point::new("Redundancy/violated");
    let (d, rep) = time_verify(&dc.net, &opts, &dc.pair_isolation(pairs[0].0, pairs[0].1), samples);
    assert!(!rep.verdict.holds());
    violated.samples = d;
    let clean = (0..5)
        .flat_map(|a| (0..5).map(move |b| (a, b)))
        .find(|&(a, b)| a != b && !pairs.contains(&(a, b)))
        .expect("some clean pair");
    let mut holds = Point::new("Redundancy/holds");
    let (d, rep) = time_verify(&dc.net, &opts, &dc.pair_isolation(clean.0, clean.1), samples);
    assert!(rep.verdict.holds());
    holds.samples = d;
    out.push(Series { label: "Redundancy".into(), points: vec![violated, holds] });

    // Traversal: backup routing skips the IDPS.
    let mut dc_bad = Datacenter::build(dc_params(5));
    dc_bad.inject_traversal_misconfig();
    let opts = sliced(dc_bad.policy_hint());
    let mut violated = Point::new("Traversal/violated");
    let inv = dc_bad.traversal_invariants().remove(0);
    let (d, rep) = time_verify(&dc_bad.net, &opts, &inv, samples);
    assert!(!rep.verdict.holds());
    violated.samples = d;
    let dc_good = Datacenter::build(dc_params(5));
    let opts = sliced(dc_good.policy_hint());
    let mut holds = Point::new("Traversal/holds");
    let inv = dc_good.traversal_invariants().remove(0);
    let (d, rep) = time_verify(&dc_good.net, &opts, &inv, samples);
    assert!(rep.verdict.holds());
    holds.samples = d;
    out.push(Series { label: "Traversal".into(), points: vec![violated, holds] });
    out
}

/// Figure 3: time to verify **all** invariants as a function of policy
/// complexity, for the three §5.1 scenarios.
pub fn fig3(samples: usize) -> Vec<Series> {
    let mut rules = Series::new("Rules");
    let mut redundancy = Series::new("Redundancy");
    let mut traversal = Series::new("Traversal");
    for &classes in FIG3_CLASSES {
        let mut rng = StdRng::seed_from_u64(3);

        let mut dc = Datacenter::build(dc_params(classes));
        dc.inject_rule_misconfig(&mut rng, classes / 2);
        let invs = dc.isolation_invariants();
        let mut p = Point::new(classes.to_string());
        p.samples = time_verify_all(&dc.net, &sliced(dc.policy_hint()), &invs, samples);
        rules.points.push(p);

        let mut dc = Datacenter::build(dc_params(classes));
        dc.inject_redundancy_misconfig(&mut rng, classes / 2);
        let invs = dc.isolation_invariants();
        let mut p = Point::new(classes.to_string());
        p.samples = time_verify_all(&dc.net, &sliced(dc.policy_hint()), &invs, samples);
        redundancy.points.push(p);

        let mut dc = Datacenter::build(dc_params(classes));
        dc.inject_traversal_misconfig();
        let invs = dc.traversal_invariants();
        let mut p = Point::new(classes.to_string());
        p.samples = time_verify_all(&dc.net, &sliced(dc.policy_hint()), &invs, samples);
        traversal.points.push(p);
    }
    vec![rules, redundancy, traversal]
}

/// Figure 4: per-invariant data-isolation time vs policy complexity,
/// split into prove-violation / prove-holds series.
pub fn fig4(samples: usize) -> Vec<Series> {
    let mut violated = Series::new("Time to Prove Invariant Violation");
    let mut holds = Series::new("Time to Prove Invariant Holds");
    for &classes in FIG4_CLASSES {
        let params = DataIsolationParams { policy_groups: classes, clients_per_group: 1 };

        let mut d = DataIsolation::build(params.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let hit = d.inject_cache_misconfig(&mut rng, 1)[0];
        let inv = d.private_isolation(hit, (hit + 1) % classes);
        let mut p = Point::new(classes.to_string());
        let (durations, rep) = time_verify(&d.net, &sliced(d.policy_hint()), &inv, samples);
        assert!(!rep.verdict.holds());
        p.samples = durations;
        violated.points.push(p);

        let d = DataIsolation::build(params);
        let inv = d.private_isolation(0, 1);
        let mut p = Point::new(classes.to_string());
        let (durations, rep) = time_verify(&d.net, &sliced(d.policy_hint()), &inv, samples);
        assert!(rep.verdict.holds());
        p.samples = durations;
        holds.points.push(p);
    }
    vec![violated, holds]
}

/// Figure 5: whole-network data-isolation verification vs policy
/// complexity (all invariants, with symmetry).
pub fn fig5(samples: usize) -> Vec<Series> {
    let mut all = Series::new("All data isolation invariants");
    for &classes in FIG4_CLASSES {
        let d = DataIsolation::build(DataIsolationParams {
            policy_groups: classes,
            clients_per_group: 1,
        });
        let invs = d.invariants();
        let mut p = Point::new(classes.to_string());
        p.samples = time_verify_all(&d.net, &sliced(d.policy_hint()), &invs, samples);
        all.points.push(p);
    }
    vec![all]
}

/// Figure 7: enterprise network — per-invariant time on a slice (network
/// size independent) versus on the whole network at increasing size, for
/// the three subnet kinds.
pub fn fig7(samples: usize) -> Vec<Series> {
    let kinds = [SubnetKind::Public, SubnetKind::Private, SubnetKind::Quarantined];
    let mut out = Vec::new();
    for kind in kinds {
        let mut series = Series::new(format!("{kind:?}"));
        // Slice point (network size is irrelevant by construction).
        let e =
            Enterprise::build(EnterpriseParams { subnets: FIG7_SUBNETS[0], hosts_per_subnet: 2 });
        let mut p = Point::new("slice");
        let (d, _) = time_verify(&e.net, &sliced(e.policy_hint()), &e.invariant_for(kind), samples);
        p.samples = d;
        series.points.push(p);
        // Whole-network points.
        for &subnets in FIG7_SUBNETS {
            let e = Enterprise::build(EnterpriseParams { subnets, hosts_per_subnet: 2 });
            let mut p = Point::new(format!("whole/{}", e.size()));
            let (d, _) =
                time_verify(&e.net, &whole(e.policy_hint()), &e.invariant_for(kind), samples);
            p.samples = d;
            series.points.push(p);
        }
        out.push(series);
    }
    out
}

/// Figure 8: multi-tenant datacenter — per-invariant time, slice versus
/// whole network at increasing tenant counts, for the three invariant
/// families.
pub fn fig8(samples: usize) -> Vec<Series> {
    let fams: [(&str, fn(&MultiTenant) -> vmn::Invariant); 3] = [
        ("Priv-Priv", |m| m.priv_priv(0, 1)),
        ("Pub-Priv", |m| m.pub_priv(0, 1)),
        ("Priv-Pub", |m| m.priv_pub(0, 1)),
    ];
    let mut out = Vec::new();
    for (label, mk) in fams {
        let mut series = Series::new(label);
        let m =
            MultiTenant::build(MultiTenantParams { tenants: FIG8_TENANTS[0], vms_per_group: 3 });
        let mut p = Point::new("slice");
        let (d, _) = time_verify(&m.net, &sliced(m.policy_hint()), &mk(&m), samples);
        p.samples = d;
        series.points.push(p);
        for &tenants in FIG8_TENANTS {
            let m = MultiTenant::build(MultiTenantParams { tenants, vms_per_group: 3 });
            let mut p = Point::new(format!("whole/{tenants}"));
            let (d, _) = time_verify(&m.net, &whole(m.policy_hint()), &mk(&m), samples);
            p.samples = d;
            series.points.push(p);
        }
        out.push(series);
    }
    out
}

/// Figure 9(b): ISP — per-invariant time, slice versus whole network as
/// the number of subnets grows (peering points fixed).
pub fn fig9b(samples: usize) -> Vec<Series> {
    let mut series = Series::new("ISP invariant (5→3 peering points)");
    let isp = Isp::build(IspParams {
        peering_points: 3,
        subnets: FIG9B_SUBNETS[0],
        scrubber_behind_firewall: true,
        attacked_subnet: 1,
    });
    let mut p = Point::new("slice");
    let (d, _) =
        time_verify(&isp.net, &sliced(isp.policy_hint()), &isp.invariant_for(1, 1), samples);
    p.samples = d;
    series.points.push(p);
    for &subnets in FIG9B_SUBNETS {
        let isp = Isp::build(IspParams {
            peering_points: 3,
            subnets,
            scrubber_behind_firewall: true,
            attacked_subnet: 1,
        });
        let mut p = Point::new(format!("whole/{subnets}"));
        let (d, _) =
            time_verify(&isp.net, &whole(isp.policy_hint()), &isp.invariant_for(1, 1), samples);
        p.samples = d;
        series.points.push(p);
    }
    vec![series]
}

/// Figure 9(c): ISP — per-invariant time, slice versus whole network as
/// the number of peering points grows (subnets fixed).
pub fn fig9c(samples: usize) -> Vec<Series> {
    let mut series = Series::new("ISP invariant (75→9 subnets)");
    let isp = Isp::build(IspParams {
        peering_points: FIG9C_PEERS[0],
        subnets: 9,
        scrubber_behind_firewall: true,
        attacked_subnet: 1,
    });
    let mut p = Point::new("slice");
    let (d, _) =
        time_verify(&isp.net, &sliced(isp.policy_hint()), &isp.invariant_for(1, 0), samples);
    p.samples = d;
    series.points.push(p);
    for &peers in FIG9C_PEERS {
        let isp = Isp::build(IspParams {
            peering_points: peers,
            subnets: 9,
            scrubber_behind_firewall: true,
            attacked_subnet: 1,
        });
        let mut p = Point::new(format!("whole/{peers}"));
        let (d, _) =
            time_verify(&isp.net, &whole(isp.policy_hint()), &isp.invariant_for(1, 0), samples);
        p.samples = d;
        series.points.push(p);
    }
    vec![series]
}

/// Ablation: the two §4 scaling mechanisms, toggled independently on the
/// §5.1 datacenter. Rows: full engine (slices + symmetry), slices without
/// symmetry, whole-network with symmetry.
pub fn ablation(samples: usize) -> Vec<Series> {
    use vmn::Verifier;
    let classes = 5usize;
    let dc = Datacenter::build(dc_params(classes));
    // Per-host invariants: every host of each group must be isolated from
    // the next group. Within a group these are symmetric, so the symmetry
    // machinery collapses them to one solver run per group.
    let invs: Vec<vmn::Invariant> = (0..classes)
        .flat_map(|g| {
            let src = dc.groups[(g + 1) % classes][0];
            dc.groups[g]
                .iter()
                .take(4)
                .map(move |&dst| vmn::Invariant::NodeIsolation { src, dst })
                .collect::<Vec<_>>()
        })
        .collect();
    let mut out = Vec::new();

    // Slices + symmetry (the full engine).
    let mut s = Series::new("slices + symmetry");
    let mut p = Point::new(classes.to_string());
    p.samples = time_verify_all(&dc.net, &sliced(dc.policy_hint()), &invs, samples);
    s.points.push(p);
    out.push(s);

    // Slices, no symmetry: every invariant verified directly.
    let mut s = Series::new("slices, no symmetry");
    let mut p = Point::new(classes.to_string());
    let verifier = Verifier::new(&dc.net, sliced(dc.policy_hint())).expect("valid");
    for _ in 0..samples {
        let t0 = std::time::Instant::now();
        for inv in &invs {
            verifier.verify(inv).expect("verifies");
        }
        p.samples.push(t0.elapsed());
    }
    s.points.push(p);
    out.push(s);

    // Whole network + symmetry: no slicing.
    let mut s = Series::new("whole network + symmetry");
    let mut p = Point::new(classes.to_string());
    p.samples = time_verify_all(&dc.net, &whole(dc.policy_hint()), &invs, samples);
    s.points.push(p);
    out.push(s);
    out
}
