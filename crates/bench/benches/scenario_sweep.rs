//! Criterion bench for the incremental failure-scenario sweep: one
//! invariant checked under a growing set of failure scenarios on the §5.1
//! datacenter, incremental (assumption-based, one persistent solver per
//! slice) versus from-scratch (fresh term pool + CNF + solver per
//! scenario).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmn::{Verifier, VerifyOptions};
use vmn_bench::scenario_sweep_workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_sweep");
    group.sample_size(10);
    for &scenarios in &[3usize, 6] {
        let (net, hint, inv) = scenario_sweep_workload(scenarios);
        for (label, incremental) in [("incremental", true), ("from_scratch", false)] {
            let opts = VerifyOptions {
                policy_hint: Some(hint.clone()),
                incremental,
                ..Default::default()
            };
            let verifier = Verifier::new(&net, opts).expect("valid network");
            group.bench_with_input(BenchmarkId::new(label, scenarios), &scenarios, |b, _| {
                b.iter(|| {
                    let report = verifier.verify(&inv).expect("verifies");
                    assert_eq!(report.scenarios_checked, scenarios + 1);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
