//! Criterion bench for cross-invariant solver sessions: `verify_all`
//! over a mixed invariant fleet on the §5.1 datacenter, with the session
//! pool (one warmed-up solver per (node-set, trace-bound) key, re-entered
//! per invariant) versus a fresh solver stack per representative.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmn::{Verifier, VerifyOptions};
use vmn_bench::invariant_sweep_workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("invariant_sweep");
    group.sample_size(10);
    for &scenarios in &[2usize, 4] {
        let (net, hint, invs) = invariant_sweep_workload(scenarios);
        for (label, reuse_sessions) in [("sessions", true), ("fresh_stacks", false)] {
            let opts = VerifyOptions {
                policy_hint: Some(hint.clone()),
                reuse_sessions,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, scenarios), &scenarios, |b, _| {
                b.iter(|| {
                    // A fresh verifier per iteration: the pool is re-warmed
                    // inside the measurement, like a cold verify_all.
                    let verifier = Verifier::new(&net, opts.clone()).expect("valid network");
                    let reports = verifier.verify_all(&invs, 1).expect("verifies");
                    assert_eq!(reports.len(), invs.len());
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
