//! Criterion bench for the SMT substrate itself: SAT search, EUF
//! congruence reasoning and bit-vector lowering — the components whose
//! cost every verification figure ultimately decomposes into.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmn_smt::{Context, SatResult, Sort, TermId};

/// Pigeonhole principle encoded at the term level: n+1 items, n slots.
fn pigeonhole(n: usize) -> Context {
    let mut ctx = Context::new();
    let vars: Vec<Vec<TermId>> = (0..n + 1)
        .map(|p| (0..n).map(|h| ctx.fresh_const(format!("x{p}_{h}"), Sort::Bool)).collect())
        .collect();
    for row in &vars {
        let any = ctx.or(row);
        ctx.assert(any);
    }
    for h in 0..n {
        for p1 in 0..n + 1 {
            for p2 in (p1 + 1)..n + 1 {
                let a = ctx.not(vars[p1][h]);
                let b = ctx.not(vars[p2][h]);
                let cl = ctx.or(&[a, b]);
                ctx.assert(cl);
            }
        }
    }
    ctx
}

/// An equality chain with function congruence: f^k(a) = f^k(b) follows
/// from a = b; assert the negation.
fn euf_chain(k: usize) -> Context {
    let mut ctx = Context::new();
    let u = ctx.sorts_mut().declare("U");
    let f = ctx.declare_fun("f", &[u], u);
    let a = ctx.fresh_const("a", u);
    let b = ctx.fresh_const("b", u);
    let mut fa = a;
    let mut fb = b;
    for _ in 0..k {
        fa = ctx.apply(f, &[fa]);
        fb = ctx.apply(f, &[fb]);
    }
    let ab = ctx.eq(a, b);
    ctx.assert(ab);
    let end = ctx.eq(fa, fb);
    let neg = ctx.not(end);
    ctx.assert(neg);
    ctx
}

/// Bit-vector ordering chain: x0 < x1 < … < x_{k-1} over w bits, with
/// x0 forced above the midpoint — satisfiable only while k fits.
fn bv_chain(k: usize, w: u32) -> Context {
    let mut ctx = Context::new();
    let xs: Vec<TermId> =
        (0..k).map(|i| ctx.fresh_const(format!("x{i}"), Sort::bitvec(w))).collect();
    for win in xs.windows(2) {
        let lt = ctx.bv_ult(win[0], win[1]);
        ctx.assert(lt);
    }
    let mid = ctx.bv_const(1 << (w - 1), w);
    let hi = ctx.bv_ule(mid, xs[0]);
    ctx.assert(hi);
    ctx
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    for n in [6usize, 8] {
        group.bench_with_input(BenchmarkId::new("pigeonhole_unsat", n), &n, |b, &n| {
            b.iter(|| {
                let mut ctx = pigeonhole(n);
                assert_eq!(ctx.check(), SatResult::Unsat);
            })
        });
    }
    for k in [32usize, 128] {
        group.bench_with_input(BenchmarkId::new("euf_chain_unsat", k), &k, |b, &k| {
            b.iter(|| {
                let mut ctx = euf_chain(k);
                assert_eq!(ctx.check(), SatResult::Unsat);
            })
        });
    }
    group.bench_function("bv_chain_sat", |b| {
        b.iter(|| {
            let mut ctx = bv_chain(24, 16);
            assert_eq!(ctx.check(), SatResult::Sat);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
