//! Criterion bench for Figure 3: verifying *all* invariants (with
//! symmetry) at two policy-complexity points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmn::Verifier;
use vmn_bench::sliced;
use vmn_scenarios::datacenter::{Datacenter, DatacenterParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_all_invariants");
    group.sample_size(10);
    for classes in [5usize, 10] {
        let mut dc = Datacenter::build(DatacenterParams {
            racks: classes * 2,
            hosts_per_rack: 4,
            policy_groups: classes,
            redundant: true,
            with_failures: true,
        });
        let mut rng = StdRng::seed_from_u64(3);
        dc.inject_rule_misconfig(&mut rng, classes / 2);
        let invs = dc.isolation_invariants();
        let verifier = Verifier::new(&dc.net, sliced(dc.policy_hint())).unwrap();
        group.bench_with_input(BenchmarkId::new("classes", classes), &classes, |b, _| {
            b.iter(|| {
                let reports = verifier.verify_all(&invs, 1).unwrap();
                assert_eq!(reports.len(), invs.len());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
