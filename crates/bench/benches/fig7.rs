//! Criterion bench for Figure 7: enterprise network, slice versus
//! whole-network verification of the private-subnet invariant.

use criterion::{criterion_group, criterion_main, Criterion};
use vmn::Verifier;
use vmn_bench::{sliced, whole};
use vmn_scenarios::enterprise::{Enterprise, EnterpriseParams, SubnetKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_enterprise");
    group.sample_size(10);

    let e = Enterprise::build(EnterpriseParams { subnets: 3, hosts_per_subnet: 2 });
    let inv = e.invariant_for(SubnetKind::Private);
    let v_slice = Verifier::new(&e.net, sliced(e.policy_hint())).unwrap();
    group.bench_function("slice", |b| {
        b.iter(|| {
            let r = v_slice.verify(&inv).unwrap();
            assert!(r.verdict.holds());
        })
    });
    let v_whole = Verifier::new(&e.net, whole(e.policy_hint())).unwrap();
    group.bench_function("whole/smallest", |b| {
        b.iter(|| {
            let r = v_whole.verify(&inv).unwrap();
            assert!(r.verdict.holds());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
