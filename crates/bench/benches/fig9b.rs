//! Criterion bench for Figure 9(b): ISP, slice versus whole network as
//! subnets grow (smallest whole-network point).

use criterion::{criterion_group, criterion_main, Criterion};
use vmn::Verifier;
use vmn_bench::{sliced, whole};
use vmn_scenarios::isp::{Isp, IspParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9b_isp_subnets");
    group.sample_size(10);

    let isp = Isp::build(IspParams {
        peering_points: 3,
        subnets: 3,
        scrubber_behind_firewall: true,
        attacked_subnet: 1,
    });
    let inv = isp.invariant_for(1, 1);
    let v_slice = Verifier::new(&isp.net, sliced(isp.policy_hint())).unwrap();
    group.bench_function("slice", |b| {
        b.iter(|| {
            let r = v_slice.verify(&inv).unwrap();
            assert!(r.verdict.holds());
        })
    });
    let v_whole = Verifier::new(&isp.net, whole(isp.policy_hint())).unwrap();
    group.bench_function("whole/3-subnets", |b| {
        b.iter(|| {
            let r = v_whole.verify(&inv).unwrap();
            assert!(r.verdict.holds());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
