//! Criterion bench for the BDD dataplane fast path: the stateless-heavy
//! estate (`fastpath_workload`) verified end-to-end under `Backend::Auto`
//! (pod invariants route around the solver) against `Backend::Smt` (the
//! pre-fast-path engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmn::{Backend, Verifier, VerifyOptions};
use vmn_bench::fastpath_workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpath_sweep");
    group.sample_size(10);
    for &pods in &[4usize, 8] {
        let (net, hint, invs) = fastpath_workload(pods);
        for (label, backend) in [("auto", Backend::Auto), ("forced_smt", Backend::Smt)] {
            let opts =
                VerifyOptions { policy_hint: Some(hint.clone()), backend, ..Default::default() };
            group.bench_with_input(BenchmarkId::new(label, pods), &pods, |b, _| {
                b.iter(|| {
                    // A fresh verifier per iteration: predicate caches and
                    // sessions re-warm inside the measurement, like a cold
                    // sweep. `verify` per invariant, not `verify_all` —
                    // symmetry would collapse the identical pods.
                    let verifier = Verifier::new(&net, opts.clone()).expect("valid network");
                    for inv in &invs {
                        let report = verifier.verify(inv).expect("verifies");
                        assert!(report.verdict.holds());
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
