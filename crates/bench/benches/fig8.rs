//! Criterion bench for Figure 8: multi-tenant datacenter, slice versus
//! whole-network verification of the Priv-Priv invariant.

use criterion::{criterion_group, criterion_main, Criterion};
use vmn::Verifier;
use vmn_bench::{sliced, whole};
use vmn_scenarios::multi_tenant::{MultiTenant, MultiTenantParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_multi_tenant");
    group.sample_size(10);

    let m = MultiTenant::build(MultiTenantParams { tenants: 2, vms_per_group: 3 });
    let inv = m.priv_priv(0, 1);
    let v_slice = Verifier::new(&m.net, sliced(m.policy_hint())).unwrap();
    group.bench_function("slice", |b| {
        b.iter(|| {
            let r = v_slice.verify(&inv).unwrap();
            assert!(r.verdict.holds());
        })
    });
    let v_whole = Verifier::new(&m.net, whole(m.policy_hint())).unwrap();
    group.bench_function("whole/2-tenants", |b| {
        b.iter(|| {
            let r = v_whole.verify(&inv).unwrap();
            assert!(r.verdict.holds());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
