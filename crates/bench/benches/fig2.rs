//! Criterion bench for Figure 2: per-invariant verification time on the
//! §5.1 datacenter, for the Rules misconfiguration (violated + holds).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmn::Verifier;
use vmn_bench::sliced;
use vmn_scenarios::datacenter::{Datacenter, DatacenterParams};

fn params() -> DatacenterParams {
    DatacenterParams {
        racks: 10,
        hosts_per_rack: 4,
        policy_groups: 5,
        redundant: true,
        with_failures: true,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_rules");
    group.sample_size(10);

    let mut dc = Datacenter::build(params());
    let mut rng = StdRng::seed_from_u64(2);
    let pairs = dc.inject_rule_misconfig(&mut rng, 1);
    let verifier = Verifier::new(&dc.net, sliced(dc.policy_hint())).unwrap();
    let violated = dc.pair_isolation(pairs[0].0, pairs[0].1);
    let clean_pair = (0..5)
        .flat_map(|a| (0..5).map(move |b| (a, b)))
        .find(|&(a, b)| a != b && !pairs.contains(&(a, b)))
        .unwrap();
    let holds = dc.pair_isolation(clean_pair.0, clean_pair.1);

    group.bench_function("violated", |b| {
        b.iter(|| {
            let r = verifier.verify(&violated).unwrap();
            assert!(!r.verdict.holds());
        })
    });
    group.bench_function("holds", |b| {
        b.iter(|| {
            let r = verifier.verify(&holds).unwrap();
            assert!(r.verdict.holds());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
