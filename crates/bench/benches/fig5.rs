//! Criterion bench for Figure 5: all data-isolation invariants (with
//! symmetry) at the smallest policy-complexity point.

use criterion::{criterion_group, criterion_main, Criterion};
use vmn::Verifier;
use vmn_bench::sliced;
use vmn_scenarios::data_isolation::{DataIsolation, DataIsolationParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_all_data_isolation");
    group.sample_size(10);
    let d = DataIsolation::build(DataIsolationParams { policy_groups: 4, clients_per_group: 1 });
    let invs = d.invariants();
    let verifier = Verifier::new(&d.net, sliced(d.policy_hint())).unwrap();
    group.bench_function("classes/4", |b| {
        b.iter(|| {
            let reports = verifier.verify_all(&invs, 1).unwrap();
            assert_eq!(reports.len(), invs.len());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
