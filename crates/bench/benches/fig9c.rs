//! Criterion bench for Figure 9(c): ISP, slice versus whole network as
//! peering points grow (smallest whole-network point).

use criterion::{criterion_group, criterion_main, Criterion};
use vmn::Verifier;
use vmn_bench::{sliced, whole};
use vmn_scenarios::isp::{Isp, IspParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9c_isp_peering");
    group.sample_size(10);

    let isp = Isp::build(IspParams {
        peering_points: 1,
        subnets: 9,
        scrubber_behind_firewall: true,
        attacked_subnet: 1,
    });
    let inv = isp.invariant_for(1, 0);
    let v_slice = Verifier::new(&isp.net, sliced(isp.policy_hint())).unwrap();
    group.bench_function("slice", |b| {
        b.iter(|| {
            let r = v_slice.verify(&inv).unwrap();
            assert!(r.verdict.holds());
        })
    });
    let v_whole = Verifier::new(&isp.net, whole(isp.policy_hint())).unwrap();
    group.bench_function("whole/1-peer", |b| {
        b.iter(|| {
            let r = v_whole.verify(&inv).unwrap();
            assert!(r.verdict.holds());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
