//! Criterion bench for slice-similarity scenario clustering: one
//! invariant swept over wildly-divergent per-scenario slices
//! (`divergent_slice_workload`), with the clustered engine (the default
//! threshold) against the single-union sweep (`cluster_threshold: 0.0`)
//! and the per-scenario extreme (`1.0`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmn::{Verifier, VerifyOptions};
use vmn_bench::divergent_slice_workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sweep");
    group.sample_size(10);
    for &groups in &[2usize, 4] {
        let (net, hint, inv) = divergent_slice_workload(groups);
        let series = [
            ("clustered", VerifyOptions::default().cluster_threshold),
            ("one_union", 0.0),
            ("per_scenario", 1.0),
        ];
        for (label, threshold) in series {
            let opts = VerifyOptions {
                policy_hint: Some(hint.clone()),
                cluster_threshold: threshold,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, groups), &groups, |b, _| {
                b.iter(|| {
                    // A fresh verifier per iteration: sessions re-warm
                    // inside the measurement, like a cold sweep.
                    let verifier = Verifier::new(&net, opts.clone()).expect("valid network");
                    let report = verifier.verify(&inv).expect("verifies");
                    assert!(report.verdict.holds());
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
