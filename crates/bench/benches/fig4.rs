//! Criterion bench for Figure 4: per-invariant data-isolation time
//! (violated vs holds) at the smallest policy-complexity point.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmn::Verifier;
use vmn_bench::sliced;
use vmn_scenarios::data_isolation::{DataIsolation, DataIsolationParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_data_isolation");
    group.sample_size(10);
    let params = DataIsolationParams { policy_groups: 4, clients_per_group: 1 };

    let mut d = DataIsolation::build(params.clone());
    let mut rng = StdRng::seed_from_u64(4);
    let hit = d.inject_cache_misconfig(&mut rng, 1)[0];
    let inv = d.private_isolation(hit, (hit + 1) % 4);
    let verifier = Verifier::new(&d.net, sliced(d.policy_hint())).unwrap();
    group.bench_function("violated", |b| {
        b.iter(|| {
            let r = verifier.verify(&inv).unwrap();
            assert!(!r.verdict.holds());
        })
    });

    let d2 = DataIsolation::build(params);
    let inv2 = d2.private_isolation(0, 1);
    let verifier2 = Verifier::new(&d2.net, sliced(d2.policy_hint())).unwrap();
    group.bench_function("holds", |b| {
        b.iter(|| {
            let r = verifier2.verify(&inv2).unwrap();
            assert!(r.verdict.holds());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
