//! ROBDD-backed rule-arm reachability: the [`vmn_analysis::ArmDecider`]
//! implementation the lint pass uses to prove rule arms dead.
//!
//! Unlike the dataplane's transfer compilation (stateless models only),
//! this decider handles *every* model by over-approximating what it
//! cannot express precisely:
//!
//! * a `StateContains` read of a state set some rule inserts into
//!   becomes a fresh free boolean variable (the entry may or may not be
//!   present — both worlds stay satisfiable);
//! * a read of a state set no rule ever inserts into is `false`
//!   (history-defined state starts empty and stays empty);
//! * origin guards get their own 32-bit variable block — in stateful
//!   models replayed packets can carry an origin that differs from the
//!   current source, so the dataplane's origin-reads-source-bits
//!   shortcut would be unsound here;
//! * `ProtoIs` is `true` (single modelled transport, as everywhere).
//!
//! Over-approximation only ever *adds* satisfying assignments, so an
//! UNSAT verdict — `guard[arm] ∧ ¬guard[0] ∧ … ∧ ¬guard[arm-1] ∧ excl`
//! has no model — proves the arm unreachable in every concrete
//! execution, which is exactly the soundness contract
//! [`vmn_analysis::ArmDecider`] demands. A SAT verdict is merely "not
//! provably dead".

use crate::{Bdd, Ref};
use std::collections::{BTreeSet, HashMap};
use vmn_analysis::ArmDecider;
use vmn_mbox::{Action, Guard, MboxModel};

/// Variable layout: header fields first (matching the dataplane), then
/// a dedicated origin block, then oracles and state-read scratch
/// variables allocated on demand.
const SRC_BASE: u32 = 0;
const DST_BASE: u32 = 32;
const SPORT_BASE: u32 = 64;
const DPORT_BASE: u32 = 80;
const ORIGIN_BASE: u32 = 96;
const DYN_BASE: u32 = 128;

fn field_vars(base: u32, width: u32) -> Vec<u32> {
    (base..base + width).collect()
}

/// The decision procedure. Construction is free; each [`ArmDecider`]
/// query builds the guard chain in a per-model manager (models are tiny
/// — tens of BDD nodes — so no cross-call caching is needed).
#[derive(Default)]
pub struct BddArmDecider;

struct ModelCtx<'m> {
    man: Bdd,
    model: &'m MboxModel,
    /// State sets with at least one `Insert` anywhere in the model.
    written: BTreeSet<&'m str>,
    oracle_var: HashMap<&'m str, u32>,
    /// One free variable per (state, key-expr) read shape: the same
    /// lookup repeated across arms must agree, distinct lookups are
    /// independent.
    state_var: HashMap<String, u32>,
    next_dyn: u32,
}

impl<'m> ModelCtx<'m> {
    fn new(model: &'m MboxModel) -> ModelCtx<'m> {
        let written = model
            .rules
            .iter()
            .flat_map(|r| r.actions.iter())
            .filter_map(|a| match a {
                Action::Insert(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        let oracle_var: HashMap<&str, u32> = model
            .oracles
            .iter()
            .enumerate()
            .map(|(i, o)| (o.name.as_str(), DYN_BASE + i as u32))
            .collect();
        let next_dyn = DYN_BASE + oracle_var.len() as u32;
        ModelCtx {
            man: Bdd::new(),
            model,
            written,
            oracle_var,
            state_var: HashMap::new(),
            next_dyn,
        }
    }

    /// Mirrors `Dataplane::compile_guard` for the shared cases; the
    /// differences (origin block, state reads) are the ones documented
    /// at module level.
    fn compile(&mut self, g: &Guard) -> Ref {
        match g {
            Guard::True => Bdd::TRUE,
            Guard::Not(inner) => {
                let f = self.compile(inner);
                self.man.not(f)
            }
            Guard::And(gs) => {
                let mut r = Bdd::TRUE;
                for inner in gs {
                    let f = self.compile(inner);
                    r = self.man.and(r, f);
                }
                r
            }
            Guard::Or(gs) => {
                let mut r = Bdd::FALSE;
                for inner in gs {
                    let f = self.compile(inner);
                    r = self.man.or(r, f);
                }
                r
            }
            Guard::SrcIn(p) => self.prefix_pred(SRC_BASE, *p),
            Guard::DstIn(p) => self.prefix_pred(DST_BASE, *p),
            Guard::OriginIn(p) => self.prefix_pred(ORIGIN_BASE, *p),
            Guard::SrcIs(a) => self.man.bits_eq(&field_vars(SRC_BASE, 32), a.0 as u64),
            Guard::DstIs(a) => self.man.bits_eq(&field_vars(DST_BASE, 32), a.0 as u64),
            Guard::OriginIs(a) => self.man.bits_eq(&field_vars(ORIGIN_BASE, 32), a.0 as u64),
            Guard::SrcPortIs(p) => self.man.bits_eq(&field_vars(SPORT_BASE, 16), *p as u64),
            Guard::DstPortIs(p) => self.man.bits_eq(&field_vars(DPORT_BASE, 16), *p as u64),
            Guard::ProtoIs(_) => Bdd::TRUE,
            Guard::AclMatch(name) => {
                let pairs = self.model.acl_pairs(name).unwrap_or(&[]).to_vec();
                let mut r = Bdd::FALSE;
                for (sp, dp) in pairs {
                    let s = self.prefix_pred(SRC_BASE, sp);
                    let d = self.prefix_pred(DST_BASE, dp);
                    let both = self.man.and(s, d);
                    r = self.man.or(r, both);
                }
                r
            }
            Guard::Oracle(name) => {
                let v = self.oracle_var[name.as_str()];
                self.man.var(v)
            }
            Guard::StateContains { state, key } => {
                if !self.written.contains(state.as_str()) {
                    return Bdd::FALSE;
                }
                let shape = format!("{state}\u{0}{key:?}");
                let v = *self.state_var.entry(shape).or_insert_with(|| {
                    let v = self.next_dyn;
                    self.next_dyn += 1;
                    v
                });
                self.man.var(v)
            }
        }
    }

    fn prefix_pred(&mut self, base: u32, p: vmn_net::Prefix) -> Ref {
        self.man.bits_prefix(&field_vars(base, 32), p.addr().0 as u64, p.len() as usize)
    }

    /// At most one yes within each exclusive oracle group.
    fn exclusivity(&mut self) -> Ref {
        let mut excl = Bdd::TRUE;
        for group in &self.model.exclusive_oracles {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    let va = self.man.var(self.oracle_var[a.as_str()]);
                    let vb = self.man.var(self.oracle_var[b.as_str()]);
                    let both = self.man.and(va, vb);
                    let not_both = self.man.not(both);
                    excl = self.man.and(excl, not_both);
                }
            }
        }
        excl
    }
}

impl ArmDecider for BddArmDecider {
    fn arm_reachable(&mut self, model: &MboxModel, arm: usize) -> Option<bool> {
        if arm >= model.rules.len() {
            return None;
        }
        let mut ctx = ModelCtx::new(model);
        let mut fired = ctx.compile(&model.rules[arm].guard);
        for earlier in &model.rules[..arm] {
            let g = ctx.compile(&earlier.guard);
            let ng = ctx.man.not(g);
            fired = ctx.man.and(fired, ng);
        }
        let excl = ctx.exclusivity();
        fired = ctx.man.and(fired, excl);
        Some(fired != Bdd::FALSE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn_analysis::analyze_with;
    use vmn_mbox::{models, KeyExpr};
    use vmn_net::Prefix;

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn subsumed_guard_is_proven_dead() {
        // The seeded mutant from the issue: /16 is subsumed by the /8
        // before it, so arm 1 can never fire — invisible to constant
        // folding, provable by the BDD.
        let m = vmn_mbox::MboxModel::new("mutant")
            .rule(Guard::SrcIn(px("10.0.0.0/8")), vec![Action::Forward])
            .rule(Guard::SrcIn(px("10.0.0.0/16")), vec![Action::Drop])
            .rule(Guard::True, vec![Action::Drop]);
        assert!(m.validate().is_ok());
        let a = analyze_with(&m, &mut BddArmDecider);
        assert_eq!(a.dead_arms, vec![1]);
        assert!(a.diagnostics.iter().any(|d| d.code == "dead-arm" && d.rule == Some(1)));

        // Reordered, both arms are reachable (the /8 catches what the
        // /16 does not).
        let ok = vmn_mbox::MboxModel::new("ok")
            .rule(Guard::SrcIn(px("10.0.0.0/16")), vec![Action::Forward])
            .rule(Guard::SrcIn(px("10.0.0.0/8")), vec![Action::Drop])
            .rule(Guard::True, vec![Action::Drop]);
        assert!(analyze_with(&ok, &mut BddArmDecider).dead_arms.is_empty());
    }

    #[test]
    fn exclusive_oracles_kill_conjunction_arms() {
        // An arm demanding two mutually-exclusive oracles both answer
        // yes is unreachable under the output constraint.
        let m = vmn_mbox::MboxModel::new("m")
            .oracle("http?")
            .oracle("dns?")
            .exclusive(["http?", "dns?"])
            .rule(
                Guard::And(vec![Guard::Oracle("http?".into()), Guard::Oracle("dns?".into())]),
                vec![Action::Drop],
            )
            .rule(Guard::True, vec![Action::Forward]);
        assert!(m.validate().is_ok());
        let a = analyze_with(&m, &mut BddArmDecider);
        assert_eq!(a.dead_arms, vec![0]);
    }

    #[test]
    fn state_reads_stay_satisfiable_in_stateful_models() {
        // The learning firewall's state read must NOT be proven dead:
        // the free variable keeps both worlds open. And repeating the
        // same lookup shape must be consistent — `¬contains ∧ contains`
        // is unsatisfiable.
        let fw = models::learning_firewall("fw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]);
        let a = analyze_with(&fw, &mut BddArmDecider);
        assert!(a.dead_arms.is_empty(), "all firewall arms are live, got {:?}", a.dead_arms);

        let contains = Guard::StateContains { state: "s".into(), key: KeyExpr::Flow };
        let m = vmn_mbox::MboxModel::new("m")
            .state("s", KeyExpr::Flow)
            .rule(contains.clone(), vec![Action::Forward])
            .rule(contains.clone(), vec![Action::Insert("s".into()), Action::Drop])
            .rule(Guard::True, vec![Action::Insert("s".into()), Action::Forward]);
        assert!(m.validate().is_ok());
        // Arm 1 repeats arm 0's exact lookup, so "it holds now but did
        // not before" is contradictory — dead. Arm 2 (the negation
        // world) stays live.
        let a = analyze_with(&m, &mut BddArmDecider);
        assert_eq!(a.dead_arms, vec![1]);
    }

    #[test]
    fn whole_library_stays_fully_live_under_the_decider() {
        // No built-in model (standard configs) has a dead arm — the
        // lint-clean guarantee extends to the precise decider.
        let lib = vec![
            models::learning_firewall("fw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]),
            models::acl_firewall("aclfw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]),
            models::nat("nat", px("10.0.0.0/8"), "1.2.3.4".parse().unwrap()),
            models::load_balancer(
                "lb",
                "10.0.0.9".parse().unwrap(),
                vec!["10.0.0.1".parse().unwrap()],
            ),
            models::idps("idps"),
            models::ids_monitor("ids"),
            models::scrubber("sb"),
            models::content_cache(
                "cache",
                [px("10.1.0.0/16")],
                vec![(px("10.3.0.0/16"), px("10.1.0.0/16"))],
            ),
            models::application_firewall("appfw", &["skype?"], &["skype?", "jabber?"]),
            models::wan_optimizer("wanopt"),
            models::gateway("gw"),
        ];
        for m in lib {
            let a = analyze_with(&m, &mut BddArmDecider);
            assert!(a.dead_arms.is_empty(), "{}: {:?}", m.type_name, a.dead_arms);
            assert_eq!(a.inferred_parallelism, m.parallelism, "{}", m.type_name);
        }
    }
}
