//! Header-space reachability over the static datapath plus *stateless*
//! middlebox models.
//!
//! The [`Dataplane`] compiles two kinds of predicates into a shared
//! [`Bdd`] manager:
//!
//! * a **transfer predicate** per middlebox — the set of headers the
//!   box forwards, with classification oracles existentially quantified
//!   under the model's exclusivity constraints (scenario-independent,
//!   cached per device), and
//! * a **delivery predicate list** per (emitting terminal, failure
//!   scenario) — where the static datapath delivers each destination
//!   class, built from exactly the same [`HeaderClasses`] interval sweep
//!   the SMT encoder uses, so both backends see the same network.
//!
//! A [`Query`] is answered by composing these predicates breadth-first
//! from each eligible sender up to a hop budget. On violation, a
//! satisfying header is pulled out of the reaching set and re-walked
//! concretely through the [`TransferFunction`] to recover the terminal
//! path, the fired rule, and an oracle valuation per hop — everything a
//! simulator-replayable trace needs.
//!
//! Only stateless models compile: any [`Guard::StateContains`] read or
//! state-mutating/rewriting action makes the behaviour history- or
//! packet-modification-dependent, which header-set composition cannot
//! express. [`statefulness`] is the single source of truth for that
//! classification; the slice-level routing decision in the `vmn` crate
//! is built on it.

use crate::{Bdd, BddStats, Ref};
use std::collections::HashMap;
use std::fmt;
use vmn_mbox::{Action, Guard, MboxModel};
use vmn_net::{
    Address, FailureScenario, ForwardingTables, Header, HeaderClasses, Link, NetError, NodeId,
    Topology, TransferFunction,
};

/// BDD variable layout, most significant bit first per field. Source and
/// port bits sit above destination bits only by convention; oracle
/// scratch variables go last so quantifying them away is cheap.
const SRC_BASE: u32 = 0;
const DST_BASE: u32 = 32;
const SPORT_BASE: u32 = 64;
const DPORT_BASE: u32 = 80;
const ORACLE_BASE: u32 = 96;

/// Mirrors the encoder's `EPHEMERAL_BASE`: host sends use source ports
/// below the range reserved for fresh NAT rewrites.
const EPHEMERAL_BASE: u16 = 32768;

/// Scenario identity for the delivery cache (`FailureScenario` itself is
/// not hashable).
type ScenarioKey = (Vec<NodeId>, Vec<Link>);

fn scenario_key(s: &FailureScenario) -> ScenarioKey {
    (s.failed_nodes.iter().copied().collect(), s.failed_links.iter().copied().collect())
}

/// Why `model` cannot be handled by the BDD backend, or `None` if it is
/// a pure forwarding/ACL/classification box.
///
/// A thin delegate to [`vmn_analysis::bdd_support`] — the analysis
/// crate owns the classification so the slice router, the lint pass,
/// and this backend can never disagree. Conservative by construction:
/// every state read and every packet-rewriting action disqualifies,
/// because a transfer *predicate* can express neither history
/// dependence nor header modification. `HavocTag` is allowed — the
/// payload tag is not part of the reachable header space.
pub fn statefulness(model: &MboxModel) -> Option<vmn_analysis::UnsupportedByBdd> {
    vmn_analysis::bdd_support(model)
}

/// Errors from the BDD dataplane backend.
#[derive(Clone, Debug)]
pub enum DataplaneError {
    /// Static datapath error (forwarding loop etc.) surfaced while
    /// building delivery predicates or re-walking a witness.
    Net(NetError),
    /// The query touched a model the backend cannot express; routing
    /// should have kept it on the SMT path.
    Unsupported(String),
    /// The symbolic search found a violating header but the concrete
    /// re-walk could not reproduce it — an internal invariant breach,
    /// never silently ignored.
    Witness(String),
}

impl fmt::Display for DataplaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataplaneError::Net(e) => write!(f, "network error: {e}"),
            DataplaneError::Unsupported(m) => write!(f, "unsupported by bdd backend: {m}"),
            DataplaneError::Witness(m) => write!(f, "witness reconstruction failed: {m}"),
        }
    }
}

impl std::error::Error for DataplaneError {}

impl From<NetError> for DataplaneError {
    fn from(e: NetError) -> DataplaneError {
        DataplaneError::Net(e)
    }
}

/// A reachability question over one slice and scenario. Both forms ask
/// "does any packet make it to `dst`?" — the invariant-specific
/// predicate is folded into the initial header set.
#[derive(Clone, Debug)]
pub enum Query {
    /// A packet whose source address is `saddr` reaches `dst` — the
    /// single-packet core of node/flow/data isolation on stateless
    /// slices (where `origin(p) = src(p)` for every packet in flight).
    SourceReaches { saddr: Address, dst: NodeId },
    /// A packet reaches `dst` without ever being processed by a member
    /// of `through` (traversal invariants); `from` restricts the sender.
    Bypass { dst: NodeId, through: Vec<NodeId>, from: Option<NodeId> },
}

impl Query {
    fn dst(&self) -> NodeId {
        match self {
            Query::SourceReaches { dst, .. } | Query::Bypass { dst, .. } => *dst,
        }
    }

    fn through(&self) -> &[NodeId] {
        match self {
            Query::SourceReaches { .. } => &[],
            Query::Bypass { through, .. } => through,
        }
    }
}

/// One middlebox processing on a witness path.
#[derive(Clone, Debug)]
pub struct Hop {
    pub mbox: NodeId,
    /// Index of the model rule that fired.
    pub rule: usize,
    /// A full oracle valuation under which that rule fires and forwards.
    pub oracles: HashMap<String, bool>,
}

/// A concrete violation: `header`, sent by `sender`, arrives at the last
/// terminal of `path` after the middlebox processings in `hops`.
/// `path` lists terminals in order — sender, each hop's middlebox, dst.
#[derive(Clone, Debug)]
pub struct Witness {
    pub sender: NodeId,
    pub header: Header,
    pub path: Vec<NodeId>,
    pub hops: Vec<Hop>,
}

/// Result of a [`Dataplane::check`].
#[derive(Clone, Debug)]
pub enum Outcome {
    Holds,
    Violated(Box<Witness>),
}

/// The BDD dataplane: one manager plus the per-device and per-scenario
/// predicate caches. Build once per network; `check` per query.
pub struct Dataplane {
    man: Bdd,
    classes: HeaderClasses,
    /// Forwarded-header predicate per middlebox (scenario-independent:
    /// stateless models behave identically under every scenario in which
    /// they are alive).
    transfer: HashMap<NodeId, Ref>,
    /// Delivery predicates per (emitter, scenario): where each
    /// destination-address interval lands. Built over *all* terminals;
    /// queries filter to their slice, so the cache is slice-independent.
    delivery: HashMap<(NodeId, ScenarioKey), Vec<(NodeId, Ref)>>,
}

fn field_vars(base: u32, width: u32) -> Vec<u32> {
    (base..base + width).collect()
}

impl Dataplane {
    /// Builds the dataplane for a network: header classes come from the
    /// same prefix set the SMT encoder splits on.
    pub fn new(topo: &Topology, tables: &ForwardingTables) -> Dataplane {
        Dataplane {
            man: Bdd::new(),
            classes: HeaderClasses::from_network(topo, tables),
            transfer: HashMap::new(),
            delivery: HashMap::new(),
        }
    }

    /// Cumulative manager counters (nodes, cache traffic) for reports.
    pub fn stats(&self) -> BddStats {
        self.man.stats()
    }

    /// The forwarded-header predicate of middlebox `m`.
    fn transfer_predicate(&mut self, m: NodeId, model: &MboxModel) -> Result<Ref, DataplaneError> {
        if let Some(&r) = self.transfer.get(&m) {
            return Ok(r);
        }
        if let Some(why) = statefulness(model) {
            return Err(DataplaneError::Unsupported(format!("model {:?}: {why}", model.type_name)));
        }
        let oracle_var: HashMap<&str, u32> = model
            .oracles
            .iter()
            .enumerate()
            .map(|(i, o)| (o.name.as_str(), ORACLE_BASE + i as u32))
            .collect();
        // First-match semantics: rule r fires iff its guard holds and no
        // earlier guard does.
        let mut none_before = Bdd::TRUE;
        let mut fwd = Bdd::FALSE;
        for rule in &model.rules {
            let g = self.compile_guard(model, &rule.guard, &oracle_var)?;
            let fired = self.man.and(none_before, g);
            if rule.actions.contains(&Action::Forward) {
                fwd = self.man.or(fwd, fired);
            }
            let ng = self.man.not(g);
            none_before = self.man.and(none_before, ng);
        }
        // Oracle output constraints: within an exclusive group, at most
        // one oracle answers yes.
        let mut excl = Bdd::TRUE;
        for group in &model.exclusive_oracles {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    let va = self.man.var(oracle_var[a.as_str()]);
                    let vb = self.man.var(oracle_var[b.as_str()]);
                    let both = self.man.and(va, vb);
                    let not_both = self.man.not(both);
                    excl = self.man.and(excl, not_both);
                }
            }
        }
        let constrained = self.man.and(fwd, excl);
        let oracle_ids: Vec<u32> = oracle_var.values().copied().collect();
        let r = self.man.exists(constrained, &oracle_ids);
        self.transfer.insert(m, r);
        Ok(r)
    }

    /// Compiles a model guard over the header variables. Mirrors the SMT
    /// encoder's `guard_term`: protocol guards are compile-time true
    /// (single modelled transport), and origin guards read the source
    /// bits — valid precisely because on stateless slices no box ever
    /// separates `origin(p)` from `src(p)`.
    fn compile_guard(
        &mut self,
        model: &MboxModel,
        g: &Guard,
        oracle_var: &HashMap<&str, u32>,
    ) -> Result<Ref, DataplaneError> {
        Ok(match g {
            Guard::True => Bdd::TRUE,
            Guard::Not(inner) => {
                let f = self.compile_guard(model, inner, oracle_var)?;
                self.man.not(f)
            }
            Guard::And(gs) => {
                let mut r = Bdd::TRUE;
                for inner in gs {
                    let f = self.compile_guard(model, inner, oracle_var)?;
                    r = self.man.and(r, f);
                }
                r
            }
            Guard::Or(gs) => {
                let mut r = Bdd::FALSE;
                for inner in gs {
                    let f = self.compile_guard(model, inner, oracle_var)?;
                    r = self.man.or(r, f);
                }
                r
            }
            Guard::SrcIn(p) | Guard::OriginIn(p) => self.prefix_pred(SRC_BASE, *p),
            Guard::DstIn(p) => self.prefix_pred(DST_BASE, *p),
            Guard::SrcIs(a) | Guard::OriginIs(a) => {
                self.man.bits_eq(&field_vars(SRC_BASE, 32), a.0 as u64)
            }
            Guard::DstIs(a) => self.man.bits_eq(&field_vars(DST_BASE, 32), a.0 as u64),
            Guard::SrcPortIs(p) => self.man.bits_eq(&field_vars(SPORT_BASE, 16), *p as u64),
            Guard::DstPortIs(p) => self.man.bits_eq(&field_vars(DPORT_BASE, 16), *p as u64),
            Guard::ProtoIs(_) => Bdd::TRUE,
            Guard::AclMatch(name) => {
                let pairs = model.acl_pairs(name).expect("validated model").to_vec();
                let mut r = Bdd::FALSE;
                for (sp, dp) in pairs {
                    let s = self.prefix_pred(SRC_BASE, sp);
                    let d = self.prefix_pred(DST_BASE, dp);
                    let both = self.man.and(s, d);
                    r = self.man.or(r, both);
                }
                r
            }
            Guard::Oracle(name) => self.man.var(oracle_var[name.as_str()]),
            Guard::StateContains { state, .. } => {
                return Err(DataplaneError::Unsupported(format!(
                    "model {:?} reads state set {state:?}",
                    model.type_name
                )))
            }
        })
    }

    fn prefix_pred(&mut self, base: u32, p: vmn_net::Prefix) -> Ref {
        self.man.bits_prefix(&field_vars(base, 32), p.addr().0 as u64, p.len() as usize)
    }

    /// Where the static datapath delivers terminal `f`'s emissions under
    /// `scenario`, as (target, destination-predicate) pairs. The interval
    /// sweep over header classes is identical to the encoder's
    /// `add_scenario`, so both backends agree on every delivery.
    fn delivery_predicates(
        &mut self,
        topo: &Topology,
        tables: &ForwardingTables,
        scenario: &FailureScenario,
        f: NodeId,
    ) -> Result<Vec<(NodeId, Ref)>, DataplaneError> {
        let key = (f, scenario_key(scenario));
        if let Some(cached) = self.delivery.get(&key) {
            return Ok(cached.clone());
        }
        let tf = TransferFunction::new(topo, tables, scenario);
        let mut intervals: Vec<(u32, u32, Option<NodeId>)> = Vec::new();
        for ci in 0..self.classes.num_classes() {
            let rep = self.classes.representative(ci);
            let result = tf.deliver(f, rep)?;
            let start = rep.0;
            let end = if ci + 1 < self.classes.num_classes() {
                self.classes.representative(ci + 1).0 - 1
            } else {
                u32::MAX
            };
            match intervals.last_mut() {
                Some(last) if last.2 == result && last.1.wrapping_add(1) == start => {
                    last.1 = end;
                }
                _ => intervals.push((start, end, result)),
            }
        }
        let dst_vars = field_vars(DST_BASE, 32);
        let mut per_target: Vec<(NodeId, Ref)> = Vec::new();
        for (start, end, target) in intervals {
            let Some(target) = target else { continue };
            let pred = self.man.bits_in_range(&dst_vars, start as u64, end as u64);
            match per_target.iter_mut().find(|(t, _)| *t == target) {
                Some((_, existing)) => *existing = self.man.or(*existing, pred),
                None => per_target.push((target, pred)),
            }
        }
        self.delivery.insert(key, per_target.clone());
        Ok(per_target)
    }

    /// Answers `query` on `slice` under `scenario` by predicate
    /// composition from each eligible sender, following headers through
    /// at most `hop_budget` middlebox processings (the same bound the
    /// SMT trace encoding uses, so neither backend can out-search the
    /// other).
    #[allow(clippy::too_many_arguments)]
    pub fn check(
        &mut self,
        topo: &Topology,
        tables: &ForwardingTables,
        models: &HashMap<NodeId, MboxModel>,
        scenario: &FailureScenario,
        slice: &[NodeId],
        query: &Query,
        hop_budget: usize,
    ) -> Result<Outcome, DataplaneError> {
        let dst = query.dst();
        let through = query.through().to_vec();
        let senders: Vec<NodeId> = slice
            .iter()
            .copied()
            .filter(|&n| topo.node(n).kind.is_host() && !scenario.is_failed(n))
            .filter(|&n| match query {
                Query::Bypass { from: Some(f), .. } => n == *f,
                _ => true,
            })
            .collect();

        let sport_ok = self.man.bits_le(&field_vars(SPORT_BASE, 16), (EPHEMERAL_BASE - 1) as u64);
        for sender in senders {
            // Host send axioms: source address is one of the sender's
            // own, source port below the ephemeral range; isolation
            // queries additionally pin the source address.
            let mut own = Bdd::FALSE;
            for a in &topo.node(sender).addresses {
                let eq = self.man.bits_eq(&field_vars(SRC_BASE, 32), a.0 as u64);
                own = self.man.or(own, eq);
            }
            let mut init = self.man.and(own, sport_ok);
            if let Query::SourceReaches { saddr, .. } = query {
                let pinned = self.man.bits_eq(&field_vars(SRC_BASE, 32), saddr.0 as u64);
                init = self.man.and(init, pinned);
            }
            if init == Bdd::FALSE {
                continue;
            }

            let mut frontier: Vec<(NodeId, Ref)> = vec![(sender, init)];
            let mut seen: HashMap<NodeId, Ref> = HashMap::new();
            for hop in 0..=hop_budget {
                let mut next: Vec<(NodeId, Ref)> = Vec::new();
                for (loc, set) in std::mem::take(&mut frontier) {
                    for (target, pred) in self.delivery_predicates(topo, tables, scenario, loc)? {
                        let arrived = self.man.and(set, pred);
                        if arrived == Bdd::FALSE {
                            continue;
                        }
                        if target == dst {
                            let w = self.reconstruct(
                                topo, tables, models, scenario, &through, sender, dst, arrived,
                                hop_budget,
                            )?;
                            return Ok(Outcome::Violated(Box::new(w)));
                        }
                        // Arrivals outside the slice are drops in the
                        // sliced semantics (the encoder maps them to its
                        // drop sink); hosts absorb; excluded boxes never
                        // process (a processed packet is "touched" for
                        // good, so those continuations cannot violate).
                        if !slice.contains(&target)
                            || !topo.node(target).kind.is_middlebox()
                            || through.contains(&target)
                            || hop == hop_budget
                        {
                            continue;
                        }
                        let model = models.get(&target).ok_or_else(|| {
                            DataplaneError::Unsupported(format!(
                                "middlebox {:?} has no model",
                                topo.node(target).name
                            ))
                        })?;
                        let tr = self.transfer_predicate(target, model)?;
                        let processed = self.man.and(arrived, tr);
                        let prev = seen.get(&target).copied().unwrap_or(Bdd::FALSE);
                        let nprev = self.man.not(prev);
                        let fresh = self.man.and(processed, nprev);
                        if fresh == Bdd::FALSE {
                            continue;
                        }
                        seen.insert(target, self.man.or(prev, fresh));
                        next.push((target, fresh));
                    }
                }
                if next.is_empty() {
                    break;
                }
                frontier = next;
            }
        }
        Ok(Outcome::Holds)
    }

    /// Pulls one concrete header out of a violating set and re-walks it
    /// deterministically through the static datapath, picking an oracle
    /// valuation per middlebox under which the fired rule forwards. The
    /// walk must reach `dst` — the header-class construction guarantees
    /// the symbolic and concrete paths agree, so failure here is an
    /// internal error, never a silent fallback.
    #[allow(clippy::too_many_arguments)]
    fn reconstruct(
        &self,
        topo: &Topology,
        tables: &ForwardingTables,
        models: &HashMap<NodeId, MboxModel>,
        scenario: &FailureScenario,
        through: &[NodeId],
        sender: NodeId,
        dst: NodeId,
        violating: Ref,
        hop_budget: usize,
    ) -> Result<Witness, DataplaneError> {
        let sat = self
            .man
            .anysat(violating)
            .ok_or_else(|| DataplaneError::Witness("violating set is empty".into()))?;
        // Unpinned bits are don't-cares within the satisfying region;
        // zero is as good a choice as any.
        let bit = |base: u32, width: u32| -> u64 {
            let mut v = 0u64;
            for &(var, val) in &sat {
                if val && var >= base && var < base + width {
                    v |= 1 << (width - 1 - (var - base));
                }
            }
            v
        };
        let header = Header::tcp(
            Address(bit(SRC_BASE, 32) as u32),
            bit(SPORT_BASE, 16) as u16,
            Address(bit(DST_BASE, 32) as u32),
            bit(DPORT_BASE, 16) as u16,
        );

        let tf = TransferFunction::new(topo, tables, scenario);
        let mut path = vec![sender];
        let mut hops = Vec::new();
        let mut cur = sender;
        loop {
            let next = tf
                .deliver(cur, header.dst)?
                .ok_or_else(|| DataplaneError::Witness(format!("{header} dropped en route")))?;
            path.push(next);
            if next == dst {
                break;
            }
            if topo.node(next).kind.is_host() {
                return Err(DataplaneError::Witness(format!(
                    "{header} delivered to {:?} instead of the query target",
                    topo.node(next).name
                )));
            }
            if through.contains(&next) {
                return Err(DataplaneError::Witness(format!(
                    "untouched path crosses excluded box {:?}",
                    topo.node(next).name
                )));
            }
            if hops.len() >= hop_budget {
                return Err(DataplaneError::Witness("hop budget exceeded on re-walk".into()));
            }
            let model = models.get(&next).ok_or_else(|| {
                DataplaneError::Witness(format!("no model for {:?}", topo.node(next).name))
            })?;
            let (rule, oracles) = forwarding_valuation(model, &header).ok_or_else(|| {
                DataplaneError::Witness(format!(
                    "{:?} refuses {header} under every oracle valuation",
                    topo.node(next).name
                ))
            })?;
            hops.push(Hop { mbox: next, rule, oracles });
            cur = next;
        }
        Ok(Witness { sender, header, path, hops })
    }
}

/// Finds an oracle valuation (respecting exclusivity groups) under which
/// the first matching rule of `model` forwards `header`, together with
/// that rule's index.
fn forwarding_valuation(
    model: &MboxModel,
    header: &Header,
) -> Option<(usize, HashMap<String, bool>)> {
    let n = model.oracles.len();
    debug_assert!(
        n <= vmn_analysis::MAX_ORACLES,
        "transfer compilation admits at most {} oracles",
        vmn_analysis::MAX_ORACLES
    );
    'mask: for mask in 0..(1u32 << n) {
        let vals: HashMap<String, bool> = model
            .oracles
            .iter()
            .enumerate()
            .map(|(i, o)| (o.name.clone(), mask >> i & 1 == 1))
            .collect();
        for group in &model.exclusive_oracles {
            if group.iter().filter(|o| vals.get(o.as_str()) == Some(&true)).count() > 1 {
                continue 'mask;
            }
        }
        for (r, arm) in model.rules.iter().enumerate() {
            if eval_guard(model, &arm.guard, header, &vals) {
                if arm.actions.contains(&Action::Forward) {
                    return Some((r, vals));
                }
                continue 'mask; // first match drops under this valuation
            }
        }
    }
    None
}

/// Concrete guard evaluation, mirroring the symbolic semantics: protocol
/// guards are true (single modelled transport), origin guards read the
/// header's origin field (equal to `src` on stateless paths).
fn eval_guard(model: &MboxModel, g: &Guard, h: &Header, oracles: &HashMap<String, bool>) -> bool {
    match g {
        Guard::True => true,
        Guard::Not(inner) => !eval_guard(model, inner, h, oracles),
        Guard::And(gs) => gs.iter().all(|g| eval_guard(model, g, h, oracles)),
        Guard::Or(gs) => gs.iter().any(|g| eval_guard(model, g, h, oracles)),
        Guard::SrcIn(p) => p.contains(h.src),
        Guard::DstIn(p) => p.contains(h.dst),
        Guard::SrcIs(a) => h.src == *a,
        Guard::DstIs(a) => h.dst == *a,
        Guard::SrcPortIs(p) => h.src_port == *p,
        Guard::DstPortIs(p) => h.dst_port == *p,
        Guard::ProtoIs(_) => true,
        Guard::OriginIn(p) => p.contains(h.origin),
        Guard::OriginIs(a) => h.origin == *a,
        Guard::AclMatch(name) => model
            .acl_pairs(name)
            .expect("validated model")
            .iter()
            .any(|(sp, dp)| sp.contains(h.src) && dp.contains(h.dst)),
        Guard::Oracle(name) => oracles.get(name.as_str()).copied().unwrap_or(false),
        Guard::StateContains { .. } => {
            debug_assert!(false, "stateless classification admits no state reads");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn_mbox::models;
    use vmn_net::{Prefix, RoutingConfig, Rule};

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    #[test]
    fn statefulness_classifies_the_model_library() {
        let stateless = [
            models::acl_firewall("aclfw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]),
            models::idps("idps"),
            models::ids_monitor("ids"),
            models::scrubber("sb"),
            models::application_firewall("appfw", &["skype?"], &["skype?", "jabber?"]),
            models::wan_optimizer("wanopt"),
            models::gateway("gw"),
        ];
        for m in &stateless {
            assert!(statefulness(m).is_none(), "{} should be stateless", m.type_name);
        }
        let stateful = [
            models::learning_firewall("fw", vec![]),
            models::nat("nat", px("10.0.0.0/8"), addr("1.2.3.4")),
            models::load_balancer("lb", addr("10.0.0.9"), vec![addr("10.0.0.1")]),
            models::content_cache("cache", [px("10.1.0.0/16")], vec![]),
            models::security_group_firewall("sg", vec![]),
        ];
        for m in &stateful {
            assert!(statefulness(m).is_some(), "{} should be stateful", m.type_name);
        }
    }

    /// outside/inside pair behind an ACL firewall; outside is allowed
    /// only toward 10.0.0.0/24.
    fn acl_network() -> (Topology, ForwardingTables, HashMap<NodeId, MboxModel>, NodeId, NodeId) {
        let mut topo = Topology::new();
        let outside = topo.add_host("outside", addr("8.8.8.8"));
        let inside = topo.add_host("inside", addr("10.0.0.5"));
        let sw = topo.add_switch("sw");
        let fw = topo.add_middlebox("fw", "acl-firewall", vec![]);
        topo.add_link(outside, sw);
        topo.add_link(inside, sw);
        topo.add_link(fw, sw);
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), outside, fw).with_priority(10));
        let mut models_map = HashMap::new();
        models_map.insert(
            fw,
            models::acl_firewall("acl-firewall", vec![(px("8.0.0.0/8"), px("10.0.0.0/24"))]),
        );
        (topo, tables, models_map, outside, inside)
    }

    #[test]
    fn acl_slice_reachability_and_witness() {
        let (topo, tables, models_map, outside, inside) = acl_network();
        let fw = topo.by_name("fw").unwrap();
        let none = FailureScenario::none();
        let slice = vec![outside, inside, fw];
        let mut dp = Dataplane::new(&topo, &tables);
        // 8.8.8.8 → 10.0.0.5 is allowed by the ACL: violation expected,
        // with a replay-ready witness through the firewall.
        let q = Query::SourceReaches { saddr: addr("8.8.8.8"), dst: inside };
        match dp.check(&topo, &tables, &models_map, &none, &slice, &q, 3).unwrap() {
            Outcome::Violated(w) => {
                assert_eq!(w.sender, outside);
                assert_eq!(w.header.src, addr("8.8.8.8"));
                assert!(w.header.dst.in_prefix(px("10.0.0.0/24")));
                assert_eq!(w.path.first(), Some(&outside));
                assert_eq!(w.path.last(), Some(&inside));
                assert_eq!(w.hops.len(), 1);
                assert_eq!(w.hops[0].mbox, fw);
            }
            Outcome::Holds => panic!("allowed traffic must reach"),
        }
        // The reverse claim: nothing sourced at inside's own address can
        // reach outside through the firewall-free return path — it can,
        // actually (return traffic is not pipelined), so assert reach.
        let q = Query::SourceReaches { saddr: addr("10.0.0.5"), dst: outside };
        assert!(matches!(
            dp.check(&topo, &tables, &models_map, &none, &slice, &q, 3).unwrap(),
            Outcome::Violated(_)
        ));
        // Traversal: everything reaching inside must pass the firewall —
        // holds, since the pipeline rule steers outside's traffic there
        // and inside's own loopback cannot arrive.
        let q = Query::Bypass { dst: inside, through: vec![fw], from: Some(outside) };
        assert!(matches!(
            dp.check(&topo, &tables, &models_map, &none, &slice, &q, 3).unwrap(),
            Outcome::Holds
        ));
    }

    #[test]
    fn denied_traffic_is_isolated() {
        let (mut topo, _, _, _, _) = acl_network();
        // Rebuild with a second inside host outside the allowed /24.
        let far = topo.add_host("far", addr("10.0.9.9"));
        let sw = topo.by_name("sw").unwrap();
        topo.add_link(far, sw);
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        let outside = topo.by_name("outside").unwrap();
        let fw = topo.by_name("fw").unwrap();
        tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), outside, fw).with_priority(10));
        let mut models_map = HashMap::new();
        models_map.insert(
            fw,
            models::acl_firewall("acl-firewall", vec![(px("8.0.0.0/8"), px("10.0.0.0/24"))]),
        );
        let mut dp = Dataplane::new(&topo, &tables);
        let none = FailureScenario::none();
        let slice = vec![outside, far, fw];
        let q = Query::SourceReaches { saddr: addr("8.8.8.8"), dst: far };
        assert!(matches!(
            dp.check(&topo, &tables, &models_map, &none, &slice, &q, 3).unwrap(),
            Outcome::Holds
        ));
    }

    #[test]
    fn failed_firewall_respects_scenario_routing() {
        let (topo, tables, models_map, outside, inside) = acl_network();
        let fw = topo.by_name("fw").unwrap();
        // With the firewall failed, the pipeline rule's next hop is dead
        // and the base route takes over: traffic reaches inside without
        // any middlebox hop (the "misconfigured redundant routing" class).
        let failed = FailureScenario::nodes([fw]);
        let slice = vec![outside, inside, fw];
        let mut dp = Dataplane::new(&topo, &tables);
        let q = Query::SourceReaches { saddr: addr("8.8.8.8"), dst: inside };
        match dp.check(&topo, &tables, &models_map, &failed, &slice, &q, 3).unwrap() {
            Outcome::Violated(w) => assert!(w.hops.is_empty(), "failed box must not process"),
            Outcome::Holds => panic!("bypass route must deliver"),
        }
        // And the traversal obligation is now violated.
        let q = Query::Bypass { dst: inside, through: vec![fw], from: Some(outside) };
        assert!(matches!(
            dp.check(&topo, &tables, &models_map, &failed, &slice, &q, 3).unwrap(),
            Outcome::Violated(_)
        ));
    }

    #[test]
    fn stateful_models_are_refused() {
        let (topo, tables, _, outside, inside) = acl_network();
        let fw = topo.by_name("fw").unwrap();
        let mut models_map = HashMap::new();
        models_map.insert(fw, models::learning_firewall("fw", vec![]));
        let mut dp = Dataplane::new(&topo, &tables);
        let none = FailureScenario::none();
        let q = Query::SourceReaches { saddr: addr("8.8.8.8"), dst: inside };
        let err = dp
            .check(&topo, &tables, &models_map, &none, &[outside, inside, fw], &q, 3)
            .unwrap_err();
        assert!(matches!(err, DataplaneError::Unsupported(_)));
    }

    #[test]
    fn hop_budget_bounds_the_search() {
        let (topo, tables, models_map, outside, inside) = acl_network();
        let fw = topo.by_name("fw").unwrap();
        let none = FailureScenario::none();
        let slice = vec![outside, inside, fw];
        let mut dp = Dataplane::new(&topo, &tables);
        let q = Query::SourceReaches { saddr: addr("8.8.8.8"), dst: inside };
        // The violating path needs one middlebox hop; budget 0 only
        // allows direct sender→dst delivery, so the query holds.
        assert!(matches!(
            dp.check(&topo, &tables, &models_map, &none, &slice, &q, 0).unwrap(),
            Outcome::Holds
        ));
        assert!(matches!(
            dp.check(&topo, &tables, &models_map, &none, &slice, &q, 1).unwrap(),
            Outcome::Violated(_)
        ));
    }
}
