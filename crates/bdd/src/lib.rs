//! A compact ROBDD engine plus a dataplane reachability layer.
//!
//! The SMT pipeline in the `vmn` crate pays for mutable middlebox state
//! even when a sliced query never touches it. This crate is the second
//! backend for exactly that case: packet headers become BDD variables,
//! each device's forwarding behaviour becomes a transfer predicate over
//! header sets, and reachability between endpoints is answered by
//! predicate composition — microseconds instead of a solver session.
//!
//! Two layers:
//!
//! * [`Bdd`] — the reduced ordered BDD manager: arena-allocated nodes, a
//!   unique table for canonicity, a memoized `ite` cache, no complement
//!   edges (simplicity over the constant factor), plus node/cache stats
//!   ([`BddStats`]) and bit-vector comparison builders for the interval
//!   and prefix predicates the dataplane needs.
//! * [`dataplane`] — per-device transfer predicates (stateless middlebox
//!   models with classification oracles existentially quantified),
//!   delivery predicates mirroring the SMT encoder's header-class
//!   intervals, and a hop-bounded reachability search that extracts a
//!   concrete witness path on violation.

#![forbid(unsafe_code)]

pub mod arms;
pub mod dataplane;

pub use arms::BddArmDecider;
pub use dataplane::{Dataplane, DataplaneError, Hop, Outcome, Query, Witness};

use std::collections::HashMap;
use std::ops::Add;

/// Index of a BDD node in its manager's arena. `0`/`1` are the terminal
/// constants ([`Bdd::FALSE`], [`Bdd::TRUE`]).
pub type Ref = u32;

/// One arena node: branch variable plus low (var = 0) / high (var = 1)
/// children. Terminals use a sentinel variable larger than any real one,
/// which also makes "top variable" comparisons uniform in `ite`.
#[derive(Clone, Copy, Debug)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// Variable id reserved for the two terminal nodes.
const TERMINAL_VAR: u32 = u32::MAX;

/// Cumulative work counters of a [`Bdd`] manager. Monotone, like
/// `SolverStats`: snapshot and [`BddStats::delta_since`] to attribute a
/// span of work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Non-terminal nodes allocated in the arena.
    pub nodes: u64,
    /// `ite` cache probes / hits.
    pub ite_lookups: u64,
    pub ite_hits: u64,
    /// `mk` calls answered by the unique table (hash-consing hits).
    pub unique_hits: u64,
}

impl BddStats {
    /// Counters accumulated since `earlier` (a snapshot of the same
    /// manager).
    pub fn delta_since(&self, earlier: &BddStats) -> BddStats {
        BddStats {
            nodes: self.nodes - earlier.nodes,
            ite_lookups: self.ite_lookups - earlier.ite_lookups,
            ite_hits: self.ite_hits - earlier.ite_hits,
            unique_hits: self.unique_hits - earlier.unique_hits,
        }
    }
}

impl Add for BddStats {
    type Output = BddStats;

    fn add(self, o: BddStats) -> BddStats {
        BddStats {
            nodes: self.nodes + o.nodes,
            ite_lookups: self.ite_lookups + o.ite_lookups,
            ite_hits: self.ite_hits + o.ite_hits,
            unique_hits: self.unique_hits + o.unique_hits,
        }
    }
}

/// The ROBDD manager. Variable order is the variable id order (smaller
/// ids closer to the root); callers pick the order by picking ids.
pub struct Bdd {
    nodes: Vec<Node>,
    /// Hash-consing table: (var, lo, hi) → existing node. Together with
    /// the `lo == hi` elision in [`Bdd::mk`] this is what makes equal
    /// functions pointer-equal (canonicity).
    unique: HashMap<(u32, Ref, Ref), Ref>,
    /// Memoized `ite` results. Never invalidated: nodes are immortal
    /// within a manager.
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    ite_lookups: u64,
    ite_hits: u64,
    unique_hits: u64,
}

impl Default for Bdd {
    fn default() -> Self {
        Bdd::new()
    }
}

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Ref = 0;
    /// The constant-true function.
    pub const TRUE: Ref = 1;

    pub fn new() -> Bdd {
        Bdd {
            nodes: vec![
                Node { var: TERMINAL_VAR, lo: 0, hi: 0 },
                Node { var: TERMINAL_VAR, lo: 1, hi: 1 },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            ite_lookups: 0,
            ite_hits: 0,
            unique_hits: 0,
        }
    }

    pub fn stats(&self) -> BddStats {
        BddStats {
            nodes: (self.nodes.len() - 2) as u64,
            ite_lookups: self.ite_lookups,
            ite_hits: self.ite_hits,
            unique_hits: self.unique_hits,
        }
    }

    /// Number of live arena nodes, terminals excluded.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 2
    }

    fn is_terminal(f: Ref) -> bool {
        f <= 1
    }

    /// The canonical node for (var, lo, hi): elides redundant tests and
    /// hash-conses structurally equal nodes.
    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            self.unique_hits += 1;
            return r;
        }
        debug_assert!(var < self.nodes[lo as usize].var && var < self.nodes[hi as usize].var);
        let r = self.nodes.len() as Ref;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    /// The single-variable function `v`.
    pub fn var(&mut self, v: u32) -> Ref {
        debug_assert_ne!(v, TERMINAL_VAR);
        self.mk(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`. Every boolean
    /// connective below is a special case.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        if f == Bdd::TRUE {
            return g;
        }
        if f == Bdd::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return f;
        }
        self.ite_lookups += 1;
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            self.ite_hits += 1;
            return r;
        }
        let v = self.nodes[f as usize]
            .var
            .min(self.nodes[g as usize].var)
            .min(self.nodes[h as usize].var);
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn cofactors(&self, f: Ref, v: u32) -> (Ref, Ref) {
        let n = self.nodes[f as usize];
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, Bdd::FALSE, Bdd::TRUE)
    }

    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Bdd::FALSE)
    }

    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Existential quantification over every variable for which `keep`
    /// returns false... inverted: quantifies exactly the ids in `vars`.
    pub fn exists(&mut self, f: Ref, vars: &[u32]) -> Ref {
        if vars.is_empty() {
            return f;
        }
        let mut memo = HashMap::new();
        self.exists_rec(f, vars, &mut memo)
    }

    fn exists_rec(&mut self, f: Ref, vars: &[u32], memo: &mut HashMap<Ref, Ref>) -> Ref {
        if Bdd::is_terminal(f) {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let Node { var, lo, hi } = self.nodes[f as usize];
        let lo = self.exists_rec(lo, vars, memo);
        let hi = self.exists_rec(hi, vars, memo);
        let r = if vars.contains(&var) { self.or(lo, hi) } else { self.mk(var, lo, hi) };
        memo.insert(f, r);
        r
    }

    /// Evaluates `f` under a total assignment.
    pub fn eval(&self, f: Ref, assignment: impl Fn(u32) -> bool) -> bool {
        let mut cur = f;
        while !Bdd::is_terminal(cur) {
            let n = self.nodes[cur as usize];
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
        cur == Bdd::TRUE
    }

    /// One satisfying partial assignment of `f` (variables not listed are
    /// don't-cares), or `None` for the constant-false function. Prefers
    /// the high branch, so the result is deterministic.
    pub fn anysat(&self, f: Ref) -> Option<Vec<(u32, bool)>> {
        if f == Bdd::FALSE {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = f;
        while !Bdd::is_terminal(cur) {
            let n = self.nodes[cur as usize];
            if n.hi != Bdd::FALSE {
                out.push((n.var, true));
                cur = n.hi;
            } else {
                out.push((n.var, false));
                cur = n.lo;
            }
        }
        debug_assert_eq!(cur, Bdd::TRUE);
        Some(out)
    }

    /// `value == bound` over the bit-vector `vars` (MSB first).
    pub fn bits_eq(&mut self, vars: &[u32], bound: u64) -> Ref {
        let n = vars.len();
        let mut r = Bdd::TRUE;
        for i in (0..n).rev() {
            let v = self.var(vars[i]);
            let bit = (bound >> (n - 1 - i)) & 1 == 1;
            let lit = if bit { v } else { self.not(v) };
            r = self.and(lit, r);
        }
        r
    }

    /// `value >= bound` over the bit-vector `vars` (MSB first). Built
    /// LSB-up so each connective sees its variable on top — linear size.
    pub fn bits_ge(&mut self, vars: &[u32], bound: u64) -> Ref {
        let n = vars.len();
        let mut r = Bdd::TRUE;
        for i in (0..n).rev() {
            let v = self.var(vars[i]);
            r = if (bound >> (n - 1 - i)) & 1 == 1 { self.and(v, r) } else { self.or(v, r) };
        }
        r
    }

    /// `value <= bound` over the bit-vector `vars` (MSB first).
    pub fn bits_le(&mut self, vars: &[u32], bound: u64) -> Ref {
        let n = vars.len();
        let mut r = Bdd::TRUE;
        for i in (0..n).rev() {
            let v = self.var(vars[i]);
            let nv = self.not(v);
            r = if (bound >> (n - 1 - i)) & 1 == 1 { self.or(nv, r) } else { self.and(nv, r) };
        }
        r
    }

    /// `lo <= value <= hi` over the bit-vector `vars` (MSB first) — the
    /// delivery-interval predicate.
    pub fn bits_in_range(&mut self, vars: &[u32], lo: u64, hi: u64) -> Ref {
        debug_assert!(lo <= hi);
        let ge = self.bits_ge(vars, lo);
        let le = self.bits_le(vars, hi);
        self.and(ge, le)
    }

    /// The top `len` bits of the bit-vector equal the top `len` bits of
    /// `value` — an address-prefix match. `len == 0` is the full space.
    pub fn bits_prefix(&mut self, vars: &[u32], value: u64, len: usize) -> Ref {
        debug_assert!(len <= vars.len());
        let n = vars.len();
        let mut r = Bdd::TRUE;
        for i in (0..len).rev() {
            let v = self.var(vars[i]);
            let bit = (value >> (n - 1 - i)) & 1 == 1;
            let lit = if bit { v } else { self.not(v) };
            r = self.and(lit, r);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force truth-table oracle: evaluates a formula AST over all
    /// 2^n assignments and compares with the BDD's `eval`.
    #[derive(Clone)]
    enum Form {
        Var(u32),
        Not(Box<Form>),
        And(Box<Form>, Box<Form>),
        Or(Box<Form>, Box<Form>),
        Ite(Box<Form>, Box<Form>, Box<Form>),
    }

    impl Form {
        fn eval(&self, bits: u64) -> bool {
            match self {
                Form::Var(v) => (bits >> v) & 1 == 1,
                Form::Not(f) => !f.eval(bits),
                Form::And(a, b) => a.eval(bits) && b.eval(bits),
                Form::Or(a, b) => a.eval(bits) || b.eval(bits),
                Form::Ite(f, g, h) => {
                    if f.eval(bits) {
                        g.eval(bits)
                    } else {
                        h.eval(bits)
                    }
                }
            }
        }

        fn build(&self, man: &mut Bdd) -> Ref {
            match self {
                Form::Var(v) => man.var(*v),
                Form::Not(f) => {
                    let f = f.build(man);
                    man.not(f)
                }
                Form::And(a, b) => {
                    let (a, b) = (a.build(man), b.build(man));
                    man.and(a, b)
                }
                Form::Or(a, b) => {
                    let (a, b) = (a.build(man), b.build(man));
                    man.or(a, b)
                }
                Form::Ite(f, g, h) => {
                    let (f, g, h) = (f.build(man), g.build(man), h.build(man));
                    man.ite(f, g, h)
                }
            }
        }
    }

    /// Deterministic pseudo-random formula generator (no external RNG —
    /// a splitmix64 walk keeps the test self-contained).
    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn form(&mut self, vars: u32, depth: u32) -> Form {
            if depth == 0 || self.below(4) == 0 {
                return Form::Var(self.below(vars as u64) as u32);
            }
            match self.below(4) {
                0 => Form::Not(Box::new(self.form(vars, depth - 1))),
                1 => Form::And(
                    Box::new(self.form(vars, depth - 1)),
                    Box::new(self.form(vars, depth - 1)),
                ),
                2 => Form::Or(
                    Box::new(self.form(vars, depth - 1)),
                    Box::new(self.form(vars, depth - 1)),
                ),
                _ => Form::Ite(
                    Box::new(self.form(vars, depth - 1)),
                    Box::new(self.form(vars, depth - 1)),
                    Box::new(self.form(vars, depth - 1)),
                ),
            }
        }
    }

    #[test]
    fn connectives_match_truth_tables() {
        // ite/apply correctness against the brute-force oracle on ≤ 12
        // variables: every assignment of every random formula must agree.
        let mut mix = Mix(42);
        for round in 0..60 {
            let vars = 2 + (round % 11) as u32; // 2..=12
            let form = mix.form(vars, 5);
            let mut man = Bdd::new();
            let f = form.build(&mut man);
            for bits in 0..(1u64 << vars) {
                assert_eq!(
                    man.eval(f, |v| (bits >> v) & 1 == 1),
                    form.eval(bits),
                    "round {round}, vars {vars}, assignment {bits:b}"
                );
            }
        }
    }

    #[test]
    fn unique_table_gives_canonicity() {
        // Semantically equal functions built along different syntactic
        // routes must be the *same* node — that's the property every
        // `== Bdd::FALSE` emptiness test in the dataplane relies on.
        let mut man = Bdd::new();
        let (a, b, c) = (man.var(0), man.var(1), man.var(2));
        let ab = man.and(a, b);
        let left = man.or(ab, c);
        let ac = man.or(a, c);
        let bc = man.or(b, c);
        let right = man.and(ac, bc);
        assert_eq!(left, right, "(a∧b)∨c ≡ (a∨c)∧(b∨c)");

        let na = man.not(a);
        let nna = man.not(na);
        assert_eq!(nna, a, "double negation is the identity node");

        let taut = man.or(a, na);
        assert_eq!(taut, Bdd::TRUE);
        let contra = man.and(a, na);
        assert_eq!(contra, Bdd::FALSE);

        // De Morgan, via distinct call paths.
        let nb = man.not(b);
        let or_n = man.or(na, nb);
        let andab = man.and(a, b);
        let n_and = man.not(andab);
        assert_eq!(or_n, n_and);
    }

    #[test]
    fn no_redundant_or_duplicate_nodes() {
        // mk elides redundant tests (lo == hi) and hash-conses the rest:
        // building the same function twice allocates nothing new.
        let mut man = Bdd::new();
        let a = man.var(3);
        let before = man.node_count();
        let again = man.var(3);
        assert_eq!(a, again);
        assert_eq!(man.node_count(), before, "var(3) must not re-allocate");
        let same = man.ite(a, Bdd::TRUE, Bdd::FALSE);
        assert_eq!(same, a, "ite(f, 1, 0) is f itself");
        let hits_before = man.stats().unique_hits;
        let b = man.var(5);
        let f1 = man.and(a, b);
        let f2 = man.and(a, b);
        assert_eq!(f1, f2);
        assert!(man.stats().unique_hits >= hits_before, "rebuild hits the unique table");
    }

    #[test]
    fn exists_quantifies_correctly() {
        // ∃b. (a ∧ b) = a; ∃a,b. (a ∧ b) = true; ∃c over a c-free
        // function is the identity.
        let mut man = Bdd::new();
        let (a, b) = (man.var(0), man.var(1));
        let ab = man.and(a, b);
        assert_eq!(man.exists(ab, &[1]), a);
        assert_eq!(man.exists(ab, &[0, 1]), Bdd::TRUE);
        assert_eq!(man.exists(ab, &[7]), ab);
        // Against the oracle: ∃S.f evaluated on the remaining vars.
        let mut mix = Mix(7);
        for _ in 0..30 {
            let form = mix.form(6, 4);
            let f = form.build(&mut man);
            let q = man.exists(f, &[2, 4]);
            for bits in 0..(1u64 << 6) {
                // q must be independent of vars 2 and 4…
                let want = (0..4u64).any(|m| {
                    let probe =
                        (bits & !((1 << 2) | (1 << 4))) | ((m & 1) << 2) | (((m >> 1) & 1) << 4);
                    form.eval(probe)
                });
                assert_eq!(man.eval(q, |v| (bits >> v) & 1 == 1), want);
            }
        }
    }

    #[test]
    fn anysat_finds_models() {
        let mut man = Bdd::new();
        let (a, b, c) = (man.var(0), man.var(1), man.var(2));
        let nb = man.not(b);
        let anb = man.and(a, nb);
        let f = man.or(anb, c);
        let sat = man.anysat(f).expect("satisfiable");
        // The returned partial assignment must satisfy f with don't-cares
        // set either way.
        for fill in [false, true] {
            let lookup = |v: u32| sat.iter().find(|&&(sv, _)| sv == v).map_or(fill, |&(_, x)| x);
            assert!(man.eval(f, lookup));
        }
        assert!(man.anysat(Bdd::FALSE).is_none());
        assert_eq!(man.anysat(Bdd::TRUE), Some(vec![]));
    }

    #[test]
    fn bitvector_builders_match_arithmetic() {
        let mut man = Bdd::new();
        let vars: Vec<u32> = (0..6).collect();
        for bound in [0u64, 1, 17, 31, 62, 63] {
            let eq = man.bits_eq(&vars, bound);
            let ge = man.bits_ge(&vars, bound);
            let le = man.bits_le(&vars, bound);
            for value in 0..64u64 {
                let assign = |v: u32| (value >> (5 - v)) & 1 == 1;
                assert_eq!(man.eval(eq, assign), value == bound, "eq {value} {bound}");
                assert_eq!(man.eval(ge, assign), value >= bound, "ge {value} {bound}");
                assert_eq!(man.eval(le, assign), value <= bound, "le {value} {bound}");
            }
        }
        let range = man.bits_in_range(&vars, 13, 47);
        let prefix = man.bits_prefix(&vars, 0b101_000, 3);
        for value in 0..64u64 {
            let assign = |v: u32| (value >> (5 - v)) & 1 == 1;
            assert_eq!(man.eval(range, assign), (13..=47).contains(&value));
            assert_eq!(man.eval(prefix, assign), value >> 3 == 0b101);
        }
    }

    #[test]
    fn stats_are_monotone_and_attributable() {
        let mut man = Bdd::new();
        let before = man.stats();
        let (a, b) = (man.var(0), man.var(1));
        man.and(a, b);
        let mid = man.stats();
        assert!(mid.nodes > before.nodes);
        man.and(a, b); // fully cached
        let after = man.stats();
        let delta = after.delta_since(&mid);
        assert_eq!(delta.nodes, 0, "cached rebuild allocates nothing");
        assert!(delta.ite_hits > 0, "cached rebuild hits the ite cache");
    }
}
