//! Discrete-event simulator for middlebox networks.
//!
//! VMN's verification results are claims about *all* packet histories; the
//! simulator executes *one* history concretely. It serves three purposes:
//!
//! * **Counterexample replay** — every violation trace the verifier
//!   produces is replayed here; if the simulator does not reproduce the
//!   violation, the encoding has a bug (this differential check runs in
//!   the integration test suite).
//! * **Testing** — middlebox models and topologies can be exercised
//!   operationally, independent of the solver.
//! * **Exploration** — randomised schedules provide a cheap (unsound)
//!   violation search to sanity-check the verifier's completeness claims.
//!
//! The simulator follows the paper's event model (§3): at each step one of
//! the following happens — a host sends a packet, the network delivers a
//! pending packet to the next terminal, or a middlebox processes a
//! received packet. Per-middlebox FIFO ordering is enforced, matching the
//! ordering constraint the scheduling oracle must respect.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::collections::VecDeque;
use vmn_mbox::exec::{self, Chooser, MboxState, SeqChooser};
use vmn_mbox::MboxModel;
use vmn_net::{
    FailureScenario, ForwardingTables, Header, NetError, NodeId, Topology, TransferFunction,
};

/// One scheduled operation (the scheduling oracle's choice for a step).
#[derive(Clone, Debug, PartialEq)]
pub enum SimOp {
    /// A host emits a packet.
    Send { host: NodeId, header: Header },
    /// A middlebox processes the oldest packet pending at it.
    Process { mbox: NodeId },
}

/// A packet observed at a terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Observation {
    pub step: usize,
    /// The terminal that emitted the packet into the fabric.
    pub from: NodeId,
    /// The terminal that received it.
    pub at: NodeId,
    pub header: Header,
}

/// Event log entry.
#[derive(Clone, Debug, PartialEq)]
pub enum SimEvent {
    Sent { step: usize, host: NodeId, header: Header },
    Delivered(Observation),
    Processed { step: usize, mbox: NodeId, input: Header, emitted: Option<Header> },
    DroppedByFabric { step: usize, from: NodeId, header: Header },
    DroppedByMbox { step: usize, mbox: NodeId, header: Header },
}

/// The simulator state for one network under one failure scenario.
pub struct Simulator<'a> {
    topo: &'a Topology,
    tables: &'a ForwardingTables,
    scenario: FailureScenario,
    models: HashMap<NodeId, &'a MboxModel>,
    states: HashMap<NodeId, MboxState>,
    queues: HashMap<NodeId, VecDeque<Header>>,
    chooser: Box<dyn Chooser + 'a>,
    oracle: Box<dyn FnMut(&str, &Header) -> bool + 'a>,
    log: Vec<SimEvent>,
    step: usize,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator. `models` must cover every middlebox in the
    /// topology.
    pub fn new(
        topo: &'a Topology,
        tables: &'a ForwardingTables,
        scenario: FailureScenario,
        models: HashMap<NodeId, &'a MboxModel>,
    ) -> Simulator<'a> {
        for m in topo.middleboxes() {
            assert!(models.contains_key(&m), "no model for middlebox {:?}", topo.node(m).name);
        }
        Simulator {
            topo,
            tables,
            scenario,
            models,
            states: HashMap::new(),
            queues: HashMap::new(),
            chooser: Box::new(SeqChooser::new()),
            oracle: Box::new(|_, _| false),
            log: Vec::new(),
            step: 0,
        }
    }

    /// Replaces the nondeterminism source (default: [`SeqChooser`]).
    pub fn with_chooser(mut self, c: impl Chooser + 'a) -> Simulator<'a> {
        self.chooser = Box::new(c);
        self
    }

    /// Replaces the classification-oracle valuation (default: everything
    /// is classified negative).
    pub fn with_oracle(mut self, o: impl FnMut(&str, &Header) -> bool + 'a) -> Simulator<'a> {
        self.oracle = Box::new(o);
        self
    }

    pub fn log(&self) -> &[SimEvent] {
        &self.log
    }

    /// Packets received by hosts, in order.
    pub fn host_receptions(&self) -> impl Iterator<Item = &Observation> {
        self.log.iter().filter_map(|e| match e {
            SimEvent::Delivered(o) if self.topo.node(o.at).kind.is_host() => Some(o),
            _ => None,
        })
    }

    /// Number of packets waiting at middlebox `m`.
    pub fn pending(&self, m: NodeId) -> usize {
        self.queues.get(&m).map_or(0, VecDeque::len)
    }

    /// Executes one operation. Fabric loops surface as errors.
    pub fn exec(&mut self, op: &SimOp) -> Result<(), NetError> {
        match op {
            SimOp::Send { host, header } => {
                let node = self.topo.node(*host);
                assert!(node.kind.is_host(), "only hosts send: {:?}", node.name);
                self.log.push(SimEvent::Sent { step: self.step, host: *host, header: *header });
                self.inject(*host, *header)?;
            }
            SimOp::Process { mbox } => {
                let Some(input) = self.queues.get_mut(mbox).and_then(VecDeque::pop_front) else {
                    self.step += 1;
                    return Ok(()); // processing an empty queue is a no-op
                };
                let model = self.models[mbox];
                let state = self.states.entry(*mbox).or_default();
                let failed = self.scenario.is_failed(*mbox);
                let outcome = exec::process(
                    model,
                    state,
                    failed,
                    input,
                    &mut self.oracle,
                    self.chooser.as_mut(),
                );
                self.log.push(SimEvent::Processed {
                    step: self.step,
                    mbox: *mbox,
                    input,
                    emitted: outcome.emitted,
                });
                match outcome.emitted {
                    Some(out) => self.inject(*mbox, out)?,
                    None => self.log.push(SimEvent::DroppedByMbox {
                        step: self.step,
                        mbox: *mbox,
                        header: input,
                    }),
                }
            }
        }
        self.step += 1;
        Ok(())
    }

    /// Emits `header` from terminal `from` into the fabric and records the
    /// outcome.
    fn inject(&mut self, from: NodeId, header: Header) -> Result<(), NetError> {
        let tf = TransferFunction::new(self.topo, self.tables, &self.scenario);
        match tf.deliver(from, header.dst)? {
            None => {
                self.log.push(SimEvent::DroppedByFabric { step: self.step, from, header });
            }
            Some(at) => {
                let obs = Observation { step: self.step, from, at, header };
                self.log.push(SimEvent::Delivered(obs));
                if self.topo.node(at).kind.is_middlebox() {
                    self.queues.entry(at).or_default().push_back(header);
                }
            }
        }
        Ok(())
    }

    /// Runs a whole schedule.
    pub fn run(&mut self, ops: &[SimOp]) -> Result<(), NetError> {
        for op in ops {
            self.exec(op)?;
        }
        Ok(())
    }

    /// Processes middlebox queues until everything settles (bounded by
    /// `max_steps` to guard against middlebox-level ping-pong).
    pub fn run_to_quiescence(&mut self, max_steps: usize) -> Result<(), NetError> {
        for _ in 0..max_steps {
            let Some(m) =
                self.topo.middleboxes().find(|m| self.queues.get(m).is_some_and(|q| !q.is_empty()))
            else {
                return Ok(());
            };
            self.exec(&SimOp::Process { mbox: m })?;
        }
        // Remaining queued packets are treated as unprocessed, not an error:
        // the scheduling oracle is free to stop at any point.
        Ok(())
    }

    /// Convenience: send and then drain all middlebox queues.
    pub fn send_and_settle(&mut self, host: NodeId, header: Header) -> Result<(), NetError> {
        self.exec(&SimOp::Send { host, header })?;
        self.run_to_quiescence(1000)
    }

    /// Read access to a middlebox's accumulated state (used by the
    /// differential fuzzer to cross-check static-analysis verdicts
    /// against concrete executions).
    pub fn mbox_state(&self, m: NodeId) -> Option<&MboxState> {
        self.states.get(&m)
    }

    /// Whether `host` ever received a packet satisfying `pred`.
    pub fn host_received<F>(&self, host: NodeId, mut pred: F) -> bool
    where
        F: FnMut(&Header) -> bool,
    {
        self.host_receptions().any(|o| o.at == host && pred(&o.header))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn_mbox::models;
    use vmn_net::{Address, Prefix, RoutingConfig, Rule};

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// outside - s1 - fw - s1 - s2 - inside, firewall guarding `inside`.
    struct Net {
        topo: Topology,
        tables: ForwardingTables,
        outside: NodeId,
        inside: NodeId,
        fw: NodeId,
    }

    fn firewalled_net(acl: Vec<(Prefix, Prefix)>) -> (Net, MboxModel) {
        let mut topo = Topology::new();
        let outside = topo.add_host("outside", addr("8.8.8.8"));
        let inside = topo.add_host("inside", addr("10.0.0.5"));
        let s1 = topo.add_switch("s1");
        let s2 = topo.add_switch("s2");
        let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
        topo.add_link(outside, s1);
        topo.add_link(fw, s1);
        topo.add_link(s1, s2);
        topo.add_link(inside, s2);

        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        // Pipeline both directions through the firewall.
        tables.add_rule(s1, Rule::from_neighbor(px("10.0.0.0/8"), outside, fw).with_priority(10));
        tables.add_rule(s1, Rule::from_neighbor(px("8.8.8.8/32"), s2, fw).with_priority(10));

        let model = models::learning_firewall("stateful-firewall", acl);
        (Net { topo, tables, outside, inside, fw }, model)
    }

    fn sim<'a>(net: &'a Net, model: &'a MboxModel, scenario: FailureScenario) -> Simulator<'a> {
        let models = HashMap::from([(net.fw, model)]);
        Simulator::new(&net.topo, &net.tables, scenario, models)
    }

    #[test]
    fn firewall_blocks_unsolicited_inbound() {
        let (net, model) = firewalled_net(vec![(px("10.0.0.0/8"), px("0.0.0.0/0"))]);
        let mut s = sim(&net, &model, FailureScenario::none());
        let attack = Header::tcp(addr("8.8.8.8"), 1234, addr("10.0.0.5"), 22);
        s.send_and_settle(net.outside, attack).unwrap();
        assert!(!s.host_received(net.inside, |_| true), "inbound must be dropped");
    }

    #[test]
    fn firewall_allows_reply_after_outbound() {
        let (net, model) = firewalled_net(vec![(px("10.0.0.0/8"), px("0.0.0.0/0"))]);
        let mut s = sim(&net, &model, FailureScenario::none());
        let request = Header::tcp(addr("10.0.0.5"), 4000, addr("8.8.8.8"), 80);
        s.send_and_settle(net.inside, request).unwrap();
        assert!(s.host_received(net.outside, |h| h.dst_port == 80), "outbound flows");
        let reply = request.reverse();
        s.send_and_settle(net.outside, reply).unwrap();
        assert!(
            s.host_received(net.inside, |h| h.src == addr("8.8.8.8")),
            "reply to established flow must pass"
        );
    }

    #[test]
    fn interleaving_matters_reply_before_request_is_dropped() {
        let (net, model) = firewalled_net(vec![(px("10.0.0.0/8"), px("0.0.0.0/0"))]);
        let mut s = sim(&net, &model, FailureScenario::none());
        let request = Header::tcp(addr("10.0.0.5"), 4000, addr("8.8.8.8"), 80);
        let reply = request.reverse();
        // Both packets are in flight; the firewall processes the reply first.
        s.exec(&SimOp::Send { host: net.inside, header: request }).unwrap();
        s.exec(&SimOp::Send { host: net.outside, header: reply }).unwrap();
        assert_eq!(s.pending(net.fw), 2);
        // FIFO: request (sent first) is processed first here, so to test the
        // other order rebuild with reversed sends.
        let mut s2 = sim(&net, &model, FailureScenario::none());
        s2.exec(&SimOp::Send { host: net.outside, header: reply }).unwrap();
        s2.exec(&SimOp::Send { host: net.inside, header: request }).unwrap();
        s2.exec(&SimOp::Process { mbox: net.fw }).unwrap(); // reply first: dropped
        s2.exec(&SimOp::Process { mbox: net.fw }).unwrap(); // request: forwarded
        assert!(!s2.host_received(net.inside, |_| true));
        assert!(s2.host_received(net.outside, |_| true));
    }

    #[test]
    fn failed_closed_firewall_blocks_everything() {
        let (net, model) = firewalled_net(vec![(px("10.0.0.0/8"), px("0.0.0.0/0"))]);
        let mut s = sim(&net, &model, FailureScenario::nodes([net.fw]));
        let request = Header::tcp(addr("10.0.0.5"), 4000, addr("8.8.8.8"), 80);
        // With the firewall failed, the pipeline rule is dead and the base
        // route delivers directly — traffic *bypasses* the firewall. This
        // models the "fail-over removes the middlebox" routing behaviour.
        s.send_and_settle(net.inside, request).unwrap();
        assert!(s.host_received(net.outside, |_| true), "routing falls back around the box");
    }

    #[test]
    fn processing_empty_queue_is_noop() {
        let (net, model) = firewalled_net(vec![]);
        let mut s = sim(&net, &model, FailureScenario::none());
        s.exec(&SimOp::Process { mbox: net.fw }).unwrap();
        assert_eq!(s.log().len(), 0);
    }

    #[test]
    fn event_log_records_pipeline() {
        let (net, model) = firewalled_net(vec![(px("10.0.0.0/8"), px("0.0.0.0/0"))]);
        let mut s = sim(&net, &model, FailureScenario::none());
        let request = Header::tcp(addr("10.0.0.5"), 4000, addr("8.8.8.8"), 80);
        s.send_and_settle(net.inside, request).unwrap();
        let kinds: Vec<&'static str> = s
            .log()
            .iter()
            .map(|e| match e {
                SimEvent::Sent { .. } => "sent",
                SimEvent::Delivered(_) => "delivered",
                SimEvent::Processed { .. } => "processed",
                SimEvent::DroppedByFabric { .. } => "fab-drop",
                SimEvent::DroppedByMbox { .. } => "mbox-drop",
            })
            .collect();
        assert_eq!(kinds, vec!["sent", "delivered", "processed", "delivered"]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use std::collections::HashMap as Map;
    use vmn_mbox::exec::Chooser;
    use vmn_mbox::models;
    use vmn_net::{Address, Prefix, RoutingConfig, Rule};

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// A chooser that alternates load-balancer picks.
    struct AlternatingChooser(usize);

    impl Chooser for AlternatingChooser {
        fn pick(&mut self, n: usize) -> usize {
            self.0 += 1;
            (self.0 - 1) % n
        }
        fn fresh_port(&mut self) -> u16 {
            40000 + self.0 as u16
        }
        fn fresh_tag(&mut self) -> u64 {
            900 + self.0 as u64
        }
    }

    #[test]
    fn load_balancer_spreads_with_custom_chooser() {
        let mut topo = Topology::new();
        let client = topo.add_host("client", addr("8.8.8.8"));
        let b1 = topo.add_host("b1", addr("10.0.0.1"));
        let b2 = topo.add_host("b2", addr("10.0.0.2"));
        let sw = topo.add_switch("sw");
        let lb = topo.add_middlebox("lb", "lb", vec![addr("10.0.0.100")]);
        for n in [client, b1, b2, lb] {
            topo.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        tables.add_rule(sw, Rule::new(px("10.0.0.100/32"), lb).with_priority(10));
        let model = models::load_balancer(
            "lb",
            addr("10.0.0.100"),
            vec![addr("10.0.0.1"), addr("10.0.0.2")],
        );
        let models: Map<NodeId, &vmn_mbox::MboxModel> = Map::from([(lb, &model)]);
        let mut sim = Simulator::new(&topo, &tables, FailureScenario::none(), models)
            .with_chooser(AlternatingChooser(0));
        for port in 0..4u16 {
            let h = Header::tcp(addr("8.8.8.8"), 1000 + port, addr("10.0.0.100"), 80);
            sim.send_and_settle(client, h).unwrap();
        }
        assert!(sim.host_received(b1, |_| true), "backend 1 sees traffic");
        assert!(sim.host_received(b2, |_| true), "backend 2 sees traffic");
    }

    #[test]
    fn oracle_closure_sees_headers() {
        let mut topo = Topology::new();
        let a = topo.add_host("a", addr("1.1.1.1"));
        let b = topo.add_host("b", addr("2.2.2.2"));
        let sw = topo.add_switch("sw");
        let ips = topo.add_middlebox("ips", "idps", vec![]);
        for n in [a, b, ips] {
            topo.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), a, ips).with_priority(10));
        let model = models::idps("idps");
        let models: Map<NodeId, &vmn_mbox::MboxModel> = Map::from([(ips, &model)]);
        // Oracle: only port 666 is malicious.
        let mut sim = Simulator::new(&topo, &tables, FailureScenario::none(), models)
            .with_oracle(|name, h| name == "malicious?" && h.dst_port == 666);
        sim.send_and_settle(a, Header::tcp(addr("1.1.1.1"), 1, addr("2.2.2.2"), 666)).unwrap();
        sim.send_and_settle(a, Header::tcp(addr("1.1.1.1"), 2, addr("2.2.2.2"), 80)).unwrap();
        assert!(!sim.host_received(b, |h| h.dst_port == 666), "malicious dropped");
        assert!(sim.host_received(b, |h| h.dst_port == 80), "benign delivered");
    }

    #[test]
    fn quiescence_respects_step_budget() {
        let mut topo = Topology::new();
        let a = topo.add_host("a", addr("1.1.1.1"));
        let b = topo.add_host("b", addr("2.2.2.2"));
        let sw = topo.add_switch("sw");
        let g1 = topo.add_middlebox("g1", "gateway", vec![]);
        for n in [a, b, g1] {
            topo.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        tables.add_rule(sw, Rule::from_neighbor(px("0.0.0.0/0"), a, g1).with_priority(10));
        let model = models::gateway("gateway");
        let models: Map<NodeId, &vmn_mbox::MboxModel> = Map::from([(g1, &model)]);
        let mut sim = Simulator::new(&topo, &tables, FailureScenario::none(), models);
        sim.exec(&SimOp::Send {
            host: a,
            header: Header::tcp(addr("1.1.1.1"), 1, addr("2.2.2.2"), 80),
        })
        .unwrap();
        // Zero budget: the queued packet stays queued, no error.
        sim.run_to_quiescence(0).unwrap();
        assert_eq!(sim.pending(g1), 1);
        sim.run_to_quiescence(10).unwrap();
        assert_eq!(sim.pending(g1), 0);
    }
}
