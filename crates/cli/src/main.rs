//! `vmn` — verify reachability invariants in a network described by a
//! `.vmn` file, validate a stored certificate bundle, or statically
//! lint middlebox models.
//!
//! ```console
//! $ vmn check network.vmn [--whole-network] [--threads N] [--trace]
//!                         [--cluster-threshold F] [--certificate OUT]
//!                         [--partition auto]
//! $ vmn check run.cert          # first line `vmn-cert v1`: trusted check
//! $ vmn lint network.vmn        # per-middlebox static-analysis report
//! $ vmn lint --estates          # lint the built-in scenario estates
//! $ vmn serve [--socket PATH]   # delta-driven verification daemon
//! ```
//!
//! Exit code 0 when every invariant that should hold holds (or every
//! certificate is accepted, or no lint diagnostic reaches error
//! severity); 1 when any invariant is violated (or any certificate or
//! model is rejected); 2 on usage or parse errors.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use vmn::{Backend, PartitionMode, Verdict, Verifier, VerifyOptions};

mod config;

fn usage() -> ExitCode {
    eprintln!(
        "usage: vmn check <file> [--whole-network] [--threads N] [--trace]\n\
         \x20                    [--cluster-threshold F] [--certificate OUT]\n\
         \x20                    [--backend auto|smt|bdd] [--partition auto]\n\
         \n\
         With a `.vmn` network description, verifies every `verify` line\n\
         and prints a verdict per invariant. --whole-network disables\n\
         slicing (for comparison), --threads enables parallel\n\
         verification, --trace prints violation witnesses.\n\
         --cluster-threshold sets the Jaccard slice-similarity threshold\n\
         for grouping failure scenarios into shared solver sessions (0 =\n\
         one union, 1 = per-scenario, default 0.4). --certificate records\n\
         a DRAT-style proof of every verdict and writes the bundles to\n\
         OUT. --backend picks the engine per scenario: auto (default)\n\
         answers stateless slices on the BDD dataplane and the rest on\n\
         SMT, smt forces the solver pipeline, bdd forces the fast path\n\
         and fails cleanly on slices with mutable middlebox state.\n\
         --partition auto verifies modularly: the topology is cut into\n\
         modules on low-connectivity boundaries, boundary contracts are\n\
         synthesized for the cut links, and cross-module isolation\n\
         invariants are discharged by contract composition without\n\
         encoding anything.\n\
         \n\
         With a stored certificate bundle (first line `vmn-cert v1`),\n\
         runs the independent trusted checker on it instead: exit 0 if\n\
         every bundle is accepted, 1 if any is rejected.\n\
         \n\
         vmn lint <file> | --estates\n\
         \n\
         Statically analyses every middlebox model: header-field\n\
         footprints, state liveness, inferred statefulness and\n\
         parallelism (checked against the declared annotations), and\n\
         dead rule arms proven with the ROBDD engine. --estates lints\n\
         the built-in scenario estates instead of a file. Exit 1 when\n\
         any diagnostic reaches error severity.\n\
         \n\
         vmn serve [--socket PATH]\n\
         \n\
         Long-lived verification daemon speaking newline-delimited JSON\n\
         on stdin/stdout (or on a unix socket with --socket): load\n\
         networks, apply topology/policy/invariant deltas, and read\n\
         re-verification reports answered from warmed solver sessions\n\
         and a slice-fingerprint verdict cache. See the vmn_serve crate\n\
         docs for the protocol."
    );
    ExitCode::from(2)
}

/// `vmn lint`: static analysis over every middlebox model of a network
/// — or of the built-in scenario estates with `--estates`. No solver
/// session runs; dead arms are decided by the ROBDD engine alone.
fn lint_main(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut estates = false;
    for a in args {
        match a.as_str() {
            "--estates" => estates = true,
            s if !s.starts_with('-') && file.is_none() => file = Some(s.to_string()),
            _ => return usage(),
        }
    }
    // (label, network) pairs to lint.
    let mut nets: Vec<(String, vmn::Network)> = Vec::new();
    match (estates, file) {
        (true, None) => {
            use vmn_scenarios::{
                data_isolation::{DataIsolation, DataIsolationParams},
                datacenter::{Datacenter, DatacenterParams},
                enterprise::{Enterprise, EnterpriseParams},
                isp::{Isp, IspParams},
                multi_tenant::{MultiTenant, MultiTenantParams},
            };
            nets.push(("datacenter".into(), Datacenter::build(DatacenterParams::default()).net));
            nets.push((
                "data-isolation".into(),
                DataIsolation::build(DataIsolationParams::default()).net,
            ));
            nets.push(("enterprise".into(), Enterprise::build(EnterpriseParams::default()).net));
            nets.push(("isp".into(), Isp::build(IspParams::default()).net));
            nets.push((
                "multi-tenant".into(),
                MultiTenant::build(MultiTenantParams::default()).net,
            ));
        }
        (false, Some(f)) => {
            let text = match std::fs::read_to_string(&f) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("vmn: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            };
            match config::parse(&text) {
                Ok(cfg) => nets.push((f, cfg.net)),
                Err(e) => {
                    eprintln!("vmn: {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        _ => return usage(),
    }

    let mut errors = 0usize;
    let mut models_seen = 0usize;
    for (label, net) in &nets {
        // Topology order keeps the report deterministic.
        let mut boxes: Vec<_> = net.models.keys().copied().collect();
        boxes.sort();
        for n in boxes {
            let model = &net.models[&n];
            let a = vmn::analysis::analyze_with(model, &mut vmn_bdd::BddArmDecider);
            models_seen += 1;
            println!("{label} / {} (model {:?})", net.topo.node(n).name, model.type_name);
            match &a.statefulness {
                Some(r) => println!("  stateful: {r}"),
                None => println!("  stateless"),
            }
            match &a.bdd_blocker {
                Some(b) => println!("  backend: smt ({b})"),
                None => println!("  backend: bdd-eligible"),
            }
            println!(
                "  parallelism: declared {:?}, inferred {:?}",
                a.declared_parallelism, a.inferred_parallelism
            );
            println!("  header footprint: {}", a.footprint);
            if !a.states_read.is_empty() || !a.states_written.is_empty() {
                let join = |s: &std::collections::BTreeSet<String>| {
                    if s.is_empty() {
                        "(none)".to_string()
                    } else {
                        s.iter().cloned().collect::<Vec<_>>().join(", ")
                    }
                };
                println!(
                    "  state: reads {}; writes {}",
                    join(&a.states_read),
                    join(&a.states_written)
                );
            }
            for d in &a.diagnostics {
                if d.severity == vmn::analysis::Severity::Error {
                    errors += 1;
                }
                println!("  {d}");
            }
        }
    }
    println!("{models_seen} models across {} networks: {errors} errors", nets.len());
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `vmn serve`: the delta-driven verification daemon. One fleet of
/// warmed sessions per process; requests arrive as newline-delimited
/// JSON on stdin (responses on stdout) or, with `--socket`, on a unix
/// socket served one connection at a time — the fleet, its verdict
/// caches and its pooled solver sessions persist across connections.
fn serve_main(args: &[String]) -> ExitCode {
    let mut socket: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                socket = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => return usage(),
                }
            }
            s if s.starts_with("--socket=") => socket = Some(s["--socket=".len()..].to_string()),
            _ => return usage(),
        }
    }
    let mut svc = vmn_serve::Service::new(VerifyOptions::default());
    let result = match socket {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            vmn_serve::serve_lines(&mut svc, stdin.lock(), stdout.lock()).map(|_| ())
        }
        Some(path) => serve_socket(&mut svc, &path),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vmn serve: {e}");
            ExitCode::from(2)
        }
    }
}

fn serve_socket(svc: &mut vmn_serve::Service, path: &str) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("vmn serve: listening on {path}");
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        if vmn_serve::serve_lines(svc, reader, stream)? {
            break; // a connection requested shutdown
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Trusted-checker mode: validate every bundle in a stored certificate
/// file. No solver code runs here — only `vmn_check`.
fn check_certificates(file: &str, text: &str) -> ExitCode {
    let bundles = match vmn::check::parse_bundles(text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("vmn: {file}: malformed certificate: {e}");
            return ExitCode::from(2);
        }
    };
    let mut accepted = 0usize;
    for bundle in &bundles {
        match vmn::check::check_bundle(bundle) {
            Ok(s) => {
                accepted += 1;
                println!(
                    "CERTIFIED {}   [{} sessions, {} steps, {} checks: {} unsat, {} sat]",
                    bundle.label, s.sessions, s.steps, s.checks, s.unsat_checks, s.sat_checks
                );
            }
            Err(e) => println!("REJECTED  {}   {e}", bundle.label),
        }
    }
    println!(
        "{} certificate bundles: {} accepted, {} rejected",
        bundles.len(),
        accepted,
        bundles.len() - accepted
    );
    if accepted < bundles.len() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut whole = false;
    let mut threads = 1usize;
    let mut trace = false;
    let mut cluster_threshold: Option<f64> = None;
    let mut certificate_out: Option<String> = None;
    let mut backend = Backend::Auto;
    let mut partition = false;
    let parse_partition = |s: &str| s == "auto";
    let parse_backend = |s: &str| match s {
        "auto" => Some(Backend::Auto),
        "smt" => Some(Backend::Smt),
        "bdd" => Some(Backend::Bdd),
        _ => None,
    };
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("lint") => return lint_main(&args[1..]),
        Some("serve") => return serve_main(&args[1..]),
        _ => return usage(),
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--whole-network" => whole = true,
            "--trace" => trace = true,
            "--threads" => {
                threads = match it.next().map(|n| n.parse()) {
                    Some(Ok(n)) => n,
                    _ => return usage(),
                }
            }
            s if s.starts_with("--threads=") => {
                threads = match s["--threads=".len()..].parse() {
                    Ok(n) => n,
                    Err(_) => return usage(),
                }
            }
            "--cluster-threshold" => {
                cluster_threshold = match it.next().map(|n| n.parse()) {
                    Some(Ok(f)) if (0.0f64..=1.0).contains(&f) => Some(f),
                    _ => return usage(),
                }
            }
            s if s.starts_with("--cluster-threshold=") => {
                cluster_threshold = match s["--cluster-threshold=".len()..].parse() {
                    Ok(f) if (0.0f64..=1.0).contains(&f) => Some(f),
                    _ => return usage(),
                }
            }
            "--certificate" => {
                certificate_out = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => return usage(),
                }
            }
            s if s.starts_with("--certificate=") => {
                certificate_out = Some(s["--certificate=".len()..].to_string())
            }
            "--backend" => {
                backend = match it.next().and_then(|s| parse_backend(s)) {
                    Some(b) => b,
                    None => return usage(),
                }
            }
            s if s.starts_with("--backend=") => {
                backend = match parse_backend(&s["--backend=".len()..]) {
                    Some(b) => b,
                    None => return usage(),
                }
            }
            "--partition" => match it.next() {
                Some(m) if parse_partition(m) => partition = true,
                _ => return usage(),
            },
            s if s.starts_with("--partition=") => {
                if !parse_partition(&s["--partition=".len()..]) {
                    return usage();
                }
                partition = true;
            }
            s if !s.starts_with('-') && file.is_none() => file = Some(s.to_string()),
            _ => return usage(),
        }
    }
    let Some(file) = file else {
        return usage();
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vmn: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    // A stored certificate bundle instead of a network description:
    // dispatch to the trusted checker (sniffed by the format header, so
    // operators need no separate subcommand for the audit path).
    if text.lines().next().map(str::trim) == Some(vmn::check::CERT_HEADER) {
        return check_certificates(&file, &text);
    }
    let cfg = match config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("vmn: {file}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut options = if whole { VerifyOptions::whole_network() } else { VerifyOptions::default() };
    if let Some(t) = cluster_threshold {
        options.cluster_threshold = t;
    }
    options.emit_proofs = certificate_out.is_some();
    options.backend = backend;
    if partition {
        options.partition = PartitionMode::Auto;
    }
    let verifier = match Verifier::new(&cfg.net, options) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("vmn: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(ctx) = verifier.modular_context() {
        println!(
            "partitioned into {} modules ({} boundary links)",
            ctx.module_count(),
            ctx.boundary_len()
        );
    }

    let invariants: Vec<_> = cfg.invariants.iter().map(|(_, i)| i.clone()).collect();
    let reports = match verifier.verify_all(&invariants, threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vmn: verification failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &certificate_out {
        // Inherited reports carry no certificate (the representative's
        // bundle covers the symmetry group), so the file holds one bundle
        // per solver run.
        let bundles: Vec<_> = reports.iter().filter_map(|r| r.certificate.clone()).collect();
        if let Err(e) = std::fs::write(path, vmn::check::write_bundles(&bundles)) {
            eprintln!("vmn: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {} certificate bundles to {path}", bundles.len());
    }

    let mut any_violated = false;
    for ((spec, _), report) in cfg.invariants.iter().zip(&reports) {
        match &report.verdict {
            Verdict::Holds => {
                println!(
                    "HOLDS     {spec}   [{:?}, {} nodes{}]",
                    report.elapsed,
                    report.encoded_nodes,
                    if report.inherited { ", by symmetry" } else { "" }
                );
            }
            Verdict::Violated { trace: t, scenario } => {
                any_violated = true;
                let failures = if scenario.fault_count() == 0 {
                    String::new()
                } else {
                    format!(" under failure of {:?}", scenario.failed_nodes)
                };
                println!("VIOLATED  {spec}{failures}   [{:?}]", report.elapsed);
                if trace {
                    print!("{}", t.render(&cfg.net));
                }
            }
        }
    }
    // Summary. Inherited reports carry zero elapsed, so the total counts
    // each solver run exactly once instead of once per symmetry-group
    // member.
    let holds = reports.iter().filter(|r| r.verdict.holds()).count();
    let inherited = reports.iter().filter(|r| r.inherited).count();
    let total: std::time::Duration = reports.iter().map(|r| r.elapsed).sum();
    let conflicts: u64 = reports.iter().map(|r| r.solver.conflicts).sum();
    // Per-backend query counts over the runs that actually executed
    // (inherited reports repeat their representative's counts).
    let direct = || reports.iter().filter(|r| !r.inherited);
    let smt_queries: usize = direct().map(|r| r.smt_scenarios).sum();
    let bdd_queries: usize = direct().map(|r| r.bdd_scenarios).sum();
    let contract_queries: usize = direct().map(|r| r.contract_scenarios).sum();
    if !reports.is_empty() {
        let contracts = if verifier.modular_context().is_some() {
            format!(" / {contract_queries} contract")
        } else {
            String::new()
        };
        println!(
            "{} invariants: {} hold, {} violated, {} inherited by symmetry; \
             solve time {total:?}, {conflicts} conflicts; \
             {smt_queries} smt / {bdd_queries} bdd{contracts} scenario queries",
            reports.len(),
            holds,
            reports.len() - holds,
            inherited,
        );
    }
    for (spec, pipeline, src, dst) in &cfg.pipelines {
        match verifier.check_pipeline(pipeline, *src, *dst) {
            Ok(None) => println!("HOLDS     {spec}"),
            Ok(Some((violation, scenario))) => {
                any_violated = true;
                let failures = if scenario.fault_count() == 0 {
                    String::new()
                } else {
                    format!(" under failure of {:?}", scenario.failed_nodes)
                };
                println!("VIOLATED  {spec}{failures}");
                if trace {
                    println!("  {violation}");
                }
            }
            Err(e) => {
                eprintln!("vmn: pipeline check failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if any_violated {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
