//! `vmn` — verify reachability invariants in a network described by a
//! `.vmn` file.
//!
//! ```console
//! $ vmn check network.vmn [--whole-network] [--threads N] [--trace]
//!                         [--cluster-threshold F]
//! ```
//!
//! Exit code 0 when every invariant that should hold holds; 1 when any
//! invariant is violated; 2 on usage or parse errors.

use std::process::ExitCode;
use vmn::{Verdict, Verifier, VerifyOptions};

mod config;

fn usage() -> ExitCode {
    eprintln!(
        "usage: vmn check <file.vmn> [--whole-network] [--threads N] [--trace]\n\
         \x20                        [--cluster-threshold F]\n\
         \n\
         Verifies every `verify` line of the file and prints a verdict per\n\
         invariant. --whole-network disables slicing (for comparison),\n\
         --threads enables parallel verification, --trace prints violation\n\
         witnesses. --cluster-threshold sets the Jaccard slice-similarity\n\
         threshold for grouping failure scenarios into shared solver\n\
         sessions (0 = one union, 1 = per-scenario, default 0.4)."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut whole = false;
    let mut threads = 1usize;
    let mut trace = false;
    let mut cluster_threshold: Option<f64> = None;
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        _ => return usage(),
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--whole-network" => whole = true,
            "--trace" => trace = true,
            "--threads" => {
                threads = match it.next().map(|n| n.parse()) {
                    Some(Ok(n)) => n,
                    _ => return usage(),
                }
            }
            s if s.starts_with("--threads=") => {
                threads = match s["--threads=".len()..].parse() {
                    Ok(n) => n,
                    Err(_) => return usage(),
                }
            }
            "--cluster-threshold" => {
                cluster_threshold = match it.next().map(|n| n.parse()) {
                    Some(Ok(f)) if (0.0f64..=1.0).contains(&f) => Some(f),
                    _ => return usage(),
                }
            }
            s if s.starts_with("--cluster-threshold=") => {
                cluster_threshold = match s["--cluster-threshold=".len()..].parse() {
                    Ok(f) if (0.0f64..=1.0).contains(&f) => Some(f),
                    _ => return usage(),
                }
            }
            s if !s.starts_with('-') && file.is_none() => file = Some(s.to_string()),
            _ => return usage(),
        }
    }
    let Some(file) = file else {
        return usage();
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vmn: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = match config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("vmn: {file}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut options = if whole { VerifyOptions::whole_network() } else { VerifyOptions::default() };
    if let Some(t) = cluster_threshold {
        options.cluster_threshold = t;
    }
    let verifier = match Verifier::new(&cfg.net, options) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("vmn: {e}");
            return ExitCode::from(2);
        }
    };

    let invariants: Vec<_> = cfg.invariants.iter().map(|(_, i)| i.clone()).collect();
    let reports = match verifier.verify_all(&invariants, threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vmn: verification failed: {e}");
            return ExitCode::from(2);
        }
    };

    let mut any_violated = false;
    for ((spec, _), report) in cfg.invariants.iter().zip(&reports) {
        match &report.verdict {
            Verdict::Holds => {
                println!(
                    "HOLDS     {spec}   [{:?}, {} nodes{}]",
                    report.elapsed,
                    report.encoded_nodes,
                    if report.inherited { ", by symmetry" } else { "" }
                );
            }
            Verdict::Violated { trace: t, scenario } => {
                any_violated = true;
                let failures = if scenario.fault_count() == 0 {
                    String::new()
                } else {
                    format!(" under failure of {:?}", scenario.failed_nodes)
                };
                println!("VIOLATED  {spec}{failures}   [{:?}]", report.elapsed);
                if trace {
                    print!("{}", t.render(&cfg.net));
                }
            }
        }
    }
    // Summary. Inherited reports carry zero elapsed, so the total counts
    // each solver run exactly once instead of once per symmetry-group
    // member.
    let holds = reports.iter().filter(|r| r.verdict.holds()).count();
    let inherited = reports.iter().filter(|r| r.inherited).count();
    let total: std::time::Duration = reports.iter().map(|r| r.elapsed).sum();
    let conflicts: u64 = reports.iter().map(|r| r.solver.conflicts).sum();
    if !reports.is_empty() {
        println!(
            "{} invariants: {} hold, {} violated, {} inherited by symmetry; \
             solve time {total:?}, {conflicts} conflicts",
            reports.len(),
            holds,
            reports.len() - holds,
            inherited,
        );
    }
    for (spec, pipeline, src, dst) in &cfg.pipelines {
        match verifier.check_pipeline(pipeline, *src, *dst) {
            Ok(None) => println!("HOLDS     {spec}"),
            Ok(Some((violation, scenario))) => {
                any_violated = true;
                let failures = if scenario.fault_count() == 0 {
                    String::new()
                } else {
                    format!(" under failure of {:?}", scenario.failed_nodes)
                };
                println!("VIOLATED  {spec}{failures}");
                if trace {
                    println!("  {violation}");
                }
            }
            Err(e) => {
                eprintln!("vmn: pipeline check failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if any_violated {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
