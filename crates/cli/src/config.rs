//! The `.vmn` network-description format: parsing delegates to
//! `vmn_serve::spec`, which keeps the description *symbolic* so the
//! serving daemon can apply deltas and re-materialise it per epoch. The
//! one-shot CLI path materialises exactly once and keeps the historical
//! [`Config`] shape:
//!
//! ```text
//! # comments start with '#'
//! host     outside 8.8.8.8
//! host     inside  10.0.0.5
//! switch   sw
//! firewall fw allow 10.0.0.0/8 -> 0.0.0.0/0
//! nat      n1 internal 10.0.0.0/8 external 1.2.3.4
//! cache    c1 servers 10.1.0.0/16 deny 10.3.0.0/16 -> 10.1.0.1/32
//! idps     ips1
//! link     outside sw
//! link     inside  sw
//! link     fw      sw
//! route    sw 10.0.0.5/32 inside                 # dst-prefix next-hop
//! steer    sw from outside 0.0.0.0/0 fw prio 10  # ingress-qualified
//! autoroute                                       # shortest-path host routes
//! fail     fw                                     # a failure scenario
//! verify   flow-isolation outside -> inside
//! verify   node-isolation outside -> inside
//! verify   data-isolation inside -> outside
//! verify   traversal outside -> inside via fw
//! ```

use vmn::{Invariant, Network};
use vmn_net::NodeId;
use vmn_serve::NetSpec;

/// A parsed configuration: the network plus the invariants to verify.
pub struct Config {
    pub net: Network,
    pub invariants: Vec<(String, Invariant)>,
    /// Pipeline invariants: (spec text, spec, src, dst).
    pub pipelines: Vec<(String, vmn_net::PipelineSpec, NodeId, NodeId)>,
}

/// Parse error with line information.
#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a `.vmn` document (and materialises it once).
pub fn parse(text: &str) -> Result<Config, ParseError> {
    let m = NetSpec::parse(text)
        .and_then(|spec| spec.materialize())
        .map_err(|e| ParseError { line: e.line, message: e.message })?;
    Ok(Config { net: m.net, invariants: m.invariants, pipelines: m.pipelines })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# minimal firewalled pair
host     outside 8.8.8.8
host     inside  10.0.0.5
switch   sw
firewall fw allow 10.0.0.0/8 -> 0.0.0.0/0
link     outside sw
link     inside  sw
link     fw      sw
autoroute
steer    sw from outside 0.0.0.0/0 fw prio 10
steer    sw from inside  0.0.0.0/0 fw prio 10
fail     fw
verify   flow-isolation outside -> inside
verify   node-isolation outside -> inside
";

    /// The sample without the failure scenario: with the firewall up,
    /// flow isolation is enforced.
    const SAMPLE_NO_FAIL: &str = r"
host     outside 8.8.8.8
host     inside  10.0.0.5
switch   sw
firewall fw allow 10.0.0.0/8 -> 0.0.0.0/0
link     outside sw
link     inside  sw
link     fw      sw
autoroute
steer    sw from outside 0.0.0.0/0 fw prio 10
steer    sw from inside  0.0.0.0/0 fw prio 10
verify   flow-isolation outside -> inside
verify   node-isolation outside -> inside
";

    #[test]
    fn parses_sample() {
        let cfg = parse(SAMPLE).expect("parses");
        assert_eq!(cfg.net.topo.hosts().count(), 2);
        assert_eq!(cfg.net.topo.middleboxes().count(), 1);
        assert_eq!(cfg.invariants.len(), 2);
        assert_eq!(cfg.net.scenarios.len(), 1);
        cfg.net.validate().expect("all middleboxes have models");
    }

    #[test]
    fn verifies_sample_end_to_end() {
        // Without failures the firewall enforces flow isolation.
        let cfg = parse(SAMPLE_NO_FAIL).unwrap();
        let v = vmn::Verifier::new(&cfg.net, vmn::VerifyOptions::default()).unwrap();
        let flow = v.verify(&cfg.invariants[0].1).unwrap();
        assert!(flow.verdict.holds());
        let node = v.verify(&cfg.invariants[1].1).unwrap();
        assert!(!node.verdict.holds());

        // With the `fail fw` scenario, routing falls back to the direct
        // path (no backup is configured) and even flow isolation breaks —
        // exactly what failure-scenario checking is for.
        let cfg = parse(SAMPLE).unwrap();
        let v = vmn::Verifier::new(&cfg.net, vmn::VerifyOptions::default()).unwrap();
        let flow = v.verify(&cfg.invariants[0].1).unwrap();
        match flow.verdict {
            vmn::Verdict::Violated { scenario, .. } => {
                assert_eq!(scenario.fault_count(), 1);
            }
            vmn::Verdict::Holds => panic!("failure bypass should violate flow isolation"),
        }
    }

    fn parse_err(text: &str) -> ParseError {
        match parse(text) {
            Ok(_) => panic!("expected a parse error"),
            Err(e) => e,
        }
    }

    #[test]
    fn reports_unknown_nodes_with_line_numbers() {
        let e = parse_err("host a 1.2.3.4\nlink a ghost\n");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn reports_bad_keywords() {
        let e = parse_err("frobnicate x\n");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let e = parse_err("host a 1.2.3.4\nhost a 1.2.3.5\n");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn nat_and_lb_parse_with_addresses() {
        let text = r"
host h 10.0.0.1
host e 8.8.8.8
switch sw
nat n1 internal 10.0.0.0/8 external 1.2.3.4
lb  l1 vip 10.0.0.100 backends 10.0.0.1,10.0.0.2
link h sw
link e sw
link n1 sw
link l1 sw
autoroute
verify flow-isolation e -> h
";
        let cfg = parse(text).expect("parses");
        assert_eq!(cfg.net.topo.middleboxes().count(), 2);
        let n1 = cfg.net.topo.by_name("n1").unwrap();
        assert_eq!(cfg.net.topo.node(n1).addresses.len(), 1);
    }

    #[test]
    fn pipeline_invariant_parses_and_checks() {
        let text = r"
host a 1.1.1.1
host b 2.2.2.2
switch sw
idps i1
link a sw
link b sw
link i1 sw
autoroute
steer sw from a 2.2.2.2/32 i1 prio 10
verify pipeline a -> b via idps
";
        let cfg = parse(text).unwrap();
        assert_eq!(cfg.pipelines.len(), 1);
        let v = vmn::Verifier::new(&cfg.net, vmn::VerifyOptions::default()).unwrap();
        let (_, spec, s, d) = &cfg.pipelines[0];
        assert!(v.check_pipeline(spec, *s, *d).unwrap().is_none());
    }

    #[test]
    fn traversal_invariant_parses() {
        let text = r"
host a 1.1.1.1
host b 2.2.2.2
switch sw
idps i1
link a sw
link b sw
link i1 sw
autoroute
verify traversal a -> b via i1
";
        let cfg = parse(text).unwrap();
        assert!(matches!(cfg.invariants[0].1, Invariant::Traversal { .. }));
    }

    #[test]
    fn cache_with_multiple_server_prefixes() {
        let text = r"
host a 1.1.1.1
switch sw
cache c1 servers 10.1.0.0/16,10.2.0.0/16 deny 10.3.0.0/16 -> 10.1.0.1/32
link a sw
link c1 sw
autoroute
";
        let cfg = parse(text).unwrap();
        let c1 = cfg.net.topo.by_name("c1").unwrap();
        assert_eq!(cfg.net.model(c1).acls[0].1.len(), 1);
    }
}
