//! The `.vmn` network-description format and its parser.
//!
//! A deliberately small line-oriented format — enough for an operator to
//! describe a topology, its routing, middlebox configurations, failure
//! scenarios and invariants in one file:
//!
//! ```text
//! # comments start with '#'
//! host     outside 8.8.8.8
//! host     inside  10.0.0.5
//! switch   sw
//! firewall fw allow 10.0.0.0/8 -> 0.0.0.0/0
//! nat      n1 internal 10.0.0.0/8 external 1.2.3.4
//! cache    c1 servers 10.1.0.0/16 deny 10.3.0.0/16 -> 10.1.0.1/32
//! idps     ips1
//! link     outside sw
//! link     inside  sw
//! link     fw      sw
//! route    sw 10.0.0.5/32 inside                 # dst-prefix next-hop
//! steer    sw from outside 0.0.0.0/0 fw prio 10  # ingress-qualified
//! autoroute                                       # shortest-path host routes
//! fail     fw                                     # a failure scenario
//! verify   flow-isolation outside -> inside
//! verify   node-isolation outside -> inside
//! verify   data-isolation inside -> outside
//! verify   traversal outside -> inside via fw
//! ```

use std::collections::HashMap;
use vmn::{Invariant, Network};
use vmn_mbox::models;
use vmn_net::{Address, FailureScenario, NodeId, Prefix, RoutingConfig, Rule, Topology};

/// A parsed configuration: the network plus the invariants to verify.
pub struct Config {
    pub net: Network,
    pub invariants: Vec<(String, Invariant)>,
    /// Pipeline invariants: (spec text, spec, src, dst).
    pub pipelines: Vec<(String, vmn_net::PipelineSpec, NodeId, NodeId)>,
}

/// Parse error with line information.
#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parses a `.vmn` document.
pub fn parse(text: &str) -> Result<Config, ParseError> {
    let mut topo = Topology::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();
    struct PendingModel {
        line: usize,
        node: String,
        kind: String,
        args: Vec<String>,
    }
    let mut pending_models: Vec<PendingModel> = Vec::new();
    let mut pending_links: Vec<(usize, String, String)> = Vec::new();
    let mut pending_routes: Vec<(usize, Vec<String>)> = Vec::new();
    let mut pending_steers: Vec<(usize, Vec<String>)> = Vec::new();
    let mut pending_fails: Vec<(usize, Vec<String>)> = Vec::new();
    let mut pending_verifies: Vec<(usize, String)> = Vec::new();
    let mut autoroute = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        let keyword = tok.next().expect("non-empty line");
        let rest: Vec<String> = tok.map(str::to_string).collect();
        match keyword {
            "host" => {
                let [name, addr] = two(lineno, &rest, "host <name> <address>")?;
                let a: Address =
                    addr.parse().map_err(|e| err(lineno, format!("bad address: {e}")))?;
                insert_node(&mut names, lineno, name.clone(), topo.add_host(name, a))?;
            }
            "switch" => {
                let name = one(lineno, &rest, "switch <name>")?;
                insert_node(&mut names, lineno, name.clone(), topo.add_switch(name))?;
            }
            "firewall" | "acl-firewall" | "nat" | "cache" | "idps" | "ids" | "scrubber"
            | "gateway" | "wan-optimizer" | "lb" => {
                if rest.is_empty() {
                    return Err(err(lineno, format!("{keyword} needs a name")));
                }
                let name = rest[0].clone();
                // NATs and LBs own addresses; extract them for the topology.
                let addresses = owned_addresses(keyword, &rest).map_err(|m| err(lineno, m))?;
                let id = topo.add_middlebox(name.clone(), keyword, addresses);
                insert_node(&mut names, lineno, name.clone(), id)?;
                pending_models.push(PendingModel {
                    line: lineno,
                    node: name,
                    kind: keyword.to_string(),
                    args: rest[1..].to_vec(),
                });
            }
            "link" => {
                let [a, b] = two(lineno, &rest, "link <a> <b>")?;
                pending_links.push((lineno, a, b));
            }
            "route" => pending_routes.push((lineno, rest)),
            "steer" => pending_steers.push((lineno, rest)),
            "autoroute" => autoroute = true,
            "fail" => pending_fails.push((lineno, rest)),
            "verify" => pending_verifies.push((lineno, rest.join(" "))),
            other => return Err(err(lineno, format!("unknown keyword {other:?}"))),
        }
    }

    for (lineno, a, b) in pending_links {
        let na = lookup(&names, lineno, &a)?;
        let nb = lookup(&names, lineno, &b)?;
        topo.add_link(na, nb);
    }

    let mut tables = if autoroute {
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        rc.build(&topo, &FailureScenario::none())
    } else {
        vmn_net::ForwardingTables::new()
    };
    for (lineno, args) in pending_routes {
        // route <switch> <prefix> <next> [prio N]
        if args.len() < 3 {
            return Err(err(lineno, "route <switch> <prefix> <next-hop> [prio N]"));
        }
        let sw = lookup(&names, lineno, &args[0])?;
        let prefix: Prefix =
            args[1].parse().map_err(|e| err(lineno, format!("bad prefix: {e}")))?;
        let next = lookup(&names, lineno, &args[2])?;
        let prio = parse_prio(lineno, &args[3..])?;
        tables.add_rule(sw, Rule::new(prefix, next).with_priority(prio));
    }
    for (lineno, args) in pending_steers {
        // steer <switch> from <node> <prefix> <next> [prio N]
        if args.len() < 5 || args[1] != "from" {
            return Err(err(lineno, "steer <switch> from <node> <prefix> <next-hop> [prio N]"));
        }
        let sw = lookup(&names, lineno, &args[0])?;
        let from = lookup(&names, lineno, &args[2])?;
        let prefix: Prefix =
            args[3].parse().map_err(|e| err(lineno, format!("bad prefix: {e}")))?;
        let next = lookup(&names, lineno, &args[4])?;
        let prio = parse_prio(lineno, &args[5..])?;
        tables.add_rule(sw, Rule::from_neighbor(prefix, from, next).with_priority(prio));
    }

    let mut net = Network::new(topo, tables);
    for pm in pending_models {
        let node = lookup(&names, pm.line, &pm.node)?;
        let model = build_model(pm.line, &pm.kind, &pm.node, &pm.args)?;
        net.set_model(node, model);
    }
    for (lineno, args) in pending_fails {
        let mut nodes = Vec::new();
        for a in &args {
            nodes.push(lookup(&names, lineno, a)?);
        }
        net.add_scenario(FailureScenario::nodes(nodes));
    }

    let mut invariants = Vec::new();
    let mut pipelines = Vec::new();
    for (lineno, spec) in pending_verifies {
        let toks: Vec<&str> = spec.split_whitespace().collect();
        if toks.first() == Some(&"pipeline") {
            // verify pipeline <src> -> <dst> via <type> [<type>…]
            match toks.as_slice() {
                [_, src, "->", dst, "via", types @ ..] if !types.is_empty() => {
                    let s = lookup(&names, lineno, src)?;
                    let d = lookup(&names, lineno, dst)?;
                    let spec_obj = vmn_net::PipelineSpec::new(types.iter().copied());
                    pipelines.push((spec.clone(), spec_obj, s, d));
                }
                _ => {
                    return Err(err(
                        lineno,
                        "usage: verify pipeline <src> -> <dst> via <mbox-type>…",
                    ))
                }
            }
        } else {
            invariants.push((spec.clone(), parse_invariant(&names, lineno, &spec)?));
        }
    }

    Ok(Config { net, invariants, pipelines })
}

fn insert_node(
    names: &mut HashMap<String, NodeId>,
    line: usize,
    name: String,
    id: NodeId,
) -> Result<(), ParseError> {
    if names.insert(name.clone(), id).is_some() {
        return Err(err(line, format!("duplicate node name {name:?}")));
    }
    Ok(())
}

fn lookup(names: &HashMap<String, NodeId>, line: usize, name: &str) -> Result<NodeId, ParseError> {
    names.get(name).copied().ok_or_else(|| err(line, format!("unknown node {name:?}")))
}

fn one(line: usize, rest: &[String], usage: &str) -> Result<String, ParseError> {
    match rest {
        [a] => Ok(a.clone()),
        _ => Err(err(line, format!("usage: {usage}"))),
    }
}

fn two(line: usize, rest: &[String], usage: &str) -> Result<[String; 2], ParseError> {
    match rest {
        [a, b] => Ok([a.clone(), b.clone()]),
        _ => Err(err(line, format!("usage: {usage}"))),
    }
}

fn parse_prio(line: usize, rest: &[String]) -> Result<i32, ParseError> {
    match rest {
        [] => Ok(0),
        [kw, n] if kw == "prio" => n.parse().map_err(|_| err(line, format!("bad priority {n:?}"))),
        _ => Err(err(line, "expected `prio N` or nothing")),
    }
}

/// Addresses a middlebox owns, for the topology (NAT external, LB VIP).
fn owned_addresses(kind: &str, rest: &[String]) -> Result<Vec<Address>, String> {
    let find = |key: &str| -> Option<&str> {
        rest.iter().position(|t| t == key).and_then(|i| rest.get(i + 1)).map(String::as_str)
    };
    match kind {
        "nat" => {
            let ext = find("external").ok_or("nat needs `external <address>`")?;
            Ok(vec![ext.parse().map_err(|e| format!("bad external address: {e}"))?])
        }
        "lb" => {
            let vip = find("vip").ok_or("lb needs `vip <address>`")?;
            Ok(vec![vip.parse().map_err(|e| format!("bad vip: {e}"))?])
        }
        _ => Ok(Vec::new()),
    }
}

/// Parses `A/B -> C/D` pair lists separated by `,`.
fn parse_pairs(line: usize, toks: &[String]) -> Result<Vec<(Prefix, Prefix)>, ParseError> {
    let joined = toks.join(" ");
    let mut out = Vec::new();
    for chunk in joined.split(',') {
        let chunk = chunk.trim();
        if chunk.is_empty() {
            continue;
        }
        let (a, b) = chunk
            .split_once("->")
            .ok_or_else(|| err(line, format!("expected `src -> dst`, got {chunk:?}")))?;
        let pa: Prefix =
            a.trim().parse().map_err(|e| err(line, format!("bad prefix {a:?}: {e}")))?;
        let pb: Prefix =
            b.trim().parse().map_err(|e| err(line, format!("bad prefix {b:?}: {e}")))?;
        out.push((pa, pb));
    }
    Ok(out)
}

fn build_model(
    line: usize,
    kind: &str,
    name: &str,
    args: &[String],
) -> Result<vmn_mbox::MboxModel, ParseError> {
    let find = |key: &str| -> Option<usize> { args.iter().position(|t| t == key) };
    match kind {
        "firewall" => {
            let acl = match find("allow") {
                Some(i) => parse_pairs(line, &args[i + 1..])?,
                None => Vec::new(),
            };
            Ok(models::learning_firewall(kind, acl))
        }
        "acl-firewall" => {
            let acl = match find("allow") {
                Some(i) => parse_pairs(line, &args[i + 1..])?,
                None => Vec::new(),
            };
            Ok(models::acl_firewall(kind, acl))
        }
        "nat" => {
            let internal = find("internal")
                .and_then(|i| args.get(i + 1))
                .ok_or_else(|| err(line, "nat needs `internal <prefix>`"))?;
            let external = find("external")
                .and_then(|i| args.get(i + 1))
                .ok_or_else(|| err(line, "nat needs `external <address>`"))?;
            Ok(models::nat(
                kind,
                internal.parse().map_err(|e| err(line, format!("bad prefix: {e}")))?,
                external.parse().map_err(|e| err(line, format!("bad address: {e}")))?,
            ))
        }
        "cache" => {
            let servers_at = find("servers")
                .ok_or_else(|| err(line, "cache needs `servers <prefix>[,<prefix>…]`"))?;
            let deny_at = find("deny");
            let servers_end = deny_at.unwrap_or(args.len());
            let mut servers = Vec::new();
            for t in args[servers_at + 1..servers_end].join(" ").split(',') {
                let t = t.trim();
                if t.is_empty() {
                    continue;
                }
                servers.push(t.parse().map_err(|e| err(line, format!("bad prefix {t:?}: {e}")))?);
            }
            let deny = match deny_at {
                Some(i) => parse_pairs(line, &args[i + 1..])?,
                None => Vec::new(),
            };
            Ok(models::content_cache(kind, servers, deny))
        }
        "idps" => Ok(models::idps(kind)),
        "ids" => Ok(models::ids_monitor(kind)),
        "scrubber" => Ok(models::scrubber(kind)),
        "gateway" => Ok(models::gateway(kind)),
        "wan-optimizer" => Ok(models::wan_optimizer(kind)),
        "lb" => {
            let vip = find("vip")
                .and_then(|i| args.get(i + 1))
                .ok_or_else(|| err(line, "lb needs `vip <address>`"))?;
            let backends_at =
                find("backends").ok_or_else(|| err(line, "lb needs `backends <a>,<b>…`"))?;
            let mut backends = Vec::new();
            for t in args[backends_at + 1..].join(" ").split(',') {
                let t = t.trim();
                if t.is_empty() {
                    continue;
                }
                backends.push(t.parse().map_err(|e| err(line, format!("bad address {t:?}: {e}")))?);
            }
            Ok(models::load_balancer(
                kind,
                vip.parse().map_err(|e| err(line, format!("bad vip: {e}")))?,
                backends,
            ))
        }
        other => Err(err(line, format!("unknown middlebox kind {other:?} for {name}"))),
    }
}

fn parse_invariant(
    names: &HashMap<String, NodeId>,
    line: usize,
    spec: &str,
) -> Result<Invariant, ParseError> {
    let toks: Vec<&str> = spec.split_whitespace().collect();
    match toks.as_slice() {
        [kind, src, "->", dst, rest @ ..] => {
            let s = lookup(names, line, src)?;
            let d = lookup(names, line, dst)?;
            match (*kind, rest) {
                ("node-isolation", []) => Ok(Invariant::NodeIsolation { src: s, dst: d }),
                ("flow-isolation", []) => Ok(Invariant::FlowIsolation { src: s, dst: d }),
                ("data-isolation", []) => Ok(Invariant::DataIsolation { origin: s, dst: d }),
                ("traversal", ["via", boxes @ ..]) if !boxes.is_empty() => {
                    let mut through = Vec::new();
                    for b in boxes {
                        through.push(lookup(names, line, b)?);
                    }
                    Ok(Invariant::Traversal { dst: d, through, from: Some(s) })
                }
                _ => Err(err(line, format!("bad invariant spec {spec:?}"))),
            }
        }
        _ => Err(err(
            line,
            "usage: verify <kind> <src> -> <dst> [via <mbox>…] \
             where kind is node-isolation | flow-isolation | data-isolation | traversal",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# minimal firewalled pair
host     outside 8.8.8.8
host     inside  10.0.0.5
switch   sw
firewall fw allow 10.0.0.0/8 -> 0.0.0.0/0
link     outside sw
link     inside  sw
link     fw      sw
autoroute
steer    sw from outside 0.0.0.0/0 fw prio 10
steer    sw from inside  0.0.0.0/0 fw prio 10
fail     fw
verify   flow-isolation outside -> inside
verify   node-isolation outside -> inside
";

    /// The sample without the failure scenario: with the firewall up,
    /// flow isolation is enforced.
    const SAMPLE_NO_FAIL: &str = r"
host     outside 8.8.8.8
host     inside  10.0.0.5
switch   sw
firewall fw allow 10.0.0.0/8 -> 0.0.0.0/0
link     outside sw
link     inside  sw
link     fw      sw
autoroute
steer    sw from outside 0.0.0.0/0 fw prio 10
steer    sw from inside  0.0.0.0/0 fw prio 10
verify   flow-isolation outside -> inside
verify   node-isolation outside -> inside
";

    #[test]
    fn parses_sample() {
        let cfg = parse(SAMPLE).expect("parses");
        assert_eq!(cfg.net.topo.hosts().count(), 2);
        assert_eq!(cfg.net.topo.middleboxes().count(), 1);
        assert_eq!(cfg.invariants.len(), 2);
        assert_eq!(cfg.net.scenarios.len(), 1);
        cfg.net.validate().expect("all middleboxes have models");
    }

    #[test]
    fn verifies_sample_end_to_end() {
        // Without failures the firewall enforces flow isolation.
        let cfg = parse(SAMPLE_NO_FAIL).unwrap();
        let v = vmn::Verifier::new(&cfg.net, vmn::VerifyOptions::default()).unwrap();
        let flow = v.verify(&cfg.invariants[0].1).unwrap();
        assert!(flow.verdict.holds());
        let node = v.verify(&cfg.invariants[1].1).unwrap();
        assert!(!node.verdict.holds());

        // With the `fail fw` scenario, routing falls back to the direct
        // path (no backup is configured) and even flow isolation breaks —
        // exactly what failure-scenario checking is for.
        let cfg = parse(SAMPLE).unwrap();
        let v = vmn::Verifier::new(&cfg.net, vmn::VerifyOptions::default()).unwrap();
        let flow = v.verify(&cfg.invariants[0].1).unwrap();
        match flow.verdict {
            vmn::Verdict::Violated { scenario, .. } => {
                assert_eq!(scenario.fault_count(), 1);
            }
            vmn::Verdict::Holds => panic!("failure bypass should violate flow isolation"),
        }
    }

    fn parse_err(text: &str) -> ParseError {
        match parse(text) {
            Ok(_) => panic!("expected a parse error"),
            Err(e) => e,
        }
    }

    #[test]
    fn reports_unknown_nodes_with_line_numbers() {
        let e = parse_err("host a 1.2.3.4\nlink a ghost\n");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn reports_bad_keywords() {
        let e = parse_err("frobnicate x\n");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let e = parse_err("host a 1.2.3.4\nhost a 1.2.3.5\n");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn nat_and_lb_parse_with_addresses() {
        let text = r"
host h 10.0.0.1
host e 8.8.8.8
switch sw
nat n1 internal 10.0.0.0/8 external 1.2.3.4
lb  l1 vip 10.0.0.100 backends 10.0.0.1,10.0.0.2
link h sw
link e sw
link n1 sw
link l1 sw
autoroute
verify flow-isolation e -> h
";
        let cfg = parse(text).expect("parses");
        assert_eq!(cfg.net.topo.middleboxes().count(), 2);
        let n1 = cfg.net.topo.by_name("n1").unwrap();
        assert_eq!(cfg.net.topo.node(n1).addresses.len(), 1);
    }

    #[test]
    fn pipeline_invariant_parses_and_checks() {
        let text = r"
host a 1.1.1.1
host b 2.2.2.2
switch sw
idps i1
link a sw
link b sw
link i1 sw
autoroute
steer sw from a 2.2.2.2/32 i1 prio 10
verify pipeline a -> b via idps
";
        let cfg = parse(text).unwrap();
        assert_eq!(cfg.pipelines.len(), 1);
        let v = vmn::Verifier::new(&cfg.net, vmn::VerifyOptions::default()).unwrap();
        let (_, spec, s, d) = &cfg.pipelines[0];
        assert!(v.check_pipeline(spec, *s, *d).unwrap().is_none());
    }

    #[test]
    fn traversal_invariant_parses() {
        let text = r"
host a 1.1.1.1
host b 2.2.2.2
switch sw
idps i1
link a sw
link b sw
link i1 sw
autoroute
verify traversal a -> b via i1
";
        let cfg = parse(text).unwrap();
        assert!(matches!(cfg.invariants[0].1, Invariant::Traversal { .. }));
    }

    #[test]
    fn cache_with_multiple_server_prefixes() {
        let text = r"
host a 1.1.1.1
switch sw
cache c1 servers 10.1.0.0/16,10.2.0.0/16 deny 10.3.0.0/16 -> 10.1.0.1/32
link a sw
link c1 sw
autoroute
";
        let cfg = parse(text).unwrap();
        let c1 = cfg.net.topo.by_name("c1").unwrap();
        assert_eq!(cfg.net.model(c1).acls[0].1.len(), 1);
    }
}
