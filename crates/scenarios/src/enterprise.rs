//! §5.3.1: the enterprise / university network of Figure 6 — subnets of
//! three kinds behind one stateful firewall and a gateway:
//!
//! * **public** subnets both initiate and accept connections with the
//!   outside world,
//! * **private** subnets are flow-isolated (initiate but never accept),
//! * **quarantined** subnets are node-isolated (no communication at all).
//!
//! Subnet counts keep the paper's 1:1:1 proportion. Figure 7 measures
//! per-invariant verification time on a slice versus on whole networks of
//! growing size; [`Enterprise::size`] reports the host+middlebox count
//! used for the x-axis.

use vmn::{Invariant, Network};
use vmn_mbox::models;
use vmn_net::{NodeId, Prefix, Rule, Topology};

use crate::{external_addr, host_addr};

/// Kind of a subnet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubnetKind {
    Public,
    Private,
    Quarantined,
}

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct EnterpriseParams {
    /// Number of subnets; kinds cycle public, private, quarantined.
    pub subnets: usize,
    /// Hosts per subnet.
    pub hosts_per_subnet: usize,
}

impl Default for EnterpriseParams {
    fn default() -> Self {
        EnterpriseParams { subnets: 6, hosts_per_subnet: 2 }
    }
}

/// The constructed enterprise network.
pub struct Enterprise {
    pub net: Network,
    pub params: EnterpriseParams,
    pub internet: NodeId,
    pub fw: NodeId,
    pub gw: NodeId,
    /// (kind, hosts) per subnet.
    pub subnets: Vec<(SubnetKind, Vec<NodeId>)>,
}

impl Enterprise {
    pub fn kind_of(i: usize) -> SubnetKind {
        match i % 3 {
            0 => SubnetKind::Public,
            1 => SubnetKind::Private,
            _ => SubnetKind::Quarantined,
        }
    }

    pub fn build(params: EnterpriseParams) -> Enterprise {
        assert!(params.subnets >= 1 && params.subnets <= 200);
        assert!(params.hosts_per_subnet >= 1 && params.hosts_per_subnet <= 200);
        let mut topo = Topology::new();
        let internet = topo.add_host("internet", external_addr(0, 1));
        let edge = topo.add_switch("edge");
        let inner = topo.add_switch("inner");
        let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
        let gw = topo.add_middlebox("gw", "gateway", vec![]);
        topo.add_link(internet, edge);
        topo.add_link(fw, edge);
        topo.add_link(fw, inner);
        topo.add_link(gw, inner);

        let mut subnets = Vec::new();
        let mut tables = vmn_net::ForwardingTables::new();
        let all = Prefix::default_route();
        for s in 0..params.subnets {
            let kind = Self::kind_of(s);
            let sw = topo.add_switch(format!("subnet{s}"));
            topo.add_link(sw, inner);
            let mut hosts = Vec::new();
            for h in 0..params.hosts_per_subnet {
                let addr = host_addr((s / 250) as u8, (s % 250) as u8, h as u8 + 1);
                let host = topo.add_host(format!("s{s}h{h}"), addr);
                topo.add_link(host, sw);
                hosts.push(host);
                tables.add_rule(sw, Rule::from_neighbor(Prefix::host(addr), inner, host));
                tables.add_rule(sw, Rule::from_neighbor(all, host, inner).with_priority(10));
            }
            let subnet_prefix = Prefix::new(host_addr((s / 250) as u8, (s % 250) as u8, 0), 24);
            tables.add_rule(inner, Rule::new(subnet_prefix, sw));
            subnets.push((kind, hosts));
        }
        // Edge: inbound internet traffic crosses the firewall; firewall
        // re-emissions toward the internet are delivered.
        tables.add_rule(edge, Rule::from_neighbor(all, internet, fw).with_priority(20));
        tables.add_rule(edge, Rule::new(Prefix::host(external_addr(0, 1)), internet));
        // Inner: traffic arriving from the firewall goes to the gateway,
        // gateway re-emissions fall through to subnet rules; subnet
        // uplink traffic toward the internet goes gateway → firewall.
        tables.add_rule(inner, Rule::from_neighbor(all, fw, gw).with_priority(20));
        for s in 0..params.subnets {
            let sw = topo.by_name(&format!("subnet{s}")).unwrap();
            tables.add_rule(inner, Rule::from_neighbor(all, sw, gw).with_priority(20));
        }
        tables.add_rule(
            inner,
            Rule::from_neighbor(Prefix::host(external_addr(0, 1)), gw, fw).with_priority(15),
        );

        let mut net = Network::new(topo, tables);
        // Firewall ACL per §5.3.1: public subnets two-way, private
        // subnets outbound-only (replies ride the learning state),
        // quarantined subnets nothing.
        let mut acl: Vec<(Prefix, Prefix)> = Vec::new();
        for (s, (kind, _)) in subnets.iter().enumerate() {
            let p = Prefix::new(host_addr((s / 250) as u8, (s % 250) as u8, 0), 24);
            match kind {
                SubnetKind::Public => {
                    acl.push((all, p));
                    acl.push((p, all));
                }
                SubnetKind::Private => acl.push((p, all)),
                SubnetKind::Quarantined => {}
            }
        }
        net.set_model(fw, models::learning_firewall("stateful-firewall", acl));
        net.set_model(gw, models::gateway("gateway"));

        Enterprise { net, params, internet, fw, gw, subnets }
    }

    /// Hosts + middleboxes, the x-axis of Figure 7.
    pub fn size(&self) -> usize {
        self.net.topo.terminals().count()
    }

    /// Policy hint: subnets of the same kind are one class; the internet
    /// host is its own class.
    pub fn policy_hint(&self) -> Vec<Vec<NodeId>> {
        let mut public = Vec::new();
        let mut private = Vec::new();
        let mut quarantined = Vec::new();
        for (kind, hosts) in &self.subnets {
            match kind {
                SubnetKind::Public => public.extend(hosts),
                SubnetKind::Private => private.extend(hosts),
                SubnetKind::Quarantined => quarantined.extend(hosts),
            }
        }
        let mut out = vec![vec![self.internet]];
        for v in [public, private, quarantined] {
            if !v.is_empty() {
                out.push(v);
            }
        }
        out
    }

    /// First subnet of a given kind.
    pub fn subnet_of_kind(&self, kind: SubnetKind) -> Option<&[NodeId]> {
        self.subnets.iter().find(|(k, _)| *k == kind).map(|(_, h)| h.as_slice())
    }

    /// The invariant the paper verifies for each subnet kind:
    /// public — reachable from the internet (expected **violated**, i.e.
    /// reachability); private — flow-isolated (holds); quarantined —
    /// node-isolated (holds).
    pub fn invariant_for(&self, kind: SubnetKind) -> Invariant {
        let host = self.subnet_of_kind(kind).expect("subnet exists")[0];
        match kind {
            SubnetKind::Public => Invariant::NodeIsolation { src: self.internet, dst: host },
            SubnetKind::Private => Invariant::FlowIsolation { src: self.internet, dst: host },
            SubnetKind::Quarantined => Invariant::NodeIsolation { src: self.internet, dst: host },
        }
    }

    /// All three per-kind invariants present in this network.
    pub fn invariants(&self) -> Vec<(SubnetKind, Invariant)> {
        [SubnetKind::Public, SubnetKind::Private, SubnetKind::Quarantined]
            .into_iter()
            .filter(|k| self.subnet_of_kind(*k).is_some())
            .map(|k| (k, self.invariant_for(k)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn::{Verifier, VerifyOptions};

    fn opts(e: &Enterprise) -> VerifyOptions {
        VerifyOptions { policy_hint: Some(e.policy_hint()), ..Default::default() }
    }

    #[test]
    fn builds_with_proportional_kinds() {
        let e = Enterprise::build(EnterpriseParams { subnets: 6, hosts_per_subnet: 2 });
        assert!(e.net.validate().is_ok());
        let kinds: Vec<SubnetKind> = e.subnets.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds.iter().filter(|k| **k == SubnetKind::Public).count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == SubnetKind::Private).count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == SubnetKind::Quarantined).count(), 2);
    }

    #[test]
    fn public_subnets_are_reachable() {
        let e = Enterprise::build(EnterpriseParams { subnets: 3, hosts_per_subnet: 1 });
        let v = Verifier::new(&e.net, opts(&e)).unwrap();
        let rep = v.verify(&e.invariant_for(SubnetKind::Public)).unwrap();
        assert!(!rep.verdict.holds(), "public subnet accepts inbound connections");
    }

    #[test]
    fn private_subnets_are_flow_isolated() {
        let e = Enterprise::build(EnterpriseParams { subnets: 3, hosts_per_subnet: 1 });
        let v = Verifier::new(&e.net, opts(&e)).unwrap();
        let rep = v.verify(&e.invariant_for(SubnetKind::Private)).unwrap();
        if let vmn::Verdict::Violated { trace, .. } = &rep.verdict {
            panic!("private subnet must be flow isolated:\n{}", trace.render(&e.net));
        }
        // But private hosts can reach out.
        let priv_host = e.subnet_of_kind(SubnetKind::Private).unwrap()[0];
        assert!(v.can_reach(priv_host, e.internet).unwrap());
    }

    #[test]
    fn quarantined_subnets_are_node_isolated() {
        let e = Enterprise::build(EnterpriseParams { subnets: 3, hosts_per_subnet: 1 });
        let v = Verifier::new(&e.net, opts(&e)).unwrap();
        let rep = v.verify(&e.invariant_for(SubnetKind::Quarantined)).unwrap();
        assert!(rep.verdict.holds(), "quarantined subnet must be unreachable");
        // And cannot reach out either.
        let q = e.subnet_of_kind(SubnetKind::Quarantined).unwrap()[0];
        assert!(!v.can_reach(q, e.internet).unwrap());
    }

    #[test]
    fn slice_size_constant_as_network_grows() {
        let mut sizes = Vec::new();
        for subnets in [3usize, 9, 15] {
            let e = Enterprise::build(EnterpriseParams { subnets, hosts_per_subnet: 2 });
            let v = Verifier::new(&e.net, opts(&e)).unwrap();
            let rep = v.verify(&e.invariant_for(SubnetKind::Private)).unwrap();
            sizes.push(rep.encoded_nodes);
        }
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[1], sizes[2]);
    }
}
