//! §5.3.2: the multi-tenant datacenter with EC2-style security groups
//! (Figure 8).
//!
//! Each tenant runs 10 VMs, 5 in a *public* security group (accept from
//! anyone) and 5 in a *private* one (flow-isolated: initiate anywhere,
//! accept only from the same tenant). Security-group enforcement lives in
//! a stateful per-tenant virtual-switch firewall that all of the tenant's
//! traffic traverses, in both directions.
//!
//! Scale note: the paper gives every physical server its own virtual
//! switch; here the enforcement point is one security-group firewall per
//! tenant. The policy semantics (and the flow-parallel slicing argument)
//! are identical, and the whole-network encoding still grows linearly
//! with tenant count, which is what Figure 8 plots.

use vmn::{Invariant, Network};
use vmn_mbox::models;
use vmn_net::{NodeId, Prefix, Rule, Topology};

use crate::host_addr;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct MultiTenantParams {
    pub tenants: usize,
    /// VMs per security group (the paper uses 5 public + 5 private).
    pub vms_per_group: usize,
}

impl Default for MultiTenantParams {
    fn default() -> Self {
        MultiTenantParams { tenants: 5, vms_per_group: 5 }
    }
}

/// The constructed datacenter.
pub struct MultiTenant {
    pub net: Network,
    pub params: MultiTenantParams,
    /// Per tenant: private VMs.
    pub private_vms: Vec<Vec<NodeId>>,
    /// Per tenant: public VMs.
    pub public_vms: Vec<Vec<NodeId>>,
    /// Per tenant: the security-group firewall.
    pub sg_fw: Vec<NodeId>,
}

impl MultiTenant {
    fn tenant_prefix(t: u8) -> Prefix {
        Prefix::new(host_addr(t, 0, 0), 16)
    }

    fn private_prefix(t: u8) -> Prefix {
        Prefix::new(host_addr(t, 0, 0), 24)
    }

    fn public_prefix(t: u8) -> Prefix {
        Prefix::new(host_addr(t, 1, 0), 24)
    }

    pub fn build(params: MultiTenantParams) -> MultiTenant {
        assert!(params.tenants >= 2 && params.tenants <= 120);
        assert!(params.vms_per_group >= 1 && params.vms_per_group <= 120);
        let mut topo = Topology::new();
        let agg = topo.add_switch("agg");
        let mut private_vms = Vec::new();
        let mut public_vms = Vec::new();
        let mut sg_fw = Vec::new();
        let mut tables = vmn_net::ForwardingTables::new();
        let all = Prefix::default_route();

        for t in 0..params.tenants as u8 {
            let tor = topo.add_switch(format!("tor{t}"));
            topo.add_link(tor, agg);
            let sg = topo.add_middlebox(format!("sg{t}"), "security-group-fw", vec![]);
            topo.add_link(sg, tor);
            sg_fw.push(sg);

            let mut privs = Vec::new();
            let mut pubs = Vec::new();
            for v in 0..params.vms_per_group as u8 {
                let pa = host_addr(t, 0, v + 1);
                let pv = topo.add_host(format!("t{t}priv{v}"), pa);
                topo.add_link(pv, tor);
                privs.push(pv);
                let qa = host_addr(t, 1, v + 1);
                let qv = topo.add_host(format!("t{t}pub{v}"), qa);
                topo.add_link(qv, tor);
                pubs.push(qv);
                // Delivery rules: only the security group may deliver to a
                // VM; VM uplinks go to the security group first.
                for (addr, vm) in [(pa, pv), (qa, qv)] {
                    tables.add_rule(
                        tor,
                        Rule::from_neighbor(Prefix::host(addr), sg, vm).with_priority(30),
                    );
                    tables.add_rule(tor, Rule::from_neighbor(all, vm, sg).with_priority(20));
                }
            }
            // Security-group re-emissions: tenant-local destinations are
            // delivered by the /32 rules above... but those are
            // from-qualified on `sg`, so they apply; everything else goes
            // up to the aggregation switch.
            tables.add_rule(tor, Rule::from_neighbor(all, sg, agg).with_priority(5));
            // Inbound from the fabric: through the security group.
            tables.add_rule(tor, Rule::from_neighbor(all, agg, sg).with_priority(20));
            // Aggregation: tenant prefix routes to the tenant ToR.
            tables.add_rule(agg, Rule::new(Self::tenant_prefix(t), tor));

            private_vms.push(privs);
            public_vms.push(pubs);
        }

        let mut net = Network::new(topo, tables);
        for t in 0..params.tenants as u8 {
            // Security-group policy: public accepts from anyone; private
            // accepts only from this tenant (both its groups).
            let acl = vec![
                (all, Self::public_prefix(t)),
                (Self::tenant_prefix(t), Self::private_prefix(t)),
                // Outbound from this tenant is always allowed (and punches
                // the hole for replies).
                (Self::tenant_prefix(t), all),
            ];
            net.set_model(
                sg_fw[t as usize],
                models::security_group_firewall("security-group-fw", acl),
            );
        }

        MultiTenant { net, params, private_vms, public_vms, sg_fw }
    }

    /// Policy hint: all private VMs form one equivalence class and all
    /// public VMs another — tenants are *symmetric* (each is treated by
    /// the same security-group policy structure), which is what lets the
    /// engine verify one representative of each Figure-8 invariant family
    /// instead of one per tenant pair (§4.2).
    pub fn policy_hint(&self) -> Vec<Vec<NodeId>> {
        vec![
            self.private_vms.iter().flatten().copied().collect(),
            self.public_vms.iter().flatten().copied().collect(),
        ]
    }

    /// The three invariants of Figure 8, instantiated for tenants (a, b).
    pub fn priv_priv(&self, a: usize, b: usize) -> Invariant {
        Invariant::FlowIsolation { src: self.private_vms[a][0], dst: self.private_vms[b][0] }
    }

    pub fn pub_priv(&self, a: usize, b: usize) -> Invariant {
        Invariant::FlowIsolation { src: self.public_vms[a][0], dst: self.private_vms[b][0] }
    }

    pub fn priv_pub(&self, a: usize, b: usize) -> Invariant {
        Invariant::NodeIsolation { src: self.private_vms[a][0], dst: self.public_vms[b][0] }
    }

    /// All instances of the three invariant families over distinct tenant
    /// pairs (i, i+1) — the set Figure 8 draws from.
    pub fn invariants(&self) -> Vec<Invariant> {
        let t = self.params.tenants;
        let mut out = Vec::new();
        for i in 0..t {
            let j = (i + 1) % t;
            out.push(self.priv_priv(i, j));
            out.push(self.pub_priv(i, j));
            out.push(self.priv_pub(i, j));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn::{Verifier, VerifyOptions};

    fn opts(m: &MultiTenant) -> VerifyOptions {
        VerifyOptions { policy_hint: Some(m.policy_hint()), ..Default::default() }
    }

    fn small() -> MultiTenant {
        MultiTenant::build(MultiTenantParams { tenants: 2, vms_per_group: 2 })
    }

    #[test]
    fn builds_and_validates() {
        let m = small();
        assert!(m.net.validate().is_ok());
        assert_eq!(m.net.topo.hosts().count(), 8);
        assert_eq!(m.net.topo.middleboxes().count(), 2);
    }

    #[test]
    fn cross_tenant_private_vms_are_isolated() {
        let m = small();
        let v = Verifier::new(&m.net, opts(&m)).unwrap();
        let rep = v.verify(&m.priv_priv(0, 1)).unwrap();
        if let vmn::Verdict::Violated { trace, .. } = &rep.verdict {
            panic!("priv-priv must hold:\n{}", trace.render(&m.net));
        }
        let rep = v.verify(&m.pub_priv(0, 1)).unwrap();
        assert!(rep.verdict.holds(), "pub-priv must hold");
    }

    #[test]
    fn private_vms_reach_other_tenants_public_vms() {
        let m = small();
        let v = Verifier::new(&m.net, opts(&m)).unwrap();
        let rep = v.verify(&m.priv_pub(0, 1)).unwrap();
        assert!(!rep.verdict.holds(), "priv VMs may initiate to other tenants' public VMs");
    }

    #[test]
    fn same_tenant_vms_communicate() {
        let m = small();
        let v = Verifier::new(&m.net, opts(&m)).unwrap();
        assert!(v.can_reach(m.private_vms[0][0], m.private_vms[0][1]).unwrap());
        assert!(v.can_reach(m.public_vms[0][0], m.private_vms[0][1]).unwrap());
    }

    #[test]
    fn slices_stay_small_as_tenants_grow() {
        let mut sizes = Vec::new();
        for tenants in [2usize, 4, 6] {
            let m = MultiTenant::build(MultiTenantParams { tenants, vms_per_group: 2 });
            let v = Verifier::new(&m.net, opts(&m)).unwrap();
            let rep = v.verify(&m.priv_priv(0, 1)).unwrap();
            sizes.push(rep.encoded_nodes);
        }
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[1], sizes[2]);
    }
}
