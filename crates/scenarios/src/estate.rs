//! Generator-driven campus / ISP estates for modular verification —
//! two orders of magnitude bigger than the `dc-fleet` workloads.
//!
//! An estate is a set of *sites* (campus buildings or ISP POPs) joined
//! through a core switch. Each site has one site switch, a fan of
//! subnet switches with hosts hanging off them, and an **in-line ACL
//! firewall** between the site switch and the core that only passes
//! site-local sources in either direction — so cross-site reachability
//! is statically forbidden and every invariant of the default estate
//! can be discharged by boundary contracts alone.
//!
//! ```text
//! h… - sub<b>x<f> - site<b> - fw<b> - core - fw<b'> - site<b'> - …
//! ```
//!
//! Addressing is site/subnet aligned (`10.<site>.<subnet>.<host>`, a
//! power-of-two host count per subnet), so the contract synthesizer's
//! prefix aggregation collapses each subnet's sources into one window —
//! the precision the paper's network-transfer summaries rely on.
//!
//! Routing: BFS (`RoutingConfig`) covers the intra-site fabric; the
//! inter-site legs are explicit `from`-scoped rules, since the BFS
//! never transits a terminal and an unscoped rule would bounce a
//! firewall's re-emission straight back into it.

use vmn::{Invariant, Network};
use vmn_analysis::{Module, Partition};
use vmn_mbox::models;
use vmn_net::{FailureScenario, NodeId, Prefix, Rule, Topology};

use crate::{group_prefix, host_addr};

/// Naming style: campus buildings or ISP POPs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EstateStyle {
    Campus,
    Isp,
}

impl EstateStyle {
    fn site(self) -> &'static str {
        match self {
            EstateStyle::Campus => "building",
            EstateStyle::Isp => "pop",
        }
    }
    fn subnet(self) -> &'static str {
        match self {
            EstateStyle::Campus => "floor",
            EstateStyle::Isp => "access",
        }
    }
}

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct EstateParams {
    pub style: EstateStyle,
    /// Number of sites (buildings / POPs).
    pub sites: usize,
    /// Subnet switches per site.
    pub subnets_per_site: usize,
    /// Hosts per subnet; keep it a power of two so each subnet's
    /// sources aggregate into a single prefix window.
    pub hosts_per_subnet: usize,
    /// Register failure scenarios (one site firewall, one subnet
    /// switch) on the network.
    pub with_failures: bool,
}

impl EstateParams {
    /// The campus estate used by `bench_modular`: 13 buildings of
    /// 16 floors x 16 hosts — 3563 nodes, over 100x the `dc-fleet`
    /// topology (32 nodes).
    pub fn campus() -> EstateParams {
        EstateParams {
            style: EstateStyle::Campus,
            sites: 13,
            subnets_per_site: 16,
            hosts_per_subnet: 16,
            with_failures: true,
        }
    }

    /// The ISP estate: 20 POPs of 10 access switches x 16 customers —
    /// 3441 nodes.
    pub fn isp() -> EstateParams {
        EstateParams {
            style: EstateStyle::Isp,
            sites: 20,
            subnets_per_site: 10,
            hosts_per_subnet: 16,
            with_failures: true,
        }
    }

    /// Total node count of the generated topology.
    pub fn node_count(&self) -> usize {
        self.sites * (self.subnets_per_site * (self.hosts_per_subnet + 1) + 2) + 1
    }
}

/// The constructed estate.
pub struct Estate {
    pub net: Network,
    pub params: EstateParams,
    pub core: NodeId,
    /// Per site: the site switch.
    pub site_switches: Vec<NodeId>,
    /// Per site: the in-line firewall toward the core.
    pub firewalls: Vec<NodeId>,
    /// Per site, per subnet: the hosts.
    pub hosts: Vec<Vec<Vec<NodeId>>>,
}

impl Estate {
    pub fn build(params: EstateParams) -> Estate {
        assert!(params.sites >= 2 && params.sites <= 200);
        assert!(params.subnets_per_site >= 1 && params.subnets_per_site <= 200);
        assert!(params.hosts_per_subnet >= 1 && params.hosts_per_subnet <= 250);
        let (site, subnet) = (params.style.site(), params.style.subnet());
        let mut topo = Topology::new();
        let core = topo.add_switch("core");
        let mut site_switches = Vec::with_capacity(params.sites);
        let mut firewalls = Vec::with_capacity(params.sites);
        let mut hosts: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(params.sites);
        let mut subnet_switches: Vec<Vec<NodeId>> = Vec::with_capacity(params.sites);
        for b in 0..params.sites {
            let ssw = topo.add_switch(format!("{site}{b}"));
            let fw = topo.add_middlebox(format!("fw{b}"), format!("site-firewall-{b}"), vec![]);
            topo.add_link(ssw, fw);
            topo.add_link(fw, core);
            let mut site_hosts = Vec::with_capacity(params.subnets_per_site);
            let mut site_subs = Vec::with_capacity(params.subnets_per_site);
            for f in 0..params.subnets_per_site {
                let fsw = topo.add_switch(format!("{subnet}{b}x{f}"));
                topo.add_link(fsw, ssw);
                let mut subnet_hosts = Vec::with_capacity(params.hosts_per_subnet);
                for k in 0..params.hosts_per_subnet {
                    let h = topo
                        .add_host(format!("h{b}x{f}x{k}"), host_addr(b as u8, f as u8, k as u8));
                    topo.add_link(h, fsw);
                    subnet_hosts.push(h);
                }
                site_hosts.push(subnet_hosts);
                site_subs.push(fsw);
            }
            site_switches.push(ssw);
            firewalls.push(fw);
            hosts.push(site_hosts);
            subnet_switches.push(site_subs);
        }

        // Intra-site routing comes from BFS over the site's switch
        // fabric (the core is switch-isolated: its links all go to the
        // firewalls, which are terminals).
        let mut rc = vmn_net::RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());

        // Inter-site legs. Negative priority keeps the BFS host routes
        // preferred for intra-site destinations.
        let all10 = Prefix::new(host_addr(0, 0, 0), 8);
        for b in 0..params.sites {
            let (ssw, fw) = (site_switches[b], firewalls[b]);
            for &fsw in &subnet_switches[b] {
                tables.add_rule(fsw, Rule::new(all10, ssw).with_priority(-10));
                tables.add_rule(ssw, Rule::from_neighbor(all10, fsw, fw).with_priority(-10));
            }
        }
        for b_from in 0..params.sites {
            for b_to in 0..params.sites {
                if b_from != b_to {
                    tables.add_rule(
                        core,
                        Rule::from_neighbor(
                            group_prefix(b_to as u8),
                            firewalls[b_from],
                            firewalls[b_to],
                        ),
                    );
                }
            }
        }

        let mut net = Network::new(topo, tables);
        for (b, &fw) in firewalls.iter().enumerate() {
            // Site-local sources only, in either direction.
            net.set_model(
                fw,
                models::acl_firewall(
                    &format!("site-firewall-{b}"),
                    vec![(group_prefix(b as u8), Prefix::default_route())],
                ),
            );
        }
        if params.with_failures {
            net.add_scenario(FailureScenario::nodes([firewalls[0]]));
            net.add_scenario(FailureScenario::nodes([subnet_switches[0][0]]));
        }
        Estate { net, params, core, site_switches, firewalls, hosts }
    }

    /// The per-site partition: one module per site (hosts, subnet
    /// switches, site switch and firewall) plus the core. Boundary
    /// edges are exactly the `fw<b> - core` links.
    pub fn partition(&self) -> Partition {
        let topo = &self.net.topo;
        let name = |n: NodeId| topo.node(n).name.clone();
        let mut modules: Vec<Module> = (0..self.params.sites)
            .map(|b| {
                let mut nodes: std::collections::BTreeSet<String> =
                    [name(self.site_switches[b]), name(self.firewalls[b])].into();
                for (f, subnet) in self.hosts[b].iter().enumerate() {
                    nodes.insert(format!("{}{b}x{f}", self.params.style.subnet()));
                    nodes.extend(subnet.iter().map(|&h| name(h)));
                }
                Module { name: format!("{}{b}", self.params.style.site()), nodes }
            })
            .collect();
        modules.push(Module { name: "core".into(), nodes: [name(self.core)].into() });
        Partition { modules }
    }

    /// The policy-class hint: hosts of one subnet are interchangeable.
    pub fn policy_hint(&self) -> Vec<Vec<NodeId>> {
        self.hosts.iter().flat_map(|site| site.iter().cloned()).collect()
    }

    /// `n` cross-site node-isolation invariants (all hold; in modular
    /// mode every one is discharged by the boundary contracts).
    pub fn cross_site_isolation(&self, n: usize) -> Vec<Invariant> {
        let s = self.params.sites;
        (0..n)
            .map(|i| Invariant::NodeIsolation {
                src: self.hosts[(i + 1) % s][i % self.hosts[0].len()][0],
                dst: self.hosts[i % s][0][i % self.params.hosts_per_subnet],
            })
            .collect()
    }

    /// `n` cross-site flow-isolation invariants (all hold).
    pub fn cross_site_flow_isolation(&self, n: usize) -> Vec<Invariant> {
        let s = self.params.sites;
        (0..n)
            .map(|i| Invariant::FlowIsolation {
                src: self.hosts[(i + 2) % s][0][0],
                dst: self.hosts[i % s][i % self.hosts[0].len()][0],
            })
            .collect()
    }

    /// `n` intra-site isolation invariants (all violated — local
    /// traffic flows freely). These exercise the exact fallback path in
    /// modular mode, so the differential battery checks both regimes.
    pub fn local_reachability(&self, n: usize) -> Vec<Invariant> {
        let s = self.params.sites;
        (0..n)
            .map(|i| Invariant::NodeIsolation {
                src: self.hosts[i % s][0][0],
                dst: self.hosts[i % s][self.hosts[i % s].len() - 1]
                    [1 % self.params.hosts_per_subnet],
            })
            .collect()
    }

    /// Misconfiguration: adds a spurious allow entry to `dst_site`'s
    /// firewall, opening it to `src_site`'s sources. The corresponding
    /// cross-site isolation invariant becomes violated, and the
    /// contract fast path (soundly) stops concluding for it.
    pub fn inject_cross_site_allow(&mut self, src_site: usize, dst_site: usize) {
        let fw = self.firewalls[dst_site];
        let model = self.net.models.get_mut(&fw).expect("site firewall model");
        let entry = (group_prefix(src_site as u8), group_prefix(dst_site as u8));
        for (name, pairs) in &mut model.acls {
            if name == "allow" {
                pairs.push(entry);
                return;
            }
        }
        panic!("site firewall has no ACL named 'allow'");
    }

    /// The isolation invariant matching [`Estate::inject_cross_site_allow`].
    pub fn pair_isolation(&self, src_site: usize, dst_site: usize) -> Invariant {
        Invariant::NodeIsolation {
            src: self.hosts[src_site][0][0],
            dst: self.hosts[dst_site][0][0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn::{PartitionMode, Verifier, VerifyOptions};

    fn small(style: EstateStyle) -> EstateParams {
        EstateParams {
            style,
            sites: 3,
            subnets_per_site: 2,
            hosts_per_subnet: 4,
            with_failures: true,
        }
    }

    fn modular_opts(e: &Estate) -> VerifyOptions {
        VerifyOptions {
            partition: PartitionMode::Explicit { partition: e.partition(), contracts: vec![] },
            policy_hint: Some(e.policy_hint()),
            ..Default::default()
        }
    }

    #[test]
    fn builds_and_validates() {
        for style in [EstateStyle::Campus, EstateStyle::Isp] {
            let params = small(style);
            let e = Estate::build(params.clone());
            assert!(e.net.validate().is_ok());
            assert_eq!(e.net.topo.nodes().count(), params.node_count());
            e.partition()
                .validate(e.net.topo.nodes().map(|(_, n)| n.name.as_str()))
                .expect("per-site partition");
        }
    }

    #[test]
    fn default_presets_are_two_orders_bigger_than_dc_fleet() {
        // dc-fleet (6 racks x 3 hosts, redundant) is 32 nodes.
        assert!(EstateParams::campus().node_count() >= 3200);
        assert!(EstateParams::isp().node_count() >= 3200);
    }

    #[test]
    fn contracts_discharge_cross_site_isolation() {
        let e = Estate::build(small(EstateStyle::Campus));
        let v = Verifier::new(&e.net, modular_opts(&e)).unwrap();
        for inv in e.cross_site_isolation(3).iter().chain(&e.cross_site_flow_isolation(3)) {
            let r = v.verify(inv).unwrap();
            assert!(r.verdict.holds(), "{inv}");
            assert_eq!(r.contract_scenarios, r.scenarios_checked, "{inv}");
        }
        // Intra-site pairs fall back to the exact engine and are
        // violated, exactly as the monolithic oracle says.
        let mono = Verifier::new(&e.net, VerifyOptions::default()).unwrap();
        for inv in e.local_reachability(2) {
            let r = v.verify(&inv).unwrap();
            assert!(!r.verdict.holds(), "{inv}");
            assert_eq!(r.contract_scenarios, 0, "{inv}");
            assert!(!mono.verify(&inv).unwrap().verdict.holds(), "{inv}");
        }
    }

    #[test]
    fn misconfig_is_caught_by_both_engines() {
        let mut e = Estate::build(small(EstateStyle::Isp));
        e.inject_cross_site_allow(1, 0);
        let inv = e.pair_isolation(1, 0);
        let v = Verifier::new(&e.net, modular_opts(&e)).unwrap();
        let mono = Verifier::new(&e.net, VerifyOptions::default()).unwrap();
        let (r, rm) = (v.verify(&inv).unwrap(), mono.verify(&inv).unwrap());
        assert!(!r.verdict.holds(), "opened firewall must violate");
        assert!(!rm.verdict.holds());
        let (
            vmn::Verdict::Violated { scenario: s, .. },
            vmn::Verdict::Violated { scenario: sm, .. },
        ) = (&r.verdict, &rm.verdict)
        else {
            panic!("both violated");
        };
        assert_eq!(s, sm, "first violating scenario matches the oracle");
        // Unrelated cross-site pairs are still contract-answered.
        let other = e.pair_isolation(0, 2);
        let r = v.verify(&other).unwrap();
        assert!(r.verdict.holds());
        assert_eq!(r.contract_scenarios, r.scenarios_checked);
    }
}
