//! Evaluation scenarios: the topologies, configurations, invariants and
//! misconfiguration injectors behind every figure of the paper's §5.
//!
//! | module | paper section | figure(s) |
//! |---|---|---|
//! | [`datacenter`] | §5.1 (rules / redundancy / traversal misconfigs) | Figures 1–3 |
//! | [`data_isolation`] | §5.2 (content caches over the §5.1 fabric) | Figures 4–5 |
//! | [`enterprise`] | §5.3.1 (university network with firewall) | Figures 6–7 |
//! | [`multi_tenant`] | §5.3.2 (EC2 security-group datacenter) | Figure 8 |
//! | [`isp`] | §5.3.3 (ISP with IDS + scrubber) | Figure 9 |
//! | [`estate`] | §5.4 (scaling: modular verification of large estates) | Figure 10 |
//!
//! Each generator is deterministic given its parameters and RNG seed, so
//! benchmark runs are reproducible.

#![forbid(unsafe_code)]

pub mod data_isolation;
pub mod datacenter;
pub mod enterprise;
pub mod estate;
pub mod isp;
pub mod multi_tenant;

use vmn_net::{Address, Prefix};

/// Address of host `h` in policy group `g`, rack/subnet `r`:
/// `10.<g>.<r>.<h>`.
pub fn host_addr(group: u8, rack: u8, host: u8) -> Address {
    Address::from_octets([10, group, rack, host])
}

/// The /16 prefix containing every host of policy group `g`.
pub fn group_prefix(group: u8) -> Prefix {
    Prefix::new(Address::from_octets([10, group, 0, 0]), 16)
}

/// Addresses for infrastructure boxes (middlebox VIPs etc.): `172.16.x.y`.
pub fn infra_addr(x: u8, y: u8) -> Address {
    Address::from_octets([172, 16, x, y])
}

/// External (internet/peer) addresses: `198.51.<x>.<y>`.
pub fn external_addr(x: u8, y: u8) -> Address {
    Address::from_octets([198, 51, x, y])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing_scheme_is_group_aligned() {
        let a = host_addr(3, 1, 7);
        assert!(group_prefix(3).contains(a));
        assert!(!group_prefix(4).contains(a));
    }
}
