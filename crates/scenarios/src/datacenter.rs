//! The §5.1 datacenter: Figure 1's topology (core/agg/ToR fabric with
//! redundant firewalls, load balancers and IDPSes) plus the three
//! misconfiguration classes of the evaluation:
//!
//! * **Rules** — incorrect firewall rules (70% of reported middlebox
//!   misconfigurations): spurious cross-group permissions appear on both
//!   firewalls;
//! * **Redundancy** — misconfigured *backup* firewalls: the extra
//!   permissions exist only on the backup, so the bug is invisible until
//!   the primary fails;
//! * **Traversal** — misconfigured redundant routing: backup routes skip
//!   the IDPS when the primary IDPS fails.
//!
//! Hosts are grouped into policy groups; addressing is group-aligned
//! (`10.<group>.<rack>.<host>`) so one ACL entry per group expresses the
//! "groups only talk to themselves" policy, exactly how operators
//! configure such fabrics.

use rand::seq::SliceRandom;
use rand::Rng;
use vmn::{Invariant, Network};
use vmn_mbox::models;
use vmn_net::{FailureScenario, NodeId, Prefix, Rule, Topology};

use crate::{group_prefix, host_addr, infra_addr};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct DatacenterParams {
    /// Number of racks. Each rack belongs to one policy group
    /// (round-robin), so `racks >= policy_groups`.
    pub racks: usize,
    pub hosts_per_rack: usize,
    /// Number of policy groups (the paper's x-axis for Figure 3).
    pub policy_groups: usize,
    /// Deploy backup firewall / IDPS instances.
    pub redundant: bool,
    /// Register single-middlebox failure scenarios on the network.
    pub with_failures: bool,
}

impl Default for DatacenterParams {
    fn default() -> Self {
        // The paper's evaluation uses 1000 end hosts.
        DatacenterParams {
            racks: 50,
            hosts_per_rack: 20,
            policy_groups: 25,
            redundant: true,
            with_failures: true,
        }
    }
}

/// The constructed datacenter scenario.
pub struct Datacenter {
    pub net: Network,
    pub params: DatacenterParams,
    /// Hosts of each policy group (the policy-class hint).
    pub groups: Vec<Vec<NodeId>>,
    pub fw1: NodeId,
    pub fw2: Option<NodeId>,
    pub idps1: NodeId,
    pub idps2: Option<NodeId>,
    pub lb1: NodeId,
    /// Rack -> ToR switch.
    pub tors: Vec<NodeId>,
    pub aggs: [NodeId; 2],
}

impl Datacenter {
    pub fn build(params: DatacenterParams) -> Datacenter {
        assert!(params.policy_groups >= 1 && params.policy_groups <= 250);
        assert!(params.racks >= params.policy_groups);
        assert!(params.hosts_per_rack >= 1 && params.hosts_per_rack <= 250);
        let mut topo = Topology::new();
        let core = topo.add_switch("core");
        let agg1 = topo.add_switch("agg1");
        let agg2 = topo.add_switch("agg2");
        topo.add_link(agg1, core);
        topo.add_link(agg2, core);

        let fw1 = topo.add_middlebox("fw1", "stateful-firewall", vec![]);
        let idps1 = topo.add_middlebox("idps1", "idps", vec![]);
        let lb1 = topo.add_middlebox("lb1", "load-balancer", vec![infra_addr(0, 100)]);
        let fw2 = params.redundant.then(|| topo.add_middlebox("fw2", "stateful-firewall", vec![]));
        let idps2 = params.redundant.then(|| topo.add_middlebox("idps2", "idps", vec![]));
        for m in [Some(fw1), Some(idps1), Some(lb1), fw2, idps2].into_iter().flatten() {
            topo.add_link(m, agg1);
            topo.add_link(m, agg2);
        }

        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); params.policy_groups];
        let mut tors = Vec::with_capacity(params.racks);
        let mut tor_rules: Vec<(NodeId, Rule)> = Vec::new();
        for r in 0..params.racks {
            let g = r % params.policy_groups;
            let tor = topo.add_switch(format!("tor{r}"));
            topo.add_link(tor, agg1);
            topo.add_link(tor, agg2);
            for h in 0..params.hosts_per_rack {
                let addr = host_addr(g as u8, r as u8, h as u8 + 1);
                let host = topo.add_host(format!("h{r}x{h}"), addr);
                topo.add_link(host, tor);
                groups[g].push(host);
                // Delivery from the fabric side; uplink otherwise.
                let hp = Prefix::host(addr);
                tor_rules.push((tor, Rule::from_neighbor(hp, agg1, host)));
                tor_rules.push((tor, Rule::from_neighbor(hp, agg2, host)));
                tor_rules.push((
                    tor,
                    Rule::from_neighbor(Prefix::default_route(), host, agg1).with_priority(20),
                ));
                tor_rules.push((
                    tor,
                    Rule::from_neighbor(Prefix::default_route(), host, agg2).with_priority(10),
                ));
            }
            tors.push(tor);
        }

        let mut tables = vmn_net::ForwardingTables::new();
        for (tor, rule) in tor_rules {
            tables.add_rule(tor, rule);
        }
        let all = Prefix::default_route();
        for agg in [agg1, agg2] {
            // Base delivery: rack prefixes toward their ToR (each rack's
            // hosts share 10.<g>.<r>.0/24).
            for (r, &tor) in tors.iter().enumerate() {
                let g = r % params.policy_groups;
                let rack_prefix = Prefix::new(host_addr(g as u8, r as u8, 0), 24);
                tables.add_rule(agg, Rule::new(rack_prefix, tor));
            }
            // Pipeline: traffic from any ToR goes to the firewall first…
            for &tor in &tors {
                tables.add_rule(agg, Rule::from_neighbor(all, tor, fw1).with_priority(20));
                if let Some(fw2) = fw2 {
                    tables.add_rule(agg, Rule::from_neighbor(all, tor, fw2).with_priority(10));
                }
            }
            // …then from the firewall to the IDPS…
            for fw in [Some(fw1), fw2].into_iter().flatten() {
                tables.add_rule(agg, Rule::from_neighbor(all, fw, idps1).with_priority(20));
                if let Some(idps2) = idps2 {
                    tables.add_rule(agg, Rule::from_neighbor(all, fw, idps2).with_priority(10));
                }
            }
            // …and IDPS re-emissions fall through to the base rack rules.
            // The load balancer VIP is reachable from anywhere.
            tables
                .add_rule(agg, Rule::new(Prefix::host(infra_addr(0, 100)), lb1).with_priority(30));
        }

        let mut net = Network::new(topo, tables);
        let acl: Vec<(Prefix, Prefix)> = (0..params.policy_groups)
            .map(|g| (group_prefix(g as u8), group_prefix(g as u8)))
            .collect();
        net.set_model(fw1, models::learning_firewall("stateful-firewall", acl.clone()));
        if let Some(fw2) = fw2 {
            net.set_model(fw2, models::learning_firewall("stateful-firewall", acl.clone()));
        }
        net.set_model(idps1, models::idps("idps"));
        if let Some(idps2) = idps2 {
            net.set_model(idps2, models::idps("idps"));
        }
        // LB spreads VIP traffic over the first group's first rack.
        let backends: Vec<_> =
            (1..=2.min(params.hosts_per_rack as u8)).map(|h| host_addr(0, 0, h)).collect();
        net.set_model(lb1, models::load_balancer("load-balancer", infra_addr(0, 100), backends));

        if params.with_failures {
            for m in [Some(fw1), Some(idps1)].into_iter().flatten() {
                net.add_scenario(FailureScenario::nodes([m]));
            }
        }

        Datacenter { net, params, groups, fw1, fw2, idps1, idps2, lb1, tors, aggs: [agg1, agg2] }
    }

    /// The policy-class hint handed to the verifier.
    pub fn policy_hint(&self) -> Vec<Vec<NodeId>> {
        self.groups.clone()
    }

    /// One cross-group isolation invariant per policy group: a host of
    /// the next group must not reach this group's representative.
    pub fn isolation_invariants(&self) -> Vec<Invariant> {
        let g = self.groups.len();
        (0..g)
            .map(|i| Invariant::NodeIsolation {
                src: self.groups[(i + 1) % g][0],
                dst: self.groups[i][0],
            })
            .collect()
    }

    /// The isolation invariant for a specific (src-group, dst-group) pair.
    pub fn pair_isolation(&self, src_group: usize, dst_group: usize) -> Invariant {
        Invariant::NodeIsolation { src: self.groups[src_group][0], dst: self.groups[dst_group][0] }
    }

    /// One IDPS-traversal invariant per policy group (intra-group traffic
    /// must pass an IDPS before delivery).
    pub fn traversal_invariants(&self) -> Vec<Invariant> {
        let through: Vec<NodeId> = [Some(self.idps1), self.idps2].into_iter().flatten().collect();
        self.groups
            .iter()
            .filter(|g| g.len() >= 2)
            .map(|g| Invariant::Traversal { dst: g[0], through: through.clone(), from: Some(g[1]) })
            .collect()
    }

    /// **Rules** misconfiguration: adds `count` spurious cross-group
    /// permissions to *every* firewall. Returns the affected
    /// (src-group, dst-group) pairs. (The paper deletes deny rules from a
    /// default-allow firewall; with our default-deny allow-list model the
    /// equivalent error is an injected allow entry — the observable effect,
    /// forbidden cross-group reachability, is identical.)
    pub fn inject_rule_misconfig<R: Rng>(
        &mut self,
        rng: &mut R,
        count: usize,
    ) -> Vec<(usize, usize)> {
        let pairs = self.sample_cross_pairs(rng, count);
        for &(a, b) in &pairs {
            for fw in [Some(self.fw1), self.fw2].into_iter().flatten() {
                push_allow(&mut self.net, fw, a, b);
            }
        }
        pairs
    }

    /// **Redundancy** misconfiguration: the spurious permissions exist
    /// only on the *backup* firewall, so violations require the primary
    /// to fail.
    pub fn inject_redundancy_misconfig<R: Rng>(
        &mut self,
        rng: &mut R,
        count: usize,
    ) -> Vec<(usize, usize)> {
        let fw2 = self.fw2.expect("redundancy misconfig needs a backup firewall");
        let pairs = self.sample_cross_pairs(rng, count);
        for &(a, b) in &pairs {
            push_allow(&mut self.net, fw2, a, b);
        }
        pairs
    }

    /// **Traversal** misconfiguration: removes the backup IDPS steering
    /// rules, so that traffic bypasses intrusion detection when the
    /// primary IDPS is down.
    pub fn inject_traversal_misconfig(&mut self) {
        let idps2 = self.idps2.expect("traversal misconfig needs a backup IDPS");
        for agg in self.aggs {
            self.net.tables.remove_rules(agg, |r| r.next == idps2);
        }
    }

    fn sample_cross_pairs<R: Rng>(&self, rng: &mut R, count: usize) -> Vec<(usize, usize)> {
        let g = self.groups.len();
        let mut all: Vec<(usize, usize)> =
            (0..g).flat_map(|a| (0..g).filter(move |&b| b != a).map(move |b| (a, b))).collect();
        all.shuffle(rng);
        all.truncate(count.min(all.len()));
        all
    }
}

/// Adds an allow entry (src-group → dst-group) to a firewall's ACL.
fn push_allow(net: &mut Network, fw: NodeId, src_group: usize, dst_group: usize) {
    let model = net.models.get_mut(&fw).expect("firewall model");
    let entry = (group_prefix(src_group as u8), group_prefix(dst_group as u8));
    for (name, pairs) in &mut model.acls {
        if name == "acl" {
            pairs.push(entry);
            return;
        }
    }
    panic!("firewall model has no ACL named 'acl'");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vmn::{Verifier, VerifyOptions};

    fn small() -> DatacenterParams {
        DatacenterParams {
            racks: 6,
            hosts_per_rack: 3,
            policy_groups: 3,
            redundant: true,
            with_failures: false,
        }
    }

    #[test]
    fn builds_and_validates() {
        let dc = Datacenter::build(small());
        assert!(dc.net.validate().is_ok());
        assert_eq!(dc.groups.iter().map(Vec::len).sum::<usize>(), 18);
        assert_eq!(dc.net.topo.middleboxes().count(), 5);
    }

    #[test]
    fn correct_config_upholds_isolation() {
        let dc = Datacenter::build(small());
        let opts = VerifyOptions { policy_hint: Some(dc.policy_hint()), ..Default::default() };
        let v = Verifier::new(&dc.net, opts).unwrap();
        let inv = dc.pair_isolation(1, 0);
        assert!(v.verify(&inv).unwrap().verdict.holds());
        // Intra-group traffic is allowed.
        let intra = Invariant::NodeIsolation { src: dc.groups[0][1], dst: dc.groups[0][0] };
        assert!(!v.verify(&intra).unwrap().verdict.holds());
    }

    #[test]
    fn rule_misconfig_detected() {
        let mut dc = Datacenter::build(small());
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = dc.inject_rule_misconfig(&mut rng, 2);
        let opts = VerifyOptions { policy_hint: Some(dc.policy_hint()), ..Default::default() };
        let v = Verifier::new(&dc.net, opts).unwrap();
        for &(a, b) in &pairs {
            let inv = dc.pair_isolation(a, b);
            assert!(!v.verify(&inv).unwrap().verdict.holds(), "injected pair {a}->{b}");
        }
    }

    #[test]
    fn redundancy_misconfig_needs_failure() {
        let mut params = small();
        params.with_failures = true;
        let mut dc = Datacenter::build(params);
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = dc.inject_redundancy_misconfig(&mut rng, 1);
        let opts = VerifyOptions { policy_hint: Some(dc.policy_hint()), ..Default::default() };
        let v = Verifier::new(&dc.net, opts).unwrap();
        let (a, b) = pairs[0];
        let rep = v.verify(&dc.pair_isolation(a, b)).unwrap();
        match rep.verdict {
            vmn::Verdict::Violated { scenario, .. } => {
                assert!(scenario.is_failed(dc.fw1), "violation only under primary failure");
            }
            vmn::Verdict::Holds => panic!("backup misconfiguration missed"),
        }
    }

    #[test]
    fn traversal_misconfig_detected() {
        let mut params = small();
        params.with_failures = true;
        let mut dc = Datacenter::build(params);
        let opts = VerifyOptions { policy_hint: Some(dc.policy_hint()), ..Default::default() };
        // Correct config: traversal holds even under failures.
        {
            let v = Verifier::new(&dc.net, opts.clone()).unwrap();
            let inv = dc.traversal_invariants().remove(0);
            assert!(v.verify(&inv).unwrap().verdict.holds());
        }
        dc.inject_traversal_misconfig();
        let v = Verifier::new(&dc.net, opts).unwrap();
        let inv = dc.traversal_invariants().remove(0);
        let rep = v.verify(&inv).unwrap();
        match rep.verdict {
            vmn::Verdict::Violated { scenario, .. } => {
                assert!(scenario.is_failed(dc.idps1));
            }
            vmn::Verdict::Holds => panic!("routing bypass missed"),
        }
    }
}
