//! §5.3.3: the ISP with intrusion detection (Figure 9).
//!
//! Modelled on the SWITCHlan backbone: at each peering point an IDS and a
//! stateful firewall guard inbound traffic; a single shared scrubbing box
//! performs heavyweight analysis of traffic to prefixes the IDS considers
//! under attack. Subnets follow the §5.3.1 taxonomy (public / private /
//! quarantined, cycling 1:1:1).
//!
//! The misconfiguration studied: traffic an IDS reroutes to the scrubber
//! re-enters the network *without* passing any stateful firewall, so the
//! un-discarded remainder reaches private or quarantined subnets.

use vmn::{Invariant, Network};
use vmn_mbox::models;
use vmn_net::{NodeId, Prefix, Rule, Topology};

use crate::enterprise::SubnetKind;
use crate::{external_addr, host_addr};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct IspParams {
    /// Peering points (Figure 9(c) x-axis). The paper's SWITCHlan-like
    /// baseline uses 5.
    pub peering_points: usize,
    /// Subnets (Figure 9(b) x-axis); kinds cycle 1:1:1.
    pub subnets: usize,
    /// Whether scrubbed traffic is correctly routed back through a
    /// stateful firewall (`true`) or allowed to bypass them (`false`,
    /// the misconfiguration).
    pub scrubber_behind_firewall: bool,
    /// The subnet index whose prefix the IDSes consider under attack
    /// (its traffic is rerouted to the scrubber).
    pub attacked_subnet: usize,
}

impl Default for IspParams {
    fn default() -> Self {
        IspParams {
            peering_points: 5,
            subnets: 9,
            scrubber_behind_firewall: true,
            attacked_subnet: 1, // a private subnet (kinds cycle pub/priv/quarantined)
        }
    }
}

/// The constructed ISP network.
pub struct Isp {
    pub net: Network,
    pub params: IspParams,
    /// Per peering point: the external peer host.
    pub peers: Vec<NodeId>,
    /// Per peering point: (IDS, firewall).
    pub edge_boxes: Vec<(NodeId, NodeId)>,
    pub scrubber: NodeId,
    /// (kind, host) per subnet.
    pub subnets: Vec<(SubnetKind, NodeId)>,
}

impl Isp {
    fn subnet_prefix(i: usize) -> Prefix {
        Prefix::new(host_addr((i / 250) as u8, (i % 250) as u8, 0), 24)
    }

    pub fn build(params: IspParams) -> Isp {
        assert!(params.peering_points >= 1 && params.peering_points <= 60);
        assert!(params.subnets >= 1 && params.subnets <= 250);
        assert!(params.attacked_subnet < params.subnets);
        let mut topo = Topology::new();
        let backbone = topo.add_switch("backbone");
        let scrubber = topo.add_middlebox("scrubber", "scrubber", vec![]);
        topo.add_link(scrubber, backbone);

        let mut tables = vmn_net::ForwardingTables::new();
        let all = Prefix::default_route();
        let attacked = Self::subnet_prefix(params.attacked_subnet);

        // Subnets hang off the backbone directly (one host each — the
        // paper's subnet granularity for this experiment).
        let mut subnets = Vec::new();
        for s in 0..params.subnets {
            let kind = crate::enterprise::Enterprise::kind_of(s);
            let addr = host_addr((s / 250) as u8, (s % 250) as u8, 1);
            let host = topo.add_host(format!("sub{s}"), addr);
            topo.add_link(host, backbone);
            tables.add_rule(backbone, Rule::new(Prefix::host(addr), host));
            subnets.push((kind, host));
        }

        let mut peers = Vec::new();
        let mut edge_boxes = Vec::new();
        for p in 0..params.peering_points {
            let psw = topo.add_switch(format!("peering{p}"));
            topo.add_link(psw, backbone);
            let peer = topo.add_host(format!("peer{p}"), external_addr(p as u8, 1));
            let ids = topo.add_middlebox(format!("ids{p}"), "ids", vec![]);
            let fw = topo.add_middlebox(format!("fw{p}"), "stateful-firewall", vec![]);
            for n in [peer, ids, fw] {
                topo.add_link(n, psw);
            }
            // The firewall's inner interface connects straight to the
            // backbone, so firewall-processed traffic enters the backbone
            // with the firewall itself as previous hop — the IDS-reroute
            // capture rules below (qualified on the peering switch) can
            // never recapture it.
            topo.add_link(fw, backbone);
            // Inbound pipeline: peer → IDS → firewall → backbone.
            tables.add_rule(psw, Rule::from_neighbor(all, peer, ids).with_priority(20));
            tables.add_rule(psw, Rule::from_neighbor(all, ids, fw).with_priority(20));
            // IDS reroute: traffic to the attacked prefix goes straight to
            // the scrubber on the backbone instead of the local firewall.
            tables.add_rule(psw, Rule::from_neighbor(attacked, ids, backbone).with_priority(30));
            // Outbound: subnet traffic to this peer passes the firewall.
            let peer_route = Prefix::host(external_addr(p as u8, 1));
            tables.add_rule(psw, Rule::from_neighbor(peer_route, backbone, fw).with_priority(20));
            tables.add_rule(psw, Rule::new(peer_route, peer));
            tables.add_rule(backbone, Rule::new(peer_route, psw));
            peers.push(peer);
            edge_boxes.push((ids, fw));
        }
        // Backbone: attacked-prefix traffic arriving from a peering switch
        // (the IDS reroute) is captured to the scrubber. Subnet hosts and
        // firewalls attach to the backbone directly, so their traffic is
        // not recaptured.
        for p in 0..params.peering_points {
            let psw = topo.by_name(&format!("peering{p}")).unwrap();
            tables
                .add_rule(backbone, Rule::from_neighbor(attacked, psw, scrubber).with_priority(20));
        }
        if params.scrubber_behind_firewall {
            // Correct configuration: scrubbed traffic re-enters through
            // the first peering point's stateful firewall (its backbone
            // interface), then continues to the subnets.
            let fw0 = edge_boxes[0].1;
            tables.add_rule(backbone, Rule::from_neighbor(all, scrubber, fw0).with_priority(20));
        }
        // (Misconfigured: scrubber emissions fall through to the base
        // subnet rules, bypassing every firewall.)

        let mut net = Network::new(topo, tables);
        // Firewalls: public two-way, private outbound-only, quarantined
        // nothing (§5.3.1 policies).
        let mut acl: Vec<(Prefix, Prefix)> = Vec::new();
        for (s, (kind, _)) in subnets.iter().enumerate() {
            let p = Self::subnet_prefix(s);
            match kind {
                SubnetKind::Public => {
                    acl.push((all, p));
                    acl.push((p, all));
                }
                SubnetKind::Private => acl.push((p, all)),
                SubnetKind::Quarantined => {}
            }
        }
        for &(ids, fw) in &edge_boxes {
            net.set_model(ids, models::ids_monitor("ids"));
            net.set_model(fw, models::learning_firewall("stateful-firewall", acl.clone()));
        }
        net.set_model(scrubber, models::scrubber("scrubber"));

        Isp { net, params, peers, edge_boxes, scrubber, subnets }
    }

    /// Policy hint: subnets by kind, and all peers in one class (peering
    /// points are symmetric, which is why the paper needs to verify only
    /// three slices for the whole ISP).
    pub fn policy_hint(&self) -> Vec<Vec<NodeId>> {
        let mut by_kind: [Vec<NodeId>; 3] = Default::default();
        for (kind, host) in &self.subnets {
            let idx = match kind {
                SubnetKind::Public => 0,
                SubnetKind::Private => 1,
                SubnetKind::Quarantined => 2,
            };
            by_kind[idx].push(*host);
        }
        let mut out: Vec<Vec<NodeId>> = by_kind.into_iter().filter(|v| !v.is_empty()).collect();
        out.push(self.peers.clone());
        out
    }

    /// The §5.3.1-style invariant for subnet `s` against peer `p`.
    pub fn invariant_for(&self, s: usize, p: usize) -> Invariant {
        let (kind, host) = self.subnets[s];
        match kind {
            SubnetKind::Public => Invariant::NodeIsolation { src: self.peers[p], dst: host },
            SubnetKind::Private => Invariant::FlowIsolation { src: self.peers[p], dst: host },
            SubnetKind::Quarantined => Invariant::NodeIsolation { src: self.peers[p], dst: host },
        }
    }

    /// One invariant per subnet kind present (against peering point 0) —
    /// with symmetry these are the only three solver runs the whole
    /// network needs.
    pub fn invariants(&self) -> Vec<Invariant> {
        let mut seen = [false; 3];
        let mut out = Vec::new();
        for (s, (kind, _)) in self.subnets.iter().enumerate() {
            let idx = match kind {
                SubnetKind::Public => 0,
                SubnetKind::Private => 1,
                SubnetKind::Quarantined => 2,
            };
            if !seen[idx] {
                seen[idx] = true;
                out.push(self.invariant_for(s, 0));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn::{Verifier, VerifyOptions};

    fn opts(i: &Isp) -> VerifyOptions {
        VerifyOptions { policy_hint: Some(i.policy_hint()), ..Default::default() }
    }

    #[test]
    fn builds_and_validates() {
        let isp = Isp::build(IspParams::default());
        assert!(isp.net.validate().is_ok());
        assert_eq!(isp.peers.len(), 5);
        assert_eq!(isp.subnets.len(), 9);
    }

    #[test]
    fn correct_scrubber_config_keeps_private_subnets_isolated() {
        let isp = Isp::build(IspParams {
            peering_points: 2,
            subnets: 3,
            scrubber_behind_firewall: true,
            attacked_subnet: 1,
        });
        let v = Verifier::new(&isp.net, opts(&isp)).unwrap();
        // Subnet 1 is private and under attack; rerouted traffic passes
        // the scrubber and then a firewall, so flow isolation holds.
        let rep = v.verify(&isp.invariant_for(1, 1)).unwrap();
        if let vmn::Verdict::Violated { trace, .. } = &rep.verdict {
            panic!("private subnet must stay isolated:\n{}", trace.render(&isp.net));
        }
    }

    #[test]
    fn scrubber_bypass_violates_isolation() {
        let isp = Isp::build(IspParams {
            peering_points: 2,
            subnets: 3,
            scrubber_behind_firewall: false,
            attacked_subnet: 1,
        });
        let v = Verifier::new(&isp.net, opts(&isp)).unwrap();
        let rep = v.verify(&isp.invariant_for(1, 1)).unwrap();
        assert!(!rep.verdict.holds(), "rerouted traffic bypassing the firewalls must be detected");
    }

    #[test]
    fn public_subnets_reachable_quarantined_not() {
        let isp = Isp::build(IspParams {
            peering_points: 1,
            subnets: 3,
            scrubber_behind_firewall: true,
            attacked_subnet: 1,
        });
        let v = Verifier::new(&isp.net, opts(&isp)).unwrap();
        assert!(!v.verify(&isp.invariant_for(0, 0)).unwrap().verdict.holds(), "public reachable");
        assert!(v.verify(&isp.invariant_for(2, 0)).unwrap().verdict.holds(), "quarantined blocked");
    }

    #[test]
    fn slice_size_independent_of_subnet_count() {
        let mut sizes = Vec::new();
        for subnets in [3usize, 9, 21] {
            let isp = Isp::build(IspParams {
                peering_points: 2,
                subnets,
                scrubber_behind_firewall: true,
                attacked_subnet: 1,
            });
            let v = Verifier::new(&isp.net, opts(&isp)).unwrap();
            let rep = v.verify(&isp.invariant_for(0, 0)).unwrap();
            sizes.push(rep.encoded_nodes);
        }
        assert!(sizes[0] == sizes[1] && sizes[1] == sizes[2], "sizes: {sizes:?}");
    }
}
