//! §5.2: data isolation with content caches (Figures 4–5).
//!
//! The fabric separates a client side (`aggC`) from a server side
//! (`aggS`). A shared transparent **content cache** straddles the two, in
//! front of a stateful firewall:
//!
//! ```text
//!   clients — ctor — aggC ─ cache ─ aggS ─ fw ─ stor — servers
//! ```
//!
//! * requests to any server pass the cache, then the firewall;
//! * server responses pass the firewall, then populate the cache;
//! * **cache-served responses go straight back to the client** — they
//!   never touch the firewall. That is why the cache's deny ACL is
//!   load-bearing: delete it and cached private data is served to anyone
//!   (the §5.2 misconfiguration), even though the firewall still blocks
//!   every direct path.
//!
//! Each policy group owns one *private* server (data confined to the
//! group) and one *public* server (world-readable). Because the cache is
//! origin-agnostic, slices must include a representative per policy
//! equivalence class (§4.1), so — unlike §5.1 — verification time grows
//! with policy complexity. That growth is exactly what Figure 4 plots.

use rand::seq::SliceRandom;
use rand::Rng;
use vmn::{Invariant, Network};
use vmn_mbox::models;
use vmn_net::{Address, NodeId, Prefix, Rule, Topology};

use crate::{group_prefix, host_addr};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct DataIsolationParams {
    /// Number of policy groups == policy equivalence classes (Figure 4/5
    /// x-axis).
    pub policy_groups: usize,
    /// Client hosts per group (besides the two servers).
    pub clients_per_group: usize,
}

impl Default for DataIsolationParams {
    fn default() -> Self {
        DataIsolationParams { policy_groups: 10, clients_per_group: 2 }
    }
}

/// The constructed scenario.
pub struct DataIsolation {
    pub net: Network,
    pub params: DataIsolationParams,
    /// Per group: the private server host.
    pub private_servers: Vec<NodeId>,
    /// Per group: the public server host.
    pub public_servers: Vec<NodeId>,
    /// Per group: client hosts.
    pub clients: Vec<Vec<NodeId>>,
    pub cache: NodeId,
    pub fw: NodeId,
}

impl DataIsolation {
    fn server_rack(g: u8) -> Prefix {
        Prefix::new(host_addr(g, g, 0), 24)
    }

    fn client_rack(g: u8) -> Prefix {
        Prefix::new(host_addr(g, 100 + g, 0), 24)
    }

    fn private_addr(g: u8) -> Address {
        host_addr(g, g, 1)
    }

    fn public_addr(g: u8) -> Address {
        host_addr(g, g, 2)
    }

    pub fn build(params: DataIsolationParams) -> DataIsolation {
        assert!(params.policy_groups >= 2 && params.policy_groups <= 100);
        assert!(params.clients_per_group >= 1);
        let g_count = params.policy_groups;
        let mut topo = Topology::new();
        let agg_c = topo.add_switch("aggC");
        let agg_s = topo.add_switch("aggS");
        let cache = topo.add_middlebox("cache", "content-cache", vec![]);
        let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
        // The cache and firewall straddle the two fabric sides.
        topo.add_link(cache, agg_c);
        topo.add_link(cache, agg_s);
        topo.add_link(fw, agg_c);
        topo.add_link(fw, agg_s);

        let mut private_servers = Vec::new();
        let mut public_servers = Vec::new();
        let mut clients: Vec<Vec<NodeId>> = Vec::new();
        let mut tables = vmn_net::ForwardingTables::new();
        let all = Prefix::default_route();
        let mut ctors = Vec::new();
        for g in 0..g_count as u8 {
            let stor = topo.add_switch(format!("stor{g}"));
            topo.add_link(stor, agg_s);
            let priv_srv = topo.add_host(format!("priv{g}"), Self::private_addr(g));
            let pub_srv = topo.add_host(format!("pub{g}"), Self::public_addr(g));
            for (srv, addr) in [(priv_srv, Self::private_addr(g)), (pub_srv, Self::public_addr(g))]
            {
                topo.add_link(srv, stor);
                tables.add_rule(stor, Rule::from_neighbor(Prefix::host(addr), agg_s, srv));
                tables.add_rule(stor, Rule::from_neighbor(all, srv, agg_s).with_priority(10));
            }
            private_servers.push(priv_srv);
            public_servers.push(pub_srv);
            tables.add_rule(agg_s, Rule::new(Self::server_rack(g), stor));

            let ctor = topo.add_switch(format!("ctor{g}"));
            topo.add_link(ctor, agg_c);
            let mut cs = Vec::new();
            for c in 0..params.clients_per_group as u8 {
                let addr = host_addr(g, 100 + g, c + 1);
                let h = topo.add_host(format!("c{g}x{c}"), addr);
                topo.add_link(h, ctor);
                tables.add_rule(ctor, Rule::from_neighbor(Prefix::host(addr), agg_c, h));
                tables.add_rule(ctor, Rule::from_neighbor(all, h, agg_c).with_priority(10));
                cs.push(h);
            }
            clients.push(cs);
            tables.add_rule(agg_c, Rule::new(Self::client_rack(g), ctor));
            ctors.push(ctor);
        }
        // Client side: requests to any server rack go to the cache. (No
        // server routes exist on aggC, so cache/firewall re-emissions
        // toward servers fall through to the server side.)
        for g in 0..g_count as u8 {
            for &ctor in &ctors {
                tables.add_rule(
                    agg_c,
                    Rule::from_neighbor(Self::server_rack(g), ctor, cache).with_priority(20),
                );
            }
        }
        // Firewall re-emissions toward *clients* pass the cache (this is
        // where responses populate it). Destination-qualified so that
        // firewall emissions toward servers don't bounce back to the
        // cache.
        for g in 0..g_count as u8 {
            tables.add_rule(
                agg_c,
                Rule::from_neighbor(Self::client_rack(g), fw, cache).with_priority(18),
            );
        }
        // Server side: cache misses continue to the firewall; server
        // uplink traffic crosses the firewall too.
        tables.add_rule(agg_s, Rule::from_neighbor(all, cache, fw).with_priority(20));
        for g in 0..g_count as u8 {
            let stor = topo.by_name(&format!("stor{g}")).unwrap();
            tables.add_rule(agg_s, Rule::from_neighbor(all, stor, fw).with_priority(20));
        }

        let mut net = Network::new(topo, tables);
        // Firewall: groups talk among themselves; public servers are
        // reachable by anyone and may respond to anyone.
        let mut acl: Vec<(Prefix, Prefix)> =
            (0..g_count as u8).map(|g| (group_prefix(g), group_prefix(g))).collect();
        for g in 0..g_count as u8 {
            acl.push((all, Prefix::host(Self::public_addr(g))));
            acl.push((Prefix::host(Self::public_addr(g)), all));
        }
        net.set_model(fw, models::learning_firewall("stateful-firewall", acl));
        net.set_model(cache, Self::cache_model(g_count as u8));

        DataIsolation { net, params, private_servers, public_servers, clients, cache, fw }
    }

    /// The correctly-configured shared cache: serves everything it has
    /// cached, except that non-group clients are denied each group's
    /// private server data.
    fn cache_model(groups: u8) -> vmn_mbox::MboxModel {
        let servers: Vec<Prefix> = (0..groups).map(Self::server_rack).collect();
        let mut deny: Vec<(Prefix, Prefix)> = Vec::new();
        for g in 0..groups {
            let private = Prefix::host(Self::private_addr(g));
            for outsider in Prefix::new(Address::from_octets([10, 0, 0, 0]), 8)
                .complement_within(group_prefix(g))
            {
                deny.push((outsider, private));
            }
        }
        models::content_cache("content-cache", servers, deny)
    }

    /// Policy hint: each group's hosts (servers + clients) form one class.
    pub fn policy_hint(&self) -> Vec<Vec<NodeId>> {
        (0..self.params.policy_groups)
            .map(|g| {
                let mut v = vec![self.private_servers[g], self.public_servers[g]];
                v.extend(&self.clients[g]);
                v
            })
            .collect()
    }

    /// The data-isolation invariant: group `g`'s private data must not
    /// reach a client of group `other`.
    pub fn private_isolation(&self, g: usize, other: usize) -> Invariant {
        Invariant::DataIsolation { origin: self.private_servers[g], dst: self.clients[other][0] }
    }

    /// All per-group data-isolation invariants (each against the next
    /// group's representative client).
    pub fn invariants(&self) -> Vec<Invariant> {
        let g = self.params.policy_groups;
        (0..g).map(|i| self.private_isolation(i, (i + 1) % g)).collect()
    }

    /// Misconfiguration: deletes the cache's deny entries protecting
    /// `count` randomly chosen groups. Returns the affected groups.
    pub fn inject_cache_misconfig<R: Rng>(&mut self, rng: &mut R, count: usize) -> Vec<usize> {
        let mut gs: Vec<usize> = (0..self.params.policy_groups).collect();
        gs.shuffle(rng);
        gs.truncate(count.min(gs.len()));
        let victims: Vec<Prefix> =
            gs.iter().map(|&g| Prefix::host(Self::private_addr(g as u8))).collect();
        let model = self.net.models.get_mut(&self.cache).expect("cache model");
        for (name, pairs) in &mut model.acls {
            if name == "deny" {
                pairs.retain(|(_, dst)| !victims.contains(dst));
            }
        }
        gs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vmn::{Verifier, VerifyOptions};

    fn opts(d: &DataIsolation) -> VerifyOptions {
        VerifyOptions { policy_hint: Some(d.policy_hint()), ..Default::default() }
    }

    #[test]
    fn builds_and_validates() {
        let d =
            DataIsolation::build(DataIsolationParams { policy_groups: 3, clients_per_group: 2 });
        assert!(d.net.validate().is_ok());
        assert_eq!(d.net.topo.hosts().count(), 3 * (2 + 2));
    }

    #[test]
    fn configured_caches_preserve_privacy() {
        let d =
            DataIsolation::build(DataIsolationParams { policy_groups: 3, clients_per_group: 1 });
        let v = Verifier::new(&d.net, opts(&d)).unwrap();
        let inv = d.private_isolation(0, 1);
        let rep = v.verify(&inv).unwrap();
        if let vmn::Verdict::Violated { trace, .. } = &rep.verdict {
            panic!("should hold, but:\n{}", trace.render(&d.net));
        }
    }

    #[test]
    fn deleted_cache_acl_leaks_private_data() {
        let mut d =
            DataIsolation::build(DataIsolationParams { policy_groups: 3, clients_per_group: 1 });
        let mut rng = StdRng::seed_from_u64(5);
        let hit = d.inject_cache_misconfig(&mut rng, 1);
        let g = hit[0];
        let v = Verifier::new(&d.net, opts(&d)).unwrap();
        let inv = d.private_isolation(g, (g + 1) % 3);
        let rep = v.verify(&inv).unwrap();
        match &rep.verdict {
            vmn::Verdict::Violated { trace, .. } => {
                // The leak must come from the cache, not a direct path.
                let leak = trace
                    .steps
                    .iter()
                    .find(|s| s.delivered_to == Some(d.clients[(g + 1) % 3][0]))
                    .expect("delivery to the other group's client");
                assert_eq!(leak.actor, Some(d.cache), "leak must be served by the cache");
            }
            vmn::Verdict::Holds => panic!("cache without ACL must leak group {g}'s data"),
        }
    }

    #[test]
    fn public_data_flows_everywhere() {
        let d =
            DataIsolation::build(DataIsolationParams { policy_groups: 2, clients_per_group: 1 });
        let v = Verifier::new(&d.net, opts(&d)).unwrap();
        let inv = Invariant::DataIsolation { origin: d.public_servers[0], dst: d.clients[1][0] };
        let rep = v.verify(&inv).unwrap();
        assert!(!rep.verdict.holds(), "public data is world readable");
    }

    #[test]
    fn slices_grow_with_policy_complexity() {
        // The origin-agnostic cache forces policy representatives into the
        // slice, so slice size must track the number of classes.
        let mut sizes = Vec::new();
        for g in [2usize, 4, 6] {
            let d = DataIsolation::build(DataIsolationParams {
                policy_groups: g,
                clients_per_group: 1,
            });
            let v = Verifier::new(&d.net, opts(&d)).unwrap();
            let rep = v.verify(&d.private_isolation(0, 1)).unwrap();
            sizes.push(rep.encoded_nodes);
        }
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "sizes: {sizes:?}");
    }
}
