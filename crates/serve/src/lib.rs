//! # vmn-serve — verification as a service
//!
//! A one-shot verifier answers "does this network satisfy these
//! invariants?" and exits. Real configurations *change*: ACL updates,
//! middlebox reconfigurations, links and boxes added and retired,
//! invariants and failure scenarios arriving as operators' concerns
//! evolve. Re-running the full sweep per change wastes almost all of
//! its work — the paper's own slicing argument says a local change has
//! a local footprint.
//!
//! This crate keeps verification *warm*:
//!
//! * [`spec::NetSpec`] — the symbolic `.vmn` description, which deltas
//!   edit and [`spec::NetSpec::materialize`] turns into the concrete
//!   [`vmn::Network`] per epoch;
//! * [`delta::Delta`] — the edit language (topology, links, routing,
//!   model swaps, invariants, scenarios), each application reporting a
//!   [`vmn_analysis::TouchSet`] session footprint;
//! * [`service::NetSession`] — a warmed [`vmn::Verifier`] plus a
//!   verdict cache keyed by slice fingerprint
//!   ([`vmn::slice::verdict_fingerprint`]): after a delta, pairs whose
//!   slices the delta cannot touch are skipped outright, pairs whose
//!   fingerprint is unchanged are answered from cache, and only the
//!   rest re-solve — on pooled solver sessions that survived the swap;
//! * [`service::Service`] + [`protocol`] — a named fleet of sessions
//!   behind a newline-delimited-JSON protocol (`vmn serve`);
//! * [`json`] — the minimal JSON tree this build vendors instead of a
//!   serialisation dependency.

#![forbid(unsafe_code)]

pub mod delta;
pub mod json;
pub mod protocol;
pub mod service;
pub mod spec;

pub use delta::{normalize_spec, scenario_key, Delta};
pub use protocol::{handle_line, serve_lines, Response};
pub use service::{CacheEntry, DeltaReport, InvariantVerdict, NetSession, Service, NONE_SCENARIO};
pub use spec::{Materialized, NetSpec, NodeSpec, RouteSpec, SpecError, SteerSpec};
