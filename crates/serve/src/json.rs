//! A minimal JSON value type, parser and serialiser.
//!
//! The build environment vendors no third-party crates (no serde), and
//! the serving protocol only needs plain JSON trees: objects keep their
//! key order (`Vec` of pairs, not a map) so responses render
//! deterministically, numbers are `f64` (the protocol's numbers are
//! small counts and millisecond latencies), and strings support the
//! standard escapes including `\uXXXX` (surrogate pairs included).

use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match; the parser rejects duplicates).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: a string field of an object.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }
}

/// Builds an object value; used with the `obj!`-free plain-vec style:
/// `Value::obj([("ok", Value::Bool(true))])`.
impl Value {
    pub fn obj<I: IntoIterator<Item = (&'static str, Value)>>(pairs: I) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Value {
        Value::Num(n.into())
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("lone surrogate"))?
                            };
                            out.push(c);
                            continue; // pos already advanced past the escape
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).expect("input was a &str");
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>().map(Value::Num).map_err(|_| self.err(format!("bad number {s:?}")))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"op":"delta","kind":"set-model","args":["a",1,true,null]}"#).unwrap();
        assert_eq!(v.str_field("op"), Some("delta"));
        assert_eq!(v.str_field("kind"), Some("set-model"));
        let args = v.get("args").unwrap().as_arr().unwrap();
        assert_eq!(args.len(), 4);
        assert_eq!(args[1].as_f64(), Some(1.0));
        assert_eq!(args[2].as_bool(), Some(true));
        assert_eq!(args[3], Value::Null);
    }

    #[test]
    fn roundtrips_escapes_and_numbers() {
        for text in [
            r#""line\nbreak \"quoted\" tab\t""#,
            r#"{"k":[-1.5,0,3e2,"\u0041\ud83d\ude00"]}"#,
            "[]",
            "{}",
        ] {
            let v = parse(text).unwrap();
            let rendered = v.to_string();
            assert_eq!(parse(&rendered).unwrap(), v, "roundtrip of {text}");
        }
        assert_eq!(parse(r#""\u0041""#).unwrap(), Value::Str("A".into()));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Value::Str("😀".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1}{",
            "\"unterminated",
            "{\"a\":1,\"a\":2}",
            "nul",
            "01x",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(42.0).to_string(), "42");
        assert_eq!(Value::Num(1.25).to_string(), "1.25");
    }
}
