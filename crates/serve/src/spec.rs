//! The symbolic `.vmn` network description.
//!
//! The CLI used to parse `.vmn` text straight into a [`Network`]; a
//! *serving* verifier needs the description to stay symbolic so deltas
//! can edit it and re-materialise: nodes are stored by name in insertion
//! order (so purely additive deltas keep existing node ids stable),
//! routes and models keep their textual arguments, and
//! [`NetSpec::materialize`] rebuilds the concrete [`Network`] — plus the
//! name→id map and resolved invariants — for the current epoch.
//!
//! The grammar is unchanged (see the crate-level docs of
//! `vmn-cli`'s `config` module, which now delegates here):
//!
//! ```text
//! host     outside 8.8.8.8
//! switch   sw
//! firewall fw allow 10.0.0.0/8 -> 0.0.0.0/0
//! link     outside sw
//! route    sw 10.0.0.5/32 inside
//! steer    sw from outside 0.0.0.0/0 fw prio 10
//! autoroute
//! partition auto
//! fail     fw
//! verify   node-isolation outside -> inside
//! verify   pipeline outside -> inside via firewall
//! ```

use std::collections::HashMap;
use vmn::{Invariant, Network};
use vmn_mbox::models;
use vmn_net::{Address, FailureScenario, NodeId, Prefix, RoutingConfig, Rule, Topology};

/// Spec error with source-line information (line 0 for errors raised by
/// deltas, which have no source line).
#[derive(Debug, Clone)]
pub struct SpecError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for SpecError {}

pub(crate) fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError { line, message: message.into() }
}

/// One node of the symbolic description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeSpec {
    Host {
        name: String,
        addr: String,
    },
    Switch {
        name: String,
    },
    /// `kind` is the middlebox keyword (`firewall`, `nat`, …); `args`
    /// the raw configuration tokens after the name.
    Mbox {
        name: String,
        kind: String,
        args: Vec<String>,
    },
}

impl NodeSpec {
    pub fn name(&self) -> &str {
        match self {
            NodeSpec::Host { name, .. }
            | NodeSpec::Switch { name }
            | NodeSpec::Mbox { name, .. } => name,
        }
    }
}

/// `route <switch> <prefix> <next-hop> [prio N]`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteSpec {
    pub switch: String,
    pub prefix: String,
    pub next: String,
    pub prio: i32,
}

/// `steer <switch> from <node> <prefix> <next-hop> [prio N]`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SteerSpec {
    pub switch: String,
    pub from: String,
    pub prefix: String,
    pub next: String,
    pub prio: i32,
}

/// The symbolic network description: everything needed to rebuild the
/// concrete network, in insertion order.
#[derive(Clone, Debug, Default)]
pub struct NetSpec {
    pub autoroute: bool,
    /// `partition auto`: run the verifier in modular mode, with the
    /// auto-partitioner cutting the estate on low-connectivity
    /// boundaries and boundary contracts answering cross-module pairs.
    pub partition: bool,
    pub(crate) nodes: Vec<(usize, NodeSpec)>,
    pub(crate) links: Vec<(usize, String, String)>,
    pub(crate) routes: Vec<(usize, RouteSpec)>,
    pub(crate) steers: Vec<(usize, SteerSpec)>,
    /// Failure scenarios, as lists of failed node names.
    pub(crate) fails: Vec<(usize, Vec<String>)>,
    /// `verify` lines (invariants and pipeline invariants), normalised
    /// to single-space token separation so textual retire-by-spec
    /// matching is reliable.
    pub(crate) verifies: Vec<(usize, String)>,
}

/// A materialised epoch: the concrete network plus the name bindings and
/// resolved invariants of the current spec.
pub struct Materialized {
    pub net: Network,
    pub names: HashMap<String, NodeId>,
    /// Reachability invariants: (normalised spec text, resolved).
    pub invariants: Vec<(String, Invariant)>,
    /// Pipeline invariants: (normalised spec text, spec, src, dst).
    pub pipelines: Vec<(String, vmn_net::PipelineSpec, NodeId, NodeId)>,
}

impl NetSpec {
    /// Parses a `.vmn` document into the symbolic form. Syntax (keyword
    /// shapes, address/prefix formats) is checked here; name resolution
    /// happens at [`NetSpec::materialize`] — but note the materialise
    /// errors keep the offending source line.
    pub fn parse(text: &str) -> Result<NetSpec, SpecError> {
        let mut spec = NetSpec::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tok = line.split_whitespace();
            let keyword = tok.next().expect("non-empty line");
            let rest: Vec<String> = tok.map(str::to_string).collect();
            spec.add_line(lineno, keyword, rest)?;
        }
        Ok(spec)
    }

    fn add_line(
        &mut self,
        lineno: usize,
        keyword: &str,
        rest: Vec<String>,
    ) -> Result<(), SpecError> {
        match keyword {
            "host" => {
                let [name, addr] = two(lineno, &rest, "host <name> <address>")?;
                let _: Address =
                    addr.parse().map_err(|e| err(lineno, format!("bad address: {e}")))?;
                self.nodes.push((lineno, NodeSpec::Host { name, addr }));
            }
            "switch" => {
                let name = one(lineno, &rest, "switch <name>")?;
                self.nodes.push((lineno, NodeSpec::Switch { name }));
            }
            "firewall" | "acl-firewall" | "nat" | "cache" | "idps" | "ids" | "scrubber"
            | "gateway" | "wan-optimizer" | "lb" => {
                if rest.is_empty() {
                    return Err(err(lineno, format!("{keyword} needs a name")));
                }
                let name = rest[0].clone();
                let args = rest[1..].to_vec();
                // Syntax-check the model arguments eagerly so the error
                // carries this line, not a later materialise.
                build_model(lineno, keyword, &name, &args)?;
                owned_addresses(keyword, &args).map_err(|m| err(lineno, m))?;
                self.nodes.push((lineno, NodeSpec::Mbox { name, kind: keyword.to_string(), args }));
            }
            "link" => {
                let [a, b] = two(lineno, &rest, "link <a> <b>")?;
                self.links.push((lineno, a, b));
            }
            "route" => {
                // route <switch> <prefix> <next> [prio N]
                if rest.len() < 3 {
                    return Err(err(lineno, "route <switch> <prefix> <next-hop> [prio N]"));
                }
                let _: Prefix =
                    rest[1].parse().map_err(|e| err(lineno, format!("bad prefix: {e}")))?;
                let prio = parse_prio(lineno, &rest[3..])?;
                self.routes.push((
                    lineno,
                    RouteSpec {
                        switch: rest[0].clone(),
                        prefix: rest[1].clone(),
                        next: rest[2].clone(),
                        prio,
                    },
                ));
            }
            "steer" => {
                // steer <switch> from <node> <prefix> <next> [prio N]
                if rest.len() < 5 || rest[1] != "from" {
                    return Err(err(
                        lineno,
                        "steer <switch> from <node> <prefix> <next-hop> [prio N]",
                    ));
                }
                let _: Prefix =
                    rest[3].parse().map_err(|e| err(lineno, format!("bad prefix: {e}")))?;
                let prio = parse_prio(lineno, &rest[5..])?;
                self.steers.push((
                    lineno,
                    SteerSpec {
                        switch: rest[0].clone(),
                        from: rest[2].clone(),
                        prefix: rest[3].clone(),
                        next: rest[4].clone(),
                        prio,
                    },
                ));
            }
            "autoroute" => self.autoroute = true,
            "partition" => {
                let mode = one(lineno, &rest, "partition auto")?;
                if mode != "auto" {
                    return Err(err(lineno, format!("unknown partition mode {mode:?}")));
                }
                self.partition = true;
            }
            "fail" => self.fails.push((lineno, rest)),
            "verify" => self.verifies.push((lineno, rest.join(" "))),
            other => return Err(err(lineno, format!("unknown keyword {other:?}"))),
        }
        Ok(())
    }

    /// The normalised invariant/pipeline spec texts currently registered.
    pub fn verify_specs(&self) -> impl Iterator<Item = &str> {
        self.verifies.iter().map(|(_, s)| s.as_str())
    }

    /// The failure scenarios currently registered, as failed-name lists.
    pub fn fail_specs(&self) -> impl Iterator<Item = &[String]> {
        self.fails.iter().map(|(_, names)| names.as_slice())
    }

    pub(crate) fn node_spec(&self, name: &str) -> Option<&NodeSpec> {
        self.nodes.iter().map(|(_, n)| n).find(|n| n.name() == name)
    }

    /// Rebuilds the concrete network for the current spec state.
    ///
    /// Node ids are assigned in spec insertion order, so additive deltas
    /// leave existing ids untouched; removals shift later ids, which is
    /// why all daemon cache bookkeeping works on names.
    pub fn materialize(&self) -> Result<Materialized, SpecError> {
        let mut topo = Topology::new();
        let mut names: HashMap<String, NodeId> = HashMap::new();
        for (lineno, node) in &self.nodes {
            let id = match node {
                NodeSpec::Host { name, addr } => {
                    let a: Address =
                        addr.parse().map_err(|e| err(*lineno, format!("bad address: {e}")))?;
                    topo.add_host(name, a)
                }
                NodeSpec::Switch { name } => topo.add_switch(name),
                NodeSpec::Mbox { name, kind, args } => {
                    let addresses = owned_addresses(kind, args).map_err(|m| err(*lineno, m))?;
                    topo.add_middlebox(name, kind, addresses)
                }
            };
            if names.insert(node.name().to_string(), id).is_some() {
                return Err(err(*lineno, format!("duplicate node name {:?}", node.name())));
            }
        }
        let lookup = |line: usize, name: &str| -> Result<NodeId, SpecError> {
            names.get(name).copied().ok_or_else(|| err(line, format!("unknown node {name:?}")))
        };

        for (lineno, a, b) in &self.links {
            let na = lookup(*lineno, a)?;
            let nb = lookup(*lineno, b)?;
            topo.add_link(na, nb);
        }

        let mut tables = if self.autoroute {
            let mut rc = RoutingConfig::new();
            rc.host_routes(&topo);
            rc.build(&topo, &FailureScenario::none())
        } else {
            vmn_net::ForwardingTables::new()
        };
        for (lineno, r) in &self.routes {
            let sw = lookup(*lineno, &r.switch)?;
            let prefix: Prefix =
                r.prefix.parse().map_err(|e| err(*lineno, format!("bad prefix: {e}")))?;
            let next = lookup(*lineno, &r.next)?;
            tables.add_rule(sw, Rule::new(prefix, next).with_priority(r.prio));
        }
        for (lineno, s) in &self.steers {
            let sw = lookup(*lineno, &s.switch)?;
            let from = lookup(*lineno, &s.from)?;
            let prefix: Prefix =
                s.prefix.parse().map_err(|e| err(*lineno, format!("bad prefix: {e}")))?;
            let next = lookup(*lineno, &s.next)?;
            tables.add_rule(sw, Rule::from_neighbor(prefix, from, next).with_priority(s.prio));
        }

        let mut net = Network::new(topo, tables);
        for (lineno, node) in &self.nodes {
            if let NodeSpec::Mbox { name, kind, args } = node {
                let id = lookup(*lineno, name)?;
                net.set_model(id, build_model(*lineno, kind, name, args)?);
            }
        }
        for (lineno, fail) in &self.fails {
            let mut nodes = Vec::new();
            for name in fail {
                nodes.push(lookup(*lineno, name)?);
            }
            net.add_scenario(FailureScenario::nodes(nodes));
        }

        let mut invariants = Vec::new();
        let mut pipelines = Vec::new();
        for (lineno, spec) in &self.verifies {
            let toks: Vec<&str> = spec.split_whitespace().collect();
            if toks.first() == Some(&"pipeline") {
                // verify pipeline <src> -> <dst> via <type> [<type>…]
                match toks.as_slice() {
                    [_, src, "->", dst, "via", types @ ..] if !types.is_empty() => {
                        let s = lookup(*lineno, src)?;
                        let d = lookup(*lineno, dst)?;
                        let spec_obj = vmn_net::PipelineSpec::new(types.iter().copied());
                        pipelines.push((spec.clone(), spec_obj, s, d));
                    }
                    _ => {
                        return Err(err(
                            *lineno,
                            "usage: verify pipeline <src> -> <dst> via <mbox-type>…",
                        ))
                    }
                }
            } else {
                let inv = parse_invariant(&names, *lineno, spec)?;
                invariants.push((spec.clone(), inv));
            }
        }

        Ok(Materialized { net, names, invariants, pipelines })
    }
}

fn one(line: usize, rest: &[String], usage: &str) -> Result<String, SpecError> {
    match rest {
        [a] => Ok(a.clone()),
        _ => Err(err(line, format!("usage: {usage}"))),
    }
}

fn two(line: usize, rest: &[String], usage: &str) -> Result<[String; 2], SpecError> {
    match rest {
        [a, b] => Ok([a.clone(), b.clone()]),
        _ => Err(err(line, format!("usage: {usage}"))),
    }
}

fn parse_prio(line: usize, rest: &[String]) -> Result<i32, SpecError> {
    match rest {
        [] => Ok(0),
        [kw, n] if kw == "prio" => n.parse().map_err(|_| err(line, format!("bad priority {n:?}"))),
        _ => Err(err(line, "expected `prio N` or nothing")),
    }
}

/// Addresses a middlebox owns, for the topology (NAT external, LB VIP).
pub fn owned_addresses(kind: &str, args: &[String]) -> Result<Vec<Address>, String> {
    let find = |key: &str| -> Option<&str> {
        args.iter().position(|t| t == key).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    match kind {
        "nat" => {
            let ext = find("external").ok_or("nat needs `external <address>`")?;
            Ok(vec![ext.parse().map_err(|e| format!("bad external address: {e}"))?])
        }
        "lb" => {
            let vip = find("vip").ok_or("lb needs `vip <address>`")?;
            Ok(vec![vip.parse().map_err(|e| format!("bad vip: {e}"))?])
        }
        _ => Ok(Vec::new()),
    }
}

/// Parses `A/B -> C/D` pair lists separated by `,`.
fn parse_pairs(line: usize, toks: &[String]) -> Result<Vec<(Prefix, Prefix)>, SpecError> {
    let joined = toks.join(" ");
    let mut out = Vec::new();
    for chunk in joined.split(',') {
        let chunk = chunk.trim();
        if chunk.is_empty() {
            continue;
        }
        let (a, b) = chunk
            .split_once("->")
            .ok_or_else(|| err(line, format!("expected `src -> dst`, got {chunk:?}")))?;
        let pa: Prefix =
            a.trim().parse().map_err(|e| err(line, format!("bad prefix {a:?}: {e}")))?;
        let pb: Prefix =
            b.trim().parse().map_err(|e| err(line, format!("bad prefix {b:?}: {e}")))?;
        out.push((pa, pb));
    }
    Ok(out)
}

/// Builds the middlebox model for a node line / set-model delta.
pub fn build_model(
    line: usize,
    kind: &str,
    name: &str,
    args: &[String],
) -> Result<vmn_mbox::MboxModel, SpecError> {
    let find = |key: &str| -> Option<usize> { args.iter().position(|t| t == key) };
    match kind {
        "firewall" => {
            let acl = match find("allow") {
                Some(i) => parse_pairs(line, &args[i + 1..])?,
                None => Vec::new(),
            };
            Ok(models::learning_firewall(kind, acl))
        }
        "acl-firewall" => {
            let acl = match find("allow") {
                Some(i) => parse_pairs(line, &args[i + 1..])?,
                None => Vec::new(),
            };
            Ok(models::acl_firewall(kind, acl))
        }
        "nat" => {
            let internal = find("internal")
                .and_then(|i| args.get(i + 1))
                .ok_or_else(|| err(line, "nat needs `internal <prefix>`"))?;
            let external = find("external")
                .and_then(|i| args.get(i + 1))
                .ok_or_else(|| err(line, "nat needs `external <address>`"))?;
            Ok(models::nat(
                kind,
                internal.parse().map_err(|e| err(line, format!("bad prefix: {e}")))?,
                external.parse().map_err(|e| err(line, format!("bad address: {e}")))?,
            ))
        }
        "cache" => {
            let servers_at = find("servers")
                .ok_or_else(|| err(line, "cache needs `servers <prefix>[,<prefix>…]`"))?;
            let deny_at = find("deny");
            let servers_end = deny_at.unwrap_or(args.len());
            let mut servers = Vec::new();
            for t in args[servers_at + 1..servers_end].join(" ").split(',') {
                let t = t.trim();
                if t.is_empty() {
                    continue;
                }
                servers.push(t.parse().map_err(|e| err(line, format!("bad prefix {t:?}: {e}")))?);
            }
            let deny = match deny_at {
                Some(i) => parse_pairs(line, &args[i + 1..])?,
                None => Vec::new(),
            };
            Ok(models::content_cache(kind, servers, deny))
        }
        "idps" => Ok(models::idps(kind)),
        "ids" => Ok(models::ids_monitor(kind)),
        "scrubber" => Ok(models::scrubber(kind)),
        "gateway" => Ok(models::gateway(kind)),
        "wan-optimizer" => Ok(models::wan_optimizer(kind)),
        "lb" => {
            let vip = find("vip")
                .and_then(|i| args.get(i + 1))
                .ok_or_else(|| err(line, "lb needs `vip <address>`"))?;
            let backends_at =
                find("backends").ok_or_else(|| err(line, "lb needs `backends <a>,<b>…`"))?;
            let mut backends = Vec::new();
            for t in args[backends_at + 1..].join(" ").split(',') {
                let t = t.trim();
                if t.is_empty() {
                    continue;
                }
                backends.push(t.parse().map_err(|e| err(line, format!("bad address {t:?}: {e}")))?);
            }
            Ok(models::load_balancer(
                kind,
                vip.parse().map_err(|e| err(line, format!("bad vip: {e}")))?,
                backends,
            ))
        }
        other => Err(err(line, format!("unknown middlebox kind {other:?} for {name}"))),
    }
}

/// Parses a reachability-invariant spec (`node-isolation a -> b`, …).
pub fn parse_invariant(
    names: &HashMap<String, NodeId>,
    line: usize,
    spec: &str,
) -> Result<Invariant, SpecError> {
    let lookup = |name: &str| -> Result<NodeId, SpecError> {
        names.get(name).copied().ok_or_else(|| err(line, format!("unknown node {name:?}")))
    };
    let toks: Vec<&str> = spec.split_whitespace().collect();
    match toks.as_slice() {
        [kind, src, "->", dst, rest @ ..] => {
            let s = lookup(src)?;
            let d = lookup(dst)?;
            match (*kind, rest) {
                ("node-isolation", []) => Ok(Invariant::NodeIsolation { src: s, dst: d }),
                ("flow-isolation", []) => Ok(Invariant::FlowIsolation { src: s, dst: d }),
                ("data-isolation", []) => Ok(Invariant::DataIsolation { origin: s, dst: d }),
                ("traversal", ["via", boxes @ ..]) if !boxes.is_empty() => {
                    let mut through = Vec::new();
                    for b in boxes {
                        through.push(lookup(b)?);
                    }
                    Ok(Invariant::Traversal { dst: d, through, from: Some(s) })
                }
                _ => Err(err(line, format!("bad invariant spec {spec:?}"))),
            }
        }
        _ => Err(err(
            line,
            "usage: verify <kind> <src> -> <dst> [via <mbox>…] \
             where kind is node-isolation | flow-isolation | data-isolation | traversal",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
host     outside 8.8.8.8
host     inside  10.0.0.5
switch   sw
firewall fw allow 10.0.0.0/8 -> 0.0.0.0/0
link     outside sw
link     inside  sw
link     fw      sw
autoroute
steer    sw from outside 0.0.0.0/0 fw prio 10
fail     fw
verify   node-isolation outside -> inside
verify   pipeline outside -> inside via firewall
";

    #[test]
    fn parse_and_materialize_roundtrip() {
        let spec = NetSpec::parse(SAMPLE).unwrap();
        let m = spec.materialize().unwrap();
        assert_eq!(m.net.topo.hosts().count(), 2);
        assert_eq!(m.net.topo.middleboxes().count(), 1);
        assert_eq!(m.invariants.len(), 1);
        assert_eq!(m.pipelines.len(), 1);
        assert_eq!(m.net.scenarios.len(), 1);
        m.net.validate().expect("models installed");
        // Ids are insertion-ordered, so re-materialising is stable.
        let m2 = spec.materialize().unwrap();
        assert_eq!(m.names, m2.names);
    }

    #[test]
    fn errors_carry_source_lines() {
        let e = NetSpec::parse("host a 1.2.3.4\nlink a ghost\n")
            .unwrap()
            .materialize()
            .map(|_| ())
            .expect_err("unknown node");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("ghost"));

        let e = NetSpec::parse("host a 1.2.3.4\nhost a 1.2.3.5\n")
            .unwrap()
            .materialize()
            .map(|_| ())
            .expect_err("duplicate");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));

        let e = NetSpec::parse("frobnicate x\n").expect_err("bad keyword");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn model_argument_errors_are_parse_time() {
        let e = NetSpec::parse("nat n1 internal 10.0.0.0/8\n").expect_err("missing external");
        assert_eq!(e.line, 1);
        assert!(e.message.contains("external"));
    }
}
