//! The long-lived verification service.
//!
//! A [`Service`] holds a fleet of named [`NetSession`]s. Each session
//! keeps the symbolic [`NetSpec`], a warmed [`Verifier`] (whose solver
//! sessions persist across checks), and a **verdict cache** with one
//! entry per (invariant, scenario) pair, keyed by the pair's *slice
//! fingerprint* ([`vmn::slice::verdict_fingerprint`]).
//!
//! Applying a delta re-checks only what the delta can touch:
//!
//! 1. the delta's [`TouchSet`] retires exactly the stale pooled solver
//!    sessions (`Verifier::swap_network`) and cost-model entries;
//! 2. cached pairs whose slice is disjoint from a `Nodes` footprint are
//!    *prefiltered* — skipped without any recomputation (sound unless
//!    the policy partition moved, which escalates to everything);
//! 3. surviving pairs recompute their fingerprint: an unchanged
//!    fingerprint is a *cache hit* (the verdict is a deterministic
//!    function of the fingerprinted inputs), a changed one triggers a
//!    re-verification of just that pair ([`Verifier::verify_under`]).
//!
//! Pipeline invariants are static-datapath checks, orders of magnitude
//! cheaper than the SMT path, and are simply re-checked on every delta.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vmn::slice::{slice_names, verdict_fingerprint};
use vmn::{Invariant, PartitionMode, Verdict, Verifier, VerifyOptions};
use vmn_analysis::TouchSet;
use vmn_net::{FailureScenario, HeaderClasses, NodeId};

use crate::delta::{scenario_key, Delta};
use crate::spec::NetSpec;

/// One cached (invariant, scenario) verdict.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Fingerprint of everything the verdict depends on.
    pub fingerprint: u64,
    /// The slice's member names — intersected against delta footprints.
    pub slice: BTreeSet<String>,
    pub verdict: Verdict,
    /// Answered by the boundary contracts alone: no slice, no
    /// fingerprint. Such entries are never prefiltered — the contract
    /// re-answers them (cheaply) whenever the epoch moves.
    pub contract: bool,
}

/// What one delta batch did.
#[derive(Clone, Debug)]
pub struct DeltaReport {
    /// The batch's merged session footprint.
    pub touched: TouchSet,
    /// Whether a policy-partition change forced the cache prefilter to
    /// treat the batch as touching everything.
    pub escalated: bool,
    /// Total (invariant, scenario) pairs after the batch.
    pub pairs: usize,
    /// Pairs skipped by footprint disjointness alone.
    pub prefiltered: usize,
    /// Pairs answered by the boundary contracts alone (modular mode).
    pub contract_answered: usize,
    /// Pairs whose recomputed fingerprint matched the cache.
    pub cache_hits: usize,
    /// Pairs actually re-verified.
    pub rechecked: usize,
    /// Cache entries dropped (retired invariants/scenarios).
    pub retired: usize,
    /// Modules in the active partition (0 when running monolithically).
    pub modules: usize,
    /// Modules the batch footprint landed in: `Some(n)` for a `Nodes`
    /// footprint, `None` for `Everything` or without a partition.
    pub modules_touched: Option<usize>,
    /// Verdicts that changed (or appeared), as
    /// (invariant spec, scenario key, holds, previous holds).
    pub changed: Vec<(String, String, bool, Option<bool>)>,
    pub elapsed: Duration,
}

/// The current verdict of one registered invariant, aggregated over the
/// scenario sweep in configured order (no-failure first).
#[derive(Clone, Debug)]
pub struct InvariantVerdict {
    pub spec: String,
    pub holds: bool,
    /// First violating scenario (key) and its witness length, if any.
    pub violation: Option<(String, usize)>,
}

/// A long-lived verification session for one network.
pub struct NetSession {
    spec: NetSpec,
    verifier: Verifier,
    names: HashMap<String, NodeId>,
    invariants: Vec<(String, Invariant)>,
    pipelines: Vec<(String, vmn_net::PipelineSpec, NodeId, NodeId)>,
    /// Pipeline results, re-checked on every delta (static, cheap).
    pipeline_holds: Vec<(String, bool)>,
    classes: HeaderClasses,
    /// The policy partition as a name-based set-of-sets, for stability
    /// comparison across epochs.
    partition: BTreeSet<BTreeSet<String>>,
    /// (invariant spec, scenario key) → cached verdict.
    cache: HashMap<(String, String), CacheEntry>,
}

fn partition_names(verifier: &Verifier) -> BTreeSet<BTreeSet<String>> {
    let net = verifier.network();
    verifier
        .policy()
        .classes
        .iter()
        .map(|class| class.iter().map(|&n| net.topo.node(n).name.clone()).collect())
        .collect()
}

/// Scenario key for the implicit no-failure scenario.
pub const NONE_SCENARIO: &str = "";

impl NetSession {
    /// Parses, materialises and fully verifies a configuration; every
    /// (invariant, scenario) pair lands in the verdict cache.
    pub fn load(config: &str, options: VerifyOptions) -> Result<(NetSession, DeltaReport), String> {
        let spec = NetSpec::parse(config).map_err(|e| e.to_string())?;
        let m = spec.materialize().map_err(|e| e.to_string())?;
        let net = Arc::new(m.net);
        // A `partition auto` directive switches the verifier into
        // modular mode regardless of the service-wide options.
        let mut options = options;
        if spec.partition {
            options.partition = PartitionMode::Auto;
        }
        let verifier = Verifier::from_arc(net.clone(), options).map_err(|e| e.to_string())?;
        let classes = HeaderClasses::from_network(&net.topo, &net.tables);
        let partition = partition_names(&verifier);
        let mut session = NetSession {
            spec,
            verifier,
            names: m.names,
            invariants: m.invariants,
            pipelines: m.pipelines,
            pipeline_holds: Vec::new(),
            classes,
            partition,
            cache: HashMap::new(),
        };
        let start = Instant::now();
        let mut report = DeltaReport {
            touched: TouchSet::Everything,
            escalated: false,
            pairs: 0,
            prefiltered: 0,
            contract_answered: 0,
            cache_hits: 0,
            rechecked: 0,
            retired: 0,
            modules: session.module_count(),
            modules_touched: None,
            changed: Vec::new(),
            elapsed: Duration::ZERO,
        };
        session.reconcile(&TouchSet::Everything, &mut report)?;
        report.elapsed = start.elapsed();
        Ok((session, report))
    }

    /// Applies a batch of deltas transactionally: either all apply and
    /// the report describes the re-verification, or the session is
    /// unchanged. Batching merges the footprints, so one reconcile pass
    /// serves the whole batch.
    pub fn apply(&mut self, deltas: &[Delta]) -> Result<DeltaReport, String> {
        let start = Instant::now();
        let mut spec = self.spec.clone();
        let mut touched = TouchSet::Nothing;
        for d in deltas {
            touched = touched.union(spec.apply(d).map_err(|e| e.to_string())?);
        }
        let m = spec.materialize().map_err(|e| e.to_string())?;
        let net = Arc::new(m.net);
        self.verifier.swap_network(net.clone(), &touched).map_err(|e| format!("{e:?}"))?;
        self.spec = spec;
        self.names = m.names;
        self.invariants = m.invariants;
        self.pipelines = m.pipelines;

        // The policy partition feeds slice computation: if it moved, a
        // pair's plan can change even though its old slice is disjoint
        // from the footprint, so the *prefilter* must not trust
        // disjointness. (Fingerprints recompute against the new plan
        // either way — escalation only disables step 2, not step 3.)
        let mut escalated = false;
        if !touched.is_nothing() {
            self.classes = HeaderClasses::from_network(&net.topo, &net.tables);
            let partition = partition_names(&self.verifier);
            escalated = partition != self.partition && !matches!(touched, TouchSet::Everything);
            self.partition = partition;
        }
        let effective = if escalated { TouchSet::Everything } else { touched.clone() };

        let modules_touched = self.modules_touched(&touched);
        let mut report = DeltaReport {
            touched,
            escalated,
            pairs: 0,
            prefiltered: 0,
            contract_answered: 0,
            cache_hits: 0,
            rechecked: 0,
            retired: 0,
            modules: self.module_count(),
            modules_touched,
            changed: Vec::new(),
            elapsed: Duration::ZERO,
        };
        self.reconcile(&effective, &mut report)?;
        report.elapsed = start.elapsed();
        Ok(report)
    }

    /// The scenario sweep in configured order: the no-failure scenario
    /// first (key `""`), then the registered failure scenarios.
    pub fn scenario_list(&self) -> Vec<(String, FailureScenario)> {
        let mut out = vec![(NONE_SCENARIO.to_string(), FailureScenario::none())];
        for fail in self.spec.fail_specs() {
            let nodes: Vec<NodeId> =
                fail.iter().filter_map(|n| self.names.get(n).copied()).collect();
            out.push((scenario_key(fail), FailureScenario::nodes(nodes)));
        }
        out
    }

    /// Brings the verdict cache in line with the current epoch; see the
    /// module docs for the prefilter / fingerprint / recheck ladder.
    fn reconcile(&mut self, effective: &TouchSet, report: &mut DeltaReport) -> Result<(), String> {
        let scenarios = self.scenario_list();
        let mut live: BTreeSet<(String, String)> = BTreeSet::new();
        for (inv_spec, inv) in &self.invariants {
            for (skey, scenario) in &scenarios {
                let key = (inv_spec.clone(), skey.clone());
                live.insert(key.clone());
                report.pairs += 1;

                if let Some(entry) = self.cache.get(&key) {
                    // Contract entries carry no slice, so footprint
                    // disjointness proves nothing about them — they are
                    // only skippable when the epoch did not move at all.
                    let skippable = !entry.contract || effective.is_nothing();
                    if skippable && !effective.touches(entry.slice.iter().map(String::as_str)) {
                        report.prefiltered += 1;
                        continue;
                    }
                }
                let net = self.verifier.network().clone();
                // Modular mode: if the boundary contracts prove the pair
                // outright, skip planning and fingerprinting entirely.
                if let Some(ctx) = self.verifier.modular_context() {
                    if ctx.contract_holds(&net, inv, scenario) {
                        report.contract_answered += 1;
                        let was = self.cache.get(&key).map(|e| e.verdict.holds());
                        if was != Some(true) {
                            report.changed.push((inv_spec.clone(), skey.clone(), true, was));
                        }
                        self.cache.insert(
                            key,
                            CacheEntry {
                                fingerprint: 0,
                                slice: BTreeSet::new(),
                                verdict: Verdict::Holds,
                                contract: true,
                            },
                        );
                        continue;
                    }
                }
                let (nodes, k) =
                    self.verifier.plan_for(inv, scenario).map_err(|e| format!("{e:?}"))?;
                let fp = verdict_fingerprint(&net, &self.classes, inv, scenario, &nodes, k)
                    .map_err(|e| format!("{e:?}"))?;
                let slice = slice_names(&net, &nodes);
                if let Some(entry) = self.cache.get_mut(&key) {
                    if entry.fingerprint == fp {
                        entry.slice = slice;
                        report.cache_hits += 1;
                        continue;
                    }
                }
                let was = self.cache.get(&key).map(|e| e.verdict.holds());
                let r = self
                    .verifier
                    .verify_under(inv, vec![scenario.clone()])
                    .map_err(|e| format!("{e:?}"))?;
                report.rechecked += 1;
                let holds = r.verdict.holds();
                if was != Some(holds) {
                    report.changed.push((inv_spec.clone(), skey.clone(), holds, was));
                }
                self.cache.insert(
                    key,
                    CacheEntry { fingerprint: fp, slice, verdict: r.verdict, contract: false },
                );
            }
        }
        let before = self.cache.len();
        self.cache.retain(|k, _| live.contains(k));
        report.retired = before - self.cache.len();

        self.pipeline_holds.clear();
        for (spec, p, s, d) in &self.pipelines {
            let holds =
                self.verifier.check_pipeline(p, *s, *d).map_err(|e| format!("{e:?}"))?.is_none();
            self.pipeline_holds.push((spec.clone(), holds));
        }
        Ok(())
    }

    /// Current verdict of every registered reachability invariant,
    /// aggregated across the scenario sweep in configured order.
    pub fn verdicts(&self) -> Vec<InvariantVerdict> {
        let order: Vec<String> = self.scenario_list().into_iter().map(|(k, _)| k).collect();
        self.invariants
            .iter()
            .map(|(spec, _)| {
                let violation = order.iter().find_map(|skey| {
                    match &self.cache.get(&(spec.clone(), skey.clone()))?.verdict {
                        Verdict::Holds => None,
                        Verdict::Violated { trace, .. } => Some((skey.clone(), trace.steps.len())),
                    }
                });
                InvariantVerdict { spec: spec.clone(), holds: violation.is_none(), violation }
            })
            .collect()
    }

    /// Pipeline-invariant results (spec text, holds).
    pub fn pipeline_verdicts(&self) -> &[(String, bool)] {
        &self.pipeline_holds
    }

    /// The cached verdict for one (invariant spec, scenario key) pair.
    pub fn cached(&self, inv_spec: &str, scenario_key: &str) -> Option<&CacheEntry> {
        self.cache.get(&(inv_spec.to_string(), scenario_key.to_string()))
    }

    /// Modules in the active partition (0 when running monolithically).
    pub fn module_count(&self) -> usize {
        self.verifier.modular_context().map_or(0, |c| c.module_count())
    }

    /// How many modules a footprint lands in: `Some(n)` for a `Nodes`
    /// footprint under a partition, `None` otherwise.
    fn modules_touched(&self, touched: &TouchSet) -> Option<usize> {
        let ctx = self.verifier.modular_context()?;
        match touched {
            TouchSet::Nothing => Some(0),
            TouchSet::Everything => None,
            TouchSet::Nodes(names) => {
                let topo = &self.verifier.network().topo;
                let mods: BTreeSet<usize> = names
                    .iter()
                    .filter_map(|n| topo.by_name(n).ok())
                    .filter_map(|id| ctx.module_of(id))
                    .collect();
                Some(mods.len())
            }
        }
    }

    pub fn cached_pairs(&self) -> usize {
        self.cache.len()
    }

    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    pub fn names(&self) -> &HashMap<String, NodeId> {
        &self.names
    }

    pub fn invariants(&self) -> &[(String, Invariant)] {
        &self.invariants
    }
}

/// A fleet of named sessions plus the protocol driver.
pub struct Service {
    options: VerifyOptions,
    nets: HashMap<String, NetSession>,
}

impl Service {
    pub fn new(options: VerifyOptions) -> Service {
        Service { options, nets: HashMap::new() }
    }

    /// Loads (or replaces) a named network from `.vmn` config text.
    pub fn load(&mut self, name: &str, config: &str) -> Result<DeltaReport, String> {
        let (session, report) = NetSession::load(config, self.options.clone())?;
        self.nets.insert(name.to_string(), session);
        Ok(report)
    }

    pub fn net(&self, name: &str) -> Option<&NetSession> {
        self.nets.get(name)
    }

    pub fn net_mut(&mut self, name: &str) -> Option<&mut NetSession> {
        self.nets.get_mut(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.nets.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Delta;
    use crate::spec::NodeSpec;

    const CONFIG: &str = r"
host     outside 8.8.8.8
host     inside  10.0.0.5
switch   sw
firewall fw allow 10.0.0.0/8 -> 0.0.0.0/0
link     outside sw
link     inside  sw
link     fw      sw
autoroute
steer    sw from outside 0.0.0.0/0 fw prio 10
steer    sw from inside  0.0.0.0/0 fw prio 10
verify   flow-isolation outside -> inside
verify   node-isolation outside -> inside
";

    #[test]
    fn load_verifies_every_pair() {
        let (s, report) = NetSession::load(CONFIG, VerifyOptions::default()).unwrap();
        assert_eq!(report.pairs, 2); // 2 invariants × 1 scenario (none)
        assert_eq!(report.rechecked, 2);
        let v = s.verdicts();
        assert!(v.iter().find(|iv| iv.spec.starts_with("flow")).unwrap().holds);
        assert!(!v.iter().find(|iv| iv.spec.starts_with("node")).unwrap().holds);
    }

    #[test]
    fn invariant_delta_reuses_cache() {
        let (mut s, _) = NetSession::load(CONFIG, VerifyOptions::default()).unwrap();
        let r = s
            .apply(&[Delta::AddInvariant { spec: "data-isolation inside -> outside".into() }])
            .unwrap();
        // The two old pairs are prefiltered (TouchSet::Nothing touches
        // no slice); only the new invariant's pair is verified.
        assert_eq!(r.pairs, 3);
        assert_eq!(r.prefiltered, 2);
        assert_eq!(r.rechecked, 1);
        assert_eq!(r.retired, 0);
        assert!(r.touched.is_nothing());
    }

    #[test]
    fn retire_drops_cache_entries() {
        let (mut s, _) = NetSession::load(CONFIG, VerifyOptions::default()).unwrap();
        let r = s
            .apply(&[Delta::RetireInvariant { spec: "node-isolation outside -> inside".into() }])
            .unwrap();
        assert_eq!(r.pairs, 1);
        assert_eq!(r.retired, 1);
        assert_eq!(r.rechecked, 0);
        assert_eq!(s.cached_pairs(), 1);
    }

    #[test]
    fn disjoint_set_model_is_prefiltered_or_cache_hit() {
        // Two independent pods behind one core switch; touching pod B's
        // firewall must not re-verify pod A's invariant.
        let config = r"
host a1 10.1.0.1
host a2 10.1.0.2
host b1 10.2.0.1
host b2 10.2.0.2
switch swa
switch swb
switch core
firewall fwa allow 10.1.0.0/16 -> 0.0.0.0/0
firewall fwb allow 10.2.0.0/16 -> 0.0.0.0/0
link a1 swa
link a2 swa
link fwa swa
link b1 swb
link b2 swb
link fwb swb
link swa core
link swb core
autoroute
steer swa from a1 0.0.0.0/0 fwa prio 10
steer swb from b1 0.0.0.0/0 fwb prio 10
verify flow-isolation a1 -> a2
verify flow-isolation b1 -> b2
";
        let (mut s, load_report) = NetSession::load(config, VerifyOptions::default()).unwrap();
        assert_eq!(load_report.rechecked, 2);
        let r = s
            .apply(&[Delta::SetModel {
                name: "fwb".into(),
                kind: "firewall".into(),
                args: vec![
                    "allow".into(),
                    "10.2.0.0/16".into(),
                    "->".into(),
                    "0.0.0.0/0".into(),
                    ",".into(),
                    "10.1.0.0/16".into(),
                    "->".into(),
                    "10.2.0.0/16".into(),
                ],
            }])
            .unwrap();
        assert_eq!(r.touched, TouchSet::node("fwb"));
        // Pod A's pair never re-verifies: prefiltered (slice disjoint
        // from {fwb}) unless the policy partition moved, in which case
        // its fingerprint still matches.
        let a_recheck = r.changed.iter().any(|(inv, _, _, _)| inv.contains("a1"));
        assert!(!a_recheck, "pod A's verdict must not change: {:?}", r.changed);
        assert_eq!(r.prefiltered + r.cache_hits, 1, "pod A answered without solving: {r:?}");
        assert_eq!(r.rechecked, 1, "only pod B re-verifies: {r:?}");
    }

    #[test]
    fn structural_delta_rechecks_changed_slices_only_via_fingerprint() {
        let (mut s, _) = NetSession::load(CONFIG, VerifyOptions::default()).unwrap();
        // Adding an unconnected host is TouchSet::Everything (structural)
        // but leaves both slices' delivery intact, so the fingerprints
        // match and no pair re-solves.
        let r = s
            .apply(&[Delta::AddNode(NodeSpec::Host { name: "h9".into(), addr: "9.9.9.9".into() })])
            .unwrap();
        assert_eq!(r.touched, TouchSet::Everything);
        assert_eq!(r.prefiltered, 0);
        assert_eq!(r.cache_hits, 2, "{r:?}");
        assert_eq!(r.rechecked, 0, "{r:?}");
    }

    #[test]
    fn scenario_delta_verifies_the_new_column() {
        let (mut s, _) = NetSession::load(CONFIG, VerifyOptions::default()).unwrap();
        let r = s.apply(&[Delta::AddScenario { fail: vec!["fw".into()] }]).unwrap();
        assert_eq!(r.pairs, 4);
        assert_eq!(r.prefiltered, 2);
        assert_eq!(r.rechecked, 2);
        // The firewall failure breaks flow isolation (no backup path
        // configured, traffic falls through directly).
        let v = s.verdicts();
        let flow = v.iter().find(|iv| iv.spec.starts_with("flow")).unwrap();
        assert!(!flow.holds);
        assert_eq!(flow.violation.as_ref().unwrap().0, "fw");
        // Removing the scenario restores the verdict and retires the
        // column's cache entries.
        let r = s.apply(&[Delta::RemoveScenario { fail: vec!["fw".into()] }]).unwrap();
        assert_eq!(r.retired, 2);
        assert!(s.verdicts().iter().find(|iv| iv.spec.starts_with("flow")).unwrap().holds);
    }

    #[test]
    fn service_fleet_holds_independent_nets() {
        let mut svc = Service::new(VerifyOptions::default());
        svc.load("prod", CONFIG).unwrap();
        svc.load("staging", CONFIG).unwrap();
        svc.net_mut("staging")
            .unwrap()
            .apply(&[Delta::AddScenario { fail: vec!["fw".into()] }])
            .unwrap();
        assert_eq!(svc.net("prod").unwrap().cached_pairs(), 2);
        assert_eq!(svc.net("staging").unwrap().cached_pairs(), 4);
        let mut names: Vec<&str> = svc.names().collect();
        names.sort_unstable();
        assert_eq!(names, ["prod", "staging"]);
    }
}
