//! Deltas: incremental edits to a [`NetSpec`].
//!
//! Each delta applies to the *symbolic* spec and reports a
//! [`TouchSet`] — which middleboxes' pooled solver sessions the edit
//! invalidates — that the daemon feeds into `Verifier::swap_network`:
//!
//! * **Structural and routing deltas** (nodes, links, routes, steers)
//!   return [`TouchSet::Everything`]. Warmed sessions bake in the
//!   global header-class partition and per-scenario delivery, both of
//!   which these edits can change for every slice, so everything must
//!   be retired to stay sound.
//! * **`SetModel`** returns [`TouchSet::Nodes`] for the one box —
//!   unless the new configuration changes the addresses the box *owns*
//!   (NAT external, LB VIP), which lives in the topology and escalates
//!   to `Everything`.
//! * **Invariant and scenario deltas** return [`TouchSet::Nothing`]:
//!   invariants and scenarios are registered lazily per check, so
//!   existing sessions stay valid verbatim.
//!
//! The distinct question of which *cached verdicts* a delta may change
//! is answered later by slice-fingerprint comparison (see `service`);
//! the touch set is only about session soundness.

use std::collections::BTreeSet;
use vmn_analysis::TouchSet;

use crate::json::Value;
use crate::spec::{err, NetSpec, NodeSpec, RouteSpec, SpecError, SteerSpec};

/// An incremental edit to a [`NetSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// Add a host, switch, or middlebox (with its configuration).
    AddNode(NodeSpec),
    /// Remove a node and every link, route, steer, and failure scenario
    /// that references it. Errors if a registered invariant still names
    /// it — invariants must be retired first, explicitly.
    RemoveNode(String),
    /// Replace a middlebox's configuration (same name, new args).
    SetModel {
        name: String,
        kind: String,
        args: Vec<String>,
    },
    AddLink {
        a: String,
        b: String,
    },
    RemoveLink {
        a: String,
        b: String,
    },
    AddRoute(RouteSpec),
    RemoveRoute(RouteSpec),
    AddSteer(SteerSpec),
    RemoveSteer(SteerSpec),
    /// Register an invariant or pipeline `verify` spec (same grammar as
    /// the `verify` config line, e.g. `node-isolation a -> b`).
    AddInvariant {
        spec: String,
    },
    /// Retire a previously registered `verify` spec (textual match,
    /// whitespace-normalised).
    RetireInvariant {
        spec: String,
    },
    /// Add a failure scenario (list of failed node names).
    AddScenario {
        fail: Vec<String>,
    },
    RemoveScenario {
        fail: Vec<String>,
    },
}

impl NetSpec {
    /// Applies a delta, returning the sessions it invalidates.
    ///
    /// On error the spec is unchanged (all validation happens before
    /// mutation).
    pub fn apply(&mut self, delta: &Delta) -> Result<TouchSet, SpecError> {
        match delta {
            Delta::AddNode(node) => {
                if self.node_spec(node.name()).is_some() {
                    return Err(err(0, format!("duplicate node name {:?}", node.name())));
                }
                if let NodeSpec::Mbox { name, kind, args } = node {
                    crate::spec::build_model(0, kind, name, args)?;
                    crate::spec::owned_addresses(kind, args).map_err(|m| err(0, m))?;
                }
                self.nodes.push((0, node.clone()));
                Ok(TouchSet::Everything)
            }
            Delta::RemoveNode(name) => {
                if self.node_spec(name).is_none() {
                    return Err(err(0, format!("unknown node {name:?}")));
                }
                if let Some(spec) =
                    self.verifies.iter().map(|(_, s)| s).find(|s| spec_names_node(s, name))
                {
                    return Err(err(
                        0,
                        format!("invariant {spec:?} still references {name:?}; retire it first"),
                    ));
                }
                self.nodes.retain(|(_, n)| n.name() != name);
                self.links.retain(|(_, a, b)| a != name && b != name);
                self.routes.retain(|(_, r)| r.switch != *name && r.next != *name);
                self.steers
                    .retain(|(_, s)| s.switch != *name && s.from != *name && s.next != *name);
                self.fails.retain(|(_, f)| !f.iter().any(|n| n == name));
                Ok(TouchSet::Everything)
            }
            Delta::SetModel { name, kind, args } => {
                let old = match self.node_spec(name) {
                    Some(NodeSpec::Mbox { kind, args, .. }) => (kind.clone(), args.clone()),
                    Some(_) => {
                        return Err(err(0, format!("{name:?} is not a middlebox")));
                    }
                    None => return Err(err(0, format!("unknown node {name:?}"))),
                };
                crate::spec::build_model(0, kind, name, args)?;
                let new_owned = crate::spec::owned_addresses(kind, args).map_err(|m| err(0, m))?;
                let old_owned =
                    crate::spec::owned_addresses(&old.0, &old.1).map_err(|m| err(0, m))?;
                for (_, n) in &mut self.nodes {
                    if n.name() == name {
                        *n = NodeSpec::Mbox {
                            name: name.clone(),
                            kind: kind.clone(),
                            args: args.clone(),
                        };
                    }
                }
                // Owned addresses live in the topology and feed the
                // global header classes: changing them is structural.
                if new_owned != old_owned {
                    Ok(TouchSet::Everything)
                } else {
                    Ok(TouchSet::node(name.clone()))
                }
            }
            Delta::AddLink { a, b } => {
                for n in [a, b] {
                    if self.node_spec(n).is_none() {
                        return Err(err(0, format!("unknown node {n:?}")));
                    }
                }
                if self.links.iter().any(|(_, x, y)| same_link(x, y, a, b)) {
                    return Err(err(0, format!("link {a} {b} already present")));
                }
                self.links.push((0, a.clone(), b.clone()));
                Ok(TouchSet::Everything)
            }
            Delta::RemoveLink { a, b } => {
                let before = self.links.len();
                self.links.retain(|(_, x, y)| !same_link(x, y, a, b));
                if self.links.len() == before {
                    return Err(err(0, format!("no link {a} {b}")));
                }
                Ok(TouchSet::Everything)
            }
            Delta::AddRoute(r) => {
                self.routes.push((0, r.clone()));
                Ok(TouchSet::Everything)
            }
            Delta::RemoveRoute(r) => {
                let before = self.routes.len();
                self.routes.retain(|(_, x)| x != r);
                if self.routes.len() == before {
                    return Err(err(0, "no such route"));
                }
                Ok(TouchSet::Everything)
            }
            Delta::AddSteer(s) => {
                self.steers.push((0, s.clone()));
                Ok(TouchSet::Everything)
            }
            Delta::RemoveSteer(s) => {
                let before = self.steers.len();
                self.steers.retain(|(_, x)| x != s);
                if self.steers.len() == before {
                    return Err(err(0, "no such steer"));
                }
                Ok(TouchSet::Everything)
            }
            Delta::AddInvariant { spec } => {
                let norm = normalize_spec(spec);
                if self.verifies.iter().any(|(_, s)| *s == norm) {
                    return Err(err(0, format!("invariant {norm:?} already registered")));
                }
                self.verifies.push((0, norm));
                Ok(TouchSet::Nothing)
            }
            Delta::RetireInvariant { spec } => {
                let norm = normalize_spec(spec);
                let before = self.verifies.len();
                self.verifies.retain(|(_, s)| *s != norm);
                if self.verifies.len() == before {
                    return Err(err(0, format!("no invariant {norm:?}")));
                }
                Ok(TouchSet::Nothing)
            }
            Delta::AddScenario { fail } => {
                let key = scenario_key(fail);
                if self.fails.iter().any(|(_, f)| scenario_key(f) == key) {
                    return Err(err(0, format!("scenario {key:?} already registered")));
                }
                self.fails.push((0, fail.clone()));
                Ok(TouchSet::Nothing)
            }
            Delta::RemoveScenario { fail } => {
                let key = scenario_key(fail);
                let before = self.fails.len();
                self.fails.retain(|(_, f)| scenario_key(f) != key);
                if self.fails.len() == before {
                    return Err(err(0, format!("no scenario {key:?}")));
                }
                Ok(TouchSet::Nothing)
            }
        }
    }
}

fn same_link(x: &str, y: &str, a: &str, b: &str) -> bool {
    (x == a && y == b) || (x == b && y == a)
}

/// Whitespace-normalises a `verify` spec so textual matching works.
pub fn normalize_spec(spec: &str) -> String {
    spec.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Canonical key for a failure scenario: sorted, deduplicated names.
pub fn scenario_key(fail: &[String]) -> String {
    let set: BTreeSet<&str> = fail.iter().map(String::as_str).collect();
    set.into_iter().collect::<Vec<_>>().join(",")
}

/// True if a `verify` spec's node tokens include `name`. Token positions
/// follow the grammar: every token except the keyword, `->`, and `via`
/// names a node (pipeline `via` operands are *types*, not nodes, so
/// they are excluded there).
fn spec_names_node(spec: &str, name: &str) -> bool {
    let toks: Vec<&str> = spec.split_whitespace().collect();
    let pipeline = toks.first() == Some(&"pipeline");
    let mut after_via = false;
    for (i, t) in toks.iter().enumerate() {
        if i == 0 || *t == "->" {
            continue;
        }
        if *t == "via" {
            after_via = true;
            continue;
        }
        if pipeline && i == 1 {
            continue; // the keyword `pipeline` shifted everything by one
        }
        if pipeline && after_via {
            continue; // middlebox *types*, not node names
        }
        if *t == name {
            return true;
        }
    }
    false
}

impl Delta {
    /// Decodes a delta from its protocol JSON, e.g.
    /// `{"op":"add-link","a":"sw1","b":"sw2"}`.
    pub fn from_json(v: &Value) -> Result<Delta, String> {
        let op = v.str_field("op").ok_or("delta needs an \"op\" field")?;
        let field = |k: &str| -> Result<String, String> {
            v.str_field(k).map(str::to_string).ok_or(format!("{op}: missing field {k:?}"))
        };
        let args_field = |k: &str| -> Result<Vec<String>, String> {
            match v.get(k) {
                None => Ok(Vec::new()),
                Some(Value::Str(s)) => Ok(s.split_whitespace().map(str::to_string).collect()),
                Some(Value::Arr(items)) => items
                    .iter()
                    .map(|i| {
                        i.as_str()
                            .map(str::to_string)
                            .ok_or(format!("{op}: {k:?} must hold strings"))
                    })
                    .collect(),
                Some(_) => Err(format!("{op}: {k:?} must be a string or array of strings")),
            }
        };
        let prio = || -> Result<i32, String> {
            match v.get("prio") {
                None => Ok(0),
                Some(p) => p
                    .as_f64()
                    .filter(|f| f.fract() == 0.0)
                    .map(|f| f as i32)
                    .ok_or(format!("{op}: \"prio\" must be an integer")),
            }
        };
        match op {
            "add-host" => {
                Ok(Delta::AddNode(NodeSpec::Host { name: field("name")?, addr: field("addr")? }))
            }
            "add-switch" => Ok(Delta::AddNode(NodeSpec::Switch { name: field("name")? })),
            "add-mbox" => Ok(Delta::AddNode(NodeSpec::Mbox {
                name: field("name")?,
                kind: field("kind")?,
                args: args_field("args")?,
            })),
            "remove-node" => Ok(Delta::RemoveNode(field("name")?)),
            "set-model" => Ok(Delta::SetModel {
                name: field("name")?,
                kind: field("kind")?,
                args: args_field("args")?,
            }),
            "add-link" => Ok(Delta::AddLink { a: field("a")?, b: field("b")? }),
            "remove-link" => Ok(Delta::RemoveLink { a: field("a")?, b: field("b")? }),
            "add-route" | "remove-route" => {
                let r = RouteSpec {
                    switch: field("switch")?,
                    prefix: field("prefix")?,
                    next: field("next")?,
                    prio: prio()?,
                };
                Ok(if op == "add-route" { Delta::AddRoute(r) } else { Delta::RemoveRoute(r) })
            }
            "add-steer" | "remove-steer" => {
                let s = SteerSpec {
                    switch: field("switch")?,
                    from: field("from")?,
                    prefix: field("prefix")?,
                    next: field("next")?,
                    prio: prio()?,
                };
                Ok(if op == "add-steer" { Delta::AddSteer(s) } else { Delta::RemoveSteer(s) })
            }
            "add-invariant" => Ok(Delta::AddInvariant { spec: field("spec")? }),
            "retire-invariant" => Ok(Delta::RetireInvariant { spec: field("spec")? }),
            "add-scenario" => Ok(Delta::AddScenario { fail: args_field("fail")? }),
            "remove-scenario" => Ok(Delta::RemoveScenario { fail: args_field("fail")? }),
            other => Err(format!("unknown delta op {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn base() -> NetSpec {
        NetSpec::parse(
            "host a 1.1.1.1\nhost b 2.2.2.2\nswitch sw\nfirewall fw\n\
             link a sw\nlink b sw\nlink fw sw\nautoroute\n\
             verify node-isolation a -> b\n",
        )
        .unwrap()
    }

    #[test]
    fn set_model_touches_only_the_box() {
        let mut spec = base();
        let t = spec
            .apply(&Delta::SetModel {
                name: "fw".into(),
                kind: "firewall".into(),
                args: vec!["allow".into(), "1.1.1.1/32".into(), "->".into(), "2.2.2.2/32".into()],
            })
            .unwrap();
        assert_eq!(t, TouchSet::node("fw"));
        // The edit is visible in the next materialisation.
        spec.materialize().unwrap().net.validate().unwrap();
    }

    #[test]
    fn invariant_and_scenario_deltas_touch_nothing() {
        let mut spec = base();
        let t = spec.apply(&Delta::AddScenario { fail: vec!["fw".into()] }).unwrap();
        assert!(t.is_nothing());
        let t =
            spec.apply(&Delta::AddInvariant { spec: "flow-isolation  a ->  b".into() }).unwrap();
        assert!(t.is_nothing());
        // Normalised text retires the same invariant.
        spec.apply(&Delta::RetireInvariant { spec: "flow-isolation a -> b".into() }).unwrap();
        spec.apply(&Delta::RemoveScenario { fail: vec!["fw".into()] }).unwrap();
        assert_eq!(spec.fail_specs().count(), 0);
    }

    #[test]
    fn structural_deltas_touch_everything() {
        let mut spec = base();
        assert_eq!(
            spec.apply(&Delta::AddNode(NodeSpec::Host {
                name: "c".into(),
                addr: "3.3.3.3".into()
            }))
            .unwrap(),
            TouchSet::Everything
        );
        assert_eq!(
            spec.apply(&Delta::AddLink { a: "c".into(), b: "sw".into() }).unwrap(),
            TouchSet::Everything
        );
        // Removing the node cascades: its link disappears too.
        spec.apply(&Delta::RemoveNode("c".into())).unwrap();
        spec.materialize().unwrap();
    }

    #[test]
    fn remove_node_refuses_while_invariant_references_it() {
        let mut spec = base();
        let e = spec.apply(&Delta::RemoveNode("a".into())).expect_err("referenced");
        assert!(e.message.contains("retire"));
        spec.apply(&Delta::RetireInvariant { spec: "node-isolation a -> b".into() }).unwrap();
        spec.apply(&Delta::RemoveNode("a".into())).unwrap();
        spec.materialize().unwrap();
    }

    #[test]
    fn failed_deltas_leave_spec_unchanged() {
        let mut spec = base();
        let before = format!("{spec:?}");
        assert!(spec.apply(&Delta::RemoveLink { a: "a".into(), b: "fw".into() }).is_err());
        assert!(spec
            .apply(&Delta::SetModel { name: "ghost".into(), kind: "idps".into(), args: vec![] })
            .is_err());
        assert!(spec
            .apply(&Delta::AddNode(NodeSpec::Host { name: "a".into(), addr: "9.9.9.9".into() }))
            .is_err());
        assert_eq!(before, format!("{spec:?}"));
    }

    #[test]
    fn decodes_protocol_deltas() {
        let d = Delta::from_json(
            &json::parse(r#"{"op":"add-steer","switch":"sw","from":"a","prefix":"0.0.0.0/0","next":"fw","prio":10}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(
            d,
            Delta::AddSteer(SteerSpec {
                switch: "sw".into(),
                from: "a".into(),
                prefix: "0.0.0.0/0".into(),
                next: "fw".into(),
                prio: 10,
            })
        );
        let d = Delta::from_json(
            &json::parse(r#"{"op":"set-model","name":"fw","kind":"firewall","args":"allow 1.1.1.1/32 -> 2.2.2.2/32"}"#)
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(d, Delta::SetModel { .. }));
        assert!(Delta::from_json(&json::parse(r#"{"op":"warp"}"#).unwrap()).is_err());
    }
}
