//! The newline-delimited-JSON protocol behind `vmn serve`.
//!
//! One request per line, one response line per request. Requests are
//! objects with an `"op"` field:
//!
//! ```text
//! {"op":"load","net":"prod","config":"host a 1.1.1.1\n..."}
//! {"op":"delta","net":"prod","delta":{"op":"set-model","name":"fw",...}}
//! {"op":"delta","net":"prod","deltas":[{...},{...}]}        # one batch
//! {"op":"verdicts","net":"prod"}
//! {"op":"status"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`; errors are
//! `{"ok":false,"error":"..."}` and never terminate the session. Delta
//! responses describe the re-verification (see [`DeltaReport`]):
//! `touched` (the session footprint), `pairs`, `prefiltered`,
//! `contract_answered`, `cache_hits`, `rechecked`, `retired`, `modules`
//! / `modules_touched` (modular mode), `changed` and `elapsed_ms`.
//! The empty scenario key `""` names the implicit no-failure scenario.

use std::io::{BufRead, Write};

use crate::delta::Delta;
use crate::json::{self, Value};
use crate::service::{DeltaReport, NetSession, Service};
use vmn_analysis::TouchSet;

/// One protocol response: the line to write back, and whether the
/// request asked the server to stop.
pub struct Response {
    pub text: String,
    pub shutdown: bool,
}

fn error(message: impl std::fmt::Display) -> Response {
    let v = Value::obj([("ok", Value::Bool(false)), ("error", Value::str(message.to_string()))]);
    Response { text: v.to_string(), shutdown: false }
}

fn ok(mut fields: Vec<(&'static str, Value)>) -> Response {
    fields.insert(0, ("ok", Value::Bool(true)));
    Response { text: Value::obj(fields).to_string(), shutdown: false }
}

fn touched_json(t: &TouchSet) -> Value {
    match t {
        TouchSet::Nothing => Value::str("nothing"),
        TouchSet::Everything => Value::str("everything"),
        TouchSet::Nodes(names) => {
            let list: Vec<&str> = names.iter().map(String::as_str).collect();
            Value::str(format!("nodes:{}", list.join(",")))
        }
    }
}

fn report_json(r: &DeltaReport) -> Vec<(&'static str, Value)> {
    let changed: Vec<Value> = r
        .changed
        .iter()
        .map(|(inv, skey, holds, was)| {
            Value::obj([
                ("invariant", Value::str(inv.clone())),
                ("scenario", Value::str(skey.clone())),
                ("holds", Value::Bool(*holds)),
                ("was", was.map(Value::Bool).unwrap_or(Value::Null)),
            ])
        })
        .collect();
    vec![
        ("touched", touched_json(&r.touched)),
        ("escalated", Value::Bool(r.escalated)),
        ("pairs", Value::num(r.pairs as f64)),
        ("prefiltered", Value::num(r.prefiltered as f64)),
        ("contract_answered", Value::num(r.contract_answered as f64)),
        ("cache_hits", Value::num(r.cache_hits as f64)),
        ("rechecked", Value::num(r.rechecked as f64)),
        ("retired", Value::num(r.retired as f64)),
        ("modules", Value::num(r.modules as f64)),
        ("modules_touched", r.modules_touched.map(|n| Value::num(n as f64)).unwrap_or(Value::Null)),
        ("changed", Value::Arr(changed)),
        ("elapsed_ms", Value::Num(r.elapsed.as_secs_f64() * 1e3)),
    ]
}

fn verdicts_json(session: &NetSession) -> Vec<(&'static str, Value)> {
    let invariants: Vec<Value> = session
        .verdicts()
        .into_iter()
        .map(|iv| {
            let mut fields = vec![("spec", Value::str(iv.spec)), ("holds", Value::Bool(iv.holds))];
            if let Some((skey, steps)) = iv.violation {
                fields.push(("scenario", Value::str(skey)));
                fields.push(("witness_steps", Value::num(steps as f64)));
            }
            Value::obj(fields)
        })
        .collect();
    let pipelines: Vec<Value> = session
        .pipeline_verdicts()
        .iter()
        .map(|(spec, holds)| {
            Value::obj([("spec", Value::str(spec.clone())), ("holds", Value::Bool(*holds))])
        })
        .collect();
    vec![("invariants", Value::Arr(invariants)), ("pipelines", Value::Arr(pipelines))]
}

/// Handles one request line against the fleet.
pub fn handle_line(svc: &mut Service, line: &str) -> Response {
    let line = line.trim();
    if line.is_empty() {
        return error("empty request line");
    }
    let req = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return error(e),
    };
    let Some(op) = req.str_field("op") else {
        return error("request needs an \"op\" field");
    };
    let net_name = req.str_field("net").unwrap_or("default").to_string();
    match op {
        "load" => {
            let Some(config) = req.str_field("config") else {
                return error("load needs a \"config\" field (.vmn text)");
            };
            match svc.load(&net_name, config) {
                Ok(report) => {
                    let mut fields = vec![("net", Value::str(net_name.clone()))];
                    fields.extend(report_json(&report));
                    fields.extend(verdicts_json(svc.net(&net_name).expect("just loaded")));
                    ok(fields)
                }
                Err(e) => error(e),
            }
        }
        "delta" => {
            let deltas: Result<Vec<Delta>, String> = match (req.get("delta"), req.get("deltas")) {
                (Some(d), None) => Delta::from_json(d).map(|d| vec![d]),
                (None, Some(Value::Arr(items))) => items.iter().map(Delta::from_json).collect(),
                (None, Some(_)) => Err("\"deltas\" must be an array".into()),
                _ => Err("delta needs a \"delta\" object or a \"deltas\" array".into()),
            };
            let deltas = match deltas {
                Ok(d) => d,
                Err(e) => return error(e),
            };
            let Some(session) = svc.net_mut(&net_name) else {
                return error(format!("no loaded network {net_name:?}"));
            };
            match session.apply(&deltas) {
                Ok(report) => {
                    let mut fields = vec![("net", Value::str(net_name))];
                    fields.extend(report_json(&report));
                    ok(fields)
                }
                Err(e) => error(e),
            }
        }
        "verdicts" => match svc.net(&net_name) {
            Some(session) => {
                let mut fields = vec![("net", Value::str(net_name))];
                fields.extend(verdicts_json(session));
                ok(fields)
            }
            None => error(format!("no loaded network {net_name:?}")),
        },
        "status" => {
            let mut names: Vec<&str> = svc.names().collect();
            names.sort_unstable();
            let nets: Vec<Value> = names
                .iter()
                .map(|name| {
                    let s = svc.net(name).expect("listed");
                    Value::obj([
                        ("name", Value::str(*name)),
                        ("nodes", Value::num(s.names().len() as f64)),
                        ("invariants", Value::num(s.invariants().len() as f64)),
                        ("scenarios", Value::num(s.spec().fail_specs().count() as f64)),
                        ("cached_pairs", Value::num(s.cached_pairs() as f64)),
                        ("pooled_sessions", Value::num(s.verifier().pooled_sessions() as f64)),
                        ("cost_entries", Value::num(s.verifier().cost_model_entries() as f64)),
                    ])
                })
                .collect();
            ok(vec![("nets", Value::Arr(nets))])
        }
        "shutdown" => {
            let mut r = ok(vec![("shutdown", Value::Bool(true))]);
            r.shutdown = true;
            r
        }
        other => error(format!("unknown op {other:?}")),
    }
}

/// Drives a full session over any line-oriented transport (stdin/stdout
/// or an accepted unix-socket stream): one response line per request
/// line, flushed, until EOF or a `shutdown` request. Returns whether
/// `shutdown` was requested (the socket server uses this to stop
/// accepting).
pub fn serve_lines<R: BufRead, W: Write>(
    svc: &mut Service,
    reader: R,
    mut writer: W,
) -> std::io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(svc, &line);
        writer.write_all(response.text.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if response.shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn::VerifyOptions;

    const CONFIG: &str = "host a 1.1.1.1\nhost b 2.2.2.2\nswitch sw\nfirewall fw\nlink a sw\nlink b sw\nlink fw sw\nautoroute\nverify node-isolation a -> b\n";

    fn field_num(v: &Value, k: &str) -> f64 {
        v.get(k).and_then(Value::as_f64).unwrap_or_else(|| panic!("field {k} in {v}"))
    }

    #[test]
    fn scripted_session() {
        let mut svc = Service::new(VerifyOptions::default());
        let load = format!(r#"{{"op":"load","net":"n","config":{}}}"#, Value::str(CONFIG));
        let r = handle_line(&mut svc, &load);
        let v = json::parse(&r.text).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{}", r.text);
        assert_eq!(field_num(&v, "pairs"), 1.0);
        assert_eq!(field_num(&v, "rechecked"), 1.0);

        let r = handle_line(
            &mut svc,
            r#"{"op":"delta","net":"n","delta":{"op":"add-invariant","spec":"flow-isolation a -> b"}}"#,
        );
        let v = json::parse(&r.text).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{}", r.text);
        assert_eq!(v.str_field("touched"), Some("nothing"));
        assert_eq!(field_num(&v, "prefiltered"), 1.0);
        assert_eq!(field_num(&v, "rechecked"), 1.0);

        let r = handle_line(&mut svc, r#"{"op":"verdicts","net":"n"}"#);
        let v = json::parse(&r.text).unwrap();
        assert_eq!(v.get("invariants").and_then(Value::as_arr).unwrap().len(), 2);

        let r = handle_line(&mut svc, r#"{"op":"status"}"#);
        let v = json::parse(&r.text).unwrap();
        let nets = v.get("nets").and_then(Value::as_arr).unwrap();
        assert_eq!(nets.len(), 1);
        assert_eq!(field_num(&nets[0], "cached_pairs"), 2.0);

        // Errors don't kill the session.
        let r = handle_line(
            &mut svc,
            r#"{"op":"delta","net":"ghost","delta":{"op":"remove-node","name":"x"}}"#,
        );
        assert!(!r.shutdown);
        let v = json::parse(&r.text).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)));

        let r = handle_line(&mut svc, r#"{"op":"shutdown"}"#);
        assert!(r.shutdown);
    }

    #[test]
    fn serve_lines_runs_to_shutdown() {
        let mut svc = Service::new(VerifyOptions::default());
        let script = format!(
            "{}\n{}\n{}\n",
            format_args!(r#"{{"op":"load","net":"n","config":{}}}"#, Value::str(CONFIG)),
            r#"{"op":"verdicts","net":"n"}"#,
            r#"{"op":"shutdown"}"#
        );
        let mut out = Vec::new();
        let stopped = serve_lines(&mut svc, script.as_bytes(), &mut out).unwrap();
        assert!(stopped);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert_eq!(json::parse(l).unwrap().get("ok"), Some(&Value::Bool(true)), "{l}");
        }
    }
}
