//! Network substrate for the VMN verifier.
//!
//! The VMN paper assumes two pieces of network machinery that it does not
//! itself contribute: a way to describe topologies and configurations, and
//! the transfer-function computation pioneered by VeriFlow/HSA that
//! summarises the static (switch/router) part of a network as a function
//! from located packets to located packets. This crate provides both, from
//! scratch:
//!
//! * [`addr`] — IPv4-style addresses, prefixes, ports, protocols;
//! * [`header`] — concrete packet headers and flow identities;
//! * [`topology`] — nodes (hosts, switches, middleboxes), links and
//!   failure scenarios;
//! * [`fwd`] — longest-prefix-match forwarding tables with
//!   ingress-qualified rules, priorities and backup entries, plus
//!   shortest-path route computation;
//! * [`transfer`] — the per-failure-scenario transfer function: a walk of
//!   the static datapath from terminal to terminal with loop detection
//!   (a static forwarding loop is an error, as in §3.5 of the paper), and
//!   VeriFlow-style header equivalence classes;
//! * [`pipeline`] — the static *pipeline invariant* checker (which
//!   middlebox chain a packet class traverses), the job the paper
//!   delegates to existing static-datapath tools.

#![forbid(unsafe_code)]

pub mod addr;
pub mod error;
pub mod fwd;
pub mod header;
pub mod pipeline;
pub mod topology;
pub mod transfer;

pub use addr::{Address, Prefix, Protocol};
pub use error::NetError;
pub use fwd::{ForwardingTables, RoutingConfig, Rule};
pub use header::{FlowId, Header};
pub use pipeline::{PipelineDag, PipelineSpec, PipelineViolation, PortClass};
pub use topology::{FailureScenario, Link, Node, NodeId, NodeKind, Topology};
pub use transfer::{HeaderClasses, TransferFunction};
