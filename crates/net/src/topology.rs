//! Topologies: nodes, links and failure scenarios.
//!
//! A topology distinguishes *terminals* (hosts and middleboxes — the
//! endpoints of the transfer function) from *switches* (the static
//! datapath the transfer function summarises away). Middleboxes carry a
//! type tag (`mbox_type`) because policy equivalence classes and slicing
//! group nodes by middlebox type, not instance (§4.1).

use crate::addr::{Address, Prefix};
use crate::error::NetError;
use std::collections::BTreeSet;
use std::fmt;

/// Index of a node in its [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Role of a node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// An end host that can originate and sink traffic.
    Host,
    /// Part of the static datapath; summarised by the transfer function.
    Switch,
    /// A mutable-datapath element. `mbox_type` names the *model* (e.g.
    /// `"stateful-firewall"`); policy classes and slice discovery group
    /// instances by this tag.
    Middlebox { mbox_type: String },
}

impl NodeKind {
    pub fn is_terminal(&self) -> bool {
        !matches!(self, NodeKind::Switch)
    }

    pub fn is_middlebox(&self) -> bool {
        matches!(self, NodeKind::Middlebox { .. })
    }

    pub fn is_host(&self) -> bool {
        matches!(self, NodeKind::Host)
    }
}

/// A node in the topology.
#[derive(Clone, Debug)]
pub struct Node {
    pub name: String,
    pub kind: NodeKind,
    /// Addresses owned by the node (one for hosts; possibly several for
    /// middleboxes such as NATs or load-balancer VIPs; empty for switches).
    pub addresses: Vec<Address>,
}

/// An undirected link between two nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Link {
    pub a: NodeId,
    pub b: NodeId,
}

impl Link {
    pub fn new(a: NodeId, b: NodeId) -> Link {
        if a <= b {
            Link { a, b }
        } else {
            Link { a: b, b: a }
        }
    }

    pub fn other(self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// A set of failed nodes and links — one "failure scenario" (§2.1: an
/// invariant may be required to hold "for all single failures").
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct FailureScenario {
    pub failed_nodes: BTreeSet<NodeId>,
    pub failed_links: BTreeSet<Link>,
}

impl FailureScenario {
    /// The no-failure scenario.
    pub fn none() -> FailureScenario {
        FailureScenario::default()
    }

    pub fn nodes(nodes: impl IntoIterator<Item = NodeId>) -> FailureScenario {
        FailureScenario { failed_nodes: nodes.into_iter().collect(), failed_links: BTreeSet::new() }
    }

    pub fn is_failed(&self, n: NodeId) -> bool {
        self.failed_nodes.contains(&n)
    }

    pub fn is_link_failed(&self, l: Link) -> bool {
        self.failed_links.contains(&l)
            || self.failed_nodes.contains(&l.a)
            || self.failed_nodes.contains(&l.b)
    }

    pub fn fault_count(&self) -> usize {
        self.failed_nodes.len() + self.failed_links.len()
    }
}

/// The network graph.
#[derive(Clone, Default, Debug)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adjacency: Vec<Vec<NodeId>>,
}

impl Topology {
    pub fn new() -> Topology {
        Topology::default()
    }

    pub fn add_host(&mut self, name: impl Into<String>, addr: Address) -> NodeId {
        self.add_node(Node { name: name.into(), kind: NodeKind::Host, addresses: vec![addr] })
    }

    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(Node { name: name.into(), kind: NodeKind::Switch, addresses: Vec::new() })
    }

    pub fn add_middlebox(
        &mut self,
        name: impl Into<String>,
        mbox_type: impl Into<String>,
        addresses: Vec<Address>,
    ) -> NodeId {
        self.add_node(Node {
            name: name.into(),
            kind: NodeKind::Middlebox { mbox_type: mbox_type.into() },
            addresses,
        })
    }

    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.adjacency.push(Vec::new());
        id
    }

    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> Link {
        assert!(a.index() < self.nodes.len() && b.index() < self.nodes.len());
        assert_ne!(a, b, "self-links are not allowed");
        let l = Link::new(a, b);
        if !self.links.contains(&l) {
            self.links.push(l);
            self.adjacency[a.index()].push(b);
            self.adjacency[b.index()].push(a);
        }
        l
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adjacency[n.index()]
    }

    /// Neighbours reachable under `scenario` (no failed node/link).
    pub fn live_neighbors<'a>(
        &'a self,
        n: NodeId,
        scenario: &'a FailureScenario,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.adjacency[n.index()]
            .iter()
            .copied()
            .filter(move |&m| !scenario.is_link_failed(Link::new(n, m)))
    }

    pub fn by_name(&self, name: &str) -> Result<NodeId, NetError> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
            .ok_or_else(|| NetError::UnknownNode(name.to_string()))
    }

    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|(_, n)| n.kind.is_host()).map(|(id, _)| id)
    }

    pub fn middleboxes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|(_, n)| n.kind.is_middlebox()).map(|(id, _)| id)
    }

    pub fn terminals(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|(_, n)| n.kind.is_terminal()).map(|(id, _)| id)
    }

    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|(_, n)| matches!(n.kind, NodeKind::Switch)).map(|(id, _)| id)
    }

    /// The terminal that owns `addr`, if any.
    pub fn terminal_for_address(&self, addr: Address) -> Option<NodeId> {
        self.nodes()
            .find(|(_, n)| n.kind.is_terminal() && n.addresses.contains(&addr))
            .map(|(id, _)| id)
    }

    /// The middlebox type tag of a node, if it is a middlebox.
    pub fn mbox_type(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Middlebox { mbox_type } => Some(mbox_type),
            _ => None,
        }
    }

    /// All host prefixes (host routes) — used for header-class splitting.
    pub fn host_prefixes(&self) -> Vec<Prefix> {
        self.hosts().flat_map(|h| self.node(h).addresses.iter().map(|&a| Prefix::host(a))).collect()
    }

    /// All single-node failure scenarios over middleboxes (the common case
    /// evaluated in §5.1: does redundancy actually provide fault
    /// tolerance?).
    pub fn single_middlebox_failures(&self) -> Vec<FailureScenario> {
        self.middleboxes().map(|m| FailureScenario::nodes([m])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn small() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", addr("10.0.0.1"));
        let h2 = t.add_host("h2", addr("10.0.0.2"));
        let sw = t.add_switch("sw");
        let fw = t.add_middlebox("fw", "stateful-firewall", vec![]);
        t.add_link(h1, sw);
        t.add_link(h2, sw);
        t.add_link(fw, sw);
        (t, h1, h2, sw, fw)
    }

    #[test]
    fn classification_iterators() {
        let (t, h1, h2, sw, fw) = small();
        assert_eq!(t.hosts().collect::<Vec<_>>(), vec![h1, h2]);
        assert_eq!(t.middleboxes().collect::<Vec<_>>(), vec![fw]);
        assert_eq!(t.switches().collect::<Vec<_>>(), vec![sw]);
        assert_eq!(t.terminals().count(), 3);
    }

    #[test]
    fn lookup_by_name_and_address() {
        let (t, h1, _, _, _) = small();
        assert_eq!(t.by_name("h1").unwrap(), h1);
        assert!(t.by_name("nope").is_err());
        assert_eq!(t.terminal_for_address(addr("10.0.0.1")), Some(h1));
        assert_eq!(t.terminal_for_address(addr("10.9.9.9")), None);
    }

    #[test]
    fn duplicate_links_are_ignored() {
        let (mut t, h1, _, sw, _) = small();
        let before = t.links().len();
        t.add_link(sw, h1); // same undirected link, reversed
        assert_eq!(t.links().len(), before);
    }

    #[test]
    fn failure_scenarios_kill_links() {
        let (t, h1, _, sw, fw) = small();
        let s = FailureScenario::nodes([fw]);
        assert!(s.is_failed(fw));
        assert!(s.is_link_failed(Link::new(fw, sw)));
        assert!(!s.is_link_failed(Link::new(h1, sw)));
        let live: Vec<NodeId> = t.live_neighbors(sw, &s).collect();
        assert!(!live.contains(&fw));
        assert!(live.contains(&h1));
    }

    #[test]
    fn mbox_type_tagging() {
        let (t, _, _, sw, fw) = small();
        assert_eq!(t.mbox_type(fw), Some("stateful-firewall"));
        assert_eq!(t.mbox_type(sw), None);
    }

    #[test]
    fn single_failures_enumerated() {
        let (t, _, _, _, fw) = small();
        let fs = t.single_middlebox_failures();
        assert_eq!(fs.len(), 1);
        assert!(fs[0].is_failed(fw));
    }
}
