//! Error types for the network substrate.

use crate::topology::NodeId;
use std::fmt;

/// Errors raised while computing routes or transfer functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The static datapath forwards a packet in a cycle. Per §3.5 of the
    /// paper, VMN "throws an exception when a static forwarding loop is
    /// encountered" — loop-freedom is what keeps the network axioms in a
    /// decidable fragment.
    ForwardingLoop { nodes: Vec<NodeId> },
    /// A named node does not exist in the topology.
    UnknownNode(String),
    /// A rule or link references a node id outside the topology.
    BadNodeId(NodeId),
    /// A terminal (host or middlebox) has no link to the switching fabric.
    Disconnected(NodeId),
    /// The operation requires a terminal but was given a switch (or vice
    /// versa).
    WrongNodeKind { node: NodeId, expected: &'static str },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ForwardingLoop { nodes } => {
                write!(f, "static forwarding loop through nodes {nodes:?}")
            }
            NetError::UnknownNode(name) => write!(f, "unknown node {name:?}"),
            NetError::BadNodeId(id) => write!(f, "node id {id:?} out of range"),
            NetError::Disconnected(id) => write!(f, "terminal {id:?} has no live link"),
            NetError::WrongNodeKind { node, expected } => {
                write!(f, "node {node:?} is not a {expected}")
            }
        }
    }
}

impl std::error::Error for NetError {}
