//! Static pipeline-invariant checking.
//!
//! A *pipeline invariant* (§2.3) says that packets of some class must pass
//! through a given sequence of middlebox **types** before delivery — e.g.
//! "all traffic from the internet traverses a firewall, then an IDPS".
//! The paper notes these are checkable with existing static-datapath
//! tools; this module is that tool. Reachability invariants (the paper's
//! contribution) are handled by the `vmn` crate.

use crate::addr::Address;
use crate::error::NetError;
use crate::topology::{NodeId, Topology};
use crate::transfer::TransferFunction;

/// A pipeline requirement: the listed middlebox types must be traversed in
/// order (as a subsequence of the actual path — other middleboxes may
/// appear in between).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineSpec {
    pub required: Vec<String>,
}

impl PipelineSpec {
    pub fn new(required: impl IntoIterator<Item = impl Into<String>>) -> PipelineSpec {
        PipelineSpec { required: required.into_iter().map(Into::into).collect() }
    }

    /// Checks the pipeline for a packet from `src` to `dst` under the
    /// given transfer function (assuming middleboxes pass traffic through,
    /// which is the static-datapath view).
    ///
    /// `Ok(Ok(()))` — invariant holds (or the packet never reaches a host,
    /// in which case there is nothing to enforce);
    /// `Ok(Err(violation))` — the packet reaches its destination without
    /// traversing the required chain;
    /// `Err(_)` — the static datapath is broken (forwarding loop).
    pub fn check(
        &self,
        tf: &TransferFunction<'_>,
        src: NodeId,
        dst: Address,
    ) -> Result<Result<(), PipelineViolation>, NetError> {
        let (mboxes, end) = tf.terminal_path(src, dst)?;
        let Some(end) = end else {
            return Ok(Ok(())); // dropped traffic trivially satisfies the pipeline
        };
        let types: Vec<&str> = mboxes.iter().filter_map(|&m| tf.topo.mbox_type(m)).collect();
        let mut want = self.required.iter();
        let mut next = want.next();
        for ty in &types {
            if let Some(w) = next {
                if w == ty {
                    next = want.next();
                }
            }
        }
        if next.is_none() {
            Ok(Ok(()))
        } else {
            Ok(Err(PipelineViolation {
                src,
                dst,
                delivered_to: end,
                traversed: mboxes,
                missing: next.cloned().unwrap_or_default(),
            }))
        }
    }
}

/// Evidence that a pipeline invariant is violated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineViolation {
    pub src: NodeId,
    pub dst: Address,
    pub delivered_to: NodeId,
    /// Middleboxes actually traversed, in order.
    pub traversed: Vec<NodeId>,
    /// First required type that was not matched.
    pub missing: String,
}

impl std::fmt::Display for PipelineViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "packet from {:?} to {} delivered to {:?} without traversing a {:?} \
             (path traversed {} middleboxes)",
            self.src,
            self.dst,
            self.delivered_to,
            self.missing,
            self.traversed.len()
        )
    }
}

/// Checks a pipeline spec for every (host, destination-host) pair in a
/// topology; returns all violations. Convenience for the scenario tests.
pub fn check_all_pairs(
    topo: &Topology,
    tf: &TransferFunction<'_>,
    spec: &PipelineSpec,
) -> Result<Vec<PipelineViolation>, NetError> {
    let mut out = Vec::new();
    let hosts: Vec<NodeId> = topo.hosts().collect();
    for &src in &hosts {
        for &dst in &hosts {
            if src == dst {
                continue;
            }
            for &addr in &topo.node(dst).addresses {
                if let Err(v) = spec.check(tf, src, addr)? {
                    out.push(v);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix;
    use crate::fwd::{ForwardingTables, RoutingConfig, Rule};
    use crate::topology::FailureScenario;

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// h1 -> s1 -> fw -> s1 -> ids -> s1 -> s2 -> h2 pipeline.
    fn chain() -> (Topology, ForwardingTables, NodeId, NodeId) {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", addr("10.0.1.1"));
        let h2 = t.add_host("h2", addr("10.0.2.1"));
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let fw = t.add_middlebox("fw", "firewall", vec![]);
        let ids = t.add_middlebox("ids", "ids", vec![]);
        for n in [h1, fw, ids] {
            t.add_link(n, s1);
        }
        t.add_link(s1, s2);
        t.add_link(h2, s2);

        let mut rc = RoutingConfig::new();
        rc.host_routes(&t);
        let mut ft = rc.build(&t, &FailureScenario::none());
        ft.add_rule(s1, Rule::from_neighbor(px("10.0.2.0/24"), h1, fw).with_priority(10));
        ft.add_rule(s1, Rule::from_neighbor(px("10.0.2.0/24"), fw, ids).with_priority(10));
        (t, ft, h1, h2)
    }

    #[test]
    fn full_chain_satisfies_spec() {
        let (t, ft, h1, _) = chain();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        let spec = PipelineSpec::new(["firewall", "ids"]);
        assert_eq!(spec.check(&tf, h1, addr("10.0.2.1")).unwrap(), Ok(()));
    }

    #[test]
    fn subsequence_matching_allows_extras() {
        let (t, ft, h1, _) = chain();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        // Requiring only the IDS is satisfied by the fuller chain.
        let spec = PipelineSpec::new(["ids"]);
        assert_eq!(spec.check(&tf, h1, addr("10.0.2.1")).unwrap(), Ok(()));
    }

    #[test]
    fn order_matters() {
        let (t, ft, h1, _) = chain();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        let spec = PipelineSpec::new(["ids", "firewall"]);
        let v = spec.check(&tf, h1, addr("10.0.2.1")).unwrap().unwrap_err();
        assert_eq!(v.missing, "firewall");
    }

    #[test]
    fn reverse_path_misses_pipeline() {
        let (t, ft, _, h2) = chain();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        let spec = PipelineSpec::new(["firewall"]);
        let v = spec.check(&tf, h2, addr("10.0.1.1")).unwrap().unwrap_err();
        assert_eq!(v.missing, "firewall");
        assert!(v.traversed.is_empty());
    }

    #[test]
    fn failure_induced_bypass_detected() {
        let (t, ft, h1, _) = chain();
        let fw = t.by_name("fw").unwrap();
        let failed = FailureScenario::nodes([fw]);
        let tf = TransferFunction::new(&t, &ft, &failed);
        let spec = PipelineSpec::new(["firewall", "ids"]);
        // With the firewall dead, the base route bypasses both middleboxes.
        let v = spec.check(&tf, h1, addr("10.0.2.1")).unwrap().unwrap_err();
        assert_eq!(v.missing, "firewall");
    }

    #[test]
    fn all_pairs_sweep() {
        let (t, ft, _, _) = chain();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        let spec = PipelineSpec::new(["firewall"]);
        let violations = check_all_pairs(&t, &tf, &spec).unwrap();
        // Only the reverse direction (h2 -> h1) violates.
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].src, t.by_name("h2").unwrap());
    }
}

/// A branching (DAG) pipeline invariant (§2.3's "more complicated
/// pipeline invariants involve a DAG of middleboxes and specify the
/// appropriate branching at each step", e.g. *"all http packets leaving
/// the firewall go to the load balancer, while all other traffic goes
/// directly to the destination"*).
///
/// Each branch pairs a destination-port predicate with the required
/// middlebox-type sequence for packets matching it; the first matching
/// branch applies. A packet matching no branch is unconstrained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineDag {
    pub branches: Vec<(PortClass, PipelineSpec)>,
}

/// Packet class selector for DAG branches: a destination-port set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortClass {
    /// Matches the listed destination ports (e.g. 80/443 for "http").
    Ports(Vec<u16>),
    /// Matches everything (the default branch).
    Any,
}

impl PortClass {
    pub fn matches(&self, dst_port: u16) -> bool {
        match self {
            PortClass::Ports(ps) => ps.contains(&dst_port),
            PortClass::Any => true,
        }
    }
}

impl PipelineDag {
    pub fn new() -> PipelineDag {
        PipelineDag { branches: Vec::new() }
    }

    /// Adds a branch; earlier branches take precedence.
    pub fn branch(
        mut self,
        class: PortClass,
        required: impl IntoIterator<Item = impl Into<String>>,
    ) -> PipelineDag {
        self.branches.push((class, PipelineSpec::new(required)));
        self
    }

    /// Checks the DAG invariant for one (src, dst address, dst port)
    /// triple: the first branch whose class matches the port applies.
    pub fn check(
        &self,
        tf: &TransferFunction<'_>,
        src: NodeId,
        dst: Address,
        dst_port: u16,
    ) -> Result<Result<(), PipelineViolation>, NetError> {
        for (class, spec) in &self.branches {
            if class.matches(dst_port) {
                return spec.check(tf, src, dst);
            }
        }
        Ok(Ok(()))
    }
}

impl Default for PipelineDag {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod dag_tests {
    use super::*;
    use crate::addr::Prefix;
    use crate::fwd::{RoutingConfig, Rule};
    use crate::topology::FailureScenario;

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// src traffic is steered through fw always; http additionally through
    /// the load balancer (fw emissions to port-80-backends go via lb).
    fn branching() -> (Topology, crate::fwd::ForwardingTables, NodeId) {
        let mut t = Topology::new();
        let src = t.add_host("src", addr("8.8.8.8"));
        let web = t.add_host("web", addr("10.0.1.1"));
        let db = t.add_host("db", addr("10.0.2.1"));
        let sw = t.add_switch("sw");
        let fw = t.add_middlebox("fw", "firewall", vec![]);
        let lb = t.add_middlebox("lb", "load-balancer", vec![]);
        for n in [src, web, db, fw, lb] {
            t.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&t);
        let mut ft = rc.build(&t, &FailureScenario::none());
        ft.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), src, fw).with_priority(20));
        // Web-server traffic continues from the firewall to the LB.
        ft.add_rule(sw, Rule::from_neighbor(px("10.0.1.0/24"), fw, lb).with_priority(20));
        (t, ft, src)
    }

    #[test]
    fn http_branch_requires_lb() {
        let (t, ft, src) = branching();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        let dag = PipelineDag::new()
            .branch(PortClass::Ports(vec![80, 443]), ["firewall", "load-balancer"])
            .branch(PortClass::Any, ["firewall"]);
        // Web traffic (http to the web rack) satisfies fw → lb.
        assert_eq!(dag.check(&tf, src, addr("10.0.1.1"), 80).unwrap(), Ok(()));
        // Database traffic only needs the firewall.
        assert_eq!(dag.check(&tf, src, addr("10.0.2.1"), 5432).unwrap(), Ok(()));
        // But http-class traffic aimed at the DB rack bypasses the LB —
        // the invariant flags it.
        let violation = dag.check(&tf, src, addr("10.0.2.1"), 80).unwrap();
        assert!(violation.is_err(), "http to the db rack skips the load balancer");
    }

    #[test]
    fn branch_order_gives_precedence() {
        let (t, ft, src) = branching();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        // With Any first, the port-80 branch is shadowed.
        let dag = PipelineDag::new()
            .branch(PortClass::Any, ["firewall"])
            .branch(PortClass::Ports(vec![80]), ["firewall", "load-balancer"]);
        assert_eq!(dag.check(&tf, src, addr("10.0.2.1"), 80).unwrap(), Ok(()));
    }

    #[test]
    fn empty_dag_constrains_nothing() {
        let (t, ft, src) = branching();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        let dag = PipelineDag::default();
        assert_eq!(dag.check(&tf, src, addr("10.0.1.1"), 80).unwrap(), Ok(()));
    }
}
