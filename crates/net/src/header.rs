//! Concrete packet headers and flow identities.
//!
//! The verifier reasons about *symbolic* headers (bit-vector variables);
//! this concrete form is used by configurations, by the discrete-event
//! simulator, and to replay counterexample traces.

use crate::addr::{Address, Protocol};
use std::fmt;

/// The header fields VMN models, plus the two abstract fields the paper
/// uses for data-isolation invariants:
///
/// * `origin` — the address whose data this packet carries (the paper's
///   `origin(p)`, e.g. derived from `x-http-forwarded-for`); and
/// * `tag` — an opaque payload identity, used to model "complex packet
///   modifications" (encryption, compression) as replacement with a fresh
///   random value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Header {
    pub src: Address,
    pub dst: Address,
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: Protocol,
    pub origin: Address,
    pub tag: u64,
}

impl Header {
    /// A TCP header with given endpoints; origin defaults to the source.
    pub fn tcp(src: Address, src_port: u16, dst: Address, dst_port: u16) -> Header {
        Header { src, dst, src_port, dst_port, proto: Protocol::Tcp, origin: src, tag: 0 }
    }

    /// The header of a reply travelling the reverse direction.
    pub fn reverse(&self) -> Header {
        Header {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
            origin: self.dst,
            tag: self.tag,
        }
    }

    /// Direction-insensitive flow identity (both directions of a
    /// connection map to the same [`FlowId`]). This mirrors the paper's
    /// `flow(p)` function used by e.g. the learning firewall: a reply
    /// belongs to the flow its request established.
    pub fn flow(&self) -> FlowId {
        let a = (self.src, self.src_port);
        let b = (self.dst, self.dst_port);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        FlowId { lo_addr: lo.0, lo_port: lo.1, hi_addr: hi.0, hi_port: hi.1, proto: self.proto }
    }

    /// Whether `self` travels the same flow as `other` (either direction).
    pub fn same_flow(&self, other: &Header) -> bool {
        self.flow() == other.flow()
    }
}

impl fmt::Display for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src, self.src_port, self.dst, self.dst_port, self.proto
        )
    }
}

/// Canonical (direction-normalised) flow identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FlowId {
    lo_addr: Address,
    lo_port: u16,
    hi_addr: Address,
    hi_port: u16,
    proto: Protocol,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    #[test]
    fn reverse_swaps_endpoints() {
        let h = Header::tcp(addr("10.0.0.1"), 4242, addr("10.0.0.2"), 80);
        let r = h.reverse();
        assert_eq!(r.src, addr("10.0.0.2"));
        assert_eq!(r.src_port, 80);
        assert_eq!(r.dst, addr("10.0.0.1"));
        assert_eq!(r.dst_port, 4242);
        assert_eq!(r.reverse(), Header { origin: addr("10.0.0.1"), ..h });
    }

    #[test]
    fn flow_is_direction_insensitive() {
        let h = Header::tcp(addr("10.0.0.1"), 4242, addr("10.0.0.2"), 80);
        assert_eq!(h.flow(), h.reverse().flow());
        assert!(h.same_flow(&h.reverse()));
    }

    #[test]
    fn different_connections_have_different_flows() {
        let h1 = Header::tcp(addr("10.0.0.1"), 4242, addr("10.0.0.2"), 80);
        let h2 = Header::tcp(addr("10.0.0.1"), 4243, addr("10.0.0.2"), 80);
        let h3 = Header::tcp(addr("10.0.0.3"), 4242, addr("10.0.0.2"), 80);
        assert_ne!(h1.flow(), h2.flow());
        assert_ne!(h1.flow(), h3.flow());
    }

    #[test]
    fn udp_and_tcp_flows_differ() {
        let t = Header::tcp(addr("1.1.1.1"), 9, addr("2.2.2.2"), 9);
        let u = Header { proto: Protocol::Udp, ..t };
        assert_ne!(t.flow(), u.flow());
    }
}
