//! Forwarding tables and route computation.
//!
//! Switch rules use longest-prefix match on the destination address,
//! optionally qualified by the previous hop (*ingress-qualified* rules are
//! how operators pipeline traffic through middlebox chains: "traffic
//! arriving from the firewall goes to the load balancer"). Rules carry a
//! priority so that backup next-hops can sit below primaries; a rule whose
//! next hop is dead under the current failure scenario is skipped, which
//! is exactly the paper's "list of backup paths taken in response to
//! failures" (§2.3).

use crate::addr::{Address, Prefix};
use crate::topology::{FailureScenario, Link, NodeId, Topology};
use std::collections::{HashMap, VecDeque};

/// A forwarding rule on a switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rule {
    /// Destination prefix this rule matches.
    pub prefix: Prefix,
    /// If set, the rule only matches packets arriving from this neighbour.
    pub from: Option<NodeId>,
    /// Next hop (switch or terminal).
    pub next: NodeId,
    /// Higher priorities win. Among equal priorities, longer prefixes win,
    /// then ingress-qualified rules beat unqualified ones.
    pub priority: i32,
}

impl Rule {
    pub fn new(prefix: Prefix, next: NodeId) -> Rule {
        Rule { prefix, from: None, next, priority: 0 }
    }

    pub fn from_neighbor(prefix: Prefix, from: NodeId, next: NodeId) -> Rule {
        Rule { prefix, from: Some(from), next, priority: 0 }
    }

    pub fn with_priority(mut self, p: i32) -> Rule {
        self.priority = p;
        self
    }

    fn matches(&self, dst: Address, from: NodeId) -> bool {
        self.prefix.contains(dst) && self.from.is_none_or(|f| f == from)
    }

    /// Sort key: better rules first.
    fn rank(&self) -> (i32, u32, bool) {
        (self.priority, self.prefix.len(), self.from.is_some())
    }
}

/// Per-switch forwarding state for one routing configuration.
#[derive(Clone, Default, Debug)]
pub struct ForwardingTables {
    tables: HashMap<NodeId, Vec<Rule>>,
}

impl ForwardingTables {
    pub fn new() -> ForwardingTables {
        ForwardingTables::default()
    }

    pub fn add_rule(&mut self, switch: NodeId, rule: Rule) {
        self.tables.entry(switch).or_default().push(rule);
    }

    pub fn rules(&self, switch: NodeId) -> &[Rule] {
        self.tables.get(&switch).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn num_rules(&self) -> usize {
        self.tables.values().map(Vec::len).sum()
    }

    /// Removes rules matching a predicate; returns how many were removed.
    /// (Misconfiguration injectors delete rules this way.)
    pub fn remove_rules<F>(&mut self, switch: NodeId, mut pred: F) -> usize
    where
        F: FnMut(&Rule) -> bool,
    {
        let Some(rules) = self.tables.get_mut(&switch) else {
            return 0;
        };
        let before = rules.len();
        rules.retain(|r| !pred(r));
        before - rules.len()
    }

    /// All prefixes referenced anywhere (for header-class computation).
    pub fn prefixes(&self) -> Vec<Prefix> {
        let mut out: Vec<Prefix> = self.tables.values().flatten().map(|r| r.prefix).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Best live next hop at `switch` for a packet to `dst` arriving from
    /// `from`, skipping rules whose next hop is dead under `scenario`.
    pub fn lookup(
        &self,
        topo: &Topology,
        scenario: &FailureScenario,
        switch: NodeId,
        dst: Address,
        from: NodeId,
    ) -> Option<NodeId> {
        let mut candidates: Vec<&Rule> =
            self.rules(switch).iter().filter(|r| r.matches(dst, from)).collect();
        candidates.sort_by_key(|r| std::cmp::Reverse(r.rank()));
        for rule in candidates {
            let next = rule.next;
            if scenario.is_failed(next) {
                continue;
            }
            if scenario.is_link_failed(Link::new(switch, next)) {
                continue;
            }
            // The next hop must actually be adjacent.
            if !topo.neighbors(switch).contains(&next) {
                continue;
            }
            return Some(next);
        }
        None
    }
}

/// Computes shortest-path forwarding tables toward a set of destination
/// prefixes (each owned by a terminal), for a given failure scenario.
///
/// This plays the role of the network's routing protocol: the paper
/// assumes "a function mapping failure conditions to transfer functions";
/// re-running this computation per scenario is that function. Explicit
/// rules (e.g. middlebox pipelining) are layered on top with higher
/// priority by the scenario builders.
#[derive(Clone, Debug, Default)]
pub struct RoutingConfig {
    /// Destination prefixes and the terminal that owns each.
    pub destinations: Vec<(Prefix, NodeId)>,
}

impl RoutingConfig {
    pub fn new() -> RoutingConfig {
        RoutingConfig::default()
    }

    pub fn destination(&mut self, prefix: Prefix, terminal: NodeId) -> &mut Self {
        self.destinations.push((prefix, terminal));
        self
    }

    /// For every host in the topology, adds a host route to it.
    pub fn host_routes(&mut self, topo: &Topology) -> &mut Self {
        for h in topo.hosts() {
            for &a in &topo.node(h).addresses {
                self.destinations.push((Prefix::host(a), h));
            }
        }
        self
    }

    /// Builds shortest-path tables (BFS over live switches) toward every
    /// destination. Rules get priority 0; callers can overlay pipeline
    /// rules with positive priorities and backups with negative ones.
    pub fn build(&self, topo: &Topology, scenario: &FailureScenario) -> ForwardingTables {
        let mut tables = ForwardingTables::new();
        for &(prefix, terminal) in &self.destinations {
            if scenario.is_failed(terminal) {
                continue;
            }
            // Multi-source BFS outwards from the terminal across switches;
            // each switch learns its next hop toward the terminal.
            let mut next_hop: HashMap<NodeId, NodeId> = HashMap::new();
            let mut queue: VecDeque<NodeId> = VecDeque::new();
            for sw in topo.live_neighbors(terminal, scenario) {
                if matches!(topo.node(sw).kind, crate::topology::NodeKind::Switch)
                    && !next_hop.contains_key(&sw)
                {
                    next_hop.insert(sw, terminal);
                    queue.push_back(sw);
                }
            }
            while let Some(sw) = queue.pop_front() {
                for nb in topo.live_neighbors(sw, scenario) {
                    if matches!(topo.node(nb).kind, crate::topology::NodeKind::Switch)
                        && !next_hop.contains_key(&nb)
                    {
                        next_hop.insert(nb, sw);
                        queue.push_back(nb);
                    }
                }
            }
            for (sw, nh) in next_hop {
                tables.add_rule(sw, Rule::new(prefix, nh));
            }
        }
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// h1 - s1 - s2 - h2, with a backup path s1 - s3 - s2.
    fn diamond() -> (Topology, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", addr("10.0.0.1"));
        let h2 = t.add_host("h2", addr("10.0.0.2"));
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let s3 = t.add_switch("s3");
        t.add_link(h1, s1);
        t.add_link(s1, s2);
        t.add_link(s1, s3);
        t.add_link(s3, s2);
        t.add_link(s2, h2);
        (t, h1, h2, s1, s2, s3)
    }

    #[test]
    fn longest_prefix_wins() {
        let (t, _, h2, s1, s2, s3) = diamond();
        let mut ft = ForwardingTables::new();
        ft.add_rule(s1, Rule::new(px("10.0.0.0/8"), s3));
        ft.add_rule(s1, Rule::new(px("10.0.0.2/32"), s2));
        let got = ft.lookup(&t, &FailureScenario::none(), s1, addr("10.0.0.2"), h2);
        assert_eq!(got, Some(s2), "host route beats /8");
        let got = ft.lookup(&t, &FailureScenario::none(), s1, addr("10.0.0.9"), h2);
        assert_eq!(got, Some(s3), "other traffic uses the /8");
    }

    #[test]
    fn priority_beats_prefix_length() {
        let (t, h1, _, s1, s2, s3) = diamond();
        let mut ft = ForwardingTables::new();
        ft.add_rule(s1, Rule::new(px("10.0.0.2/32"), s2));
        ft.add_rule(s1, Rule::new(px("10.0.0.0/8"), s3).with_priority(10));
        let got = ft.lookup(&t, &FailureScenario::none(), s1, addr("10.0.0.2"), h1);
        assert_eq!(got, Some(s3));
    }

    #[test]
    fn ingress_qualified_rules() {
        let (t, h1, h2, s1, s2, s3) = diamond();
        let mut ft = ForwardingTables::new();
        ft.add_rule(s1, Rule::new(px("0.0.0.0/0"), s2));
        ft.add_rule(s1, Rule::from_neighbor(px("0.0.0.0/0"), h1, s3));
        // From h1 the qualified rule wins; from anywhere else the default.
        assert_eq!(ft.lookup(&t, &FailureScenario::none(), s1, addr("10.0.0.2"), h1), Some(s3));
        assert_eq!(ft.lookup(&t, &FailureScenario::none(), s1, addr("10.0.0.2"), h2), Some(s2));
    }

    #[test]
    fn failed_next_hop_falls_back_to_backup() {
        let (t, h1, _, s1, s2, s3) = diamond();
        let mut ft = ForwardingTables::new();
        ft.add_rule(s1, Rule::new(px("0.0.0.0/0"), s2).with_priority(1));
        ft.add_rule(s1, Rule::new(px("0.0.0.0/0"), s3).with_priority(-1));
        let ok = ft.lookup(&t, &FailureScenario::none(), s1, addr("10.0.0.2"), h1);
        assert_eq!(ok, Some(s2));
        let failed = FailureScenario::nodes([s2]);
        let fallback = ft.lookup(&t, &failed, s1, addr("10.0.0.2"), h1);
        assert_eq!(fallback, Some(s3), "backup rule takes over on failure");
    }

    #[test]
    fn no_live_rule_means_drop() {
        let (t, h1, _, s1, s2, _) = diamond();
        let mut ft = ForwardingTables::new();
        ft.add_rule(s1, Rule::new(px("0.0.0.0/0"), s2));
        let failed = FailureScenario::nodes([s2]);
        assert_eq!(ft.lookup(&t, &failed, s1, addr("10.0.0.2"), h1), None);
    }

    #[test]
    fn shortest_path_routing_reaches_hosts() {
        let (t, h1, h2, s1, s2, _) = diamond();
        let mut rc = RoutingConfig::new();
        rc.host_routes(&t);
        let ft = rc.build(&t, &FailureScenario::none());
        // s1 forwards traffic for h2 toward s2 (shortest path), not s3.
        assert_eq!(ft.lookup(&t, &FailureScenario::none(), s1, addr("10.0.0.2"), h1), Some(s2));
        // s2 delivers directly.
        assert_eq!(ft.lookup(&t, &FailureScenario::none(), s2, addr("10.0.0.2"), s1), Some(h2));
        // And the reverse direction works too.
        assert_eq!(ft.lookup(&t, &FailureScenario::none(), s2, addr("10.0.0.1"), h2), Some(s1));
    }

    #[test]
    fn rerouting_after_switch_failure() {
        let (t, h1, _, s1, s2, s3) = diamond();
        let failed = FailureScenario::nodes([s2]);
        let mut rc = RoutingConfig::new();
        rc.host_routes(&t);
        let ft = rc.build(&t, &failed);
        // With s2 dead, h2 is unreachable (only s2 links to it): s1 has no
        // rule for it, or the rule's next hop is dead.
        assert_eq!(ft.lookup(&t, &failed, s1, addr("10.0.0.2"), h1), None);
        // But if s3 also linked to h2 routing would recover — extend:
        let mut t2 = t.clone();
        let h2b = t2.by_name("h2").unwrap();
        t2.add_link(s3, h2b);
        let ft2 = rc.build(&t2, &failed);
        assert_eq!(ft2.lookup(&t2, &failed, s1, addr("10.0.0.2"), h1), Some(s3));
    }

    #[test]
    fn remove_rules_counts() {
        let (_, _, _, s1, s2, _) = diamond();
        let mut ft = ForwardingTables::new();
        ft.add_rule(s1, Rule::new(px("10.0.0.0/8"), s2));
        ft.add_rule(s1, Rule::new(px("10.1.0.0/16"), s2));
        assert_eq!(ft.remove_rules(s1, |r| r.prefix.len() == 16), 1);
        assert_eq!(ft.num_rules(), 1);
    }
}
