//! Addresses, prefixes and protocol identifiers.
//!
//! Addresses are IPv4-style 32-bit values. The verifier treats them as
//! opaque bit-vectors; the dotted-quad notation exists purely for human
//! convenience in configurations and diagnostics.

use std::fmt;
use std::str::FromStr;

/// A 32-bit network address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub u32);

impl Address {
    pub const WIDTH: u32 = 32;

    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    pub fn from_octets(o: [u8; 4]) -> Address {
        Address(u32::from_be_bytes(o))
    }

    /// Whether this address falls inside `prefix`.
    pub fn in_prefix(self, prefix: Prefix) -> bool {
        prefix.contains(self)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error parsing an address or prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl FromStr for Address {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Address, ParseError> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(ParseError(format!("expected dotted quad, got {s:?}")));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p.parse().map_err(|_| ParseError(format!("bad octet {p:?} in {s:?}")))?;
        }
        Ok(Address::from_octets(octets))
    }
}

/// An address prefix (CIDR block).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: Address,
    len: u32,
}

impl Prefix {
    /// Creates a prefix, normalising host bits to zero. `len` must be ≤ 32.
    pub fn new(addr: Address, len: u32) -> Prefix {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix { addr: Address(addr.0 & Self::mask(len)), len }
    }

    /// The all-addresses prefix `0.0.0.0/0`.
    pub fn default_route() -> Prefix {
        Prefix { addr: Address(0), len: 0 }
    }

    /// A host route (`/32`).
    pub fn host(addr: Address) -> Prefix {
        Prefix { addr, len: 32 }
    }

    fn mask(len: u32) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    pub fn addr(self) -> Address {
        self.addr
    }

    /// The prefix length in bits — a measure, not a collection size, so
    /// there is no `is_empty` counterpart (`is_default` covers /0).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u32 {
        self.len
    }

    pub fn is_default(self) -> bool {
        self.len == 0
    }

    pub fn contains(self, a: Address) -> bool {
        a.0 & Self::mask(self.len) == self.addr.0
    }

    /// Whether `other` is entirely inside `self`.
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// First address of the block.
    pub fn first(self) -> Address {
        self.addr
    }

    /// Last address of the block.
    pub fn last(self) -> Address {
        Address(self.addr.0 | !Self::mask(self.len))
    }

    /// The set of prefixes covering `self` minus `inner` (which must be
    /// inside `self`): at most `inner.len() - self.len()` prefixes, one per
    /// bit level. Used to express "everyone in this block except that
    /// subnet" as a compact ACL.
    pub fn complement_within(self, inner: Prefix) -> Vec<Prefix> {
        assert!(self.covers(inner), "{inner} is not inside {self}");
        let mut out = Vec::new();
        let mut cur = self;
        while cur.len < inner.len {
            let child_len = cur.len + 1;
            // The half of `cur` that contains `inner` continues the walk;
            // the sibling half is part of the complement.
            let bit = 1u32 << (32 - child_len);
            let inner_in_upper = inner.addr.0 & bit != 0;
            let sibling_addr = if inner_in_upper { cur.addr.0 } else { cur.addr.0 | bit };
            out.push(Prefix::new(Address(sibling_addr), child_len));
            let next_addr = if inner_in_upper { cur.addr.0 | bit } else { cur.addr.0 };
            cur = Prefix::new(Address(next_addr), child_len);
        }
        out
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Prefix, ParseError> {
        match s.split_once('/') {
            Some((a, l)) => {
                let addr: Address = a.parse()?;
                let len: u32 =
                    l.parse().map_err(|_| ParseError(format!("bad prefix length {l:?}")))?;
                if len > 32 {
                    return Err(ParseError(format!("prefix length {len} out of range")));
                }
                Ok(Prefix::new(addr, len))
            }
            None => Ok(Prefix::host(s.parse()?)),
        }
    }
}

/// Transport protocol of a flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub enum Protocol {
    #[default]
    Tcp,
    Udp,
    /// Anything else; carried as an opaque number.
    Other(u8),
}

impl Protocol {
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    pub fn from_number(n: u8) -> Protocol {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_roundtrip() {
        let a: Address = "192.168.1.77".parse().unwrap();
        assert_eq!(a.to_string(), "192.168.1.77");
        assert_eq!(a.octets(), [192, 168, 1, 77]);
        assert_eq!(Address::from_octets(a.octets()), a);
    }

    #[test]
    fn bad_addresses_rejected() {
        assert!("192.168.1".parse::<Address>().is_err());
        assert!("192.168.1.256".parse::<Address>().is_err());
        assert!("a.b.c.d".parse::<Address>().is_err());
    }

    #[test]
    fn prefix_contains() {
        let p: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains("10.1.2.3".parse().unwrap()));
        assert!(!p.contains("10.2.2.3".parse().unwrap()));
        assert_eq!(p.first().to_string(), "10.1.0.0");
        assert_eq!(p.last().to_string(), "10.1.255.255");
    }

    #[test]
    fn prefix_normalises_host_bits() {
        let p = Prefix::new("10.1.2.3".parse().unwrap(), 16);
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn default_route_contains_everything() {
        let d = Prefix::default_route();
        assert!(d.contains(Address(0)));
        assert!(d.contains(Address(u32::MAX)));
        assert!(d.is_default());
    }

    #[test]
    fn covers_is_reflexive_and_ordered() {
        let wide: Prefix = "10.0.0.0/8".parse().unwrap();
        let narrow: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(wide.covers(narrow));
        assert!(!narrow.covers(wide));
        assert!(wide.covers(wide));
    }

    #[test]
    fn host_prefix_from_plain_address() {
        let p: Prefix = "10.0.0.1".parse().unwrap();
        assert_eq!(p.len(), 32);
        assert!(p.contains("10.0.0.1".parse().unwrap()));
        assert!(!p.contains("10.0.0.2".parse().unwrap()));
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::from_number(17), Protocol::Udp);
        assert_eq!(Protocol::from_number(89), Protocol::Other(89));
    }

    #[test]
    fn complement_within_partitions_the_outer_block() {
        let outer: Prefix = "10.0.0.0/8".parse().unwrap();
        let inner: Prefix = "10.5.0.0/16".parse().unwrap();
        let comp = outer.complement_within(inner);
        assert_eq!(comp.len(), 8, "one sibling per bit level");
        // Every address is in exactly one of {inner} ∪ comp.
        for probe in ["10.5.1.2", "10.4.255.255", "10.128.0.1", "10.0.0.0"] {
            let a: Address = probe.parse().unwrap();
            let in_inner = inner.contains(a) as usize;
            let in_comp = comp.iter().filter(|p| p.contains(a)).count();
            assert_eq!(in_inner + in_comp, 1, "{probe}");
        }
        // Nothing outside the outer block is covered.
        let outside: Address = "11.0.0.1".parse().unwrap();
        assert!(comp.iter().all(|p| !p.contains(outside)));
    }

    #[test]
    fn complement_of_self_is_empty() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(p.complement_within(p).is_empty());
    }
}
