//! Transfer functions: the VeriFlow/HSA-style summary of the static
//! datapath.
//!
//! A transfer function maps a *located packet* — a terminal (host or
//! middlebox) plus a destination address — to the terminal where the
//! static datapath delivers it under a given failure scenario. Walking
//! switch tables hop by hop, it detects static forwarding loops and
//! reports them as [`NetError::ForwardingLoop`] (§3.5 of the paper: VMN
//! raises an exception rather than modelling loops, which also keeps the
//! network axioms decidable).
//!
//! [`HeaderClasses`] implements VeriFlow's equivalence-class trick: split
//! the address space at every prefix boundary appearing in the
//! configuration so that all addresses within a class are forwarded
//! identically. Slicing and policy-equivalence computation enumerate
//! classes instead of addresses.

use crate::addr::{Address, Prefix};
use crate::error::NetError;
use crate::fwd::ForwardingTables;
use crate::topology::{FailureScenario, Link, NodeId, NodeKind, Topology};
use std::collections::HashSet;

/// The transfer function of a network under one failure scenario.
///
/// Borrows the topology and tables; construction is free, so build one per
/// scenario as needed.
#[derive(Clone, Copy)]
pub struct TransferFunction<'a> {
    pub topo: &'a Topology,
    pub tables: &'a ForwardingTables,
    pub scenario: &'a FailureScenario,
}

impl<'a> TransferFunction<'a> {
    pub fn new(
        topo: &'a Topology,
        tables: &'a ForwardingTables,
        scenario: &'a FailureScenario,
    ) -> TransferFunction<'a> {
        TransferFunction { topo, tables, scenario }
    }

    /// Delivers a packet emitted by terminal `from` toward `dst`.
    ///
    /// Returns the terminal where the packet next surfaces (a host or a
    /// middlebox), `None` if the static datapath drops it, or an error if
    /// it loops.
    pub fn deliver(&self, from: NodeId, dst: Address) -> Result<Option<NodeId>, NetError> {
        let node = self.topo.node(from);
        if !node.kind.is_terminal() {
            return Err(NetError::WrongNodeKind { node: from, expected: "terminal" });
        }
        if self.scenario.is_failed(from) {
            return Ok(None);
        }
        // Entry: a directly-linked terminal owning `dst` receives the
        // packet without any switch involvement.
        for nb in self.topo.live_neighbors(from, self.scenario) {
            let n = self.topo.node(nb);
            if n.kind.is_terminal() && n.addresses.contains(&dst) {
                return Ok(Some(nb));
            }
        }
        // Otherwise enter the switching fabric. A terminal with several
        // live switch uplinks uses the first that can forward the packet.
        let mut entry = None;
        for nb in self.topo.live_neighbors(from, self.scenario) {
            if matches!(self.topo.node(nb).kind, NodeKind::Switch) {
                entry = Some(nb);
                if self.tables.lookup(self.topo, self.scenario, nb, dst, from).is_some() {
                    break;
                }
            }
        }
        let Some(entry) = entry else {
            return Ok(None);
        };

        let mut prev = from;
        let mut cur = entry;
        let mut visited: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut path = vec![from, entry];
        loop {
            if !visited.insert((cur, prev)) {
                return Err(NetError::ForwardingLoop { nodes: path });
            }
            let Some(next) = self.tables.lookup(self.topo, self.scenario, cur, dst, prev) else {
                return Ok(None);
            };
            if self.scenario.is_link_failed(Link::new(cur, next)) {
                return Ok(None);
            }
            path.push(next);
            let n = self.topo.node(next);
            if n.kind.is_terminal() {
                return Ok(if self.scenario.is_failed(next) { None } else { Some(next) });
            }
            prev = cur;
            cur = next;
        }
    }

    /// Follows the full middlebox pipeline from `src` toward `dst`,
    /// assuming every middlebox on the way forwards the packet unchanged
    /// (the static-datapath view used for pipeline invariants and policy
    /// equivalence classes).
    ///
    /// Returns the middleboxes traversed in order and the final host (or
    /// `None` if the packet is dropped by the static datapath).
    pub fn terminal_path(
        &self,
        src: NodeId,
        dst: Address,
    ) -> Result<(Vec<NodeId>, Option<NodeId>), NetError> {
        let mut mboxes = Vec::new();
        let mut cur = src;
        // A packet visiting the same middlebox twice on a static path is a
        // pipeline-level loop.
        let mut seen: HashSet<NodeId> = HashSet::new();
        loop {
            match self.deliver(cur, dst)? {
                None => return Ok((mboxes, None)),
                Some(t) => {
                    let node = self.topo.node(t);
                    if node.kind.is_middlebox() {
                        if !seen.insert(t) {
                            let mut nodes = mboxes.clone();
                            nodes.push(t);
                            return Err(NetError::ForwardingLoop { nodes });
                        }
                        mboxes.push(t);
                        cur = t;
                    } else {
                        return Ok((mboxes, Some(t)));
                    }
                }
            }
        }
    }
}

/// VeriFlow-style header equivalence classes over destination addresses.
///
/// Two addresses in the same class match exactly the same set of
/// configuration prefixes, hence are treated identically by every switch
/// (and by prefix-based middlebox ACLs built from the same prefix set).
#[derive(Clone, Debug)]
pub struct HeaderClasses {
    /// Sorted start addresses; class `i` covers `[starts[i], starts[i+1])`.
    starts: Vec<u32>,
}

impl HeaderClasses {
    /// Builds classes from every prefix appearing in the tables plus every
    /// host address in the topology.
    pub fn from_network(topo: &Topology, tables: &ForwardingTables) -> HeaderClasses {
        let mut prefixes = tables.prefixes();
        prefixes.extend(topo.host_prefixes());
        Self::from_prefixes(&prefixes)
    }

    pub fn from_prefixes(prefixes: &[Prefix]) -> HeaderClasses {
        let mut starts: Vec<u32> = vec![0];
        for p in prefixes {
            starts.push(p.first().0);
            if let Some(next) = p.last().0.checked_add(1) {
                starts.push(next);
            }
        }
        starts.sort_unstable();
        starts.dedup();
        HeaderClasses { starts }
    }

    pub fn num_classes(&self) -> usize {
        self.starts.len()
    }

    /// Index of the class containing `a`.
    pub fn class_of(&self, a: Address) -> usize {
        match self.starts.binary_search(&a.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// A representative address for class `i`.
    pub fn representative(&self, i: usize) -> Address {
        Address(self.starts[i])
    }

    /// Iterates over one representative per class.
    pub fn representatives(&self) -> impl Iterator<Item = Address> + '_ {
        self.starts.iter().map(|&s| Address(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fwd::{RoutingConfig, Rule};

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// h1 - s1 - fw - s1 (one-armed firewall) and h2 on s2: traffic from
    /// h1 to h2 is steered through fw.
    fn fw_pipeline() -> (Topology, ForwardingTables, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", addr("10.0.1.1"));
        let h2 = t.add_host("h2", addr("10.0.2.1"));
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let fw = t.add_middlebox("fw", "stateful-firewall", vec![]);
        t.add_link(h1, s1);
        t.add_link(fw, s1);
        t.add_link(s1, s2);
        t.add_link(h2, s2);

        let mut rc = RoutingConfig::new();
        rc.host_routes(&t);
        let mut ft = rc.build(&t, &FailureScenario::none());
        // Pipeline: anything from h1 goes to the firewall first.
        ft.add_rule(s1, Rule::from_neighbor(px("0.0.0.0/0"), h1, fw).with_priority(10));
        (t, ft, h1, h2, fw)
    }

    #[test]
    fn deliver_through_pipeline() {
        let (t, ft, h1, h2, fw) = fw_pipeline();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        // First hop lands on the firewall.
        assert_eq!(tf.deliver(h1, addr("10.0.2.1")).unwrap(), Some(fw));
        // The firewall's re-emission reaches h2.
        assert_eq!(tf.deliver(fw, addr("10.0.2.1")).unwrap(), Some(h2));
        // Reverse direction skips the firewall (no pipeline rule).
        assert_eq!(tf.deliver(h2, addr("10.0.1.1")).unwrap(), Some(h1));
    }

    #[test]
    fn terminal_path_collects_middleboxes() {
        let (t, ft, h1, h2, fw) = fw_pipeline();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        let (mboxes, end) = tf.terminal_path(h1, addr("10.0.2.1")).unwrap();
        assert_eq!(mboxes, vec![fw]);
        assert_eq!(end, Some(h2));
        let (mboxes, end) = tf.terminal_path(h2, addr("10.0.1.1")).unwrap();
        assert!(mboxes.is_empty());
        assert_eq!(end, Some(h1));
    }

    #[test]
    fn failed_middlebox_drops_traffic() {
        let (t, ft, h1, _, fw) = fw_pipeline();
        let failed = FailureScenario::nodes([fw]);
        let tf = TransferFunction::new(&t, &ft, &failed);
        // The pipeline rule's next hop is dead and the base rule takes
        // over, bypassing the firewall — exactly the misconfiguration
        // class ("Misconfigured Redundant Routing") §5.1 studies.
        let (mboxes, end) = tf.terminal_path(h1, addr("10.0.2.1")).unwrap();
        assert!(mboxes.is_empty());
        assert!(end.is_some());
    }

    #[test]
    fn forwarding_loop_detected() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", addr("10.0.0.1"));
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        t.add_link(h1, s1);
        t.add_link(s1, s2);
        let mut ft = ForwardingTables::new();
        // s1 and s2 bounce the packet between each other.
        ft.add_rule(s1, Rule::new(px("0.0.0.0/0"), s2));
        ft.add_rule(s2, Rule::new(px("0.0.0.0/0"), s1));
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        let err = tf.deliver(h1, addr("10.9.9.9")).unwrap_err();
        assert!(matches!(err, NetError::ForwardingLoop { .. }));
    }

    #[test]
    fn direct_link_delivery_without_switch() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", addr("10.0.0.1"));
        let h2 = t.add_host("h2", addr("10.0.0.2"));
        t.add_link(h1, h2);
        let ft = ForwardingTables::new();
        let none = FailureScenario::none();
        let tf = TransferFunction::new(&t, &ft, &none);
        assert_eq!(tf.deliver(h1, addr("10.0.0.2")).unwrap(), Some(h2));
        assert_eq!(tf.deliver(h1, addr("10.0.0.9")).unwrap(), None);
    }

    #[test]
    fn delivery_to_failed_destination_drops() {
        let (t, ft, h1, h2, _) = fw_pipeline();
        let failed = FailureScenario::nodes([h2]);
        let tf = TransferFunction::new(&t, &ft, &failed);
        let (_, end) = tf.terminal_path(h1, addr("10.0.2.1")).unwrap();
        assert_eq!(end, None);
    }

    #[test]
    fn header_classes_split_at_prefix_boundaries() {
        let classes = HeaderClasses::from_prefixes(&[px("10.0.0.0/8"), px("10.1.0.0/16")]);
        // Expect classes: [0, 10.0.0.0), [10.0.0.0, 10.1.0.0),
        // [10.1.0.0, 10.2.0.0), [10.2.0.0, 11.0.0.0), [11.0.0.0, max].
        assert_eq!(classes.num_classes(), 5);
        let c = |s: &str| classes.class_of(addr(s));
        assert_eq!(c("10.0.0.1"), c("10.0.255.255"));
        assert_ne!(c("10.0.0.1"), c("10.1.0.1"));
        assert_eq!(c("10.1.0.1"), c("10.1.200.7"));
        assert_ne!(c("10.1.0.1"), c("10.2.0.0"));
        assert_ne!(c("9.255.255.255"), c("10.0.0.0"));
    }

    #[test]
    fn class_representatives_are_members() {
        let classes = HeaderClasses::from_prefixes(&[px("10.0.0.0/8"), px("192.168.0.0/16")]);
        for i in 0..classes.num_classes() {
            let rep = classes.representative(i);
            assert_eq!(classes.class_of(rep), i);
        }
    }

    #[test]
    fn classes_from_network_include_hosts() {
        let (t, ft, _, _, _) = fw_pipeline();
        let classes = HeaderClasses::from_network(&t, &ft);
        let c1 = classes.class_of(addr("10.0.1.1"));
        let c2 = classes.class_of(addr("10.0.2.1"));
        assert_ne!(c1, c2, "distinct hosts land in distinct classes");
    }
}
