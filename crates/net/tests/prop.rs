//! Property-based tests for the network substrate.

use proptest::prelude::*;
use vmn_net::{
    Address, FailureScenario, ForwardingTables, HeaderClasses, Prefix, RoutingConfig, Rule,
    Topology, TransferFunction,
};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u32..=32).prop_map(|(addr, len)| Prefix::new(Address(addr), len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Prefix containment agrees with the range view.
    #[test]
    fn prefix_contains_matches_range(p in arb_prefix(), a in any::<u32>()) {
        let a = Address(a);
        let in_range = p.first().0 <= a.0 && a.0 <= p.last().0;
        prop_assert_eq!(p.contains(a), in_range);
    }

    /// `covers` is exactly range inclusion.
    #[test]
    fn covers_matches_range_inclusion(p in arb_prefix(), q in arb_prefix()) {
        let range_incl = p.first().0 <= q.first().0 && q.last().0 <= p.last().0;
        prop_assert_eq!(p.covers(q), range_incl);
    }

    /// complement_within partitions the outer block exactly.
    #[test]
    fn complement_partitions(outer_len in 0u32..16, rest in any::<u32>(), extra in 1u32..16, probe in any::<u32>()) {
        let outer = Prefix::new(Address(rest), outer_len);
        let inner_len = (outer_len + extra).min(32);
        let inner = Prefix::new(Address(rest), inner_len);
        let comp = outer.complement_within(inner);
        let a = Address(probe);
        let total = inner.contains(a) as usize
            + comp.iter().filter(|p| p.contains(a)).count();
        if outer.contains(a) {
            prop_assert_eq!(total, 1, "each outer address in exactly one piece");
        } else {
            prop_assert_eq!(total, 0, "outside addresses in none");
        }
    }

    /// Header classes: all addresses in a class match the same prefixes.
    #[test]
    fn header_classes_are_uniform(prefixes in prop::collection::vec(arb_prefix(), 1..8), a in any::<u32>(), b in any::<u32>()) {
        let classes = HeaderClasses::from_prefixes(&prefixes);
        let (a, b) = (Address(a), Address(b));
        if classes.class_of(a) == classes.class_of(b) {
            for p in &prefixes {
                prop_assert_eq!(p.contains(a), p.contains(b),
                    "same class must mean identical prefix membership ({})", p);
            }
        }
    }

    /// Class representatives are members of their own class.
    #[test]
    fn representatives_are_canonical(prefixes in prop::collection::vec(arb_prefix(), 1..8)) {
        let classes = HeaderClasses::from_prefixes(&prefixes);
        for i in 0..classes.num_classes() {
            prop_assert_eq!(classes.class_of(classes.representative(i)), i);
        }
    }
}

// Random tree topologies: shortest-path routing must deliver every
// host-to-host packet (no loops, no blackholes), and killing a node must
// never create a loop.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_routing_delivers(edges in prop::collection::vec(0usize..8, 1..8), kill in 0usize..8) {
        // Build a random tree of switches; attach one host to each.
        let mut topo = Topology::new();
        let n = edges.len() + 1;
        let switches: Vec<_> = (0..n).map(|i| topo.add_switch(format!("s{i}"))).collect();
        for (i, &e) in edges.iter().enumerate() {
            // Connect switch i+1 to one of the earlier switches: a tree.
            let parent = switches[e % (i + 1)];
            topo.add_link(switches[i + 1], parent);
        }
        let hosts: Vec<_> = (0..n)
            .map(|i| {
                let h = topo.add_host(format!("h{i}"), Address(0x0A00_0000 + i as u32));
                topo.add_link(h, switches[i]);
                h
            })
            .collect();
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);

        // Fault-free: every pair must be delivered.
        let none = FailureScenario::none();
        let tables = rc.build(&topo, &none);
        let tf = TransferFunction::new(&topo, &tables, &none);
        for &src in &hosts {
            for &dst in &hosts {
                if src == dst { continue; }
                let addr = topo.node(dst).addresses[0];
                let out = tf.deliver(src, addr);
                prop_assert_eq!(out.unwrap(), Some(dst), "{:?} -> {:?}", src, dst);
            }
        }

        // Kill one switch: remaining deliveries either succeed or drop,
        // but never loop or panic.
        let dead = switches[kill % n];
        let failed = FailureScenario::nodes([dead]);
        let tables2 = rc.build(&topo, &failed);
        let tf2 = TransferFunction::new(&topo, &tables2, &failed);
        for &src in &hosts {
            for &dst in &hosts {
                if src == dst { continue; }
                let addr = topo.node(dst).addresses[0];
                let out = tf2.deliver(src, addr);
                prop_assert!(out.is_ok(), "loop after failure: {:?}", out);
            }
        }
    }

    /// LPM lookup always returns the most specific live match.
    #[test]
    fn lpm_prefers_longer_prefixes(dst in any::<u32>(), lens in prop::collection::vec(0u32..=32, 1..6)) {
        let mut topo = Topology::new();
        let sw = topo.add_switch("sw");
        let src = topo.add_host("src", Address(1));
        topo.add_link(src, sw);
        let dst = Address(dst);
        // One next-hop host per prefix length (all covering dst).
        let mut tables = ForwardingTables::new();
        let mut nexts = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let h = topo.add_host(format!("n{i}"), Address(1000 + i as u32));
            topo.add_link(h, sw);
            tables.add_rule(sw, Rule::new(Prefix::new(dst, len), h));
            nexts.push((len, h));
        }
        let best = nexts.iter().max_by_key(|(len, _)| *len).unwrap().1;
        let none = FailureScenario::none();
        let got = tables.lookup(&topo, &none, sw, dst, src);
        // Ties on length may pick either; check the length is maximal.
        let got_len = nexts.iter().find(|(_, h)| Some(*h) == got).map(|(l, _)| *l);
        let best_len = nexts.iter().find(|(_, h)| *h == best).map(|(l, _)| *l);
        prop_assert_eq!(got_len, best_len);
    }
}
