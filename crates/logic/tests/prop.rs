//! Property-based tests: bounded-trace grounding must agree with the
//! reference trace semantics on every formula and every trace.

use proptest::prelude::*;
use vmn_logic::{Formula, Grounder, LtlBuilder};
use vmn_smt::TermPool;

/// A generatable formula shape over 3 atoms.
#[derive(Clone, Debug)]
enum F {
    Atom(u8),
    Not(Box<F>),
    And(Box<F>, Box<F>),
    Or(Box<F>, Box<F>),
    Implies(Box<F>, Box<F>),
    Once(Box<F>),
    Earlier(Box<F>),
    Historically(Box<F>),
    Prev(Box<F>),
    Since(Box<F>, Box<F>),
}

fn formula() -> impl Strategy<Value = F> {
    let leaf = (0u8..3).prop_map(F::Atom);
    leaf.prop_recursive(5, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| F::Not(Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Implies(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|f| F::Once(Box::new(f))),
            inner.clone().prop_map(|f| F::Earlier(Box::new(f))),
            inner.clone().prop_map(|f| F::Historically(Box::new(f))),
            inner.clone().prop_map(|f| F::Prev(Box::new(f))),
            (inner.clone(), inner).prop_map(|(a, b)| F::Since(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(b: &mut LtlBuilder<u8>, f: &F) -> Formula {
    match f {
        F::Atom(a) => b.atom(*a),
        F::Not(x) => {
            let i = build(b, x);
            b.not(i)
        }
        F::And(x, y) => {
            let (i, j) = (build(b, x), build(b, y));
            b.and(&[i, j])
        }
        F::Or(x, y) => {
            let (i, j) = (build(b, x), build(b, y));
            b.or(&[i, j])
        }
        F::Implies(x, y) => {
            let (i, j) = (build(b, x), build(b, y));
            b.implies(i, j)
        }
        F::Once(x) => {
            let i = build(b, x);
            b.once(i)
        }
        F::Earlier(x) => {
            let i = build(b, x);
            b.earlier(i)
        }
        F::Historically(x) => {
            let i = build(b, x);
            b.historically(i)
        }
        F::Prev(x) => {
            let i = build(b, x);
            b.prev(i)
        }
        F::Since(x, y) => {
            let (i, j) = (build(b, x), build(b, y));
            b.since(i, j)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Grounding with constant atom valuations must constant-fold to
    /// exactly the reference semantics, at every step of the trace.
    #[test]
    fn grounding_agrees_with_eval(f in formula(), trace in prop::collection::vec(0u8..8, 1..7)) {
        let mut b = LtlBuilder::new();
        let formula = build(&mut b, &f);
        let mut pool = TermPool::new();
        let mut g = Grounder::new();
        for t in 0..trace.len() {
            let expect = b.eval(formula, t, &mut |a, s| (trace[s] >> a) & 1 == 1);
            let got = g.ground(&b, &mut pool, formula, t, &mut |pool, a, s| {
                pool.bool_const((trace[s] >> a) & 1 == 1)
            });
            prop_assert_eq!(
                got,
                pool.bool_const(expect),
                "disagreement at step {} for {:?} over {:?}", t, f, trace
            );
        }
    }

    /// `eval_globally` is the conjunction of per-step evaluations.
    #[test]
    fn globally_is_pointwise_conjunction(f in formula(), trace in prop::collection::vec(0u8..8, 1..7)) {
        let mut b = LtlBuilder::new();
        let formula = build(&mut b, &f);
        let all = b.eval_globally(formula, trace.len(), &mut |a, s| (trace[s] >> a) & 1 == 1);
        let pointwise = (0..trace.len())
            .all(|t| b.eval(formula, t, &mut |a, s| (trace[s] >> a) & 1 == 1));
        prop_assert_eq!(all, pointwise);
    }

    /// Temporal tautologies hold on every trace:
    /// `historically φ → once φ` and `earlier φ → once φ`.
    #[test]
    fn temporal_tautologies(f in formula(), trace in prop::collection::vec(0u8..8, 1..7)) {
        let mut b = LtlBuilder::new();
        let x = build(&mut b, &f);
        let hist = b.historically(x);
        let once = b.once(x);
        let earlier = b.earlier(x);
        for t in 0..trace.len() {
            let mut v = |a: &u8, s: usize| (trace[s] >> a) & 1 == 1;
            if b.eval(hist, t, &mut v) {
                prop_assert!(b.eval(once, t, &mut v), "H φ must imply O φ");
            }
            if b.eval(earlier, t, &mut v) {
                prop_assert!(b.eval(once, t, &mut v), "earlier φ must imply O φ");
            }
        }
    }

    /// `since(φ, ψ)` sandwich: it implies `once ψ`, and is implied by
    /// `ψ` holding now.
    #[test]
    fn since_sandwich(fa in formula(), fb in formula(), trace in prop::collection::vec(0u8..8, 1..7)) {
        let mut b = LtlBuilder::new();
        let hold = build(&mut b, &fa);
        let trig = build(&mut b, &fb);
        let since = b.since(hold, trig);
        let once_trig = b.once(trig);
        for t in 0..trace.len() {
            let mut v = |a: &u8, s: usize| (trace[s] >> a) & 1 == 1;
            if b.eval(since, t, &mut v) {
                prop_assert!(b.eval(once_trig, t, &mut v));
            }
            if b.eval(trig, t, &mut v) {
                prop_assert!(b.eval(since, t, &mut v));
            }
        }
    }
}
