//! Linear temporal logic with past operators, and its bounded-trace
//! grounding into quantifier-free SMT terms.
//!
//! VMN (the paper) expresses middlebox and network axioms in a simplified
//! past-LTL — "♦" (an event occurred in the past) and "□" (a property holds
//! at all times) — and converts them to first-order logic "by explicitly
//! quantifying over time". This crate is that conversion, made concrete:
//!
//! * [`LtlBuilder`] interns formulas over an arbitrary atom type `A`
//!   (the VMN encoder uses atoms like *"event e happens at this step"*),
//! * [`LtlBuilder::eval`] gives the reference trace semantics (used by the
//!   concrete simulator and by differential tests),
//! * [`Grounder`] compiles a formula at a given timestep — or `□φ` over a
//!   whole bounded trace — into [`vmn_smt`] terms, with memoisation so the
//!   K-step unrolling stays linear in K.
//!
//! # Trace semantics
//!
//! A trace has steps `0 .. len`. Past operators look backwards:
//!
//! | operator | meaning at step `t` |
//! |---|---|
//! | `once φ` | φ holds at some step `≤ t` (inclusive ♦) |
//! | `earlier φ` | φ holds at some step `< t` (strict ♦) |
//! | `historically φ` | φ holds at every step `≤ t` |
//! | `prev φ` | `t > 0` and φ holds at `t − 1` |
//! | `since(φ, ψ)` | ψ held at some step `≤ t` and φ has held at every later step up to now |

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::hash::Hash;
use vmn_smt::{TermId, TermPool};

/// Handle to an interned formula inside an [`LtlBuilder`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Formula(u32);

impl Formula {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Node<A> {
    True,
    False,
    Atom(A),
    Not(Formula),
    And(Vec<Formula>),
    Or(Vec<Formula>),
    Implies(Formula, Formula),
    Iff(Formula, Formula),
    Once(Formula),
    Earlier(Formula),
    Historically(Formula),
    Prev(Formula),
    Since(Formula, Formula),
}

/// Interning builder for past-LTL formulas over atom type `A`.
pub struct LtlBuilder<A> {
    nodes: Vec<Node<A>>,
    intern: HashMap<Node<A>, Formula>,
}

impl<A: Clone + Eq + Hash> Default for LtlBuilder<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Clone + Eq + Hash> LtlBuilder<A> {
    pub fn new() -> Self {
        LtlBuilder { nodes: Vec::new(), intern: HashMap::new() }
    }

    fn mk(&mut self, n: Node<A>) -> Formula {
        if let Some(&f) = self.intern.get(&n) {
            return f;
        }
        let f = Formula(self.nodes.len() as u32);
        self.intern.insert(n.clone(), f);
        self.nodes.push(n);
        f
    }

    pub fn tru(&mut self) -> Formula {
        self.mk(Node::True)
    }

    pub fn fls(&mut self) -> Formula {
        self.mk(Node::False)
    }

    pub fn atom(&mut self, a: A) -> Formula {
        self.mk(Node::Atom(a))
    }

    pub fn not(&mut self, f: Formula) -> Formula {
        match &self.nodes[f.index()] {
            Node::True => self.fls(),
            Node::False => self.tru(),
            Node::Not(inner) => *inner,
            _ => self.mk(Node::Not(f)),
        }
    }

    pub fn and(&mut self, fs: &[Formula]) -> Formula {
        let mut out = Vec::new();
        for &f in fs {
            match &self.nodes[f.index()] {
                Node::True => {}
                Node::False => return self.fls(),
                _ => out.push(f),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => self.tru(),
            1 => out[0],
            _ => self.mk(Node::And(out)),
        }
    }

    pub fn or(&mut self, fs: &[Formula]) -> Formula {
        let mut out = Vec::new();
        for &f in fs {
            match &self.nodes[f.index()] {
                Node::False => {}
                Node::True => return self.tru(),
                _ => out.push(f),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => self.fls(),
            1 => out[0],
            _ => self.mk(Node::Or(out)),
        }
    }

    pub fn implies(&mut self, a: Formula, b: Formula) -> Formula {
        self.mk(Node::Implies(a, b))
    }

    pub fn iff(&mut self, a: Formula, b: Formula) -> Formula {
        self.mk(Node::Iff(a, b))
    }

    /// ♦φ — φ held at some point in the past, **including now**.
    pub fn once(&mut self, f: Formula) -> Formula {
        self.mk(Node::Once(f))
    }

    /// φ held at some point **strictly** in the past.
    pub fn earlier(&mut self, f: Formula) -> Formula {
        self.mk(Node::Earlier(f))
    }

    /// φ has held at every step so far, including now.
    pub fn historically(&mut self, f: Formula) -> Formula {
        self.mk(Node::Historically(f))
    }

    /// φ held at the previous step (false at step 0).
    pub fn prev(&mut self, f: Formula) -> Formula {
        self.mk(Node::Prev(f))
    }

    /// `since(φ, ψ)`: ψ held at some past-or-present step, and φ has held
    /// at every step after it (up to and including now).
    pub fn since(&mut self, hold: Formula, trigger: Formula) -> Formula {
        self.mk(Node::Since(hold, trigger))
    }

    /// Number of distinct interned formulas (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- reference semantics -------------------------------------------

    /// Evaluates `f` at step `t` of a concrete trace. `valuation(a, s)`
    /// gives the truth of atom `a` at step `s ≤ t`.
    pub fn eval<V>(&self, f: Formula, t: usize, valuation: &mut V) -> bool
    where
        V: FnMut(&A, usize) -> bool,
    {
        match &self.nodes[f.index()] {
            Node::True => true,
            Node::False => false,
            Node::Atom(a) => valuation(a, t),
            Node::Not(x) => !self.eval(*x, t, valuation),
            Node::And(xs) => xs.iter().all(|&x| self.eval(x, t, valuation)),
            Node::Or(xs) => xs.iter().any(|&x| self.eval(x, t, valuation)),
            Node::Implies(a, b) => !self.eval(*a, t, valuation) || self.eval(*b, t, valuation),
            Node::Iff(a, b) => self.eval(*a, t, valuation) == self.eval(*b, t, valuation),
            Node::Once(x) => (0..=t).any(|s| self.eval(*x, s, valuation)),
            Node::Earlier(x) => (0..t).any(|s| self.eval(*x, s, valuation)),
            Node::Historically(x) => (0..=t).all(|s| self.eval(*x, s, valuation)),
            Node::Prev(x) => t > 0 && self.eval(*x, t - 1, valuation),
            Node::Since(hold, trigger) => (0..=t).rev().any(|s| {
                self.eval(*trigger, s, valuation)
                    && ((s + 1)..=t).all(|r| self.eval(*hold, r, valuation))
            }),
        }
    }

    /// Evaluates `□f`: true iff `f` holds at every step of a trace of
    /// length `len`.
    pub fn eval_globally<V>(&self, f: Formula, len: usize, valuation: &mut V) -> bool
    where
        V: FnMut(&A, usize) -> bool,
    {
        (0..len).all(|t| self.eval(f, t, valuation))
    }
}

/// Compiles formulas into [`vmn_smt`] terms over a bounded trace.
///
/// The grounder memoises on `(formula, step)`, and compiles the recursive
/// definitions of the past operators (`once φ @ t = φ@t ∨ once φ @ t−1`)
/// so the unrolled encoding is linear in trace length rather than
/// quadratic.
pub struct Grounder<A> {
    memo: HashMap<(Formula, usize), TermId>,
    _marker: std::marker::PhantomData<A>,
}

impl<A: Clone + Eq + Hash> Default for Grounder<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Clone + Eq + Hash> Grounder<A> {
    pub fn new() -> Self {
        Grounder { memo: HashMap::new(), _marker: std::marker::PhantomData }
    }

    /// Grounds `f` at step `t`. `atom(pool, a, s)` must produce the SMT
    /// term for atom `a` at step `s` (and should be deterministic —
    /// memoisation assumes repeated calls agree).
    pub fn ground<V>(
        &mut self,
        builder: &LtlBuilder<A>,
        pool: &mut TermPool,
        f: Formula,
        t: usize,
        atom: &mut V,
    ) -> TermId
    where
        V: FnMut(&mut TermPool, &A, usize) -> TermId,
    {
        if let Some(&cached) = self.memo.get(&(f, t)) {
            return cached;
        }
        let out = match builder.nodes[f.index()].clone() {
            Node::True => pool.tru(),
            Node::False => pool.fls(),
            Node::Atom(a) => atom(pool, &a, t),
            Node::Not(x) => {
                let gx = self.ground(builder, pool, x, t, atom);
                pool.not(gx)
            }
            Node::And(xs) => {
                let gs: Vec<TermId> =
                    xs.iter().map(|&x| self.ground(builder, pool, x, t, atom)).collect();
                pool.and(&gs)
            }
            Node::Or(xs) => {
                let gs: Vec<TermId> =
                    xs.iter().map(|&x| self.ground(builder, pool, x, t, atom)).collect();
                pool.or(&gs)
            }
            Node::Implies(a, b) => {
                let ga = self.ground(builder, pool, a, t, atom);
                let gb = self.ground(builder, pool, b, t, atom);
                pool.implies(ga, gb)
            }
            Node::Iff(a, b) => {
                let ga = self.ground(builder, pool, a, t, atom);
                let gb = self.ground(builder, pool, b, t, atom);
                pool.iff(ga, gb)
            }
            Node::Once(x) => {
                let now = self.ground(builder, pool, x, t, atom);
                if t == 0 {
                    now
                } else {
                    let before = self.ground(builder, pool, f, t - 1, atom);
                    pool.or(&[now, before])
                }
            }
            Node::Earlier(x) => {
                if t == 0 {
                    pool.fls()
                } else {
                    let prev_now = self.ground(builder, pool, x, t - 1, atom);
                    let before = self.ground(builder, pool, f, t - 1, atom);
                    pool.or(&[prev_now, before])
                }
            }
            Node::Historically(x) => {
                let now = self.ground(builder, pool, x, t, atom);
                if t == 0 {
                    now
                } else {
                    let before = self.ground(builder, pool, f, t - 1, atom);
                    pool.and(&[now, before])
                }
            }
            Node::Prev(x) => {
                if t == 0 {
                    pool.fls()
                } else {
                    self.ground(builder, pool, x, t - 1, atom)
                }
            }
            Node::Since(hold, trigger) => {
                let trig_now = self.ground(builder, pool, trigger, t, atom);
                if t == 0 {
                    trig_now
                } else {
                    let hold_now = self.ground(builder, pool, hold, t, atom);
                    let before = self.ground(builder, pool, f, t - 1, atom);
                    let cont = pool.and(&[hold_now, before]);
                    pool.or(&[trig_now, cont])
                }
            }
        };
        self.memo.insert((f, t), out);
        out
    }

    /// Grounds `□f` over a trace of length `len` (conjunction over all
    /// steps). A zero-length trace yields `true`.
    pub fn ground_globally<V>(
        &mut self,
        builder: &LtlBuilder<A>,
        pool: &mut TermPool,
        f: Formula,
        len: usize,
        atom: &mut V,
    ) -> TermId
    where
        V: FnMut(&mut TermPool, &A, usize) -> TermId,
    {
        let parts: Vec<TermId> = (0..len).map(|t| self.ground(builder, pool, f, t, atom)).collect();
        pool.and(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type B = LtlBuilder<u8>;

    /// Trace = per-step bitmask of true atoms (atom `a` true at `t` iff bit
    /// `a` of `trace[t]` is set).
    fn val(trace: &[u8]) -> impl FnMut(&u8, usize) -> bool + '_ {
        move |a, t| (trace[t] >> a) & 1 == 1
    }

    #[test]
    fn once_is_inclusive() {
        let mut b = B::new();
        let a = b.atom(0);
        let f = b.once(a);
        let trace = [0b0, 0b1, 0b0];
        assert!(!b.eval(f, 0, &mut val(&trace)));
        assert!(b.eval(f, 1, &mut val(&trace)), "includes the current step");
        assert!(b.eval(f, 2, &mut val(&trace)), "persists");
    }

    #[test]
    fn earlier_is_strict() {
        let mut b = B::new();
        let a = b.atom(0);
        let f = b.earlier(a);
        let trace = [0b0, 0b1, 0b0];
        assert!(!b.eval(f, 0, &mut val(&trace)));
        assert!(!b.eval(f, 1, &mut val(&trace)), "excludes the current step");
        assert!(b.eval(f, 2, &mut val(&trace)));
    }

    #[test]
    fn historically_fails_after_gap() {
        let mut b = B::new();
        let a = b.atom(0);
        let f = b.historically(a);
        let trace = [0b1, 0b0, 0b1];
        assert!(b.eval(f, 0, &mut val(&trace)));
        assert!(!b.eval(f, 1, &mut val(&trace)));
        assert!(!b.eval(f, 2, &mut val(&trace)), "a single gap is fatal");
    }

    #[test]
    fn prev_basics() {
        let mut b = B::new();
        let a = b.atom(0);
        let f = b.prev(a);
        let trace = [0b1, 0b0];
        assert!(!b.eval(f, 0, &mut val(&trace)), "no previous step at t=0");
        assert!(b.eval(f, 1, &mut val(&trace)));
    }

    #[test]
    fn since_semantics() {
        let mut b = B::new();
        let hold = b.atom(0);
        let trig = b.atom(1);
        let f = b.since(hold, trig);
        // t:        0     1     2     3
        // hold:     -     yes   yes   no
        // trigger:  yes   -     -     -
        let trace = [0b10, 0b01, 0b01, 0b00];
        assert!(b.eval(f, 0, &mut val(&trace)), "trigger now");
        assert!(b.eval(f, 1, &mut val(&trace)));
        assert!(b.eval(f, 2, &mut val(&trace)));
        assert!(!b.eval(f, 3, &mut val(&trace)), "hold broke");
    }

    #[test]
    fn interning_dedupes() {
        let mut b = B::new();
        let a1 = b.atom(3);
        let a2 = b.atom(3);
        assert_eq!(a1, a2);
        let o1 = b.once(a1);
        let o2 = b.once(a2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn grounding_on_constant_atoms_folds_to_constants() {
        let mut b = B::new();
        let a = b.atom(0);
        let c = b.atom(1);
        let oa = b.once(a);
        let f = b.implies(oa, c);
        let trace: [u8; 4] = [0b00, 0b01, 0b10, 0b11];
        let mut pool = TermPool::new();
        let mut g = Grounder::new();
        for t in 0..trace.len() {
            let expect = b.eval(f, t, &mut val(&trace));
            let got = g.ground(&b, &mut pool, f, t, &mut |pool, atom, s| {
                pool.bool_const((trace[s] >> atom) & 1 == 1)
            });
            assert_eq!(got, pool.bool_const(expect), "step {t}");
        }
    }

    #[test]
    fn ground_globally_is_conjunction_over_steps() {
        let mut b = B::new();
        let a = b.atom(0);
        let f = b.once(a);
        let mut pool = TermPool::new();
        let mut g = Grounder::new();
        // Atom true only at step 2 of 3: □(once a) is false (fails at 0).
        let trace = [0b0, 0b0, 0b1];
        let got = g.ground_globally(&b, &mut pool, f, 3, &mut |pool, atom, s| {
            pool.bool_const((trace[s] >> atom) & 1 == 1)
        });
        assert_eq!(got, pool.fls());
        // Atom true at step 0: □(once a) holds.
        let trace2 = [0b1, 0b0, 0b0];
        let mut g2 = Grounder::new();
        let got2 = g2.ground_globally(&b, &mut pool, f, 3, &mut |pool, atom, s| {
            pool.bool_const((trace2[s] >> atom) & 1 == 1)
        });
        assert_eq!(got2, pool.tru());
    }

    #[test]
    fn grounding_with_free_atoms_matches_reference_expansion() {
        // Ground once/earlier/historically with *symbolic* atoms and check
        // agreement with a hand-expanded reference via the solver:
        // ¬(grounded ↔ reference) must be UNSAT.
        use vmn_smt::{Context, SatResult};
        let mut b = B::new();
        let a = b.atom(0);
        let once = b.once(a);
        let earlier = b.earlier(a);
        let hist = b.historically(a);
        let len = 4;

        for (f, name) in [(once, "once"), (earlier, "earlier"), (hist, "hist")] {
            for t in 0..len {
                let mut ctx = Context::new();
                let vars: Vec<TermId> = (0..len)
                    .map(|s| ctx.fresh_const(format!("a@{s}"), vmn_smt::Sort::Bool))
                    .collect();
                let mut g = Grounder::new();
                let grounded = {
                    let vars = vars.clone();
                    g.ground(&b, ctx.pool_mut(), f, t, &mut |_, _, s| vars[s])
                };
                let reference = match name {
                    "once" => ctx.or(&vars[0..=t]),
                    "earlier" => ctx.or(&vars[0..t]),
                    "hist" => ctx.and(&vars[0..=t]),
                    _ => unreachable!(),
                };
                let equiv = ctx.iff(grounded, reference);
                let neq = ctx.not(equiv);
                ctx.assert(neq);
                assert_eq!(ctx.check(), SatResult::Unsat, "{name} at t={t}");
            }
        }
    }

    #[test]
    fn memoisation_keeps_unrolling_linear() {
        let mut b = B::new();
        let a = b.atom(0);
        let f = b.once(a);
        let mut pool = TermPool::new();
        let mut g = Grounder::new();
        let len = 64;
        let vars: Vec<TermId> =
            (0..len).map(|t| pool.var(format!("a@{t}"), vmn_smt::Sort::Bool)).collect();
        let before = pool.len();
        g.ground(&b, &mut pool, f, len - 1, &mut |_, _, s| vars[s]);
        let created = pool.len() - before;
        // Linear: one OR node per step (plus small constant), not O(len²).
        assert!(created <= 2 * len + 4, "created {created} terms for {len} steps");
    }
}
