//! The trusted certificate checker for VMN verdicts.
//!
//! The verification engine (SAT core, bit-blaster, EUF, session pool,
//! clustered sweeps) is a large, aggressively optimised codebase — exactly
//! the kind of code where a silently wrong UNSAT answer is plausible. This
//! crate is the other half of the certificate discipline: the *untrusted*
//! engine emits a small proof for every verdict, and this *trusted* checker
//! — plain data types, unit propagation and clause evaluation, no solver
//! code, no dependencies — validates it. "Checker accepts" then implies the
//! verdict without trusting the engine.
//!
//! A certificate bundle ([`CertificateBundle`]) holds one proof per solver
//! session ([`SessionProof`]): an append-only DRAT-style step log (clause
//! additions with LRAT-style antecedent hints, clause deletions) plus the
//! per-check verdict records ([`CheckRecord`]) taken against prefixes of
//! that log. Because the log is append-only and every record carries its
//! prefix length, per-scenario certificates are reconstructible from a
//! pooled session's shared log — the engine's session reuse does not
//! degrade checkability.
//!
//! Literals use the DIMACS convention: variable `v` (0-based in the engine)
//! appears as the integer `v + 1`, negated literals are negative, `0` never
//! appears.
//!
//! Soundness argument, in brief:
//! * *Inputs* and *axioms* are the problem statement: input clauses come
//!   from the engine's CNF encoding, axiom clauses are theory lemmas
//!   (EUF/bit-blast facts) the engine asserts as valid. The checker trusts
//!   both as the formula under test — it checks the *reasoning*, not the
//!   encoding (the encoding is cross-validated separately by replaying SAT
//!   witnesses on the concrete simulator).
//! * *Derived* clauses must pass reverse unit propagation (RUP) against the
//!   live clause database: assuming every literal of the clause false must
//!   yield a conflict by unit propagation alone. RUP-derivable clauses are
//!   logically implied, so the database only ever grows by consequences.
//! * *Deletions* only remove clauses, which can never make an
//!   unsatisfiable set satisfiable; root (level-zero) facts derived before
//!   a deletion are consequences of the formula and are soundly retained.
//! * An *UNSAT under assumptions A* record is valid iff the clause
//!   `{¬a | a ∈ A}` is RUP at the record's log prefix — i.e. the formula
//!   implies the assumptions cannot hold together.
//! * A *SAT* record is valid iff the recorded full assignment satisfies
//!   every live clause of the prefix plus every assumption.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;

/// A literal in DIMACS convention: non-zero, `|lit| - 1` is the engine's
/// variable index, negative means negated.
pub type PLit = i32;

/// Identifier of a clause in the proof log. Ids are assigned by the engine,
/// start at 1 and increase by 1 per added clause (inputs, axioms and
/// derived clauses share one counter).
pub type ClauseId = u32;

/// One line of the DRAT-style proof log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// An original clause of the engine's CNF encoding, as handed to the
    /// SAT core (pre-normalisation). Part of the trusted problem statement.
    Input { id: ClauseId, lits: Vec<PLit> },
    /// A theory lemma (EUF conflict explanation or similar) asserted by
    /// the engine as theory-valid. Trusted like an input clause; logging
    /// it makes the checker's clause set self-contained.
    Axiom { id: ClauseId, lits: Vec<PLit> },
    /// A learnt clause. Must be RUP against the live database; `hints`
    /// lists antecedent clause ids (the conflict clause and the reasons
    /// resolved during analysis) so checking is near-linear in practice.
    Derived { id: ClauseId, lits: Vec<PLit>, hints: Vec<ClauseId> },
    /// Deletion of a previously added clause.
    Delete { id: ClauseId },
}

impl ProofStep {
    /// The id this step adds, if it adds a clause.
    pub fn added_id(&self) -> Option<ClauseId> {
        match self {
            ProofStep::Input { id, .. }
            | ProofStep::Axiom { id, .. }
            | ProofStep::Derived { id, .. } => Some(*id),
            ProofStep::Delete { .. } => None,
        }
    }
}

/// Claimed outcome of one solver check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Unsatisfiable under the record's assumptions.
    Unsat,
    /// Satisfiable; `model` is the full assignment (indexed by variable,
    /// `model[v]` is the value of DIMACS variable `v + 1`).
    Sat { model: Vec<bool> },
}

/// One solver check (one `check_assuming` call) against a prefix of the
/// session's step log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckRecord {
    /// Number of leading steps of [`SessionProof::steps`] in force when
    /// this check concluded (learnt clauses derived *during* the check are
    /// part of the prefix).
    pub steps_upto: usize,
    /// Assumption literals of the check.
    pub assumptions: Vec<PLit>,
    pub outcome: Outcome,
}

/// The proof emitted by one solver session: a shared append-only step log
/// plus every check taken against it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionProof {
    /// Total number of variables ever allocated in the session; every
    /// literal in the log satisfies `1 <= |lit| <= num_vars`.
    pub num_vars: u32,
    pub steps: Vec<ProofStep>,
    /// Check records ordered by `steps_upto` (the engine appends them in
    /// solve order, which is prefix order).
    pub checks: Vec<CheckRecord>,
}

/// A certificate for one verification report: one proof per solver session
/// the engine touched while producing the verdict.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CertificateBundle {
    /// Human-readable provenance (invariant name, engine configuration).
    pub label: String,
    pub sessions: Vec<SessionProof>,
}

/// Why a certificate was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A clause id was added twice.
    DuplicateId { session: usize, id: ClauseId },
    /// A deletion referenced an id that is not live.
    UnknownClause { session: usize, id: ClauseId },
    /// A literal was zero or referenced a variable `>= num_vars`.
    BadLiteral { session: usize, lit: PLit },
    /// A derived clause failed reverse unit propagation.
    NotRup { session: usize, id: ClauseId },
    /// An UNSAT record's negated-assumptions clause is not derivable by
    /// unit propagation from the record's log prefix.
    UnsatNotDerivable { session: usize, check: usize },
    /// A SAT record's model fails to satisfy the live clauses or the
    /// assumptions.
    BadModel { session: usize, check: usize, detail: String },
    /// Structurally malformed certificate (unordered records, prefix out
    /// of range, unparsable text, ...).
    Malformed(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::DuplicateId { session, id } => {
                write!(f, "session {session}: clause id {id} added twice")
            }
            CheckError::UnknownClause { session, id } => {
                write!(f, "session {session}: deletion of unknown clause {id}")
            }
            CheckError::BadLiteral { session, lit } => {
                write!(f, "session {session}: literal {lit} out of range")
            }
            CheckError::NotRup { session, id } => {
                write!(f, "session {session}: derived clause {id} is not RUP")
            }
            CheckError::UnsatNotDerivable { session, check } => {
                write!(f, "session {session}: UNSAT record {check} not derivable")
            }
            CheckError::BadModel { session, check, detail } => {
                write!(f, "session {session}: SAT record {check}: {detail}")
            }
            CheckError::Malformed(m) => write!(f, "malformed certificate: {m}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// What a successfully checked bundle established.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BundleSummary {
    pub sessions: usize,
    pub steps: usize,
    /// Total validated check records.
    pub checks: usize,
    pub sat_checks: usize,
    pub unsat_checks: usize,
}

// ---------------------------------------------------------------------------
// The checker proper.
// ---------------------------------------------------------------------------

const TRUE: i8 = 1;
const FALSE: i8 = -1;
const UNDEF: i8 = 0;

/// Clause database + monotone root assignment for one session.
///
/// The root assignment is the unit-propagation fixpoint of everything
/// added so far; it is *not* retracted on deletions (root facts are
/// consequences of the formula — standard forward-DRAT-checker behaviour,
/// and exactly mirrors the engine, whose level-zero trail also survives
/// learnt-clause GC).
struct Checker {
    session: usize,
    num_vars: usize,
    /// Root assignment overlaid with the temporary literals of an
    /// in-flight RUP check (which are tracked on `trail` and undone).
    assign: Vec<i8>,
    trail: Vec<PLit>,
    clauses: HashMap<ClauseId, Vec<PLit>>,
    /// Occurrence lists: literal -> ids of (possibly deleted) clauses
    /// containing it. Deleted ids are skipped lazily.
    occurs: HashMap<PLit, Vec<ClauseId>>,
    /// Set once unit propagation at the root derives a conflict: the
    /// formula itself (under no assumptions) is unsatisfiable from here on.
    root_conflict: bool,
}

impl Checker {
    fn new(session: usize, num_vars: u32) -> Checker {
        Checker {
            session,
            num_vars: num_vars as usize,
            assign: vec![UNDEF; num_vars as usize],
            trail: Vec::new(),
            clauses: HashMap::new(),
            occurs: HashMap::new(),
            root_conflict: false,
        }
    }

    fn check_lit(&self, l: PLit) -> Result<(), CheckError> {
        let v = l.unsigned_abs() as usize;
        if l == 0 || v > self.num_vars {
            return Err(CheckError::BadLiteral { session: self.session, lit: l });
        }
        Ok(())
    }

    #[inline]
    fn val(&self, l: PLit) -> i8 {
        let a = self.assign[(l.unsigned_abs() - 1) as usize];
        if l > 0 {
            a
        } else {
            -a
        }
    }

    #[inline]
    fn set_true(&mut self, l: PLit, temp: bool) {
        self.assign[(l.unsigned_abs() - 1) as usize] = if l > 0 { TRUE } else { FALSE };
        if temp {
            self.trail.push(l);
        }
    }

    fn undo_trail(&mut self) {
        while let Some(l) = self.trail.pop() {
            self.assign[(l.unsigned_abs() - 1) as usize] = UNDEF;
        }
    }

    /// Unit-propagates to fixpoint from the given newly true literals
    /// (which must already be set). Returns `true` on conflict. With
    /// `temp`, every assignment is recorded on the trail for undoing.
    fn propagate(&mut self, mut queue: Vec<PLit>, temp: bool) -> bool {
        let mut qi = 0;
        while qi < queue.len() {
            let l = queue[qi];
            qi += 1;
            // Clauses containing ¬l may have become unit or false.
            let Some(ids) = self.occurs.get(&-l) else { continue };
            let ids = ids.clone();
            for cid in ids {
                let Some(cl) = self.clauses.get(&cid) else { continue };
                let mut unassigned: Option<PLit> = None;
                let mut open = 0usize;
                let mut satisfied = false;
                for &q in cl {
                    match self.val(q) {
                        TRUE => {
                            satisfied = true;
                            break;
                        }
                        UNDEF if unassigned != Some(q) => {
                            open += 1;
                            unassigned = Some(q);
                        }
                        _ => {}
                    }
                }
                if satisfied || open > 1 {
                    continue;
                }
                match unassigned {
                    None => return true,
                    Some(u) => {
                        self.set_true(u, temp);
                        queue.push(u);
                    }
                }
            }
        }
        false
    }

    /// Adds a clause to the database and advances the root assignment.
    fn add_clause(&mut self, id: ClauseId, lits: &[PLit]) -> Result<(), CheckError> {
        if self.clauses.contains_key(&id) {
            return Err(CheckError::DuplicateId { session: self.session, id });
        }
        for &l in lits {
            self.check_lit(l)?;
        }
        for &l in lits {
            let entry = self.occurs.entry(l).or_default();
            if entry.last() != Some(&id) {
                entry.push(id);
            }
        }
        self.clauses.insert(id, lits.to_vec());
        // Root propagation: a clause unit (or empty) under the root
        // assignment commits its consequence permanently.
        let mut unassigned: Option<PLit> = None;
        let mut open = 0usize;
        let mut satisfied = false;
        for &q in lits {
            match self.val(q) {
                TRUE => {
                    satisfied = true;
                    break;
                }
                UNDEF if unassigned != Some(q) => {
                    open += 1;
                    unassigned = Some(q);
                }
                _ => {}
            }
        }
        if satisfied || open > 1 {
            return Ok(());
        }
        // A tautology (q and ¬q both unassigned) counts both as open; a
        // clause reaching here is genuinely empty or unit at the root.
        match unassigned {
            None => self.root_conflict = true,
            Some(u) => {
                self.set_true(u, false);
                if self.propagate(vec![u], false) {
                    self.root_conflict = true;
                }
            }
        }
        Ok(())
    }

    fn delete_clause(&mut self, id: ClauseId) -> Result<(), CheckError> {
        match self.clauses.remove(&id) {
            Some(_) => Ok(()),
            None => Err(CheckError::UnknownClause { session: self.session, id }),
        }
    }

    /// Reverse unit propagation: is the clause a UP-consequence of the
    /// live database? Tries hinted antecedents first (a few passes over
    /// the hint list), then falls back to full propagation.
    fn rup(&mut self, lits: &[PLit], hints: &[ClauseId]) -> bool {
        if self.root_conflict {
            return true;
        }
        // Assume every literal of the clause false.
        for &l in lits {
            match self.val(l) {
                // A literal already true at the root: the clause is a
                // direct consequence of root facts.
                TRUE => {
                    self.undo_trail();
                    return true;
                }
                FALSE => {}
                _ => self.set_true(-l, true),
            }
        }
        // Hinted phase: iterate the hint clauses to fixpoint. Hints are
        // advisory — if they do not close the proof we fall back below.
        let mut changed = true;
        while changed {
            changed = false;
            for &h in hints {
                let Some(cl) = self.clauses.get(&h) else { continue };
                let mut unassigned: Option<PLit> = None;
                let mut open = 0usize;
                let mut satisfied = false;
                for &q in cl {
                    match self.val(q) {
                        TRUE => {
                            satisfied = true;
                            break;
                        }
                        UNDEF if unassigned != Some(q) => {
                            open += 1;
                            unassigned = Some(q);
                        }
                        _ => {}
                    }
                }
                if satisfied || open > 1 {
                    continue;
                }
                match unassigned {
                    None => {
                        self.undo_trail();
                        return true;
                    }
                    Some(u) => {
                        self.set_true(u, true);
                        changed = true;
                    }
                }
            }
        }
        // Fallback: full unit propagation over the whole database from
        // everything assumed or derived so far.
        let queue: Vec<PLit> = self.trail.clone();
        let conflict = self.propagate(queue, true);
        self.undo_trail();
        conflict
    }

    fn apply_step(&mut self, step: &ProofStep) -> Result<(), CheckError> {
        match step {
            ProofStep::Input { id, lits } | ProofStep::Axiom { id, lits } => {
                self.add_clause(*id, lits)
            }
            ProofStep::Derived { id, lits, hints } => {
                for &l in lits {
                    self.check_lit(l)?;
                }
                if !self.rup(lits, hints) {
                    return Err(CheckError::NotRup { session: self.session, id: *id });
                }
                self.add_clause(*id, lits)
            }
            ProofStep::Delete { id } => self.delete_clause(*id),
        }
    }

    fn apply_check(&mut self, idx: usize, rec: &CheckRecord) -> Result<(), CheckError> {
        for &a in &rec.assumptions {
            self.check_lit(a)?;
        }
        match &rec.outcome {
            Outcome::Unsat => {
                // The verdict claims the formula implies ¬(a1 ∧ ... ∧ ak),
                // i.e. the clause {¬a1, ..., ¬ak} — which must be RUP.
                let negated: Vec<PLit> = rec.assumptions.iter().map(|&a| -a).collect();
                if !self.rup(&negated, &[]) {
                    return Err(CheckError::UnsatNotDerivable {
                        session: self.session,
                        check: idx,
                    });
                }
                Ok(())
            }
            Outcome::Sat { model } => {
                let bad = |detail: String| CheckError::BadModel {
                    session: self.session,
                    check: idx,
                    detail,
                };
                if self.root_conflict {
                    return Err(bad("claimed SAT after a root-level conflict".into()));
                }
                let sat_lit = |l: PLit| -> Result<bool, CheckError> {
                    let v = (l.unsigned_abs() - 1) as usize;
                    let b = *model
                        .get(v)
                        .ok_or_else(|| bad(format!("model does not assign variable {}", v + 1)))?;
                    Ok(if l > 0 { b } else { !b })
                };
                for (&id, cl) in &self.clauses {
                    let mut ok = false;
                    for &q in cl {
                        if sat_lit(q)? {
                            ok = true;
                            break;
                        }
                    }
                    if !ok {
                        return Err(bad(format!("model falsifies clause {id}")));
                    }
                }
                for &a in &rec.assumptions {
                    if !sat_lit(a)? {
                        return Err(bad(format!("model falsifies assumption {a}")));
                    }
                }
                Ok(())
            }
        }
    }
}

/// Validates one session proof. On success every check record's claimed
/// outcome is established by the log.
pub fn check_session(session_idx: usize, s: &SessionProof) -> Result<(), CheckError> {
    let mut ck = Checker::new(session_idx, s.num_vars);
    let mut next_check = 0usize;
    let mut last_upto = 0usize;
    for (i, rec) in s.checks.iter().enumerate() {
        if rec.steps_upto > s.steps.len() {
            return Err(CheckError::Malformed(format!(
                "session {session_idx}: check {i} references log prefix {} of {}",
                rec.steps_upto,
                s.steps.len()
            )));
        }
        if rec.steps_upto < last_upto {
            return Err(CheckError::Malformed(format!(
                "session {session_idx}: check records out of prefix order at {i}"
            )));
        }
        last_upto = rec.steps_upto;
    }
    for (i, step) in s.steps.iter().enumerate() {
        while next_check < s.checks.len() && s.checks[next_check].steps_upto == i {
            ck.apply_check(next_check, &s.checks[next_check])?;
            next_check += 1;
        }
        ck.apply_step(step)?;
    }
    while next_check < s.checks.len() {
        ck.apply_check(next_check, &s.checks[next_check])?;
        next_check += 1;
    }
    Ok(())
}

/// Validates a whole certificate bundle.
pub fn check_bundle(bundle: &CertificateBundle) -> Result<BundleSummary, CheckError> {
    let mut summary = BundleSummary { sessions: bundle.sessions.len(), ..Default::default() };
    for (i, s) in bundle.sessions.iter().enumerate() {
        check_session(i, s)?;
        summary.steps += s.steps.len();
        summary.checks += s.checks.len();
        for rec in &s.checks {
            match rec.outcome {
                Outcome::Unsat => summary.unsat_checks += 1,
                Outcome::Sat { .. } => summary.sat_checks += 1,
            }
        }
    }
    Ok(summary)
}

// ---------------------------------------------------------------------------
// Text serialisation of certificate bundles.
// ---------------------------------------------------------------------------

/// File header identifying a serialised certificate bundle set; sniff the
/// first line against this to distinguish certificate files from network
/// descriptions.
pub const CERT_HEADER: &str = "vmn-cert v1";

/// Serialises bundles to the line-based text format:
///
/// ```text
/// vmn-cert v1
/// bundle <label>
/// session <num_vars>
/// i <lit>* 0            input clause       (ids implicit, 1, 2, ...)
/// a <lit>* 0            axiom clause
/// l <lit>* 0 <hint>*    derived clause with antecedent hints
/// d <id>                deletion
/// u <lit>* 0            UNSAT check under the given assumptions
/// m <lit>* 0 <bits>     SAT check: assumptions, then the model as 0/1
/// end
/// ```
///
/// Clause ids are implicit in the file (sequential from 1 per session, in
/// add order) — which is exactly how the engine assigns them.
pub fn write_bundles(bundles: &[CertificateBundle]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{CERT_HEADER}");
    for b in bundles {
        let _ = writeln!(out, "bundle {}", b.label);
        for s in &b.sessions {
            let _ = writeln!(out, "session {}", s.num_vars);
            let mut emitted = Vec::new();
            let mut next_check = 0usize;
            let emit_checks_upto = |upto: usize, out: &mut String, next_check: &mut usize| {
                while *next_check < s.checks.len() && s.checks[*next_check].steps_upto == upto {
                    let rec = &s.checks[*next_check];
                    *next_check += 1;
                    match &rec.outcome {
                        Outcome::Unsat => {
                            let _ = write!(out, "u");
                            for &a in &rec.assumptions {
                                let _ = write!(out, " {a}");
                            }
                            let _ = writeln!(out, " 0");
                        }
                        Outcome::Sat { model } => {
                            let _ = write!(out, "m");
                            for &a in &rec.assumptions {
                                let _ = write!(out, " {a}");
                            }
                            let _ = write!(out, " 0 ");
                            for &b in model {
                                out.push(if b { '1' } else { '0' });
                            }
                            let _ = writeln!(out);
                        }
                    }
                }
            };
            for (i, step) in s.steps.iter().enumerate() {
                emit_checks_upto(i, &mut out, &mut next_check);
                match step {
                    ProofStep::Input { id, lits } | ProofStep::Axiom { id, lits } => {
                        emitted.push(*id);
                        let tag = if matches!(step, ProofStep::Input { .. }) { 'i' } else { 'a' };
                        let _ = write!(out, "{tag}");
                        for &l in lits {
                            let _ = write!(out, " {l}");
                        }
                        let _ = writeln!(out, " 0");
                    }
                    ProofStep::Derived { id, lits, hints } => {
                        emitted.push(*id);
                        let _ = write!(out, "l");
                        for &l in lits {
                            let _ = write!(out, " {l}");
                        }
                        let _ = write!(out, " 0");
                        for &h in hints {
                            let _ = write!(out, " {h}");
                        }
                        let _ = writeln!(out);
                    }
                    ProofStep::Delete { id } => {
                        let _ = writeln!(out, "d {id}");
                    }
                }
            }
            emit_checks_upto(s.steps.len(), &mut out, &mut next_check);
            debug_assert!(
                emitted.iter().enumerate().all(|(i, &id)| id as usize == i + 1),
                "engine clause ids are sequential from 1"
            );
        }
        let _ = writeln!(out, "end");
    }
    out
}

/// Parses the output of [`write_bundles`].
pub fn parse_bundles(text: &str) -> Result<Vec<CertificateBundle>, CheckError> {
    let mal = |m: String| CheckError::Malformed(m);
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == CERT_HEADER => {}
        _ => return Err(mal(format!("missing '{CERT_HEADER}' header"))),
    }
    let mut bundles: Vec<CertificateBundle> = Vec::new();
    let mut open_bundle: Option<CertificateBundle> = None;
    // Ids are implicit in the file: sequential from 1 per session.
    let mut next_add_id: ClauseId = 1;

    fn parse_lits<'a>(
        toks: &mut impl Iterator<Item = &'a str>,
        ln: usize,
    ) -> Result<Vec<PLit>, CheckError> {
        let mut lits = Vec::new();
        for t in toks.by_ref() {
            let v: PLit = t
                .parse()
                .map_err(|_| CheckError::Malformed(format!("line {ln}: bad literal '{t}'")))?;
            if v == 0 {
                return Ok(lits);
            }
            lits.push(v);
        }
        Err(CheckError::Malformed(format!("line {ln}: missing terminating 0")))
    }

    for (idx, raw) in lines {
        let ln = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_ascii_whitespace();
        let tag = toks.next().expect("non-empty line");
        match tag {
            "bundle" => {
                if let Some(b) = open_bundle.take() {
                    bundles.push(b);
                }
                let label = line.strip_prefix("bundle").unwrap_or("").trim().to_string();
                open_bundle = Some(CertificateBundle { label, sessions: Vec::new() });
            }
            "end" => {
                let b = open_bundle
                    .take()
                    .ok_or_else(|| mal(format!("line {ln}: 'end' outside a bundle")))?;
                bundles.push(b);
            }
            "session" => {
                let b = open_bundle
                    .as_mut()
                    .ok_or_else(|| mal(format!("line {ln}: 'session' outside a bundle")))?;
                let nv: u32 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| mal(format!("line {ln}: bad session header")))?;
                b.sessions.push(SessionProof { num_vars: nv, ..Default::default() });
                next_add_id = 1;
            }
            "i" | "a" | "l" | "d" | "u" | "m" => {
                let s = open_bundle
                    .as_mut()
                    .and_then(|b| b.sessions.last_mut())
                    .ok_or_else(|| mal(format!("line {ln}: step outside a session")))?;
                match tag {
                    "i" => {
                        let lits = parse_lits(&mut toks, ln)?;
                        s.steps.push(ProofStep::Input { id: next_add_id, lits });
                        next_add_id += 1;
                    }
                    "a" => {
                        let lits = parse_lits(&mut toks, ln)?;
                        s.steps.push(ProofStep::Axiom { id: next_add_id, lits });
                        next_add_id += 1;
                    }
                    "l" => {
                        let lits = parse_lits(&mut toks, ln)?;
                        let mut hints = Vec::new();
                        for t in toks.by_ref() {
                            let h: ClauseId = t.parse().map_err(|_| {
                                CheckError::Malformed(format!("line {ln}: bad hint '{t}'"))
                            })?;
                            hints.push(h);
                        }
                        s.steps.push(ProofStep::Derived { id: next_add_id, lits, hints });
                        next_add_id += 1;
                    }
                    "d" => {
                        let id: ClauseId = toks
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| mal(format!("line {ln}: bad deletion")))?;
                        s.steps.push(ProofStep::Delete { id });
                    }
                    "u" => {
                        let assumptions = parse_lits(&mut toks, ln)?;
                        s.checks.push(CheckRecord {
                            steps_upto: s.steps.len(),
                            assumptions,
                            outcome: Outcome::Unsat,
                        });
                    }
                    "m" => {
                        let assumptions = parse_lits(&mut toks, ln)?;
                        let bits = toks.next().unwrap_or("");
                        let mut model = Vec::with_capacity(bits.len());
                        for c in bits.chars() {
                            match c {
                                '0' => model.push(false),
                                '1' => model.push(true),
                                _ => {
                                    return Err(mal(format!("line {ln}: bad model bit '{c}'")));
                                }
                            }
                        }
                        s.checks.push(CheckRecord {
                            steps_upto: s.steps.len(),
                            assumptions,
                            outcome: Outcome::Sat { model },
                        });
                    }
                    _ => unreachable!(),
                }
            }
            other => return Err(mal(format!("line {ln}: unknown tag '{other}'"))),
        }
    }
    if open_bundle.is_some() {
        return Err(mal("unterminated bundle (missing 'end')".into()));
    }
    Ok(bundles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(num_vars: u32, steps: Vec<ProofStep>, checks: Vec<CheckRecord>) -> SessionProof {
        SessionProof { num_vars, steps, checks }
    }

    fn input(id: ClauseId, lits: &[PLit]) -> ProofStep {
        ProofStep::Input { id, lits: lits.to_vec() }
    }

    fn derived(id: ClauseId, lits: &[PLit], hints: &[ClauseId]) -> ProofStep {
        ProofStep::Derived { id, lits: lits.to_vec(), hints: hints.to_vec() }
    }

    #[test]
    fn unsat_by_root_conflict() {
        // x, ¬x: adding both propagates to a root conflict; an UNSAT check
        // with no assumptions is then derivable.
        let s = session(
            1,
            vec![input(1, &[1]), input(2, &[-1])],
            vec![CheckRecord { steps_upto: 2, assumptions: vec![], outcome: Outcome::Unsat }],
        );
        check_session(0, &s).unwrap();
    }

    #[test]
    fn unsat_under_assumptions_by_rup() {
        // (¬a ∨ x) ∧ (¬a ∨ ¬x): UNSAT under assumption a, SAT otherwise.
        let s = session(
            2,
            vec![input(1, &[-1, 2]), input(2, &[-1, -2])],
            vec![CheckRecord { steps_upto: 2, assumptions: vec![1], outcome: Outcome::Unsat }],
        );
        check_session(0, &s).unwrap();
    }

    #[test]
    fn derived_clause_rup_with_hints() {
        // From (a ∨ b), (¬b ∨ c), (¬a ∨ c): derive c.
        let s = session(
            3,
            vec![
                input(1, &[1, 2]),
                input(2, &[-2, 3]),
                input(3, &[-1, 3]),
                derived(4, &[3], &[1, 2, 3]),
            ],
            vec![],
        );
        check_session(0, &s).unwrap();
    }

    #[test]
    fn derived_clause_rup_without_hints_falls_back() {
        let s = session(
            3,
            vec![input(1, &[1, 2]), input(2, &[-2, 3]), input(3, &[-1, 3]), derived(4, &[3], &[])],
            vec![],
        );
        check_session(0, &s).unwrap();
    }

    #[test]
    fn non_rup_derivation_rejected() {
        // c does not follow from (a ∨ b) alone.
        let s = session(3, vec![input(1, &[1, 2]), derived(2, &[3], &[1])], vec![]);
        assert_eq!(check_session(0, &s), Err(CheckError::NotRup { session: 0, id: 2 }));
    }

    #[test]
    fn deletion_does_not_retract_root_facts() {
        // Unit x propagated at the root, then its clause deleted: a later
        // UNSAT under assumption ¬x must still be derivable.
        let s = session(
            1,
            vec![input(1, &[1]), ProofStep::Delete { id: 1 }],
            vec![CheckRecord { steps_upto: 2, assumptions: vec![-1], outcome: Outcome::Unsat }],
        );
        check_session(0, &s).unwrap();
    }

    #[test]
    fn deleting_unknown_clause_rejected() {
        let s = session(1, vec![ProofStep::Delete { id: 7 }], vec![]);
        assert_eq!(check_session(0, &s), Err(CheckError::UnknownClause { session: 0, id: 7 }));
    }

    #[test]
    fn sat_model_checked_against_live_clauses() {
        let good = session(
            2,
            vec![input(1, &[1, 2]), input(2, &[-1, 2])],
            vec![CheckRecord {
                steps_upto: 2,
                assumptions: vec![1],
                outcome: Outcome::Sat { model: vec![true, true] },
            }],
        );
        check_session(0, &good).unwrap();

        let bad = session(
            2,
            vec![input(1, &[1, 2]), input(2, &[-1, 2])],
            vec![CheckRecord {
                steps_upto: 2,
                assumptions: vec![1],
                outcome: Outcome::Sat { model: vec![true, false] },
            }],
        );
        assert!(matches!(check_session(0, &bad), Err(CheckError::BadModel { .. })));
    }

    #[test]
    fn sat_model_must_satisfy_assumptions() {
        let s = session(
            2,
            vec![input(1, &[1, 2])],
            vec![CheckRecord {
                steps_upto: 1,
                assumptions: vec![2],
                outcome: Outcome::Sat { model: vec![true, false] },
            }],
        );
        assert!(matches!(check_session(0, &s), Err(CheckError::BadModel { .. })));
    }

    #[test]
    fn check_prefix_semantics() {
        // The UNSAT check sits *before* the clause that would make the
        // formula unsatisfiable — it must be judged against its prefix
        // only, and rejected.
        let s = session(
            1,
            vec![input(1, &[1]), input(2, &[-1])],
            vec![CheckRecord { steps_upto: 1, assumptions: vec![], outcome: Outcome::Unsat }],
        );
        assert_eq!(
            check_session(0, &s),
            Err(CheckError::UnsatNotDerivable { session: 0, check: 0 })
        );
        // Same formula, SAT at the prefix with x = true: accepted.
        let s2 = session(
            1,
            vec![input(1, &[1]), input(2, &[-1])],
            vec![CheckRecord {
                steps_upto: 1,
                assumptions: vec![],
                outcome: Outcome::Sat { model: vec![true] },
            }],
        );
        check_session(0, &s2).unwrap();
    }

    #[test]
    fn bad_literal_rejected() {
        let s = session(1, vec![input(1, &[2])], vec![]);
        assert_eq!(check_session(0, &s), Err(CheckError::BadLiteral { session: 0, lit: 2 }));
    }

    #[test]
    fn text_roundtrip() {
        let bundle = CertificateBundle {
            label: "node-isolation(a0, b0) [clustered]".into(),
            sessions: vec![session(
                3,
                vec![
                    input(1, &[1, 2]),
                    ProofStep::Axiom { id: 2, lits: vec![-2, 3] },
                    derived(3, &[1, 3], &[1, 2]),
                    ProofStep::Delete { id: 3 },
                ],
                vec![
                    CheckRecord {
                        steps_upto: 3,
                        assumptions: vec![-3],
                        outcome: Outcome::Sat { model: vec![true, false, false] },
                    },
                    CheckRecord {
                        steps_upto: 4,
                        assumptions: vec![-1, -3],
                        outcome: Outcome::Unsat,
                    },
                ],
            )],
        };
        let text = write_bundles(std::slice::from_ref(&bundle));
        let parsed = parse_bundles(&text).unwrap();
        assert_eq!(parsed, vec![bundle]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_bundles("not a cert").is_err());
        assert!(parse_bundles("vmn-cert v1\nbundle x\nsession 1\ni 1").is_err());
        assert!(parse_bundles("vmn-cert v1\nbundle x\nsession 1\nq 1 0\nend").is_err());
        assert!(parse_bundles("vmn-cert v1\nbundle x").is_err());
    }

    #[test]
    fn mutated_proof_rejected() {
        // A valid session: derive unit 3 from three clauses, then UNSAT
        // under ¬3.
        let good = session(
            3,
            vec![
                input(1, &[1, 2]),
                input(2, &[-2, 3]),
                input(3, &[-1, 3]),
                derived(4, &[3], &[1, 2, 3]),
            ],
            vec![CheckRecord { steps_upto: 4, assumptions: vec![-3], outcome: Outcome::Unsat }],
        );
        check_session(0, &good).unwrap();

        // Mutation 1: flip a literal in the derived clause.
        let mut m1 = good.clone();
        m1.steps[3] = derived(4, &[-3], &[1, 2, 3]);
        assert!(check_session(0, &m1).is_err());

        // Mutation 2: drop an input clause the derivation needs.
        let mut m2 = good.clone();
        m2.steps.remove(2);
        assert!(check_session(0, &m2).is_err());

        // Mutation 3: claim UNSAT under an assumption nothing refutes.
        let mut m3 = good.clone();
        m3.checks[0].assumptions = vec![1];
        assert!(check_session(0, &m3).is_err());
    }
}
