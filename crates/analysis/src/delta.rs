//! Delta footprints: which parts of a network a configuration change
//! can affect.
//!
//! A long-lived verifier (the `vmn_serve` daemon) applies *deltas* —
//! model swaps, topology edits, invariant and scenario changes — and
//! wants to re-check only what a delta can actually touch. The sound
//! coarse answer is a [`TouchSet`]: either nothing observable changed
//! (invariant/scenario bookkeeping only), a named set of nodes changed
//! *behaviour* while the topology and routing stayed fixed (a middlebox
//! model swap), or the change was structural (links, nodes, routes) and
//! anything derived from the topology — header classes, delivery
//! functions, node ids — may have moved.
//!
//! The engine consumes a [`TouchSet`] to retire warmed solver sessions
//! (`vmn::Verifier::swap_network`): a session's skeleton encodes the
//! models and delivery behaviour of its node set, so it survives exactly
//! the deltas whose touch set misses that node set. The daemon
//! additionally uses it as a cache prefilter: a cached verdict whose
//! slice is disjoint from a [`TouchSet::Nodes`] footprint cannot have
//! changed (provided the policy partition is stable — the daemon checks
//! that separately and escalates to [`TouchSet::Everything`] when it
//! moved).

use std::collections::BTreeSet;

/// The footprint of one applied delta, by node *name* (names are stable
/// across re-materialisations of a symbolic network description; node
/// ids are not once nodes can be removed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TouchSet {
    /// No observable behaviour changed: invariants or failure scenarios
    /// were added/retired, but every node forwards and filters exactly
    /// as before. Warmed sessions stay valid (scenarios and invariants
    /// register lazily on sessions behind activation literals).
    Nothing,
    /// The named nodes changed behaviour (a middlebox model swap) while
    /// the topology, links and forwarding tables stayed fixed. Sessions
    /// and cached verdicts whose node sets avoid these names are
    /// untouched.
    Nodes(BTreeSet<String>),
    /// Structural change: topology, links or routing moved, so delivery
    /// behaviour (and node identity) may have changed anywhere.
    Everything,
}

impl TouchSet {
    /// Footprint of a single node's behaviour change.
    pub fn node(name: impl Into<String>) -> TouchSet {
        TouchSet::Nodes(BTreeSet::from([name.into()]))
    }

    pub fn is_nothing(&self) -> bool {
        matches!(self, TouchSet::Nothing)
    }

    /// Folds two footprints (for batched deltas): the union is the
    /// smallest touch set covering both.
    pub fn union(self, other: TouchSet) -> TouchSet {
        match (self, other) {
            (TouchSet::Everything, _) | (_, TouchSet::Everything) => TouchSet::Everything,
            (TouchSet::Nothing, x) | (x, TouchSet::Nothing) => x,
            (TouchSet::Nodes(mut a), TouchSet::Nodes(b)) => {
                a.extend(b);
                TouchSet::Nodes(a)
            }
        }
    }

    /// Whether a slice/cluster with the given member names intersects
    /// this footprint — i.e. whether its sessions and cached verdicts
    /// must be considered stale.
    pub fn touches<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> bool {
        match self {
            TouchSet::Nothing => false,
            TouchSet::Everything => true,
            TouchSet::Nodes(touched) => names.into_iter().any(|n| touched.contains(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_is_ordered_nothing_nodes_everything() {
        let a = TouchSet::node("fw1");
        let b = TouchSet::node("fw2");
        assert_eq!(TouchSet::Nothing.union(a.clone()), a);
        assert_eq!(a.clone().union(TouchSet::Everything), TouchSet::Everything);
        let ab = a.union(b);
        assert_eq!(ab, TouchSet::Nodes(BTreeSet::from(["fw1".into(), "fw2".into()])));
    }

    #[test]
    fn touches_checks_intersection() {
        let t = TouchSet::node("fw1");
        assert!(t.touches(["h1", "fw1"]));
        assert!(!t.touches(["h1", "fw2"]));
        assert!(!TouchSet::Nothing.touches(["fw1"]));
        assert!(TouchSet::Everything.touches(std::iter::empty::<&str>()));
        assert!(!t.touches(std::iter::empty::<&str>()));
    }
}
