//! Boundary contracts for modular verification.
//!
//! A contract at a cut edge is a [`WindowSet`]: an over-approximation
//! of the `(src, dst)` address windows that packets crossing the edge
//! can occupy. A module's *ingress assumption* is the window set on an
//! incoming cut edge; its *egress guarantee* the set on an outgoing
//! one. Composition holds when every egress guarantee implies the
//! neighbouring module's ingress assumption over the same edge.
//!
//! Window sets are deliberately coarse — pairs of CIDR prefixes plus a
//! "anything" top element — so that synthesis (a fixpoint in the `vmn`
//! crate) terminates over a finite vocabulary: intersecting two
//! prefixes yields the longer one or nothing, so every window is built
//! from prefixes already mentioned in the configuration.

use std::collections::BTreeSet;
use std::fmt;
use vmn_net::{Address, Prefix};

/// The intersection of two prefixes: the longer one if nested, nothing
/// if disjoint.
pub fn prefix_intersect(a: Prefix, b: Prefix) -> Option<Prefix> {
    if a.covers(b) {
        Some(b)
    } else if b.covers(a) {
        Some(a)
    } else {
        None
    }
}

/// One `(src ∈ p, dst ∈ q)` window.
pub type Window = (Prefix, Prefix);

/// A set of header windows, with an explicit top element.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowSet {
    /// Top: every header admitted. When set, `windows` is empty.
    pub any: bool,
    pub windows: BTreeSet<Window>,
}

impl WindowSet {
    /// The empty set: no header crosses.
    pub fn empty() -> WindowSet {
        WindowSet::default()
    }

    /// The top element: any header may cross.
    pub fn any() -> WindowSet {
        WindowSet { any: true, windows: BTreeSet::new() }
    }

    /// A single window.
    pub fn window(src: Prefix, dst: Prefix) -> WindowSet {
        let mut ws = WindowSet::empty();
        ws.insert((src, dst));
        ws
    }

    pub fn is_empty(&self) -> bool {
        !self.any && self.windows.is_empty()
    }

    pub fn is_any(&self) -> bool {
        self.any
    }

    /// Inserts a window, dropping it if an existing window subsumes it
    /// and evicting windows it subsumes. Returns whether the set grew.
    pub fn insert(&mut self, w: Window) -> bool {
        if self.any {
            return false;
        }
        if self.windows.iter().any(|(s, d)| s.covers(w.0) && d.covers(w.1)) {
            return false;
        }
        self.windows.retain(|(s, d)| !(w.0.covers(*s) && w.1.covers(*d)));
        self.windows.insert(w);
        true
    }

    /// Unions `other` into `self`; returns whether `self` grew.
    pub fn union_with(&mut self, other: &WindowSet) -> bool {
        if self.any {
            return false;
        }
        if other.any {
            self.any = true;
            self.windows.clear();
            return true;
        }
        let mut grew = false;
        for w in &other.windows {
            grew |= self.insert(*w);
        }
        grew
    }

    /// The pairwise intersection with another set.
    pub fn intersect(&self, other: &WindowSet) -> WindowSet {
        if self.any {
            return other.clone();
        }
        if other.any {
            return self.clone();
        }
        let mut out = WindowSet::empty();
        for (s1, d1) in &self.windows {
            for (s2, d2) in &other.windows {
                if let (Some(s), Some(d)) = (prefix_intersect(*s1, *s2), prefix_intersect(*d1, *d2))
                {
                    out.insert((s, d));
                }
            }
        }
        out
    }

    /// Narrows every window's destination side by a prefix.
    pub fn narrow_dst(&self, dst: Prefix) -> WindowSet {
        self.intersect(&WindowSet::window(Prefix::default_route(), dst))
    }

    /// Whether a concrete `(src, dst)` header falls in some window.
    pub fn admits(&self, src: Address, dst: Address) -> bool {
        self.any || self.windows.iter().any(|(s, d)| s.contains(src) && d.contains(dst))
    }

    /// Whether any window intersects `(src ∈ p, dst ∈ q)`.
    pub fn admits_window(&self, src: Prefix, dst: Prefix) -> bool {
        self.any
            || self.windows.iter().any(|(s, d)| {
                prefix_intersect(*s, src).is_some() && prefix_intersect(*d, dst).is_some()
            })
    }

    /// Conservative implication: every window of `self` is covered by
    /// some single window of `other`. Sound (true really means ⊆) but
    /// incomplete — a window covered only by a union of `other`'s
    /// windows is reported as not implied.
    pub fn implies(&self, other: &WindowSet) -> bool {
        if other.any {
            return true;
        }
        if self.any {
            return false;
        }
        self.windows
            .iter()
            .all(|(s, d)| other.windows.iter().any(|(os, od)| os.covers(*s) && od.covers(*d)))
    }

    /// The set mirrored: every `(s, d)` window becomes `(d, s)`. Used to
    /// close state-keyed guards under direction reversal (a learning
    /// firewall forwards replies to flows it admitted forward).
    pub fn reversed(&self) -> WindowSet {
        if self.any {
            return WindowSet::any();
        }
        WindowSet { any: false, windows: self.windows.iter().map(|&(s, d)| (d, s)).collect() }
    }
}

impl fmt::Display for WindowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.any {
            return f.write_str("any");
        }
        if self.windows.is_empty() {
            return f.write_str("none");
        }
        for (i, (s, d)) in self.windows.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{s}->{d}")?;
        }
        Ok(())
    }
}

/// A contract on one directed cut edge `from -> to`: the windows that
/// packets crossing the edge in that direction may occupy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortContract {
    pub from: String,
    pub to: String,
    pub windows: WindowSet,
}

/// The contracts a module exposes: assumptions on incoming cut edges,
/// guarantees on outgoing ones.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModuleContract {
    pub module: String,
    /// Assumed windows on each incoming cut edge `(outside, inside)`.
    pub ingress: Vec<PortContract>,
    /// Guaranteed windows on each outgoing cut edge `(inside, outside)`.
    pub egress: Vec<PortContract>,
}

/// Why a contract set is rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContractError {
    /// A declared contract under-approximates what the network can
    /// actually send across the edge: the synthesized window `window`
    /// crosses `from -> to` but the declared contract does not admit it.
    Unsound { from: String, to: String, window: String },
    /// An egress guarantee does not imply the neighbouring ingress
    /// assumption on the same edge.
    Compose { from: String, to: String },
    /// A contract names an edge that is not a boundary edge of the
    /// partition.
    UnknownEdge { from: String, to: String },
    /// A contract names a module the partition does not have.
    UnknownModule { module: String },
    /// Two declared contracts name the same module. Rejected outright:
    /// the composition check skips contract pairs with equal module
    /// names, so a shared name would silently skip the egress-implies-
    /// ingress check between the two.
    DuplicateModule { module: String },
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::Unsound { from, to, window } => write!(
                f,
                "contract on {from} -> {to} is unsound: the network can send {window} \
                 across the edge but the contract does not admit it"
            ),
            ContractError::Compose { from, to } => write!(
                f,
                "contracts do not compose on {from} -> {to}: the egress guarantee does \
                 not imply the neighbour's ingress assumption"
            ),
            ContractError::UnknownEdge { from, to } => {
                write!(f, "contract names {from} -> {to}, which is not a boundary edge")
            }
            ContractError::UnknownModule { module } => {
                write!(f, "contract names module {module:?}, which is not in the partition")
            }
            ContractError::DuplicateModule { module } => {
                write!(f, "two contracts declared for module {module:?}")
            }
        }
    }
}

impl std::error::Error for ContractError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    #[test]
    fn insert_subsumption() {
        let mut ws = WindowSet::empty();
        assert!(ws.insert((px("10.1.0.0/16"), px("10.2.0.0/16"))));
        // Subsumed by the existing window: no growth.
        assert!(!ws.insert((px("10.1.5.0/24"), px("10.2.0.0/16"))));
        // A wider window evicts the narrower one.
        assert!(ws.insert((px("10.0.0.0/8"), px("10.0.0.0/8"))));
        assert_eq!(ws.windows.len(), 1);
    }

    #[test]
    fn admits_and_any() {
        let ws = WindowSet::window(px("10.1.0.0/16"), px("10.2.0.0/16"));
        assert!(ws.admits(addr("10.1.3.4"), addr("10.2.0.1")));
        assert!(!ws.admits(addr("10.3.0.1"), addr("10.2.0.1")));
        assert!(WindowSet::any().admits(addr("1.2.3.4"), addr("5.6.7.8")));
        assert!(!WindowSet::empty().admits(addr("1.2.3.4"), addr("5.6.7.8")));
    }

    #[test]
    fn intersect_narrows() {
        let a = WindowSet::window(px("10.0.0.0/8"), px("0.0.0.0/0"));
        let b = WindowSet::window(px("10.1.0.0/16"), px("10.2.0.0/16"));
        let i = a.intersect(&b);
        assert!(i.admits(addr("10.1.0.1"), addr("10.2.0.1")));
        assert!(!i.admits(addr("10.9.0.1"), addr("10.2.0.1")));
        // Disjoint prefixes intersect to nothing.
        let c = WindowSet::window(px("192.168.0.0/16"), px("0.0.0.0/0"));
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn implies_is_cover_based() {
        let narrow = WindowSet::window(px("10.1.0.0/16"), px("10.2.0.0/16"));
        let wide = WindowSet::window(px("10.0.0.0/8"), px("10.0.0.0/8"));
        assert!(narrow.implies(&wide));
        assert!(!wide.implies(&narrow));
        assert!(wide.implies(&WindowSet::any()));
        assert!(!WindowSet::any().implies(&wide));
        assert!(WindowSet::empty().implies(&narrow));
    }

    #[test]
    fn reversed_swaps_sides() {
        let ws = WindowSet::window(px("10.1.0.0/16"), px("10.2.0.0/16"));
        let r = ws.reversed();
        assert!(r.admits(addr("10.2.0.1"), addr("10.1.0.1")));
        assert!(!r.admits(addr("10.1.0.1"), addr("10.2.0.1")));
    }

    #[test]
    fn prefix_intersection_cases() {
        assert_eq!(prefix_intersect(px("10.0.0.0/8"), px("10.1.0.0/16")), Some(px("10.1.0.0/16")));
        assert_eq!(prefix_intersect(px("10.1.0.0/16"), px("10.0.0.0/8")), Some(px("10.1.0.0/16")));
        assert_eq!(prefix_intersect(px("10.1.0.0/16"), px("10.2.0.0/16")), None);
    }
}
