//! Static analysis over the [`MboxModel`] IR.
//!
//! The paper's scaling machinery — slicing (§4.1), symmetry, the BDD
//! fast path — is sound only if each middlebox really is flow-parallel /
//! origin-agnostic / stateless as claimed. Those facts used to be
//! hand-declared builder annotations plus a string-matching classifier
//! in the BDD backend that nothing cross-checked. This crate *derives*
//! them from the model IR and treats the declarations as lintable
//! claims:
//!
//! * **Footprints** — which header fields each rule reads (guards, state
//!   keys, recorded packets) and writes (rewrites, replays).
//! * **State liveness** — which state sets are read, written, or dead.
//! * **Inferred statefulness** — whether any rule arm reads live state
//!   or mutates state; a read of a state set no rule ever inserts into
//!   is vacuous (history-defined state starts empty) and does not make
//!   the model stateful.
//! * **Inferred parallelism** — every state access keyed by the
//!   packet's own flow ⇒ [`Parallelism::FlowParallel`]; shared-key state
//!   whose keys are all source-independent (`Origin` / `DstAddr`) ⇒
//!   [`Parallelism::OriginAgnostic`]; anything else ⇒
//!   [`Parallelism::General`].
//! * **Dead rule arms** under first-match semantics — structurally by
//!   constant propagation (arms after an always-true guard, empty-ACL
//!   matches, vacuous state reads), and precisely via a pluggable
//!   [`ArmDecider`] (the `vmn_bdd` crate implements it with its ROBDD
//!   engine; this crate stays solver-free so the BDD backend can depend
//!   on it without a cycle).
//!
//! [`bdd_support`] is the single source of truth for the BDD backend's
//! eligibility classification (`vmn_bdd::dataplane::statefulness` is a
//! thin delegate), and [`annotation_error`] is the soundness gate the
//! verifier runs on every model before building slices.

#![forbid(unsafe_code)]

pub mod contract;
pub mod delta;
pub mod partition;
pub use contract::{ContractError, ModuleContract, PortContract, Window, WindowSet};
pub use delta::TouchSet;
pub use partition::{auto_partition, Module, Partition, PartitionError};

use std::collections::BTreeSet;
use std::fmt;
use vmn_mbox::{Action, Guard, KeyExpr, MboxModel, Parallelism};

/// Witness reconstruction in the BDD backend enumerates oracle
/// valuations exhaustively, so transfer compilation refuses models
/// beyond this many oracles.
pub const MAX_ORACLES: usize = 16;

/// One header field, the granularity of dataflow footprints.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Field {
    Src,
    Dst,
    SrcPort,
    DstPort,
    Proto,
    Origin,
    Tag,
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Field::Src => "src",
            Field::Dst => "dst",
            Field::SrcPort => "src-port",
            Field::DstPort => "dst-port",
            Field::Proto => "proto",
            Field::Origin => "origin",
            Field::Tag => "tag",
        };
        f.write_str(s)
    }
}

/// Header fields a rule (or a whole model) reads and writes.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Footprint {
    pub reads: BTreeSet<Field>,
    pub writes: BTreeSet<Field>,
}

impl Footprint {
    fn union(&mut self, other: &Footprint) {
        self.reads.extend(other.reads.iter().copied());
        self.writes.extend(other.writes.iter().copied());
    }
}

fn render_fields(fs: &BTreeSet<Field>) -> String {
    if fs.is_empty() {
        return "(none)".into();
    }
    fs.iter().map(Field::to_string).collect::<Vec<_>>().join(", ")
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reads {}; writes {}", render_fields(&self.reads), render_fields(&self.writes))
    }
}

/// Why a model is stateful: the first state interaction, in rule order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StatefulReason {
    /// A guard reads a state set some rule inserts into.
    ReadsState { rule: usize, state: String },
    /// A rule inserts into a state set.
    WritesState { rule: usize, state: String },
    /// A rule replays remembered state into the packet
    /// (`RestoreDstFromState` / `RespondFromState`).
    ReplaysState { rule: usize, state: String },
}

impl fmt::Display for StatefulReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatefulReason::ReadsState { rule, state } => {
                write!(f, "rule {rule} reads state set {state:?}")
            }
            StatefulReason::WritesState { rule, state } => {
                write!(f, "rule {rule} inserts into state {state:?}")
            }
            StatefulReason::ReplaysState { rule, state } => {
                write!(f, "rule {rule} replays state {state:?}")
            }
        }
    }
}

/// Why the BDD dataplane backend cannot express a model — the typed
/// replacement for the ad-hoc reason string `statefulness()` used to
/// return. Conservative by construction: every state read (live or
/// not) and every packet-rewriting action disqualifies, because a
/// transfer *predicate* can express neither history dependence nor
/// header modification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnsupportedByBdd {
    Stateful(StatefulReason),
    /// A rule rewrites the packet header (`RewriteSrc`, `RewriteDst`,
    /// `RewriteDstOneOf`, `RewriteSrcPortFresh`).
    RewritesHeader {
        rule: usize,
    },
    /// Witness reconstruction enumerates oracle valuations; more than
    /// [`MAX_ORACLES`] oracles make that intractable.
    TooManyOracles {
        count: usize,
    },
}

impl fmt::Display for UnsupportedByBdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsupportedByBdd::Stateful(r) => r.fmt(f),
            UnsupportedByBdd::RewritesHeader { rule } => {
                write!(f, "rule {rule} rewrites the packet header")
            }
            UnsupportedByBdd::TooManyOracles { count } => {
                write!(f, "{count} oracles exceed the backend limit")
            }
        }
    }
}

/// The BDD backend's eligibility classification: `None` when the model
/// is a pure forwarding/ACL/classification box the dataplane can
/// compile, the first obstacle otherwise. This is the one source of
/// truth behind `vmn_bdd::dataplane::statefulness` and the engine's
/// slice-level routing; unlike [`ModelAnalysis::statefulness`] it
/// refuses even vacuous state reads, because guard compilation rejects
/// `StateContains` outright.
pub fn bdd_support(model: &MboxModel) -> Option<UnsupportedByBdd> {
    for (i, rule) in model.rules.iter().enumerate() {
        if let Some(state) = first_guard_state(&rule.guard) {
            return Some(UnsupportedByBdd::Stateful(StatefulReason::ReadsState {
                rule: i,
                state: state.to_string(),
            }));
        }
        for action in &rule.actions {
            match action {
                Action::Forward | Action::Drop | Action::HavocTag => {}
                Action::Insert(s) => {
                    return Some(UnsupportedByBdd::Stateful(StatefulReason::WritesState {
                        rule: i,
                        state: s.clone(),
                    }))
                }
                Action::RewriteSrc(_)
                | Action::RewriteDst(_)
                | Action::RewriteDstOneOf(_)
                | Action::RewriteSrcPortFresh => {
                    return Some(UnsupportedByBdd::RewritesHeader { rule: i })
                }
                Action::RestoreDstFromState(s) | Action::RespondFromState(s) => {
                    return Some(UnsupportedByBdd::Stateful(StatefulReason::ReplaysState {
                        rule: i,
                        state: s.clone(),
                    }))
                }
            }
        }
    }
    if model.oracles.len() > MAX_ORACLES {
        return Some(UnsupportedByBdd::TooManyOracles { count: model.oracles.len() });
    }
    None
}

fn first_guard_state(g: &Guard) -> Option<&str> {
    match g {
        Guard::Not(inner) => first_guard_state(inner),
        Guard::And(gs) | Guard::Or(gs) => gs.iter().find_map(first_guard_state),
        Guard::StateContains { state, .. } => Some(state),
        _ => None,
    }
}

/// Diagnostic severity. `Error` means the model's declarations are
/// unsound to rely on (the verifier refuses such networks); `Warning`
/// flags suspicious but sound constructs; `Info` points out missed
/// optimisation opportunities.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// One structured analysis finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    /// `type_name` of the model the finding is about.
    pub model: String,
    /// Rule index the finding anchors to, when rule-specific.
    pub rule: Option<usize>,
    /// Stable machine-readable code (e.g. `dead-arm`,
    /// `parallelism-overclaim`).
    pub code: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] model {:?}", self.severity, self.code, self.model)?;
        if let Some(r) = self.rule {
            write!(f, " rule {r}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Decision procedure for rule-arm reachability under first-match
/// semantics: whether some packet (header bits, oracle valuation, state
/// contents) satisfies `guard[arm] ∧ ¬guard[0] ∧ … ∧ ¬guard[arm-1]`.
///
/// Implementations must be sound for the `Some(false)` answer — an arm
/// reported dead must be unreachable in every concrete execution.
/// `vmn_bdd` provides the ROBDD-backed implementation; keeping the
/// trait here lets that crate depend on this one without a cycle.
pub trait ArmDecider {
    /// `Some(true)` — satisfiable (the arm can fire); `Some(false)` —
    /// provably dead; `None` — this model is out of scope for the
    /// procedure.
    fn arm_reachable(&mut self, model: &MboxModel, arm: usize) -> Option<bool>;
}

/// Everything the analysis derives from one model.
#[derive(Clone, Debug)]
pub struct ModelAnalysis {
    /// `type_name` of the analysed model.
    pub model: String,
    /// Union of the per-rule footprints.
    pub footprint: Footprint,
    pub rule_footprints: Vec<Footprint>,
    /// State sets read by guards or replay actions.
    pub states_read: BTreeSet<String>,
    /// State sets some rule inserts into.
    pub states_written: BTreeSet<String>,
    /// Declared state sets no rule reads or writes.
    pub dead_states: Vec<String>,
    /// Inferred statefulness: `None` when no reachable rule arm reads
    /// live state or mutates state. Reads of never-written state are
    /// vacuous (history-defined state starts empty) and do not count.
    pub statefulness: Option<StatefulReason>,
    /// The BDD backend's (more conservative) eligibility verdict.
    pub bdd_blocker: Option<UnsupportedByBdd>,
    pub declared_parallelism: Parallelism,
    pub inferred_parallelism: Parallelism,
    /// Rule arms that can never fire under first-match semantics,
    /// ascending. Structural constant propagation always runs; an
    /// [`ArmDecider`] (see [`analyze_with`]) refines it.
    pub dead_arms: Vec<usize>,
    pub diagnostics: Vec<Diagnostic>,
}

impl ModelAnalysis {
    /// Highest severity among the diagnostics, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }
}

/// How strong a parallelism claim is: slicing may shrink networks more
/// aggressively the higher the rank, so declaring a rank *above* the
/// inferred one is unsound.
fn rank(p: Parallelism) -> u8 {
    match p {
        Parallelism::General => 0,
        Parallelism::OriginAgnostic => 1,
        Parallelism::FlowParallel => 2,
    }
}

/// Whether a state key can depend on the packet's source (and hence on
/// *which* host installed or queries the entry). `Origin` and `DstAddr`
/// keys are source-independent — the basis of the origin-agnostic
/// class.
fn key_depends_on_source(k: KeyExpr) -> bool {
    match k {
        KeyExpr::Flow | KeyExpr::SrcAddr | KeyExpr::SrcDst => true,
        KeyExpr::Origin | KeyExpr::DstAddr => false,
    }
}

fn guard_state_keys(g: &Guard, out: &mut Vec<(String, KeyExpr)>) {
    match g {
        Guard::Not(inner) => guard_state_keys(inner, out),
        Guard::And(gs) | Guard::Or(gs) => gs.iter().for_each(|g| guard_state_keys(g, out)),
        Guard::StateContains { state, key } => out.push((state.clone(), *key)),
        _ => {}
    }
}

fn guard_footprint(g: &Guard, out: &mut BTreeSet<Field>) {
    match g {
        Guard::True | Guard::Oracle(_) => {}
        Guard::Not(inner) => guard_footprint(inner, out),
        Guard::And(gs) | Guard::Or(gs) => gs.iter().for_each(|g| guard_footprint(g, out)),
        Guard::SrcIn(_) | Guard::SrcIs(_) => {
            out.insert(Field::Src);
        }
        Guard::DstIn(_) | Guard::DstIs(_) => {
            out.insert(Field::Dst);
        }
        Guard::SrcPortIs(_) => {
            out.insert(Field::SrcPort);
        }
        Guard::DstPortIs(_) => {
            out.insert(Field::DstPort);
        }
        Guard::ProtoIs(_) => {
            out.insert(Field::Proto);
        }
        Guard::OriginIn(_) | Guard::OriginIs(_) => {
            out.insert(Field::Origin);
        }
        Guard::AclMatch(_) => {
            out.extend([Field::Src, Field::Dst]);
        }
        Guard::StateContains { key, .. } => out.extend(key_fields(*key)),
    }
}

/// Header fields a key expression reads.
fn key_fields(k: KeyExpr) -> Vec<Field> {
    match k {
        KeyExpr::Flow => {
            vec![Field::Src, Field::Dst, Field::SrcPort, Field::DstPort, Field::Proto]
        }
        KeyExpr::SrcAddr => vec![Field::Src],
        KeyExpr::DstAddr => vec![Field::Dst],
        KeyExpr::Origin => vec![Field::Origin],
        KeyExpr::SrcDst => vec![Field::Src, Field::Dst],
    }
}

const ALL_FIELDS: [Field; 7] = [
    Field::Src,
    Field::Dst,
    Field::SrcPort,
    Field::DstPort,
    Field::Proto,
    Field::Origin,
    Field::Tag,
];

fn rule_footprint(model: &MboxModel, rule: usize) -> Footprint {
    let mut fp = Footprint::default();
    let arm = &model.rules[rule];
    guard_footprint(&arm.guard, &mut fp.reads);
    for action in &arm.actions {
        match action {
            Action::Forward | Action::Drop => {}
            // Insert records the whole (pre-rewrite) packet plus the
            // key computed from the current one.
            Action::Insert(_) => fp.reads.extend(ALL_FIELDS),
            Action::RewriteSrc(_) => {
                fp.writes.insert(Field::Src);
            }
            Action::RewriteDst(_) | Action::RewriteDstOneOf(_) => {
                fp.writes.insert(Field::Dst);
            }
            Action::RewriteSrcPortFresh => {
                fp.writes.insert(Field::SrcPort);
            }
            // Flow-keyed lookup, then dst/dst-port replacement.
            Action::RestoreDstFromState(_) => {
                fp.reads.extend(key_fields(KeyExpr::Flow));
                fp.writes.extend([Field::Dst, Field::DstPort]);
            }
            // Dst-keyed lookup; the response swaps endpoints and takes
            // src/origin/tag from the remembered original.
            Action::RespondFromState(_) => {
                fp.reads.extend([Field::Src, Field::Dst, Field::SrcPort, Field::DstPort]);
                fp.writes.extend([
                    Field::Src,
                    Field::Dst,
                    Field::SrcPort,
                    Field::DstPort,
                    Field::Origin,
                    Field::Tag,
                ]);
            }
            Action::HavocTag => {
                fp.writes.insert(Field::Tag);
            }
        }
    }
    fp
}

/// Constant-folds a guard given the set of state sets that are ever
/// written: reads of never-written state are `false` (history-defined
/// state starts empty and stays empty without inserts), ACL matches
/// over empty pair lists are `false`. `None` when the value depends on
/// the packet.
fn guard_const(model: &MboxModel, g: &Guard, written: &BTreeSet<String>) -> Option<bool> {
    match g {
        Guard::True => Some(true),
        Guard::Not(inner) => guard_const(model, inner, written).map(|b| !b),
        Guard::And(gs) => {
            let vals: Vec<Option<bool>> =
                gs.iter().map(|g| guard_const(model, g, written)).collect();
            if vals.contains(&Some(false)) {
                Some(false)
            } else if vals.iter().all(|v| *v == Some(true)) {
                Some(true)
            } else {
                None
            }
        }
        Guard::Or(gs) => {
            let vals: Vec<Option<bool>> =
                gs.iter().map(|g| guard_const(model, g, written)).collect();
            if vals.contains(&Some(true)) {
                Some(true)
            } else if vals.iter().all(|v| *v == Some(false)) {
                Some(false)
            } else {
                None
            }
        }
        Guard::AclMatch(name) => match model.acl_pairs(name) {
            Some([]) => Some(false),
            _ => None,
        },
        Guard::StateContains { state, .. } if !written.contains(state) => Some(false),
        _ => None,
    }
}

/// Structural dead-arm pass: an arm is dead when its guard constant-
/// folds to `false`, or when an earlier arm's guard constant-folds to
/// `true` (first match wins).
fn structural_dead_arms(model: &MboxModel, written: &BTreeSet<String>) -> Vec<usize> {
    let mut dead = Vec::new();
    let mut shadowed = false;
    for (i, arm) in model.rules.iter().enumerate() {
        let c = guard_const(model, &arm.guard, written);
        if shadowed || c == Some(false) {
            dead.push(i);
        }
        if c == Some(true) {
            shadowed = true;
        }
    }
    dead
}

/// Analyses `model` structurally (no decision procedure: dead arms come
/// from constant propagation only).
pub fn analyze(model: &MboxModel) -> ModelAnalysis {
    analyze_impl(model, None)
}

/// Analyses `model`, refining dead-arm detection with `decider` — in
/// practice the ROBDD-backed guard-subsumption procedure from
/// `vmn_bdd`.
pub fn analyze_with(model: &MboxModel, decider: &mut dyn ArmDecider) -> ModelAnalysis {
    analyze_impl(model, Some(decider))
}

fn analyze_impl(model: &MboxModel, mut decider: Option<&mut dyn ArmDecider>) -> ModelAnalysis {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let diag = |diagnostics: &mut Vec<Diagnostic>,
                severity: Severity,
                rule: Option<usize>,
                code: &'static str,
                message: String| {
        diagnostics.push(Diagnostic {
            severity,
            model: model.type_name.clone(),
            rule,
            code,
            message,
        });
    };

    // State read/write sets. Guards and replay actions read; inserts
    // write.
    let mut states_read: BTreeSet<String> = BTreeSet::new();
    let mut states_written: BTreeSet<String> = BTreeSet::new();
    for arm in &model.rules {
        let mut reads = Vec::new();
        guard_state_keys(&arm.guard, &mut reads);
        states_read.extend(reads.into_iter().map(|(s, _)| s));
        for action in &arm.actions {
            match action {
                Action::Insert(s) => {
                    states_written.insert(s.clone());
                }
                Action::RestoreDstFromState(s) | Action::RespondFromState(s) => {
                    states_read.insert(s.clone());
                }
                _ => {}
            }
        }
    }
    let dead_states: Vec<String> = model
        .states
        .iter()
        .map(|s| s.name.clone())
        .filter(|s| !states_read.contains(s) && !states_written.contains(s))
        .collect();
    for s in &dead_states {
        diag(
            &mut diagnostics,
            Severity::Warning,
            None,
            "dead-state",
            format!("declared state {s:?} is never read or written"),
        );
    }
    for s in &states_written {
        if !states_read.contains(s) {
            diag(
                &mut diagnostics,
                Severity::Info,
                None,
                "write-only-state",
                format!("state {s:?} is written but never read; inserts cannot affect forwarding"),
            );
        }
    }

    // Per-rule vacuous reads and replays of provably-empty state.
    for (i, arm) in model.rules.iter().enumerate() {
        let mut reads = Vec::new();
        guard_state_keys(&arm.guard, &mut reads);
        for (s, _) in reads {
            if !states_written.contains(&s) {
                diag(
                    &mut diagnostics,
                    Severity::Warning,
                    Some(i),
                    "vacuous-state-read",
                    format!(
                        "guard reads state {s:?} which no rule writes; the read is always false"
                    ),
                );
            }
        }
        for action in &arm.actions {
            if let Action::RestoreDstFromState(s) | Action::RespondFromState(s) = action {
                if !states_written.contains(s) {
                    diag(
                        &mut diagnostics,
                        Severity::Warning,
                        Some(i),
                        "vacuous-state-replay",
                        format!("replays state {s:?} which no rule writes; the replay never fires"),
                    );
                }
            }
        }
    }

    // Dead arms: structural constant propagation, refined per arm by
    // the decision procedure when one is supplied.
    let structural: BTreeSet<usize> =
        structural_dead_arms(model, &states_written).into_iter().collect();
    let mut dead_arms: Vec<usize> = Vec::new();
    for i in 0..model.rules.len() {
        let dead = if structural.contains(&i) {
            true
        } else {
            match decider.as_deref_mut().and_then(|d| d.arm_reachable(model, i)) {
                Some(reachable) => !reachable,
                None => false,
            }
        };
        if dead {
            dead_arms.push(i);
            diag(
                &mut diagnostics,
                Severity::Warning,
                Some(i),
                "dead-arm",
                "arm can never fire: its guard is unsatisfiable under first-match semantics"
                    .to_string(),
            );
        }
    }

    // Inferred statefulness over non-dead arms: the first read of live
    // state, insert, or replay, in rule order. Vacuous reads are
    // covered by the diagnostics above instead.
    let mut statefulness: Option<StatefulReason> = None;
    'rules: for (i, arm) in model.rules.iter().enumerate() {
        if dead_arms.contains(&i) {
            continue;
        }
        let mut reads = Vec::new();
        guard_state_keys(&arm.guard, &mut reads);
        if let Some((s, _)) = reads.into_iter().find(|(s, _)| states_written.contains(s)) {
            statefulness = Some(StatefulReason::ReadsState { rule: i, state: s });
            break 'rules;
        }
        for action in &arm.actions {
            match action {
                Action::Insert(s) => {
                    statefulness = Some(StatefulReason::WritesState { rule: i, state: s.clone() });
                    break 'rules;
                }
                Action::RestoreDstFromState(s) | Action::RespondFromState(s) => {
                    statefulness = Some(StatefulReason::ReplaysState { rule: i, state: s.clone() });
                    break 'rules;
                }
                _ => {}
            }
        }
    }

    // Inferred parallelism: collect every key through which live arms
    // touch state — guard read keys, the declared key at insertion, and
    // the fixed lookup keys of the replay actions (flow for restore,
    // dst-addr for respond) plus the declared key of the replayed set
    // (its entries were stored under that key).
    let mut keys: Vec<KeyExpr> = Vec::new();
    let decl_key = |s: &str| model.state_decl(s).map(|d| d.key);
    for (i, arm) in model.rules.iter().enumerate() {
        if dead_arms.contains(&i) {
            continue;
        }
        let mut reads = Vec::new();
        guard_state_keys(&arm.guard, &mut reads);
        for (s, k) in reads {
            if states_written.contains(&s) {
                keys.push(k);
                keys.extend(decl_key(&s));
            }
        }
        for action in &arm.actions {
            match action {
                Action::Insert(s) => keys.extend(decl_key(s)),
                Action::RestoreDstFromState(s) => {
                    keys.push(KeyExpr::Flow);
                    keys.extend(decl_key(s));
                }
                Action::RespondFromState(s) => {
                    keys.push(KeyExpr::DstAddr);
                    keys.extend(decl_key(s));
                }
                _ => {}
            }
        }
    }
    let inferred_parallelism = if keys.iter().all(|&k| k == KeyExpr::Flow) {
        Parallelism::FlowParallel
    } else if keys.iter().filter(|&&k| k != KeyExpr::Flow).all(|&k| !key_depends_on_source(k)) {
        Parallelism::OriginAgnostic
    } else {
        Parallelism::General
    };

    // Annotation soundness: declaring a class stronger than the
    // inferred one lets slicing shrink the network on an assumption the
    // model violates — an error; declaring a weaker class is sound but
    // leaves slice reductions on the table — an info.
    match rank(model.parallelism).cmp(&rank(inferred_parallelism)) {
        std::cmp::Ordering::Greater => diag(
            &mut diagnostics,
            Severity::Error,
            None,
            "parallelism-overclaim",
            format!(
                "declared {:?} but state keying only supports {:?}; \
                 slices built on the declared class would be unsound",
                model.parallelism, inferred_parallelism
            ),
        ),
        std::cmp::Ordering::Less => diag(
            &mut diagnostics,
            Severity::Info,
            None,
            "parallelism-underclaim",
            format!(
                "declared {:?} but the model is {:?}; the stronger class would allow \
                 smaller slices",
                model.parallelism, inferred_parallelism
            ),
        ),
        std::cmp::Ordering::Equal => {}
    }

    let rule_footprints: Vec<Footprint> =
        (0..model.rules.len()).map(|i| rule_footprint(model, i)).collect();
    let mut footprint = Footprint::default();
    for fp in &rule_footprints {
        footprint.union(fp);
    }

    ModelAnalysis {
        model: model.type_name.clone(),
        footprint,
        rule_footprints,
        states_read,
        states_written,
        dead_states,
        statefulness,
        bdd_blocker: bdd_support(model),
        declared_parallelism: model.parallelism,
        inferred_parallelism,
        dead_arms,
        diagnostics,
    }
}

/// The annotation-soundness gate: the first error-severity diagnostic
/// for `model`, if any. The verifier runs this on every model before
/// building slices; a declared parallelism class stronger than the
/// inferred one is rejected here instead of silently producing an
/// unsound slice.
pub fn annotation_error(model: &MboxModel) -> Option<Diagnostic> {
    analyze(model).diagnostics.into_iter().find(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn_mbox::models;
    use vmn_net::{Address, Prefix};

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    /// Every builder in the model library, with representative
    /// (non-degenerate) configurations.
    fn library() -> Vec<MboxModel> {
        vec![
            models::learning_firewall("fw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]),
            models::acl_firewall("acl-fw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]),
            models::nat("nat", px("10.0.0.0/8"), addr("1.2.3.4")),
            models::load_balancer("lb", addr("10.0.0.100"), vec![addr("10.0.0.1")]),
            models::idps("idps"),
            models::ids_monitor("ids"),
            models::scrubber("sb"),
            models::content_cache(
                "cache",
                [px("10.1.0.0/16")],
                vec![(px("10.3.0.0/16"), px("10.1.0.0/16"))],
            ),
            models::application_firewall("appfw", &["skype?"], &["skype?", "jabber?"]),
            models::wan_optimizer("wanopt"),
            models::gateway("gw"),
            models::security_group_firewall("sg", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]),
        ]
    }

    #[test]
    fn inferred_facts_agree_with_declared_annotations() {
        for m in library() {
            let a = analyze(&m);
            assert_eq!(
                a.inferred_parallelism, m.parallelism,
                "{}: inferred parallelism must match the declaration",
                m.type_name
            );
            assert!(
                a.diagnostics.is_empty(),
                "{}: library models must lint clean, got {:?}",
                m.type_name,
                a.diagnostics
            );
            assert!(annotation_error(&m).is_none(), "{}", m.type_name);
        }
    }

    #[test]
    fn statefulness_matches_the_bdd_classifier_across_the_library() {
        // The unified-verdict satellite: for every library model, the
        // semantic statefulness and the BDD eligibility classifier
        // agree on the state dimension (the BDD verdict additionally
        // rejects header rewrites — the load balancer).
        for m in library() {
            let a = analyze(&m);
            let expect_stateful = matches!(m.type_name.as_str(), "fw" | "nat" | "cache" | "sg");
            assert_eq!(
                a.statefulness.is_some(),
                expect_stateful,
                "{}: statefulness verdict",
                m.type_name
            );
            let bdd_rejects = matches!(m.type_name.as_str(), "fw" | "nat" | "cache" | "sg" | "lb");
            assert_eq!(
                bdd_support(&m).is_some(),
                bdd_rejects,
                "{}: bdd eligibility verdict",
                m.type_name
            );
            // The state-driven part of both classifiers is identical.
            if a.statefulness.is_some() {
                assert!(matches!(a.bdd_blocker, Some(UnsupportedByBdd::Stateful(_))));
            }
        }
    }

    #[test]
    fn footprints_cover_reads_and_writes() {
        let nat = models::nat("nat", px("10.0.0.0/8"), addr("1.2.3.4"));
        let a = analyze(&nat);
        // NAT rewrites src + src-port outbound and dst + dst-port on
        // the restore path.
        for f in [Field::Src, Field::SrcPort, Field::Dst, Field::DstPort] {
            assert!(a.footprint.writes.contains(&f), "nat must write {f}");
        }
        assert!(!a.footprint.writes.contains(&Field::Tag));

        let acl = models::acl_firewall("aclfw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]);
        let a = analyze(&acl);
        assert_eq!(
            a.footprint.reads.iter().copied().collect::<Vec<_>>(),
            vec![Field::Src, Field::Dst]
        );
        assert!(a.footprint.writes.is_empty(), "pure filters write nothing");

        let wan = models::wan_optimizer("wan");
        let a = analyze(&wan);
        assert_eq!(a.footprint.writes.iter().copied().collect::<Vec<_>>(), vec![Field::Tag]);
    }

    #[test]
    fn state_liveness_classification() {
        // Declared-but-unused state is dead; written-but-never-read is
        // write-only; read-but-never-written reads are vacuous.
        let m = MboxModel::new("m")
            .state("unused", KeyExpr::Flow)
            .state("writeonly", KeyExpr::Flow)
            .state("phantom", KeyExpr::Flow)
            .rule(
                Guard::StateContains { state: "phantom".into(), key: KeyExpr::Flow },
                vec![Action::Forward],
            )
            .rule(Guard::True, vec![Action::Insert("writeonly".into()), Action::Forward]);
        assert!(m.validate().is_ok());
        let a = analyze(&m);
        assert_eq!(a.dead_states, vec!["unused".to_string()]);
        assert!(a.diagnostics.iter().any(|d| d.code == "write-only-state"));
        assert!(a.diagnostics.iter().any(|d| d.code == "vacuous-state-read" && d.rule == Some(0)));
        // The phantom read is vacuous, so arm 0 is structurally dead —
        // and the model's only state interaction left is the insert.
        assert_eq!(a.dead_arms, vec![0]);
        assert!(matches!(a.statefulness, Some(StatefulReason::WritesState { rule: 1, .. })));
    }

    #[test]
    fn structural_dead_arms_from_constant_folding() {
        // Arms after an always-true guard are shadowed; empty-ACL
        // matches never fire.
        let m = MboxModel::new("m")
            .acl("empty", vec![])
            .rule(Guard::AclMatch("empty".into()), vec![Action::Forward])
            .rule(Guard::True, vec![Action::Forward])
            .rule(Guard::SrcIn(px("10.0.0.0/8")), vec![Action::Drop]);
        let a = analyze(&m);
        assert_eq!(a.dead_arms, vec![0, 2]);
        assert!(a.statefulness.is_none());
    }

    #[test]
    fn parallelism_inference_by_key_shape() {
        // Flow-keyed state everywhere: flow-parallel.
        let fp = models::learning_firewall("fw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]);
        assert_eq!(analyze(&fp).inferred_parallelism, Parallelism::FlowParallel);

        // Origin-keyed state read by destination address: the content
        // cache's shape — origin-agnostic.
        let oa = models::content_cache("cache", [px("10.1.0.0/16")], vec![]);
        assert_eq!(analyze(&oa).inferred_parallelism, Parallelism::OriginAgnostic);

        // Source-keyed shared state: no structure slicing can use.
        let general = MboxModel::new("tracker")
            .parallelism(Parallelism::General)
            .state("seen", KeyExpr::SrcAddr)
            .rule(
                Guard::StateContains { state: "seen".into(), key: KeyExpr::SrcAddr },
                vec![Action::Drop],
            )
            .rule(Guard::True, vec![Action::Insert("seen".into()), Action::Forward]);
        assert!(general.validate().is_ok());
        assert_eq!(analyze(&general).inferred_parallelism, Parallelism::General);
    }

    #[test]
    fn overclaimed_parallelism_is_an_error() {
        // The acceptance-criteria mutant: declared FlowParallel with a
        // shared-key state written on the forwarding path.
        let m = MboxModel::new("bad")
            .parallelism(Parallelism::FlowParallel)
            .state("seen", KeyExpr::SrcAddr)
            .rule(Guard::True, vec![Action::Insert("seen".into()), Action::Forward]);
        assert!(m.validate().is_ok(), "the mutant is IR-valid; only the annotation is wrong");
        let a = analyze(&m);
        assert_eq!(a.inferred_parallelism, Parallelism::General);
        let err = annotation_error(&m).expect("overclaim must be an error");
        assert_eq!(err.code, "parallelism-overclaim");
        assert_eq!(err.severity, Severity::Error);

        // Declaring OriginAgnostic for a general model is equally
        // unsound; declaring General for a flow-parallel one is only a
        // missed optimisation.
        let mut oa = m.clone();
        oa.parallelism = Parallelism::OriginAgnostic;
        assert!(annotation_error(&oa).is_some());

        let under = models::acl_firewall("aclfw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))])
            .parallelism(Parallelism::General);
        assert!(annotation_error(&under).is_none());
        let a = analyze(&under);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == "parallelism-underclaim" && d.severity == Severity::Info));
    }

    #[test]
    fn decider_refines_dead_arm_detection() {
        // A decider that proclaims arm 1 dead; the structural pass
        // alone cannot see it (the guard is not constant).
        struct Fixed;
        impl ArmDecider for Fixed {
            fn arm_reachable(&mut self, _m: &MboxModel, arm: usize) -> Option<bool> {
                Some(arm != 1)
            }
        }
        let m = MboxModel::new("m")
            .rule(Guard::SrcIn(px("10.0.0.0/8")), vec![Action::Forward])
            .rule(Guard::SrcIn(px("10.0.0.0/16")), vec![Action::Drop])
            .rule(Guard::True, vec![Action::Drop]);
        assert!(analyze(&m).dead_arms.is_empty());
        let a = analyze_with(&m, &mut Fixed);
        assert_eq!(a.dead_arms, vec![1]);
        assert!(a.diagnostics.iter().any(|d| d.code == "dead-arm" && d.rule == Some(1)));
    }

    #[test]
    fn bdd_support_reasons_are_typed() {
        let fw = models::learning_firewall("fw", vec![]);
        assert!(matches!(
            bdd_support(&fw),
            Some(UnsupportedByBdd::Stateful(StatefulReason::ReadsState { rule: 0, .. }))
        ));
        let lb = models::load_balancer("lb", addr("10.0.0.9"), vec![addr("10.0.0.1")]);
        assert!(matches!(bdd_support(&lb), Some(UnsupportedByBdd::RewritesHeader { rule: 0 })));
        let mut many = MboxModel::new("oracular");
        for i in 0..=MAX_ORACLES {
            many = many.oracle(format!("o{i}?"));
        }
        many = many.rule(Guard::True, vec![Action::Forward]);
        assert!(matches!(
            bdd_support(&many),
            Some(UnsupportedByBdd::TooManyOracles { count }) if count == MAX_ORACLES + 1
        ));
    }
}
