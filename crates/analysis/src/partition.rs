//! Topology partitions for modular verification.
//!
//! A [`Partition`] splits the network's nodes into named, disjoint,
//! covering modules. The cut edges between modules are the *boundary
//! ports* where contracts live ([`crate::contract`]): each module is
//! verified against assumptions on what can arrive over its incoming
//! cut edges and guarantees on what it sends over its outgoing ones,
//! and a cheap composition check ties the modules back together —
//! LIGHTYEAR's recipe applied to VMN's mutable-datapath setting.
//!
//! Everything here is name-based (`String` node names, `(String,
//! String)` undirected links) so the partitioner stays independent of
//! any particular topology representation; the `vmn` crate adapts its
//! `Network` into these lists.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One module of a partition: a named set of nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Module {
    pub name: String,
    pub nodes: BTreeSet<String>,
}

impl Module {
    pub fn new(name: impl Into<String>, nodes: impl IntoIterator<Item = String>) -> Module {
        Module { name: name.into(), nodes: nodes.into_iter().collect() }
    }
}

/// A partition of the topology into modules.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Partition {
    pub modules: Vec<Module>,
}

/// Why a candidate partition is not a partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// A node appears in two modules.
    Overlap { node: String, first: String, second: String },
    /// A topology node appears in no module.
    Uncovered { node: String },
    /// A module names a node the topology does not have.
    UnknownNode { module: String, node: String },
    /// Two modules share a name.
    DuplicateModule { name: String },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Overlap { node, first, second } => {
                write!(f, "node {node:?} is in both module {first:?} and module {second:?}")
            }
            PartitionError::Uncovered { node } => {
                write!(f, "node {node:?} is in no module")
            }
            PartitionError::UnknownNode { module, node } => {
                write!(f, "module {module:?} names unknown node {node:?}")
            }
            PartitionError::DuplicateModule { name } => {
                write!(f, "two modules named {name:?}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

impl Partition {
    /// The degenerate one-module partition: modular verification over it
    /// has no cut edges, hence no contracts, and behaves exactly like
    /// the monolithic engine.
    pub fn monolithic(nodes: impl IntoIterator<Item = String>) -> Partition {
        Partition { modules: vec![Module::new("all", nodes)] }
    }

    /// The other degenerate: one module per node (every edge is a cut
    /// edge).
    pub fn per_node(nodes: impl IntoIterator<Item = String>) -> Partition {
        Partition {
            modules: nodes
                .into_iter()
                .map(|n| Module { name: n.clone(), nodes: BTreeSet::from([n]) })
                .collect(),
        }
    }

    /// Checks the modules are disjoint, cover every topology node, and
    /// name only real nodes.
    pub fn validate<'a>(
        &self,
        topo_nodes: impl IntoIterator<Item = &'a str>,
    ) -> Result<(), PartitionError> {
        let all: BTreeSet<&str> = topo_nodes.into_iter().collect();
        let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for m in &self.modules {
            if !names.insert(&m.name) {
                return Err(PartitionError::DuplicateModule { name: m.name.clone() });
            }
            for n in &m.nodes {
                if !all.contains(n.as_str()) {
                    return Err(PartitionError::UnknownNode {
                        module: m.name.clone(),
                        node: n.clone(),
                    });
                }
                if let Some(first) = seen.insert(n, &m.name) {
                    return Err(PartitionError::Overlap {
                        node: n.clone(),
                        first: first.to_string(),
                        second: m.name.clone(),
                    });
                }
            }
        }
        for n in all {
            if !seen.contains_key(n) {
                return Err(PartitionError::Uncovered { node: n.to_string() });
            }
        }
        Ok(())
    }

    /// The module containing `node`, if any.
    pub fn module_of(&self, node: &str) -> Option<&str> {
        self.modules.iter().find(|m| m.nodes.contains(node)).map(|m| m.name.as_str())
    }

    /// The cut edges of this partition: every link whose endpoints live
    /// in different modules, as `(a, b)` name pairs in the orientation
    /// given. These are exactly the boundary ports contracts attach to.
    pub fn boundary_edges<'a>(
        &self,
        links: impl IntoIterator<Item = &'a (String, String)>,
    ) -> Vec<(String, String)> {
        links
            .into_iter()
            .filter(|(a, b)| {
                let (ma, mb) = (self.module_of(a), self.module_of(b));
                ma.is_some() && mb.is_some() && ma != mb
            })
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.modules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }
}

/// Automatically partitions a topology on low-connectivity boundaries.
///
/// The cut criterion is *infrastructure bridges*: links that are
/// bridges of the graph (removing one disconnects it) and join two
/// non-host nodes. In the estates VMN targets — pods behind uplinks,
/// campus buildings behind an in-line firewall, tenants behind a
/// gateway — these are exactly the pod/building/tenant uplinks, while
/// host access links (also bridges) never separate a host from its
/// switch. Modules are the connected components left after cutting,
/// each named `mod-<lexicographically first member>`.
///
/// `nodes` is `(name, is_infra)` where `is_infra` marks switches and
/// middleboxes (anything that is not a host). Degenerate inputs
/// degrade gracefully: a topology with no infrastructure bridge (a
/// single hub switch, a redundant mesh) yields one module per
/// connected component — the monolithic partition when connected.
pub fn auto_partition(nodes: &[(String, bool)], links: &[(String, String)]) -> Partition {
    let index: BTreeMap<&str, usize> =
        nodes.iter().enumerate().map(|(i, (n, _))| (n.as_str(), i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in links {
        if let (Some(&ia), Some(&ib)) = (index.get(a.as_str()), index.get(b.as_str())) {
            if ia != ib && !adj[ia].contains(&ib) {
                adj[ia].push(ib);
                adj[ib].push(ia);
            }
        }
    }

    let cut: BTreeSet<(usize, usize)> =
        bridges(nodes.len(), &adj).into_iter().filter(|&(a, b)| nodes[a].1 && nodes[b].1).collect();

    // Connected components of the graph minus the cut edges.
    let mut comp = vec![usize::MAX; nodes.len()];
    let mut ncomp = 0usize;
    for start in 0..nodes.len() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = ncomp;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                let e = (v.min(w), v.max(w));
                if comp[w] == usize::MAX && !cut.contains(&e) {
                    comp[w] = ncomp;
                    stack.push(w);
                }
            }
        }
        ncomp += 1;
    }

    let mut groups: Vec<BTreeSet<String>> = vec![BTreeSet::new(); ncomp];
    for (i, (name, _)) in nodes.iter().enumerate() {
        groups[comp[i]].insert(name.clone());
    }
    let modules = groups
        .into_iter()
        .map(|g| {
            let first = g.iter().next().expect("non-empty component").clone();
            Module { name: format!("mod-{first}"), nodes: g }
        })
        .collect();
    Partition { modules }
}

/// Bridges of an undirected graph (iterative low-link DFS, safe for
/// deep paths), as `(min, max)` index pairs.
fn bridges(n: usize, adj: &[Vec<usize>]) -> Vec<(usize, usize)> {
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut out = Vec::new();
    let mut time = 0usize;
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // (vertex, index into its adjacency list)
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        disc[root] = time;
        low[root] = time;
        time += 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < adj[v].len() {
                let w = adj[v][*i];
                *i += 1;
                if disc[w] == usize::MAX {
                    parent[w] = v;
                    disc[w] = time;
                    low[w] = time;
                    time += 1;
                    stack.push((w, 0));
                } else if w != parent[v] {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        out.push((p.min(v), p.max(v)));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(ns: &[&str]) -> Vec<String> {
        ns.iter().map(|s| s.to_string()).collect()
    }

    fn link(a: &str, b: &str) -> (String, String) {
        (a.to_string(), b.to_string())
    }

    /// Two pods of hosts on pod switches joined by a core switch.
    fn two_pods() -> (Vec<(String, bool)>, Vec<(String, String)>) {
        let mut nodes = vec![("core".to_string(), true)];
        let mut links = Vec::new();
        for p in 0..2 {
            nodes.push((format!("sw{p}"), true));
            links.push(link(&format!("sw{p}"), "core"));
            for h in 0..3 {
                nodes.push((format!("h{p}{h}"), false));
                links.push(link(&format!("h{p}{h}"), &format!("sw{p}")));
            }
        }
        (nodes, links)
    }

    #[test]
    fn validate_accepts_partition() {
        let p = Partition {
            modules: vec![Module::new("a", names(&["x", "y"])), Module::new("b", names(&["z"]))],
        };
        assert!(p.validate(["x", "y", "z"]).is_ok());
    }

    #[test]
    fn validate_rejects_overlap_uncovered_unknown() {
        let overlap = Partition {
            modules: vec![Module::new("a", names(&["x"])), Module::new("b", names(&["x"]))],
        };
        assert!(matches!(overlap.validate(["x"]), Err(PartitionError::Overlap { .. })));
        let uncovered = Partition { modules: vec![Module::new("a", names(&["x"]))] };
        assert!(matches!(uncovered.validate(["x", "y"]), Err(PartitionError::Uncovered { .. })));
        let unknown = Partition { modules: vec![Module::new("a", names(&["ghost"]))] };
        assert!(matches!(unknown.validate(["x"]), Err(PartitionError::UnknownNode { .. })));
        let dup = Partition {
            modules: vec![Module::new("a", names(&["x"])), Module::new("a", names(&["y"]))],
        };
        assert!(matches!(dup.validate(["x", "y"]), Err(PartitionError::DuplicateModule { .. })));
    }

    #[test]
    fn boundary_edges_are_cut_edges() {
        let p = Partition {
            modules: vec![
                Module::new("left", names(&["a", "b"])),
                Module::new("right", names(&["c"])),
            ],
        };
        let links = vec![link("a", "b"), link("b", "c")];
        assert_eq!(p.boundary_edges(&links), vec![link("b", "c")]);
    }

    #[test]
    fn auto_partition_splits_pods_on_core() {
        let (nodes, links) = two_pods();
        let p = auto_partition(&nodes, &links);
        let topo: Vec<&str> = nodes.iter().map(|(n, _)| n.as_str()).collect();
        p.validate(topo.iter().copied()).expect("true partition");
        assert_eq!(p.len(), 3, "core + two pods: {p:?}");
        assert_eq!(p.module_of("core"), Some("mod-core"));
        assert_eq!(p.module_of("h00"), p.module_of("sw0"));
        assert_ne!(p.module_of("h00"), p.module_of("h10"));
        // Boundary edges are exactly the pod-uplink cut.
        let cuts = p.boundary_edges(&links);
        assert_eq!(cuts.len(), 2);
    }

    #[test]
    fn auto_partition_without_hub_is_monolithic() {
        // A path h - sw - h: sw is an articulation point but only degree 2.
        let nodes =
            vec![("a".to_string(), false), ("sw".to_string(), true), ("b".to_string(), false)];
        let links = vec![link("a", "sw"), link("sw", "b")];
        let p = auto_partition(&nodes, &links);
        assert_eq!(p.len(), 1);
        assert!(p.boundary_edges(&links).is_empty());
    }

    #[test]
    fn degenerate_partitions() {
        let ns = names(&["a", "b", "c"]);
        let mono = Partition::monolithic(ns.clone());
        assert_eq!(mono.len(), 1);
        assert!(mono.validate(["a", "b", "c"]).is_ok());
        let per = Partition::per_node(ns);
        assert_eq!(per.len(), 3);
        assert!(per.validate(["a", "b", "c"]).is_ok());
        let links = vec![link("a", "b"), link("b", "c")];
        assert!(mono.boundary_edges(&links).is_empty());
        assert_eq!(per.boundary_edges(&links).len(), 2);
    }
}
