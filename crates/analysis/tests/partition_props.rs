//! Property tests for the auto-partitioner and the partition algebra:
//!
//! * `auto_partition` output is a true partition — modules are
//!   disjoint, cover every node, and name only real nodes — on random
//!   connected topologies;
//! * boundary edges are exactly the links whose endpoints land in
//!   different modules (checked against an independent recomputation),
//!   and cutting them disconnects the corresponding modules;
//! * the degenerate partitions behave as specified: `monolithic` has
//!   one module and no boundary edges, `per_node` has one module per
//!   node and every link on the boundary.
//!
//! Case counts honour `VMN_FUZZ_CASES` like the workspace's other
//! randomized suites.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::collections::BTreeSet;
use vmn_analysis::{auto_partition, Partition};

fn fuzz_cases() -> u32 {
    match std::env::var("VMN_FUZZ_CASES") {
        Ok(v) => v.parse().expect("VMN_FUZZ_CASES must be a number"),
        Err(_) => 120,
    }
}

/// A random connected topology: a tree of infra nodes (switches and
/// middleboxes) with hosts hanging off random infra nodes, plus a few
/// random extra links for redundancy.
fn random_topology(rng: &mut TestRng) -> (Vec<(String, bool)>, Vec<(String, String)>) {
    let infra = 1 + rng.below(8) as usize;
    let hosts = 1 + rng.below(12) as usize;
    let mut nodes: Vec<(String, bool)> = Vec::new();
    let mut links: Vec<(String, String)> = Vec::new();
    for i in 0..infra {
        nodes.push((format!("s{i}"), true));
        if i > 0 {
            let up = rng.below(i as u64) as usize;
            links.push((format!("s{i}"), format!("s{up}")));
        }
    }
    for h in 0..hosts {
        let at = rng.below(infra as u64) as usize;
        nodes.push((format!("h{h}"), false));
        links.push((format!("h{h}"), format!("s{at}")));
    }
    // Redundant extra links between random infra pairs.
    for _ in 0..rng.below(3) {
        let a = rng.below(infra as u64) as usize;
        let b = rng.below(infra as u64) as usize;
        if a != b {
            let (lo, hi) = (a.min(b), a.max(b));
            let l = (format!("s{lo}"), format!("s{hi}"));
            if !links.contains(&l) && !links.contains(&(l.1.clone(), l.0.clone())) {
                links.push(l);
            }
        }
    }
    (nodes, links)
}

/// Independent recomputation of the cut edges of a partition.
fn cut_edges(p: &Partition, links: &[(String, String)]) -> BTreeSet<(String, String)> {
    links.iter().filter(|(a, b)| p.module_of(a) != p.module_of(b)).cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// The auto-partitioner always produces a true partition, and its
    /// boundary edges are exactly the cut edges.
    #[test]
    fn auto_partition_is_a_partition(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let (nodes, links) = random_topology(&mut rng);
        let p = auto_partition(&nodes, &links);
        p.validate(nodes.iter().map(|(n, _)| n.as_str()))
            .unwrap_or_else(|e| panic!("auto partition invalid: {e}\n{nodes:?}\n{links:?}"));
        let boundary: BTreeSet<(String, String)> =
            p.boundary_edges(&links).into_iter().collect();
        prop_assert_eq!(&boundary, &cut_edges(&p, &links));
        // Cut edges always join two infra nodes: hosts stay attached to
        // their access switch.
        for (a, b) in &boundary {
            let infra = |n: &str| nodes.iter().any(|(m, i)| m == n && *i);
            prop_assert!(infra(a) && infra(b), "host on a cut edge: {a} - {b}");
        }
        // Each module is internally connected once the cut edges are gone.
        for m in &p.modules {
            let inner: Vec<&(String, String)> = links
                .iter()
                .filter(|(a, b)| m.nodes.contains(a) && m.nodes.contains(b))
                .collect();
            let mut reached: BTreeSet<&str> = BTreeSet::new();
            let start = m.nodes.iter().next().expect("non-empty module");
            let mut stack = vec![start.as_str()];
            reached.insert(start);
            while let Some(v) = stack.pop() {
                for (a, b) in &inner {
                    let next = if a == v { Some(b.as_str()) }
                        else if b == v { Some(a.as_str()) } else { None };
                    if let Some(n) = next {
                        if reached.insert(n) {
                            stack.push(n);
                        }
                    }
                }
            }
            prop_assert_eq!(reached.len(), m.nodes.len(),
                "module {} not internally connected", m.name);
        }
    }

    /// Degenerate partitions recover the monolithic / per-node shapes.
    #[test]
    fn degenerate_partitions_behave(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let (nodes, links) = random_topology(&mut rng);
        let names: Vec<String> = nodes.iter().map(|(n, _)| n.clone()).collect();

        let mono = Partition::monolithic(names.clone());
        mono.validate(names.iter().map(String::as_str)).expect("monolithic is a partition");
        prop_assert_eq!(mono.len(), 1);
        prop_assert!(mono.boundary_edges(&links).is_empty());

        let per = Partition::per_node(names.clone());
        per.validate(names.iter().map(String::as_str)).expect("per-node is a partition");
        prop_assert_eq!(per.len(), names.len());
        prop_assert_eq!(per.boundary_edges(&links).len(), links.len());
    }
}
