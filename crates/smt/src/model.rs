//! Models (satisfying assignments) returned by the solver.

use crate::term::{Term, TermId, TermPool};
use std::collections::HashMap;

/// Value of a term under a model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Value {
    Bool(bool),
    /// Bit-vector value (LSB-aligned).
    Bv(u64),
    /// Equivalence-class identifier for an atom-sorted term. Two terms
    /// evaluate to the same class id iff the model makes them equal.
    Class(u32),
}

impl Value {
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_bv(self) -> Option<u64> {
        match self {
            Value::Bv(v) => Some(v),
            _ => None,
        }
    }
}

/// A satisfying assignment, recorded for every term the encoder touched.
///
/// Composite terms not seen during solving are evaluated recursively;
/// unconstrained variables default to `false` / `0` / a fresh class.
#[derive(Clone, Debug, Default)]
pub struct Model {
    values: HashMap<TermId, Value>,
    /// Next class id to hand an unconstrained atom-sorted term. Must be
    /// seeded past the largest harvested class id, or a fresh class would
    /// spuriously alias a real congruence class.
    next_fresh_class: u32,
}

impl Model {
    pub(crate) fn new(values: HashMap<TermId, Value>, next_fresh_class: u32) -> Model {
        Model { values, next_fresh_class }
    }

    /// Number of terms with recorded values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value recorded for `t`, if the encoder saw it.
    pub fn get(&self, t: TermId) -> Option<Value> {
        self.values.get(&t).copied()
    }

    /// Evaluates an arbitrary term under this model.
    ///
    /// Terms that were part of the solved formula are looked up directly;
    /// other terms are computed structurally. Atom-sorted terms that never
    /// appeared in the formula each receive a fresh class (making them
    /// distinct from everything else, which is always sound for free sorts).
    pub fn eval(&mut self, pool: &TermPool, t: TermId) -> Value {
        if let Some(v) = self.values.get(&t) {
            return *v;
        }
        let v = match pool.term(t).clone() {
            Term::Bool(b) => Value::Bool(b),
            Term::BvConst { value, .. } => Value::Bv(value),
            Term::Var { sort, .. } => match sort {
                crate::sorts::Sort::Bool => Value::Bool(false),
                crate::sorts::Sort::BitVec(_) => Value::Bv(0),
                crate::sorts::Sort::Atom(_) => {
                    let c = self.next_fresh_class;
                    self.next_fresh_class += 1;
                    Value::Class(c)
                }
            },
            Term::Not(a) => Value::Bool(!self.eval_bool(pool, a)),
            Term::And(xs) => Value::Bool(xs.iter().all(|&x| self.eval_bool(pool, x))),
            Term::Or(xs) => Value::Bool(xs.iter().any(|&x| self.eval_bool(pool, x))),
            Term::Iff(a, b) => Value::Bool(self.eval_bool(pool, a) == self.eval_bool(pool, b)),
            Term::Implies(a, b) => Value::Bool(!self.eval_bool(pool, a) || self.eval_bool(pool, b)),
            Term::Eq(a, b) => Value::Bool(self.eval(pool, a) == self.eval(pool, b)),
            Term::Ite { cond, then, els } => {
                if self.eval_bool(pool, cond) {
                    self.eval(pool, then)
                } else {
                    self.eval(pool, els)
                }
            }
            Term::BvUle(a, b) => {
                let va = self.eval(pool, a).as_bv().expect("bv operand");
                let vb = self.eval(pool, b).as_bv().expect("bv operand");
                Value::Bool(va <= vb)
            }
            Term::BvExtract { arg, hi, lo } => {
                let v = self.eval(pool, arg).as_bv().expect("bv operand");
                let width = hi - lo + 1;
                let shifted = v >> lo;
                Value::Bv(if width == 64 { shifted } else { shifted & ((1 << width) - 1) })
            }
            Term::Apply { .. } => {
                // An application the solver never saw: unconstrained, so a
                // fresh class (or false for predicates) is a sound choice.
                if pool.sort(t).is_bool() {
                    Value::Bool(false)
                } else {
                    let c = self.next_fresh_class;
                    self.next_fresh_class += 1;
                    Value::Class(c)
                }
            }
        };
        self.values.insert(t, v);
        v
    }

    /// Evaluates a boolean term, panicking if it is not boolean.
    pub fn eval_bool(&mut self, pool: &TermPool, t: TermId) -> bool {
        self.eval(pool, t).as_bool().expect("expected boolean term")
    }

    /// Evaluates a bit-vector term, panicking if it is not a bit-vector.
    pub fn eval_bv(&mut self, pool: &TermPool, t: TermId) -> u64 {
        self.eval(pool, t).as_bv().expect("expected bit-vector term")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorts::Sort;

    #[test]
    fn recursive_eval_of_unseen_terms() {
        let mut pool = TermPool::new();
        let x = pool.var("x", Sort::bitvec(8));
        let mut m = Model::new([(x, Value::Bv(0xAB))].into_iter().collect(), 0);
        let hi = pool.bv_extract(x, 7, 4);
        assert_eq!(m.eval(&pool, hi), Value::Bv(0xA));
        let c = pool.bv_const(0xAB, 8);
        let eq = pool.eq(x, c);
        assert_eq!(m.eval(&pool, eq), Value::Bool(true));
    }

    #[test]
    fn unconstrained_vars_get_defaults() {
        let mut pool = TermPool::new();
        let b = pool.var("b", Sort::Bool);
        let v = pool.var("v", Sort::bitvec(16));
        let mut m = Model::default();
        assert_eq!(m.eval(&pool, b), Value::Bool(false));
        assert_eq!(m.eval(&pool, v), Value::Bv(0));
    }

    #[test]
    fn fresh_classes_are_distinct() {
        let mut pool = TermPool::new();
        let mut sorts = crate::sorts::SortStore::new();
        let u = sorts.declare("U");
        let a = pool.var("a", u);
        let b = pool.var("b", u);
        let mut m = Model::default();
        let va = m.eval(&pool, a);
        let vb = m.eval(&pool, b);
        assert_ne!(va, vb);
        // Stable on re-query.
        assert_eq!(m.eval(&pool, a), va);
    }
}
