//! Sorts (types) of SMT terms.
//!
//! VMN needs three families of sorts: booleans, fixed-width bit-vectors
//! (addresses, ports, header fields) and uninterpreted *atom* sorts
//! (packet identities, node identities fed to classification oracles).

use std::fmt;

/// Identifier of a declared uninterpreted sort.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SortId(pub u32);

/// The sort of a term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// Propositional booleans.
    Bool,
    /// Bit-vectors of the given positive width (≤ 64).
    BitVec(u32),
    /// A declared uninterpreted sort.
    Atom(SortId),
}

impl Sort {
    pub const BOOL: Sort = Sort::Bool;

    /// Bit-vector sort of width `w`. Panics if `w` is zero or above 64;
    /// VMN header fields all fit in 64 bits.
    pub fn bitvec(w: u32) -> Sort {
        assert!((1..=64).contains(&w), "bit-vector width must be in 1..=64, got {w}");
        Sort::BitVec(w)
    }

    pub fn is_bool(self) -> bool {
        matches!(self, Sort::Bool)
    }

    pub fn bv_width(self) -> Option<u32> {
        match self {
            Sort::BitVec(w) => Some(w),
            _ => None,
        }
    }

    pub fn is_atom(self) -> bool {
        matches!(self, Sort::Atom(_))
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::BitVec(w) => write!(f, "(BitVec {w})"),
            Sort::Atom(id) => write!(f, "Atom#{}", id.0),
        }
    }
}

/// Registry of declared uninterpreted sorts.
#[derive(Default, Clone, Debug)]
pub struct SortStore {
    names: Vec<String>,
}

impl SortStore {
    pub fn new() -> SortStore {
        SortStore::default()
    }

    /// Declares a fresh uninterpreted sort and returns its [`Sort`].
    pub fn declare(&mut self, name: impl Into<String>) -> Sort {
        let id = SortId(self.names.len() as u32);
        self.names.push(name.into());
        Sort::Atom(id)
    }

    pub fn name(&self, id: SortId) -> &str {
        &self.names[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_name() {
        let mut s = SortStore::new();
        let pkt = s.declare("Packet");
        let node = s.declare("Node");
        assert_ne!(pkt, node);
        match (pkt, node) {
            (Sort::Atom(a), Sort::Atom(b)) => {
                assert_eq!(s.name(a), "Packet");
                assert_eq!(s.name(b), "Node");
            }
            _ => panic!("expected atom sorts"),
        }
    }

    #[test]
    fn bitvec_widths() {
        assert_eq!(Sort::bitvec(32).bv_width(), Some(32));
        assert_eq!(Sort::Bool.bv_width(), None);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        Sort::bitvec(0);
    }
}
