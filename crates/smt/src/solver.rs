//! The user-facing solver context.
//!
//! [`Context`] owns a [`TermPool`] and a list of assertions; [`Context::check`]
//! lowers everything to CNF (+ theory atoms), runs the CDCL(T) search and, on
//! SAT, stores a [`Model`] that can be queried for any term.
//!
//! The context is **incremental**: the CDCL solver, the EUF engine and the
//! Tseitin/bit-blast caches live as long as the context. Each check lowers
//! only the assertions added since the previous one, and
//! [`Context::check_assuming`] decides satisfiability under a set of
//! assumption literals without committing them — the idiom behind the VMN
//! verifier's per-failure-scenario activation literals, where thousands of
//! closely-related queries share one learnt-clause database.

use crate::blast::{BlastCaches, Blaster};
use crate::euf::Euf;
use crate::model::{Model, Value};
use crate::sat::{Lit, SatResult as CoreResult, Solver, SolverStats};
use crate::simplify::lower_atom_ites;
use crate::sorts::{Sort, SortStore};
use crate::term::{FuncId, TermId, TermPool};
use std::collections::HashMap;

/// Outcome of a [`Context::check`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment exists; retrieve it with [`Context::model`].
    Sat,
    /// No satisfying assignment exists.
    Unsat,
}

/// An SMT solving context: terms, assertions and check/model state.
pub struct Context {
    pool: TermPool,
    sorts: SortStore,
    assertions: Vec<TermId>,
    /// Cone bitmask per assertion (parallel to `assertions`): the cones
    /// open (via [`Context::begin_cone`]) when the assertion was added.
    /// Lowering pushes the mask into the SAT core so clauses — and, via
    /// conflict analysis, every lemma derived from them — carry their
    /// sub-query's tag.
    assertion_cones: Vec<u64>,
    /// Mask applied to assertions added now (0 outside any cone).
    open_cone: u64,
    model: Option<Model>,
    stats: SolverStats,
    /// Work done by the most recent check alone (stats delta around the
    /// solve call) — per-check attribution on the cumulative core.
    last_check: SolverStats,
    /// Persistent CDCL core; learnt clauses, activities and phases carry
    /// over between checks.
    sat: Solver,
    /// Persistent congruence-closure theory; rewound to its base state
    /// between checks, reopened for registration as needed.
    euf: Euf,
    /// Tseitin/bit-blast caches from previous checks (`None` before the
    /// first check).
    caches: Option<BlastCaches>,
    /// Number of assertions already lowered into the solver.
    lowered_upto: usize,
    /// Memoised atom-ITE lowering of assumption terms (their definitional
    /// side constraints are asserted exactly once).
    assumption_cache: HashMap<TermId, TermId>,
    /// Cumulative conflict count at the last
    /// [`Context::reset_search_state`] (0 if never reset) — the watermark
    /// behind [`Context::conflicts_since_search_reset`].
    search_reset_conflicts: u64,
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

impl Context {
    pub fn new() -> Context {
        Context {
            pool: TermPool::new(),
            sorts: SortStore::new(),
            assertions: Vec::new(),
            assertion_cones: Vec::new(),
            open_cone: 0,
            model: None,
            stats: SolverStats::default(),
            last_check: SolverStats::default(),
            sat: Solver::new(),
            euf: Euf::new(),
            caches: None,
            lowered_upto: 0,
            assumption_cache: HashMap::new(),
            search_reset_conflicts: 0,
        }
    }

    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    pub fn pool_mut(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    pub fn sorts(&self) -> &SortStore {
        &self.sorts
    }

    pub fn sorts_mut(&mut self) -> &mut SortStore {
        &mut self.sorts
    }

    /// Solver statistics, cumulative over every check this context ran
    /// (the CDCL core is persistent). Snapshot it before a check and use
    /// [`SolverStats::delta_since`] — or read [`Context::last_check_stats`]
    /// — to attribute work to individual checks.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Turns on DRAT-style proof logging in the CDCL core (see
    /// [`crate::sat::ProofLog`]). Must be called before the first check
    /// (the core must not have lowered any clause yet); idempotent. Every
    /// subsequent [`Context::check`]/[`Context::check_assuming`] records a
    /// certificate check against the session's shared proof log.
    pub fn enable_proofs(&mut self) {
        self.sat.enable_proof();
    }

    /// Whether proof logging is on.
    pub fn proofs_enabled(&self) -> bool {
        self.sat.proof().is_some()
    }

    /// Number of check records accumulated so far — the watermark callers
    /// snapshot before re-entering a pooled session, so
    /// [`Context::proof_session`] can export only their own checks.
    pub fn proof_checks(&self) -> usize {
        self.sat.proof().map_or(0, |p| p.num_checks())
    }

    /// Exports this session's proof for the trusted checker: the full
    /// shared step log, with check records from `checks_from` onwards.
    pub fn proof_session(&self, checks_from: usize) -> Option<vmn_check::SessionProof> {
        self.sat.proof_session(checks_from)
    }

    /// Work done by the most recent [`Context::check`] /
    /// [`Context::check_assuming`] alone (a delta over the cumulative
    /// [`Context::stats`]), so callers sharing one long-lived context
    /// across many queries can attribute cost per check.
    pub fn last_check_stats(&self) -> SolverStats {
        self.last_check
    }

    // ---- term construction conveniences (delegate to the pool) ----------

    pub fn tru(&self) -> TermId {
        self.pool.tru()
    }

    pub fn fls(&self) -> TermId {
        self.pool.fls()
    }

    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.pool.bool_const(b)
    }

    pub fn bv_const(&mut self, value: u64, width: u32) -> TermId {
        self.pool.bv_const(value, width)
    }

    /// Fresh uninterpreted constant (named variable) of any sort.
    pub fn fresh_const(&mut self, name: impl Into<String>, sort: Sort) -> TermId {
        self.pool.var(name, sort)
    }

    pub fn declare_fun(&mut self, name: impl Into<String>, args: &[Sort], ret: Sort) -> FuncId {
        self.pool.declare_fun(name, args, ret)
    }

    pub fn apply(&mut self, f: FuncId, args: &[TermId]) -> TermId {
        self.pool.apply(f, args)
    }

    pub fn not(&mut self, a: TermId) -> TermId {
        self.pool.not(a)
    }

    pub fn and(&mut self, args: &[TermId]) -> TermId {
        self.pool.and(args)
    }

    pub fn or(&mut self, args: &[TermId]) -> TermId {
        self.pool.or(args)
    }

    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.implies(a, b)
    }

    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.iff(a, b)
    }

    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.eq(a, b)
    }

    pub fn distinct(&mut self, xs: &[TermId]) -> TermId {
        let mut clauses = Vec::new();
        for i in 0..xs.len() {
            for j in (i + 1)..xs.len() {
                let e = self.pool.eq(xs[i], xs[j]);
                clauses.push(self.pool.not(e));
            }
        }
        self.pool.and(&clauses)
    }

    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        self.pool.ite(c, t, e)
    }

    pub fn bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.bv_ule(a, b)
    }

    pub fn bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.bv_ult(a, b)
    }

    pub fn bv_extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        self.pool.bv_extract(a, hi, lo)
    }

    pub fn bv_prefix_match(&mut self, a: TermId, value: u64, prefix_len: u32) -> TermId {
        self.pool.bv_prefix_match(a, value, prefix_len)
    }

    // ---- solving ---------------------------------------------------------

    /// Adds an assertion to the context.
    pub fn assert(&mut self, t: TermId) {
        assert!(self.pool.sort(t).is_bool(), "assertions must be boolean");
        self.assertions.push(t);
        self.assertion_cones.push(self.open_cone);
    }

    /// Opens cone `tag`: subsequent assertions (until [`Context::end_cone`])
    /// are tagged as belonging to sub-query `tag`, and so — transitively,
    /// through conflict analysis in the SAT core — is every lemma ever
    /// derived from their clauses. [`Context::forget_learnts_for`] later
    /// discards exactly those lemmas when the sub-query is deselected for
    /// good. Tags ≥ 63 share one saturated bit (sound over-forgetting).
    /// Nested calls replace the mask rather than stacking.
    pub fn begin_cone(&mut self, tag: u32) {
        self.open_cone = Solver::cone_bit(tag);
    }

    /// Closes the open cone; subsequent assertions are untagged (their
    /// lemmas are only ever forgotten by the literal scan, never by cone).
    pub fn end_cone(&mut self) {
        self.open_cone = 0;
    }

    pub fn num_assertions(&self) -> usize {
        self.assertions.len()
    }

    /// Decides satisfiability of the conjunction of all assertions.
    ///
    /// Incremental: only assertions added since the previous check are
    /// lowered, and the solver keeps everything it learnt. On `Sat`, the
    /// model is available via [`Context::model`].
    pub fn check(&mut self) -> SatResult {
        self.check_assuming(&[])
    }

    /// Decides satisfiability of all assertions **plus** the given
    /// assumption terms, without committing the assumptions.
    ///
    /// Assumptions must be boolean terms; they are lowered to literals and
    /// handed to the CDCL core as pseudo-decisions, so an `Unsat` answer
    /// means "unsatisfiable under these assumptions" and the context stays
    /// fully reusable — clauses learnt while refuting one assumption set
    /// accelerate the next. This is the engine behind the VMN verifier's
    /// failure-scenario sweeps: one activation literal per scenario,
    /// one `check_assuming` call per scenario, zero re-encoding.
    pub fn check_assuming(&mut self, assumptions: &[TermId]) -> SatResult {
        self.model = None;
        let stats_before = self.sat.stats();
        // Rewind to the base level: drops the previous call's assignment
        // (theory included) so that clause and term additions are legal.
        self.sat.backtrack_to_base(&mut self.euf);
        self.euf.unseal();

        // Lower atom-sorted ITEs (needs &mut pool, so done before
        // blasting) — for the new assertions and the assumption terms.
        let pending: Vec<(TermId, u64)> = self.assertions[self.lowered_upto..]
            .iter()
            .copied()
            .zip(self.assertion_cones[self.lowered_upto..].iter().copied())
            .collect();
        self.lowered_upto = self.assertions.len();
        let mut lowered = Vec::with_capacity(pending.len());
        for (t, cone) in pending {
            let (t2, side) = lower_atom_ites(&mut self.pool, t);
            lowered.push((t2, cone));
            // Definitional side constraints share their assertion's cone.
            lowered.extend(side.into_iter().map(|s| (s, cone)));
        }
        let mut assumption_terms = Vec::with_capacity(assumptions.len());
        for &t in assumptions {
            assert!(self.pool.sort(t).is_bool(), "assumptions must be boolean");
            let t2 = match self.assumption_cache.get(&t) {
                Some(&t2) => t2,
                None => {
                    let (t2, side) = lower_atom_ites(&mut self.pool, t);
                    // Side constraints are definitional (fresh-variable
                    // bindings), so asserting them permanently is sound;
                    // the memo keeps repeated checks on the same
                    // assumption from minting fresh variables each time.
                    // They carry no cone: activation plumbing outlives any
                    // one sub-query.
                    lowered.extend(side.into_iter().map(|s| (s, 0)));
                    self.assumption_cache.insert(t, t2);
                    t2
                }
            };
            assumption_terms.push(t2);
        }

        let mut blaster = match self.caches.take() {
            Some(c) => Blaster::resume(&self.pool, &mut self.sat, &mut self.euf, c),
            None => Blaster::new(&self.pool, &mut self.sat, &mut self.euf),
        };
        for &(t, cone) in &lowered {
            blaster.set_open_cone(cone);
            blaster.assert_true(t);
        }
        blaster.set_open_cone(0);
        let assumption_lits: Vec<Lit> =
            assumption_terms.iter().map(|&t| blaster.lit_of(t)).collect();
        let caches = blaster.into_caches();

        let result = self.sat.solve_with_assumptions(&assumption_lits, &mut self.euf);
        self.stats = self.sat.stats();
        self.last_check = self.stats.delta_since(&stats_before);
        let out = match result {
            CoreResult::Unsat => SatResult::Unsat,
            CoreResult::Sat => {
                // Harvest values for every term the encoder saw, then drop
                // the search assignment so the next call starts clean.
                let mut values: HashMap<TermId, Value> = HashMap::new();
                for t in caches.bool_terms() {
                    if let Some(b) = caches.bool_value(&self.sat, t) {
                        values.insert(t, Value::Bool(b));
                    }
                }
                for t in caches.bv_terms() {
                    if let Some(v) = caches.bv_value(&self.sat, t) {
                        values.insert(t, Value::Bv(v));
                    }
                }
                // Atom-sorted terms take their EUF congruence class (read
                // before the rewind below erases the classes).
                for idx in 0..self.pool.len() {
                    let t = TermId(idx as u32);
                    if self.pool.sort(t).is_atom() {
                        if let Some(c) = self.euf.class_of(t) {
                            values.insert(t, Value::Class(c));
                        }
                    }
                }
                // Seed the model's fresh-class counter past every
                // harvested EUF class id: an *unconstrained* atom-sorted
                // term evaluated later must receive a class distinct from
                // every constrained one, not a spurious alias of a real
                // congruence class.
                let next_fresh_class = values
                    .values()
                    .filter_map(|v| match v {
                        Value::Class(c) => Some(c + 1),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0);
                self.model = Some(Model::new(values, next_fresh_class));
                self.sat.backtrack_to_base(&mut self.euf);
                SatResult::Sat
            }
        };
        self.caches = Some(caches);
        out
    }

    /// Forgets every learnt clause rendered dead by the given boolean
    /// terms being *deselected* (assumed false from now on) — typically
    /// activation literals of sub-queries a session has moved past. A
    /// learnt clause containing the term's negation is satisfied while
    /// the term is assumed false, hence prunes nothing yet still costs
    /// watch-list traversals on every propagation; clauses mentioning
    /// the term only positively (lemmas learnt *while* it was
    /// deselected) keep pruning under the standing assumption and are
    /// kept. Terms never lowered to a literal are ignored. A no-op
    /// before the first check.
    pub fn forget_learnts_mentioning(&mut self, terms: &[TermId]) {
        self.forget_learnts_for(&[], terms);
    }

    /// The sharp variant of [`Context::forget_learnts_mentioning`]: also
    /// forgets every learnt clause derived (transitively) from an
    /// assertion tagged with one of the given cone `tags` — the lemmas
    /// from a deselected sub-query's Tseitin *interior*, which never
    /// mention its activation literal and so escape the literal scan.
    /// Sound because learnt clauses are redundant by construction; a
    /// no-op before the first check (nothing is lowered yet, hence
    /// nothing learnt).
    pub fn forget_learnts_for(&mut self, tags: &[u32], terms: &[TermId]) {
        let Some(caches) = &self.caches else { return };
        let dead: Vec<Lit> = terms.iter().filter_map(|&t| caches.lit_for(t)).map(|l| !l).collect();
        let mask = tags.iter().fold(0u64, |m, &t| m | Solver::cone_bit(t));
        if dead.is_empty() && mask == 0 {
            return;
        }
        self.sat.backtrack_to_base(&mut self.euf);
        self.sat.forget_learnts_in_cones(mask, &dead);
    }

    /// Resets the CDCL core's search heuristics (variable activities,
    /// branching order, saved phases) while keeping every clause — see
    /// [`Solver::reset_search_state`]. The session-pool policy uses this
    /// to scrub the foreign search profile off a heavily-worn session
    /// before the next sub-query re-enters it.
    pub fn reset_search_state(&mut self) {
        self.sat.backtrack_to_base(&mut self.euf);
        self.sat.reset_search_state();
        self.search_reset_conflicts = self.sat.stats().conflicts;
    }

    /// Conflicts accumulated since the last
    /// [`Context::reset_search_state`] (the context's lifetime total if
    /// never reset). The session-pool policy keys its scrub decision on
    /// this watermark, so only a session worn by heavyweight search
    /// *since* its last scrub is scrubbed again — not every session that
    /// ever crossed the threshold once.
    pub fn conflicts_since_search_reset(&self) -> u64 {
        self.sat.stats().conflicts.saturating_sub(self.search_reset_conflicts)
    }

    /// The model from the last `check`, if it returned [`SatResult::Sat`].
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Mutable access (model evaluation caches derived values).
    pub fn model_mut(&mut self) -> Option<&mut Model> {
        self.model.as_mut()
    }

    /// Evaluates `t` in the current model. Panics without a model.
    pub fn eval(&mut self, t: TermId) -> Value {
        let model = self.model.as_mut().expect("no model: call check() first");
        model.eval(&self.pool, t)
    }

    pub fn eval_bool(&mut self, t: TermId) -> bool {
        self.eval(t).as_bool().expect("expected boolean term")
    }

    pub fn eval_bv(&mut self, t: TermId) -> u64 {
        self.eval(t).as_bv().expect("expected bit-vector term")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_euf() {
        let mut ctx = Context::new();
        let pkt = ctx.sorts_mut().declare("Packet");
        let p = ctx.fresh_const("p", pkt);
        let q = ctx.fresh_const("q", pkt);
        let malicious = ctx.declare_fun("malicious?", &[pkt], Sort::BOOL);
        let mp = ctx.apply(malicious, &[p]);
        let mq = ctx.apply(malicious, &[q]);
        let same = ctx.eq(p, q);
        let not_mq = ctx.not(mq);
        ctx.assert(same);
        ctx.assert(mp);
        ctx.assert(not_mq);
        assert_eq!(ctx.check(), SatResult::Unsat);
    }

    #[test]
    fn model_roundtrip_bv() {
        let mut ctx = Context::new();
        let x = ctx.fresh_const("x", Sort::bitvec(16));
        let c = ctx.bv_const(0xBEE, 16);
        let eq = ctx.eq(x, c);
        ctx.assert(eq);
        assert_eq!(ctx.check(), SatResult::Sat);
        assert_eq!(ctx.eval_bv(x), 0xBEE);
    }

    #[test]
    fn distinct_constraint() {
        let mut ctx = Context::new();
        let u = ctx.sorts_mut().declare("U");
        let xs: Vec<TermId> = (0..3).map(|i| ctx.fresh_const(format!("x{i}"), u)).collect();
        let d = ctx.distinct(&xs);
        ctx.assert(d);
        assert_eq!(ctx.check(), SatResult::Sat);
        let v: Vec<Value> = xs.iter().map(|&x| ctx.eval(x)).collect();
        assert_ne!(v[0], v[1]);
        assert_ne!(v[1], v[2]);
        assert_ne!(v[0], v[2]);
    }

    #[test]
    fn distinct_with_forced_equality_unsat() {
        let mut ctx = Context::new();
        let u = ctx.sorts_mut().declare("U");
        let a = ctx.fresh_const("a", u);
        let b = ctx.fresh_const("b", u);
        let d = ctx.distinct(&[a, b]);
        let e = ctx.eq(a, b);
        ctx.assert(d);
        ctx.assert(e);
        assert_eq!(ctx.check(), SatResult::Unsat);
    }

    #[test]
    fn reuse_context_for_multiple_checks() {
        let mut ctx = Context::new();
        let x = ctx.fresh_const("x", Sort::Bool);
        ctx.assert(x);
        assert_eq!(ctx.check(), SatResult::Sat);
        let nx = ctx.not(x);
        ctx.assert(nx);
        assert_eq!(ctx.check(), SatResult::Unsat);
    }

    #[test]
    fn atom_ite_end_to_end() {
        let mut ctx = Context::new();
        let u = ctx.sorts_mut().declare("U");
        let c = ctx.fresh_const("c", Sort::Bool);
        let a = ctx.fresh_const("a", u);
        let b = ctx.fresh_const("b", u);
        let ite = ctx.ite(c, a, b);
        // ite != a and ite != b forces contradiction.
        let e1 = ctx.eq(ite, a);
        let n1 = ctx.not(e1);
        let e2 = ctx.eq(ite, b);
        let n2 = ctx.not(e2);
        ctx.assert(n1);
        ctx.assert(n2);
        assert_eq!(ctx.check(), SatResult::Unsat);
    }

    #[test]
    fn check_assuming_is_non_committal() {
        let mut ctx = Context::new();
        let g1 = ctx.fresh_const("g1", Sort::Bool);
        let g2 = ctx.fresh_const("g2", Sort::Bool);
        let x = ctx.fresh_const("x", Sort::bitvec(8));
        let five = ctx.bv_const(5, 8);
        let nine = ctx.bv_const(9, 8);
        let eq5 = ctx.eq(x, five);
        let eq9 = ctx.eq(x, nine);
        let r1 = ctx.implies(g1, eq5);
        let r2 = ctx.implies(g2, eq9);
        ctx.assert(r1);
        ctx.assert(r2);
        let ng1 = ctx.not(g1);
        let ng2 = ctx.not(g2);
        // Scenario 1: x = 5.
        assert_eq!(ctx.check_assuming(&[g1, ng2]), SatResult::Sat);
        assert_eq!(ctx.eval_bv(x), 5);
        // Scenario 2: x = 9 — the previous assumptions left no residue.
        assert_eq!(ctx.check_assuming(&[g2, ng1]), SatResult::Sat);
        assert_eq!(ctx.eval_bv(x), 9);
        // Both at once: contradictory, but only under these assumptions.
        assert_eq!(ctx.check_assuming(&[g1, g2]), SatResult::Unsat);
        assert_eq!(ctx.check(), SatResult::Sat, "context survives assumption UNSAT");
    }

    #[test]
    fn check_assuming_with_euf_atoms() {
        let mut ctx = Context::new();
        let u = ctx.sorts_mut().declare("U");
        let a = ctx.fresh_const("a", u);
        let b = ctx.fresh_const("b", u);
        let f = ctx.declare_fun("f", &[u], u);
        let fa = ctx.apply(f, &[a]);
        let fb = ctx.apply(f, &[b]);
        let ab = ctx.eq(a, b);
        let fafb = ctx.eq(fa, fb);
        let nfafb = ctx.not(fafb);
        ctx.assert(ab);
        for _ in 0..3 {
            assert_eq!(ctx.check_assuming(&[nfafb]), SatResult::Unsat, "congruence under a=b");
            assert_eq!(ctx.check_assuming(&[fafb]), SatResult::Sat);
            assert_eq!(ctx.check(), SatResult::Sat);
        }
    }

    #[test]
    fn assertions_between_assumption_checks() {
        let mut ctx = Context::new();
        let x = ctx.fresh_const("x", Sort::bitvec(4));
        let g = ctx.fresh_const("g", Sort::Bool);
        let three = ctx.bv_const(3, 4);
        let le = ctx.bv_ule(x, three);
        let guarded = ctx.implies(g, le);
        ctx.assert(guarded);
        assert_eq!(ctx.check_assuming(&[g]), SatResult::Sat);
        assert!(ctx.eval_bv(x) <= 3);
        // New permanent assertion after a check: x >= 12.
        let twelve = ctx.bv_const(12, 4);
        let ge = ctx.bv_ule(twelve, x);
        ctx.assert(ge);
        assert_eq!(ctx.check_assuming(&[g]), SatResult::Unsat);
        let ng = ctx.not(g);
        assert_eq!(ctx.check_assuming(&[ng]), SatResult::Sat);
        assert!(ctx.eval_bv(x) >= 12);
        assert_eq!(ctx.check(), SatResult::Sat);
    }

    #[test]
    fn unconstrained_atoms_never_alias_harvested_classes() {
        // Regression: the model's fresh-class counter must be seeded past
        // every class id harvested from the EUF engine, otherwise an
        // unconstrained atom-sorted term evaluated later can be handed a
        // class spuriously equal to a real congruence class.
        let mut ctx = Context::new();
        let u = ctx.sorts_mut().declare("U");
        let a = ctx.fresh_const("a", u);
        let b = ctx.fresh_const("b", u);
        let c = ctx.fresh_const("c", u);
        let d = ctx.fresh_const("d", u);
        let nd = {
            let e = ctx.eq(c, d);
            ctx.not(e)
        };
        let ab = ctx.eq(a, b);
        ctx.assert(ab);
        ctx.assert(nd);
        // Terms never mentioned in any assertion: no harvested value.
        let frees: Vec<TermId> = (0..6).map(|i| ctx.fresh_const(format!("f{i}"), u)).collect();
        assert_eq!(ctx.check(), SatResult::Sat);
        let va = ctx.eval(a);
        assert_eq!(va, ctx.eval(b), "constrained equality must harvest one class");
        let constrained = [va, ctx.eval(c), ctx.eval(d)];
        let mut seen: Vec<Value> = constrained.to_vec();
        for &f in &frees {
            let vf = ctx.eval(f);
            assert!(!seen.contains(&vf), "unconstrained atom got class {vf:?}, aliasing {seen:?}");
            seen.push(vf);
        }
    }

    #[test]
    fn per_check_stats_deltas() {
        let mut ctx = Context::new();
        let x = ctx.fresh_const("x", Sort::bitvec(8));
        let y = ctx.fresh_const("y", Sort::bitvec(8));
        let e = ctx.eq(x, y);
        ctx.assert(e);
        assert_eq!(ctx.check(), SatResult::Sat);
        let first = ctx.last_check_stats();
        let cumulative = ctx.stats();
        assert!(first.propagations > 0 || first.decisions > 0, "first check does real work");
        let ne = {
            let eq = ctx.eq(x, y);
            ctx.not(eq)
        };
        ctx.assert(ne);
        assert_eq!(ctx.check(), SatResult::Unsat);
        let second = ctx.last_check_stats();
        let total = ctx.stats();
        // The deltas partition the cumulative counters.
        assert_eq!(first.decisions + second.decisions, total.decisions);
        assert_eq!(first.conflicts + second.conflicts, total.conflicts);
        assert_eq!(total.delta_since(&cumulative).decisions, second.decisions);
    }

    #[test]
    fn cone_forget_keeps_verdicts() {
        // Two guarded sub-queries asserted under distinct cones; after
        // deselecting the first (cone forget + literal scan), every
        // verdict must be unchanged — the invariant-switch idiom the
        // encoder relies on.
        let mut ctx = Context::new();
        let g1 = ctx.fresh_const("g1", Sort::Bool);
        let g2 = ctx.fresh_const("g2", Sort::Bool);
        let x = ctx.fresh_const("x", Sort::bitvec(16));
        let a = ctx.bv_const(3, 16);
        let b = ctx.bv_const(9, 16);
        ctx.begin_cone(1);
        let r1 = {
            let e = ctx.eq(x, a);
            ctx.implies(g1, e)
        };
        ctx.assert(r1);
        ctx.end_cone();
        ctx.begin_cone(2);
        let r2 = {
            let e = ctx.eq(x, b);
            ctx.implies(g2, e)
        };
        ctx.assert(r2);
        ctx.end_cone();
        let ng1 = ctx.not(g1);
        let ng2 = ctx.not(g2);
        assert_eq!(ctx.check_assuming(&[g1, ng2]), SatResult::Sat);
        assert_eq!(ctx.eval_bv(x), 3);
        assert_eq!(ctx.check_assuming(&[g1, g2]), SatResult::Unsat);
        // Deselect g1 for good.
        ctx.forget_learnts_for(&[1], &[g1]);
        assert_eq!(ctx.check_assuming(&[g2, ng1]), SatResult::Sat);
        assert_eq!(ctx.eval_bv(x), 9);
        assert_eq!(ctx.check_assuming(&[g1, g2]), SatResult::Unsat, "semantics survive forget");
        assert_eq!(ctx.check(), SatResult::Sat);
    }

    #[test]
    fn prefix_match_semantics() {
        let mut ctx = Context::new();
        let addr = ctx.fresh_const("addr", Sort::bitvec(32));
        let in_subnet = ctx.bv_prefix_match(addr, 0x0A00_0000, 8); // 10/8
        let outside = ctx.bv_const(0x0B00_0001, 32); // 11.0.0.1 — outside 10/8
        let is_target = ctx.eq(addr, outside);
        ctx.assert(in_subnet);
        ctx.assert(is_target);
        assert_eq!(ctx.check(), SatResult::Unsat);
    }
}
