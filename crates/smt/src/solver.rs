//! The user-facing solver context.
//!
//! [`Context`] owns a [`TermPool`] and a list of assertions; [`Context::check`]
//! lowers everything to CNF (+ theory atoms), runs the CDCL(T) search and, on
//! SAT, stores a [`Model`] that can be queried for any term.

use crate::blast::Blaster;
use crate::euf::Euf;
use crate::model::{Model, Value};
use crate::sat::{SatResult as CoreResult, Solver, SolverStats};
use crate::simplify::lower_atom_ites;
use crate::sorts::{Sort, SortStore};
use crate::term::{FuncId, TermId, TermPool};
use std::collections::HashMap;

/// Outcome of a [`Context::check`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment exists; retrieve it with [`Context::model`].
    Sat,
    /// No satisfying assignment exists.
    Unsat,
}

/// An SMT solving context: terms, assertions and check/model state.
pub struct Context {
    pool: TermPool,
    sorts: SortStore,
    assertions: Vec<TermId>,
    model: Option<Model>,
    stats: SolverStats,
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

impl Context {
    pub fn new() -> Context {
        Context {
            pool: TermPool::new(),
            sorts: SortStore::new(),
            assertions: Vec::new(),
            model: None,
            stats: SolverStats::default(),
        }
    }

    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    pub fn pool_mut(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    pub fn sorts(&self) -> &SortStore {
        &self.sorts
    }

    pub fn sorts_mut(&mut self) -> &mut SortStore {
        &mut self.sorts
    }

    /// Statistics from the most recent [`Context::check`].
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    // ---- term construction conveniences (delegate to the pool) ----------

    pub fn tru(&self) -> TermId {
        self.pool.tru()
    }

    pub fn fls(&self) -> TermId {
        self.pool.fls()
    }

    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.pool.bool_const(b)
    }

    pub fn bv_const(&mut self, value: u64, width: u32) -> TermId {
        self.pool.bv_const(value, width)
    }

    /// Fresh uninterpreted constant (named variable) of any sort.
    pub fn fresh_const(&mut self, name: impl Into<String>, sort: Sort) -> TermId {
        self.pool.var(name, sort)
    }

    pub fn declare_fun(&mut self, name: impl Into<String>, args: &[Sort], ret: Sort) -> FuncId {
        self.pool.declare_fun(name, args, ret)
    }

    pub fn apply(&mut self, f: FuncId, args: &[TermId]) -> TermId {
        self.pool.apply(f, args)
    }

    pub fn not(&mut self, a: TermId) -> TermId {
        self.pool.not(a)
    }

    pub fn and(&mut self, args: &[TermId]) -> TermId {
        self.pool.and(args)
    }

    pub fn or(&mut self, args: &[TermId]) -> TermId {
        self.pool.or(args)
    }

    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.implies(a, b)
    }

    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.iff(a, b)
    }

    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.eq(a, b)
    }

    pub fn distinct(&mut self, xs: &[TermId]) -> TermId {
        let mut clauses = Vec::new();
        for i in 0..xs.len() {
            for j in (i + 1)..xs.len() {
                let e = self.pool.eq(xs[i], xs[j]);
                clauses.push(self.pool.not(e));
            }
        }
        self.pool.and(&clauses)
    }

    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        self.pool.ite(c, t, e)
    }

    pub fn bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.bv_ule(a, b)
    }

    pub fn bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.bv_ult(a, b)
    }

    pub fn bv_extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        self.pool.bv_extract(a, hi, lo)
    }

    pub fn bv_prefix_match(&mut self, a: TermId, value: u64, prefix_len: u32) -> TermId {
        self.pool.bv_prefix_match(a, value, prefix_len)
    }

    // ---- solving ---------------------------------------------------------

    /// Adds an assertion to the context.
    pub fn assert(&mut self, t: TermId) {
        assert!(self.pool.sort(t).is_bool(), "assertions must be boolean");
        self.assertions.push(t);
    }

    pub fn num_assertions(&self) -> usize {
        self.assertions.len()
    }

    /// Decides satisfiability of the conjunction of all assertions.
    ///
    /// Each call runs a fresh solve over the full assertion set (the VMN
    /// verifier builds one context per invariant check, so incrementality
    /// is not needed). On `Sat`, the model is available via
    /// [`Context::model`].
    pub fn check(&mut self) -> SatResult {
        self.model = None;

        // Lower atom-sorted ITEs (needs &mut pool, so done before blasting).
        let mut lowered = Vec::with_capacity(self.assertions.len());
        for t in self.assertions.clone() {
            let (t2, side) = lower_atom_ites(&mut self.pool, t);
            lowered.push(t2);
            lowered.extend(side);
        }

        let mut solver = Solver::new();
        let mut euf = Euf::new();
        let mut blaster = Blaster::new(&self.pool, &mut solver, &mut euf);
        for &t in &lowered {
            blaster.assert_true(t);
        }
        let caches = blaster.into_caches();

        let result = solver.solve(&mut euf);
        self.stats = solver.stats();
        match result {
            CoreResult::Unsat => SatResult::Unsat,
            CoreResult::Sat => {
                // Harvest values for every term the encoder saw.
                let mut values: HashMap<TermId, Value> = HashMap::new();
                for t in caches.bool_terms() {
                    if let Some(b) = caches.bool_value(&solver, t) {
                        values.insert(t, Value::Bool(b));
                    }
                }
                for t in caches.bv_terms() {
                    if let Some(v) = caches.bv_value(&solver, t) {
                        values.insert(t, Value::Bv(v));
                    }
                }
                // Atom-sorted terms take their EUF congruence class.
                for idx in 0..self.pool.len() {
                    let t = TermId(idx as u32);
                    if self.pool.sort(t).is_atom() {
                        if let Some(c) = euf.class_of(t) {
                            values.insert(t, Value::Class(c));
                        }
                    }
                }
                self.model = Some(Model::new(values, 0));
                SatResult::Sat
            }
        }
    }

    /// The model from the last `check`, if it returned [`SatResult::Sat`].
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Mutable access (model evaluation caches derived values).
    pub fn model_mut(&mut self) -> Option<&mut Model> {
        self.model.as_mut()
    }

    /// Evaluates `t` in the current model. Panics without a model.
    pub fn eval(&mut self, t: TermId) -> Value {
        let model = self.model.as_mut().expect("no model: call check() first");
        model.eval(&self.pool, t)
    }

    pub fn eval_bool(&mut self, t: TermId) -> bool {
        self.eval(t).as_bool().expect("expected boolean term")
    }

    pub fn eval_bv(&mut self, t: TermId) -> u64 {
        self.eval(t).as_bv().expect("expected bit-vector term")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_euf() {
        let mut ctx = Context::new();
        let pkt = ctx.sorts_mut().declare("Packet");
        let p = ctx.fresh_const("p", pkt);
        let q = ctx.fresh_const("q", pkt);
        let malicious = ctx.declare_fun("malicious?", &[pkt], Sort::BOOL);
        let mp = ctx.apply(malicious, &[p]);
        let mq = ctx.apply(malicious, &[q]);
        let same = ctx.eq(p, q);
        let not_mq = ctx.not(mq);
        ctx.assert(same);
        ctx.assert(mp);
        ctx.assert(not_mq);
        assert_eq!(ctx.check(), SatResult::Unsat);
    }

    #[test]
    fn model_roundtrip_bv() {
        let mut ctx = Context::new();
        let x = ctx.fresh_const("x", Sort::bitvec(16));
        let c = ctx.bv_const(0xBEE, 16);
        let eq = ctx.eq(x, c);
        ctx.assert(eq);
        assert_eq!(ctx.check(), SatResult::Sat);
        assert_eq!(ctx.eval_bv(x), 0xBEE);
    }

    #[test]
    fn distinct_constraint() {
        let mut ctx = Context::new();
        let u = ctx.sorts_mut().declare("U");
        let xs: Vec<TermId> = (0..3).map(|i| ctx.fresh_const(format!("x{i}"), u)).collect();
        let d = ctx.distinct(&xs);
        ctx.assert(d);
        assert_eq!(ctx.check(), SatResult::Sat);
        let v: Vec<Value> = xs.iter().map(|&x| ctx.eval(x)).collect();
        assert_ne!(v[0], v[1]);
        assert_ne!(v[1], v[2]);
        assert_ne!(v[0], v[2]);
    }

    #[test]
    fn distinct_with_forced_equality_unsat() {
        let mut ctx = Context::new();
        let u = ctx.sorts_mut().declare("U");
        let a = ctx.fresh_const("a", u);
        let b = ctx.fresh_const("b", u);
        let d = ctx.distinct(&[a, b]);
        let e = ctx.eq(a, b);
        ctx.assert(d);
        ctx.assert(e);
        assert_eq!(ctx.check(), SatResult::Unsat);
    }

    #[test]
    fn reuse_context_for_multiple_checks() {
        let mut ctx = Context::new();
        let x = ctx.fresh_const("x", Sort::Bool);
        ctx.assert(x);
        assert_eq!(ctx.check(), SatResult::Sat);
        let nx = ctx.not(x);
        ctx.assert(nx);
        assert_eq!(ctx.check(), SatResult::Unsat);
    }

    #[test]
    fn atom_ite_end_to_end() {
        let mut ctx = Context::new();
        let u = ctx.sorts_mut().declare("U");
        let c = ctx.fresh_const("c", Sort::Bool);
        let a = ctx.fresh_const("a", u);
        let b = ctx.fresh_const("b", u);
        let ite = ctx.ite(c, a, b);
        // ite != a and ite != b forces contradiction.
        let e1 = ctx.eq(ite, a);
        let n1 = ctx.not(e1);
        let e2 = ctx.eq(ite, b);
        let n2 = ctx.not(e2);
        ctx.assert(n1);
        ctx.assert(n2);
        assert_eq!(ctx.check(), SatResult::Unsat);
    }

    #[test]
    fn prefix_match_semantics() {
        let mut ctx = Context::new();
        let addr = ctx.fresh_const("addr", Sort::bitvec(32));
        let in_subnet = ctx.bv_prefix_match(addr, 0x0A00_0000, 8); // 10/8
        let outside = ctx.bv_const(0x0B00_0001, 32); // 11.0.0.1 — outside 10/8
        let is_target = ctx.eq(addr, outside);
        ctx.assert(in_subnet);
        ctx.assert(is_target);
        assert_eq!(ctx.check(), SatResult::Unsat);
    }
}
