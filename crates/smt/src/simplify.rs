//! Pre-solving term rewrites.
//!
//! The [`TermPool`](crate::term::TermPool) constructors already perform
//! local simplification (constant folding, flattening, complementary-pair
//! detection). This module adds the rewrites that need a global view:
//!
//! * **Atom-sorted if-then-else lowering** — the bit-blaster cannot mux
//!   uninterpreted values, so `ite(c, a, b) : Atom` is replaced by a fresh
//!   constant `x` with side conditions `c → x = a` and `¬c → x = b`.

use crate::term::{Term, TermId, TermPool};
use std::collections::HashMap;

/// Rewrites away if-then-else over atom sorts.
///
/// Returns the rewritten term plus the side constraints that must be
/// asserted alongside it.
pub fn lower_atom_ites(pool: &mut TermPool, t: TermId) -> (TermId, Vec<TermId>) {
    let mut lowerer = Lowerer { cache: HashMap::new(), side: Vec::new() };
    let out = lowerer.go(pool, t);
    (out, lowerer.side)
}

struct Lowerer {
    cache: HashMap<TermId, TermId>,
    side: Vec<TermId>,
}

impl Lowerer {
    fn go(&mut self, pool: &mut TermPool, t: TermId) -> TermId {
        if let Some(&r) = self.cache.get(&t) {
            return r;
        }
        let out = match pool.term(t).clone() {
            Term::Bool(_) | Term::BvConst { .. } | Term::Var { .. } => t,
            Term::Not(a) => {
                let a2 = self.go(pool, a);
                pool.not(a2)
            }
            Term::And(xs) => {
                let xs2: Vec<TermId> = xs.iter().map(|&x| self.go(pool, x)).collect();
                pool.and(&xs2)
            }
            Term::Or(xs) => {
                let xs2: Vec<TermId> = xs.iter().map(|&x| self.go(pool, x)).collect();
                pool.or(&xs2)
            }
            Term::Iff(a, b) => {
                let a2 = self.go(pool, a);
                let b2 = self.go(pool, b);
                pool.iff(a2, b2)
            }
            Term::Implies(a, b) => {
                let a2 = self.go(pool, a);
                let b2 = self.go(pool, b);
                pool.implies(a2, b2)
            }
            Term::Eq(a, b) => {
                let a2 = self.go(pool, a);
                let b2 = self.go(pool, b);
                pool.eq(a2, b2)
            }
            Term::BvUle(a, b) => {
                let a2 = self.go(pool, a);
                let b2 = self.go(pool, b);
                pool.bv_ule(a2, b2)
            }
            Term::BvExtract { arg, hi, lo } => {
                let a2 = self.go(pool, arg);
                pool.bv_extract(a2, hi, lo)
            }
            Term::Apply { func, args } => {
                let args2: Vec<TermId> = args.iter().map(|&a| self.go(pool, a)).collect();
                pool.apply(func, &args2)
            }
            Term::Ite { cond, then, els } => {
                let c = self.go(pool, cond);
                let a = self.go(pool, then);
                let b = self.go(pool, els);
                if pool.sort(a).is_atom() {
                    let x = pool.var("ite!", pool.sort(a));
                    let eq_a = pool.eq(x, a);
                    let eq_b = pool.eq(x, b);
                    let nc = pool.not(c);
                    let s1 = pool.implies(c, eq_a);
                    let s2 = pool.implies(nc, eq_b);
                    self.side.push(s1);
                    self.side.push(s2);
                    x
                } else {
                    pool.ite(c, a, b)
                }
            }
        };
        self.cache.insert(t, out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorts::{Sort, SortStore};

    #[test]
    fn atom_ite_is_lowered() {
        let mut pool = TermPool::new();
        let mut sorts = SortStore::new();
        let u = sorts.declare("U");
        let c = pool.var("c", Sort::Bool);
        let a = pool.var("a", u);
        let b = pool.var("b", u);
        let ite = pool.ite(c, a, b);
        let x = pool.var("x", u);
        let eq = pool.eq(ite, x);
        let (out, side) = lower_atom_ites(&mut pool, eq);
        assert_ne!(out, eq, "term must be rewritten");
        assert_eq!(side.len(), 2, "two side constraints");
        // No Ite remains anywhere in the rewritten terms.
        fn has_ite(pool: &TermPool, t: TermId) -> bool {
            match pool.term(t) {
                Term::Ite { cond, then, els } => {
                    pool.sort(*then).is_atom()
                        || has_ite(pool, *cond)
                        || has_ite(pool, *then)
                        || has_ite(pool, *els)
                }
                Term::Not(a) => has_ite(pool, *a),
                Term::And(xs) | Term::Or(xs) => xs.iter().any(|&x| has_ite(pool, x)),
                Term::Iff(a, b) | Term::Implies(a, b) | Term::Eq(a, b) | Term::BvUle(a, b) => {
                    has_ite(pool, *a) || has_ite(pool, *b)
                }
                Term::BvExtract { arg, .. } => has_ite(pool, *arg),
                Term::Apply { args, .. } => args.iter().any(|&x| has_ite(pool, x)),
                _ => false,
            }
        }
        assert!(!has_ite(&pool, out));
        for s in side {
            assert!(!has_ite(&pool, s));
        }
    }

    #[test]
    fn bv_ite_untouched() {
        let mut pool = TermPool::new();
        let c = pool.var("c", Sort::Bool);
        let a = pool.var("a", Sort::bitvec(8));
        let b = pool.var("b", Sort::bitvec(8));
        let ite = pool.ite(c, a, b);
        let (out, side) = lower_atom_ites(&mut pool, ite);
        assert_eq!(out, ite);
        assert!(side.is_empty());
    }
}
