//! Hash-consed term graph.
//!
//! All formulas handed to the solver are built from [`Term`]s interned in a
//! [`TermPool`]. Interning gives structural sharing (the bounded-trace
//! grounding in `vmn-logic` produces heavily repetitive formulas) and makes
//! equality of subterms a pointer comparison.

use crate::sorts::Sort;
use std::collections::HashMap;
use std::fmt;

/// Index of an interned term inside its [`TermPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a declared uninterpreted function or predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Signature of a declared uninterpreted function.
#[derive(Clone, Debug)]
pub struct FuncDecl {
    pub name: String,
    pub args: Vec<Sort>,
    pub ret: Sort,
}

/// Term node. Boolean connectives are n-ary where natural; bit-vector
/// operations cover what the VMN encoder needs (equality, extraction,
/// unsigned comparison, if-then-else).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// Boolean constant.
    Bool(bool),
    /// Bit-vector constant of the given width (value in low bits).
    BvConst {
        value: u64,
        width: u32,
    },
    /// Free variable / uninterpreted constant.
    Var {
        name: String,
        sort: Sort,
        id: u32,
    },
    Not(TermId),
    And(Vec<TermId>),
    Or(Vec<TermId>),
    /// Boolean equivalence (binary XNOR).
    Iff(TermId, TermId),
    Implies(TermId, TermId),
    /// Equality; operands share any non-Bool sort.
    Eq(TermId, TermId),
    /// If-then-else over booleans or bit-vectors.
    Ite {
        cond: TermId,
        then: TermId,
        els: TermId,
    },
    /// Unsigned `a <= b` on bit-vectors of equal width.
    BvUle(TermId, TermId),
    /// Bits `hi..=lo` of a bit-vector (inclusive, `hi >= lo`).
    BvExtract {
        arg: TermId,
        hi: u32,
        lo: u32,
    },
    /// Uninterpreted function application. Result sort must be `Bool` or an
    /// atom sort (bit-vector-valued functions are not supported; the VMN
    /// encoder uses per-instance variables for header fields instead).
    Apply {
        func: FuncId,
        args: Vec<TermId>,
    },
}

/// Interner and sort-checker for terms.
///
/// Construction methods panic on ill-sorted input: formulas are built by
/// this repository's own encoders, so a sort error is a bug, not user error.
pub struct TermPool {
    terms: Vec<Term>,
    sorts: Vec<Sort>,
    intern: HashMap<Term, TermId>,
    funcs: Vec<FuncDecl>,
    next_var: u32,
    true_id: TermId,
    false_id: TermId,
}

impl TermPool {
    pub fn new() -> TermPool {
        let mut pool = TermPool {
            terms: Vec::new(),
            sorts: Vec::new(),
            intern: HashMap::new(),
            funcs: Vec::new(),
            next_var: 0,
            true_id: TermId(0),
            false_id: TermId(0),
        };
        pool.true_id = pool.intern(Term::Bool(true), Sort::Bool);
        pool.false_id = pool.intern(Term::Bool(false), Sort::Bool);
        pool
    }

    fn intern(&mut self, t: Term, sort: Sort) -> TermId {
        if let Some(&id) = self.intern.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.intern.insert(t.clone(), id);
        self.terms.push(t);
        self.sorts.push(sort);
        id
    }

    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    pub fn sort(&self, id: TermId) -> Sort {
        self.sorts[id.index()]
    }

    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        false // the pool always holds `true` and `false`
    }

    pub fn func(&self, f: FuncId) -> &FuncDecl {
        &self.funcs[f.0 as usize]
    }

    // ---- constructors -------------------------------------------------

    pub fn tru(&self) -> TermId {
        self.true_id
    }

    pub fn fls(&self) -> TermId {
        self.false_id
    }

    pub fn bool_const(&mut self, b: bool) -> TermId {
        if b {
            self.true_id
        } else {
            self.false_id
        }
    }

    pub fn bv_const(&mut self, value: u64, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "bad bit-vector width {width}");
        let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
        assert_eq!(masked, value, "constant {value:#x} does not fit in {width} bits");
        self.intern(Term::BvConst { value, width }, Sort::BitVec(width))
    }

    /// Creates a fresh variable. Names are for diagnostics only; two calls
    /// with the same name still produce distinct variables.
    pub fn var(&mut self, name: impl Into<String>, sort: Sort) -> TermId {
        let id = self.next_var;
        self.next_var += 1;
        self.intern(Term::Var { name: name.into(), sort, id }, sort)
    }

    pub fn declare_fun(&mut self, name: impl Into<String>, args: &[Sort], ret: Sort) -> FuncId {
        assert!(
            ret.is_bool() || ret.is_atom(),
            "uninterpreted functions must return Bool or an atom sort"
        );
        assert!(
            args.iter().all(|s| s.is_atom()),
            "uninterpreted function arguments must have atom sorts; \
             bit-vector arguments would require theory combination"
        );
        let f = FuncId(self.funcs.len() as u32);
        self.funcs.push(FuncDecl { name: name.into(), args: args.to_vec(), ret });
        f
    }

    pub fn apply(&mut self, func: FuncId, args: &[TermId]) -> TermId {
        // Borrow the declaration rather than cloning it (the name is a
        // String; cloning it on every application was measurable on the
        // encoder hot path).
        let decl = &self.funcs[func.0 as usize];
        assert_eq!(decl.args.len(), args.len(), "arity mismatch applying {}", decl.name);
        let ret = decl.ret;
        for (i, (&a, &expect)) in args.iter().zip(decl.args.iter()).enumerate() {
            assert_eq!(
                self.sorts[a.index()],
                expect,
                "argument {i} of {} has wrong sort",
                decl.name
            );
        }
        self.intern(Term::Apply { func, args: args.to_vec() }, ret)
    }

    pub fn not(&mut self, a: TermId) -> TermId {
        assert!(self.sort(a).is_bool(), "not: expected Bool");
        match *self.term(a) {
            Term::Bool(b) => self.bool_const(!b),
            Term::Not(inner) => inner,
            _ => self.intern(Term::Not(a), Sort::Bool),
        }
    }

    pub fn and(&mut self, args: &[TermId]) -> TermId {
        let mut flat: Vec<TermId> = Vec::with_capacity(args.len());
        for &a in args {
            assert!(self.sort(a).is_bool(), "and: expected Bool");
            match self.term(a) {
                Term::Bool(true) => {}
                Term::Bool(false) => return self.false_id,
                Term::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(a),
            }
        }
        flat.sort();
        flat.dedup();
        // x ∧ ¬x — detect complementary pair.
        for &t in &flat {
            if let Term::Not(inner) = *self.term(t) {
                if flat.binary_search(&inner).is_ok() {
                    return self.false_id;
                }
            }
        }
        match flat.len() {
            0 => self.true_id,
            1 => flat[0],
            _ => self.intern(Term::And(flat), Sort::Bool),
        }
    }

    pub fn or(&mut self, args: &[TermId]) -> TermId {
        let mut flat: Vec<TermId> = Vec::with_capacity(args.len());
        for &a in args {
            assert!(self.sort(a).is_bool(), "or: expected Bool");
            match self.term(a) {
                Term::Bool(false) => {}
                Term::Bool(true) => return self.true_id,
                Term::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(a),
            }
        }
        flat.sort();
        flat.dedup();
        for &t in &flat {
            if let Term::Not(inner) = *self.term(t) {
                if flat.binary_search(&inner).is_ok() {
                    return self.true_id;
                }
            }
        }
        match flat.len() {
            0 => self.false_id,
            1 => flat[0],
            _ => self.intern(Term::Or(flat), Sort::Bool),
        }
    }

    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        assert!(self.sort(a).is_bool() && self.sort(b).is_bool(), "implies: expected Bool");
        if a == self.true_id {
            return b;
        }
        if a == self.false_id || b == self.true_id {
            return self.true_id;
        }
        if b == self.false_id {
            return self.not(a);
        }
        if a == b {
            return self.true_id;
        }
        self.intern(Term::Implies(a, b), Sort::Bool)
    }

    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        assert!(self.sort(a).is_bool() && self.sort(b).is_bool(), "iff: expected Bool");
        if a == b {
            return self.true_id;
        }
        if a == self.true_id {
            return b;
        }
        if b == self.true_id {
            return a;
        }
        if a == self.false_id {
            return self.not(b);
        }
        if b == self.false_id {
            return self.not(a);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Term::Iff(a, b), Sort::Bool)
    }

    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        let sa = self.sort(a);
        let sb = self.sort(b);
        assert_eq!(sa, sb, "eq: sort mismatch {sa} vs {sb}");
        if sa.is_bool() {
            return self.iff(a, b);
        }
        if a == b {
            return self.true_id;
        }
        // Constant folding for bit-vector constants.
        if let (Term::BvConst { value: va, .. }, Term::BvConst { value: vb, .. }) =
            (self.term(a), self.term(b))
        {
            let r = va == vb;
            return self.bool_const(r);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Term::Eq(a, b), Sort::Bool)
    }

    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        assert!(self.sort(cond).is_bool(), "ite: condition must be Bool");
        let st = self.sort(then);
        assert_eq!(st, self.sort(els), "ite: branch sort mismatch");
        if cond == self.true_id {
            return then;
        }
        if cond == self.false_id {
            return els;
        }
        if then == els {
            return then;
        }
        if st.is_bool() {
            // cond ? t : e  ==  (cond → t) ∧ (¬cond → e)
            let imp1 = self.implies(cond, then);
            let ncond = self.not(cond);
            let imp2 = self.implies(ncond, els);
            return self.and(&[imp1, imp2]);
        }
        self.intern(Term::Ite { cond, then, els }, st)
    }

    pub fn bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.sort(a).bv_width().expect("bv_ule: expected bit-vector");
        assert_eq!(Some(w), self.sort(b).bv_width(), "bv_ule: width mismatch");
        if let (Term::BvConst { value: va, .. }, Term::BvConst { value: vb, .. }) =
            (self.term(a), self.term(b))
        {
            let r = va <= vb;
            return self.bool_const(r);
        }
        if a == b {
            return self.true_id;
        }
        self.intern(Term::BvUle(a, b), Sort::Bool)
    }

    pub fn bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        let le = self.bv_ule(b, a);
        self.not(le)
    }

    pub fn bv_extract(&mut self, arg: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.sort(arg).bv_width().expect("bv_extract: expected bit-vector");
        assert!(hi >= lo && hi < w, "bv_extract: bad range [{hi}:{lo}] on width {w}");
        let out_w = hi - lo + 1;
        if let Term::BvConst { value, .. } = *self.term(arg) {
            let shifted = value >> lo;
            let masked = if out_w == 64 { shifted } else { shifted & ((1u64 << out_w) - 1) };
            return self.bv_const(masked, out_w);
        }
        if lo == 0 && hi == w - 1 {
            return arg;
        }
        self.intern(Term::BvExtract { arg, hi, lo }, Sort::BitVec(out_w))
    }

    /// `a` matches constant `value` on its top `prefix_len` bits — the
    /// longest-prefix-match primitive used by forwarding-table encodings.
    pub fn bv_prefix_match(&mut self, a: TermId, value: u64, prefix_len: u32) -> TermId {
        let w = self.sort(a).bv_width().expect("bv_prefix_match: expected bit-vector");
        if prefix_len == 0 {
            return self.true_id;
        }
        assert!(prefix_len <= w, "prefix length {prefix_len} exceeds width {w}");
        let hi = w - 1;
        let lo = w - prefix_len;
        let ext = self.bv_extract(a, hi, lo);
        let cst_val =
            if w == 64 && lo == 0 { value } else { (value >> lo) & ((1u64 << prefix_len) - 1) };
        let cst = self.bv_const(cst_val, prefix_len);
        self.eq(ext, cst)
    }

    /// Pretty-printer for diagnostics and tests.
    pub fn display(&self, id: TermId) -> String {
        match self.term(id) {
            Term::Bool(b) => b.to_string(),
            Term::BvConst { value, width } => format!("{value}#{width}"),
            Term::Var { name, id, .. } => format!("{name}.{id}"),
            Term::Not(a) => format!("(not {})", self.display(*a)),
            Term::And(xs) => {
                let inner: Vec<_> = xs.iter().map(|&x| self.display(x)).collect();
                format!("(and {})", inner.join(" "))
            }
            Term::Or(xs) => {
                let inner: Vec<_> = xs.iter().map(|&x| self.display(x)).collect();
                format!("(or {})", inner.join(" "))
            }
            Term::Iff(a, b) => format!("(iff {} {})", self.display(*a), self.display(*b)),
            Term::Implies(a, b) => format!("(=> {} {})", self.display(*a), self.display(*b)),
            Term::Eq(a, b) => format!("(= {} {})", self.display(*a), self.display(*b)),
            Term::Ite { cond, then, els } => format!(
                "(ite {} {} {})",
                self.display(*cond),
                self.display(*then),
                self.display(*els)
            ),
            Term::BvUle(a, b) => format!("(bvule {} {})", self.display(*a), self.display(*b)),
            Term::BvExtract { arg, hi, lo } => {
                format!("((extract {hi} {lo}) {})", self.display(*arg))
            }
            Term::Apply { func, args } => {
                let name = &self.funcs[func.0 as usize].name;
                let inner: Vec<_> = args.iter().map(|&x| self.display(x)).collect();
                format!("({name} {})", inner.join(" "))
            }
        }
    }
}

impl Default for TermPool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bool);
        let y = p.var("y", Sort::Bool);
        let a1 = p.and(&[x, y]);
        let a2 = p.and(&[y, x]);
        assert_eq!(a1, a2, "AND is canonicalised by argument order");
    }

    #[test]
    fn fresh_vars_differ_even_with_same_name() {
        let mut p = TermPool::new();
        let x1 = p.var("x", Sort::Bool);
        let x2 = p.var("x", Sort::Bool);
        assert_ne!(x1, x2);
    }

    #[test]
    fn and_or_simplifications() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bool);
        let nx = p.not(x);
        let t = p.tru();
        let f = p.fls();
        assert_eq!(p.and(&[x, t]), x);
        assert_eq!(p.and(&[x, f]), f);
        assert_eq!(p.and(&[x, nx]), f);
        assert_eq!(p.or(&[x, f]), x);
        assert_eq!(p.or(&[x, t]), t);
        assert_eq!(p.or(&[x, nx]), t);
        assert_eq!(p.and(&[]), t);
        assert_eq!(p.or(&[]), f);
    }

    #[test]
    fn double_negation() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bool);
        let nx = p.not(x);
        assert_eq!(p.not(nx), x);
    }

    #[test]
    fn eq_constant_folding() {
        let mut p = TermPool::new();
        let a = p.bv_const(5, 8);
        let b = p.bv_const(5, 8);
        let c = p.bv_const(6, 8);
        assert_eq!(p.eq(a, b), p.tru());
        assert_eq!(p.eq(a, c), p.fls());
    }

    #[test]
    fn extract_of_constant() {
        let mut p = TermPool::new();
        let a = p.bv_const(0b1101_0110, 8);
        let hi_nibble = p.bv_extract(a, 7, 4);
        assert_eq!(*p.term(hi_nibble), Term::BvConst { value: 0b1101, width: 4 });
    }

    #[test]
    fn prefix_match_folding() {
        let mut p = TermPool::new();
        let addr = p.bv_const(0xC0A8_0101, 32); // 192.168.1.1
        let m = p.bv_prefix_match(addr, 0xC0A8_0000, 16); // 192.168/16
        assert_eq!(m, p.tru());
        let m2 = p.bv_prefix_match(addr, 0x0A00_0000, 8); // 10/8
        assert_eq!(m2, p.fls());
    }

    #[test]
    fn ule_constant_folding() {
        let mut p = TermPool::new();
        let a = p.bv_const(3, 8);
        let b = p.bv_const(7, 8);
        assert_eq!(p.bv_ule(a, b), p.tru());
        assert_eq!(p.bv_ule(b, a), p.fls());
    }

    #[test]
    #[should_panic(expected = "sort mismatch")]
    fn eq_requires_same_sort() {
        let mut p = TermPool::new();
        let a = p.bv_const(1, 8);
        let b = p.bv_const(1, 16);
        p.eq(a, b);
    }

    #[test]
    fn apply_checks_arity_and_sorts() {
        let mut p = TermPool::new();
        let mut sorts = crate::sorts::SortStore::new();
        let pkt = sorts.declare("Packet");
        let f = p.declare_fun("malicious?", &[pkt], Sort::Bool);
        let x = p.var("p", pkt);
        let app1 = p.apply(f, &[x]);
        let app2 = p.apply(f, &[x]);
        assert_eq!(app1, app2);
        assert!(p.sort(app1).is_bool());
    }

    #[test]
    fn ite_simplifies() {
        let mut p = TermPool::new();
        let c = p.var("c", Sort::Bool);
        let a = p.bv_const(1, 4);
        let b = p.bv_const(2, 4);
        let t = p.tru();
        let f = p.fls();
        assert_eq!(p.ite(t, a, b), a);
        assert_eq!(p.ite(f, a, b), b);
        assert_eq!(p.ite(c, a, a), a);
    }
}
