//! Lowering of terms to CNF: Tseitin transformation for the boolean
//! skeleton, bit-blasting for bit-vector operations, and registration of
//! equality/predicate atoms with the EUF theory.
//!
//! Bit-vectors are represented LSB-first as vectors of SAT literals. All
//! encodings are cached per term, so the structural sharing created by the
//! hash-consed [`TermPool`](crate::term::TermPool) carries over to the CNF.

use crate::euf::Euf;
use crate::sat::{Lit, Solver};
use crate::sorts::Sort;
use crate::term::{Term, TermId, TermPool};
use std::collections::HashMap;

/// Translates terms into clauses inside a [`Solver`], wiring theory atoms
/// into a [`Euf`] instance.
pub struct Blaster<'a> {
    pool: &'a TermPool,
    solver: &'a mut Solver,
    euf: &'a mut Euf,
    bool_cache: HashMap<TermId, Lit>,
    bv_cache: HashMap<TermId, Vec<Lit>>,
    true_lit: Lit,
}

impl<'a> Blaster<'a> {
    pub fn new(pool: &'a TermPool, solver: &'a mut Solver, euf: &'a mut Euf) -> Blaster<'a> {
        let true_lit = Lit::pos(solver.new_var());
        solver.add_clause(&[true_lit]);
        Blaster {
            pool,
            solver,
            euf,
            bool_cache: HashMap::new(),
            bv_cache: HashMap::new(),
            true_lit,
        }
    }

    /// Reopens a blasting session over caches produced by an earlier
    /// session (see [`Blaster::into_caches`]). Terms already lowered keep
    /// their literals, so incremental solving re-encodes nothing.
    pub fn resume(
        pool: &'a TermPool,
        solver: &'a mut Solver,
        euf: &'a mut Euf,
        caches: BlastCaches,
    ) -> Blaster<'a> {
        Blaster {
            pool,
            solver,
            euf,
            bool_cache: caches.bool_cache,
            bv_cache: caches.bv_cache,
            true_lit: caches.true_lit,
        }
    }

    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// Sets the solver's open cone mask for subsequently emitted clauses
    /// (see [`Solver::set_open_cone`]); pass 0 to close it. Used by the
    /// context to tag each assertion's CNF with its sub-query cone.
    pub fn set_open_cone(&mut self, mask: u64) {
        self.solver.set_open_cone(mask);
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            !self.true_lit
        }
    }

    fn is_const(&self, l: Lit) -> Option<bool> {
        if l == self.true_lit {
            Some(true)
        } else if l == !self.true_lit {
            Some(false)
        } else {
            None
        }
    }

    // ---- gate helpers ---------------------------------------------------

    /// Literal equivalent to the conjunction of `xs`.
    fn and_lits(&mut self, xs: &[Lit]) -> Lit {
        let mut ins = Vec::with_capacity(xs.len());
        for &x in xs {
            match self.is_const(x) {
                Some(true) => {}
                Some(false) => return self.const_lit(false),
                None => ins.push(x),
            }
        }
        ins.sort();
        ins.dedup();
        match ins.len() {
            0 => self.const_lit(true),
            1 => ins[0],
            _ => {
                let o = self.fresh();
                let mut last = vec![o];
                for &x in &ins {
                    self.solver.add_clause(&[!o, x]);
                    last.push(!x);
                }
                self.solver.add_clause(&last);
                o
            }
        }
    }

    /// Literal equivalent to the disjunction of `xs`.
    fn or_lits(&mut self, xs: &[Lit]) -> Lit {
        let neg: Vec<Lit> = xs.iter().map(|&x| !x).collect();
        let a = self.and_lits(&neg);
        !a
    }

    /// Literal equivalent to `a ↔ b`.
    fn iff_lit(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return self.const_lit(true);
        }
        if a == !b {
            return self.const_lit(false);
        }
        if let Some(ca) = self.is_const(a) {
            return if ca { b } else { !b };
        }
        if let Some(cb) = self.is_const(b) {
            return if cb { a } else { !a };
        }
        let o = self.fresh();
        self.solver.add_clause(&[!o, !a, b]);
        self.solver.add_clause(&[!o, a, !b]);
        self.solver.add_clause(&[o, a, b]);
        self.solver.add_clause(&[o, !a, !b]);
        o
    }

    /// Literal equivalent to `cond ? t : e`.
    fn mux_lit(&mut self, cond: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        if let Some(c) = self.is_const(cond) {
            return if c { t } else { e };
        }
        let o = self.fresh();
        self.solver.add_clause(&[!cond, !t, o]);
        self.solver.add_clause(&[!cond, t, !o]);
        self.solver.add_clause(&[cond, !e, o]);
        self.solver.add_clause(&[cond, e, !o]);
        o
    }

    // ---- term lowering ---------------------------------------------------

    /// Literal for a boolean term.
    pub fn lit_of(&mut self, t: TermId) -> Lit {
        debug_assert!(self.pool.sort(t).is_bool(), "lit_of on non-boolean term");
        if let Some(&l) = self.bool_cache.get(&t) {
            return l;
        }
        let lit = match self.pool.term(t).clone() {
            Term::Bool(b) => self.const_lit(b),
            Term::Var { .. } => self.fresh(),
            Term::Not(a) => {
                let la = self.lit_of(a);
                !la
            }
            Term::And(xs) => {
                let ls: Vec<Lit> = xs.iter().map(|&x| self.lit_of(x)).collect();
                self.and_lits(&ls)
            }
            Term::Or(xs) => {
                let ls: Vec<Lit> = xs.iter().map(|&x| self.lit_of(x)).collect();
                self.or_lits(&ls)
            }
            Term::Iff(a, b) => {
                let la = self.lit_of(a);
                let lb = self.lit_of(b);
                self.iff_lit(la, lb)
            }
            Term::Implies(a, b) => {
                let la = self.lit_of(a);
                let lb = self.lit_of(b);
                self.or_lits(&[!la, lb])
            }
            Term::Eq(a, b) => match self.pool.sort(a) {
                Sort::Bool => unreachable!("pool lowers boolean Eq to Iff"),
                Sort::BitVec(_) => {
                    let ba = self.bits_of(a);
                    let bb = self.bits_of(b);
                    let eqs: Vec<Lit> =
                        ba.iter().zip(bb.iter()).map(|(&x, &y)| self.iff_lit(x, y)).collect();
                    self.and_lits(&eqs)
                }
                Sort::Atom(_) => {
                    let na = self.euf.node(self.pool, a);
                    let nb = self.euf.node(self.pool, b);
                    let v = self.solver.new_var();
                    self.euf.add_eq_atom(v, na, nb);
                    Lit::pos(v)
                }
            },
            Term::Ite { cond, then, els } => {
                // The pool encodes boolean ITE with implications, but keep a
                // direct mux in case callers construct one explicitly.
                let c = self.lit_of(cond);
                let lt = self.lit_of(then);
                let le = self.lit_of(els);
                self.mux_lit(c, lt, le)
            }
            Term::BvUle(a, b) => {
                let ba = self.bits_of(a);
                let bb = self.bits_of(b);
                // LSB-to-MSB chain: le_i = (¬a_i ∧ b_i) ∨ ((a_i ↔ b_i) ∧ le_{i-1}).
                let mut le = self.const_lit(true);
                for (&ai, &bi) in ba.iter().zip(bb.iter()) {
                    let strict = self.and_lits(&[!ai, bi]);
                    let same = self.iff_lit(ai, bi);
                    let carry = self.and_lits(&[same, le]);
                    le = self.or_lits(&[strict, carry]);
                }
                le
            }
            Term::BvExtract { .. } => unreachable!("extract has bit-vector sort"),
            Term::Apply { .. } => {
                let n = self.euf.node(self.pool, t);
                let v = self.solver.new_var();
                self.euf.add_pred_atom(v, n);
                Lit::pos(v)
            }
            Term::BvConst { .. } => unreachable!("constant has bit-vector sort"),
        };
        self.bool_cache.insert(t, lit);
        lit
    }

    /// Bit literals (LSB-first) for a bit-vector term.
    pub fn bits_of(&mut self, t: TermId) -> Vec<Lit> {
        if let Some(bits) = self.bv_cache.get(&t) {
            return bits.clone();
        }
        let width = self.pool.sort(t).bv_width().expect("bits_of on non-bit-vector term");
        let bits = match self.pool.term(t).clone() {
            Term::BvConst { value, .. } => {
                (0..width).map(|i| self.const_lit((value >> i) & 1 == 1)).collect::<Vec<_>>()
            }
            Term::Var { .. } => (0..width).map(|_| self.fresh()).collect(),
            Term::Ite { cond, then, els } => {
                let c = self.lit_of(cond);
                let bt = self.bits_of(then);
                let be = self.bits_of(els);
                bt.iter().zip(be.iter()).map(|(&x, &y)| self.mux_lit(c, x, y)).collect()
            }
            Term::BvExtract { arg, hi, lo } => {
                let b = self.bits_of(arg);
                b[lo as usize..=hi as usize].to_vec()
            }
            other => panic!("term {other:?} cannot be bit-blasted"),
        };
        debug_assert_eq!(bits.len(), width as usize);
        self.bv_cache.insert(t, bits.clone());
        bits
    }

    /// Asserts a boolean term at the top level, exploiting clause structure
    /// where cheap (conjunctions split, disjunctions become one clause).
    pub fn assert_true(&mut self, t: TermId) {
        match self.pool.term(t).clone() {
            Term::Bool(true) => {}
            Term::Bool(false) => {
                self.solver.add_clause(&[]);
            }
            Term::And(xs) => {
                for x in xs {
                    self.assert_true(x);
                }
            }
            Term::Or(xs) => {
                let clause: Vec<Lit> = xs.iter().map(|&x| self.lit_of(x)).collect();
                self.solver.add_clause(&clause);
            }
            Term::Implies(a, b) => {
                let la = self.lit_of(a);
                let lb = self.lit_of(b);
                self.solver.add_clause(&[!la, lb]);
            }
            Term::Not(inner) => {
                let l = self.lit_of(inner);
                self.solver.add_clause(&[!l]);
            }
            _ => {
                let l = self.lit_of(t);
                self.solver.add_clause(&[l]);
            }
        }
    }

    /// Consumes the blaster, releasing its borrows and returning the
    /// encoding caches for model extraction and later resumption
    /// ([`Blaster::resume`]).
    pub fn into_caches(self) -> BlastCaches {
        BlastCaches {
            bool_cache: self.bool_cache,
            bv_cache: self.bv_cache,
            true_lit: self.true_lit,
        }
    }
}

/// Term-to-literal caches produced by a [`Blaster`], used to read a model
/// back out of the SAT solver after solving and to resume encoding in a
/// later incremental session.
pub struct BlastCaches {
    bool_cache: HashMap<TermId, Lit>,
    bv_cache: HashMap<TermId, Vec<Lit>>,
    true_lit: Lit,
}

impl BlastCaches {
    /// The literal a boolean term was lowered to, if it has been lowered.
    pub(crate) fn lit_for(&self, t: TermId) -> Option<Lit> {
        self.bool_cache.get(&t).copied()
    }

    /// Truth value of a cached boolean term under the solver's model.
    pub fn bool_value(&self, solver: &Solver, t: TermId) -> Option<bool> {
        self.bool_cache.get(&t).map(|&l| solver.model_value(l.var()) ^ l.is_neg())
    }

    /// Value of a cached bit-vector term under the solver's model.
    pub fn bv_value(&self, solver: &Solver, t: TermId) -> Option<u64> {
        self.bv_cache.get(&t).map(|bits| {
            bits.iter().enumerate().fold(0u64, |acc, (i, &l)| {
                let bit = solver.model_value(l.var()) ^ l.is_neg();
                acc | ((bit as u64) << i)
            })
        })
    }

    /// All boolean terms that received an encoding.
    pub fn bool_terms(&self) -> impl Iterator<Item = TermId> + '_ {
        self.bool_cache.keys().copied()
    }

    /// All bit-vector terms that received an encoding.
    pub fn bv_terms(&self) -> impl Iterator<Item = TermId> + '_ {
        self.bv_cache.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;

    fn setup() -> (TermPool, Solver, Euf) {
        (TermPool::new(), Solver::new(), Euf::new())
    }

    #[test]
    fn bv_equality_sat_assigns_equal_values() {
        let (mut pool, mut solver, mut euf) = setup();
        let x = pool.var("x", Sort::bitvec(8));
        let y = pool.var("y", Sort::bitvec(8));
        let eq = pool.eq(x, y);
        let mut b = Blaster::new(&pool, &mut solver, &mut euf);
        b.assert_true(eq);
        let (bx, by) = (b.bits_of(x), b.bits_of(y));
        assert_eq!(solver.solve(&mut euf), SatResult::Sat);
        let val = |bits: &[Lit], s: &Solver| {
            bits.iter().enumerate().fold(0u64, |acc, (i, &l)| {
                let v = s.model_value(l.var()) ^ l.is_neg();
                acc | ((v as u64) << i)
            })
        };
        assert_eq!(val(&bx, &solver), val(&by, &solver));
    }

    #[test]
    fn bv_disequality_with_constant() {
        let (mut pool, mut solver, mut euf) = setup();
        let x = pool.var("x", Sort::bitvec(4));
        let c = pool.bv_const(9, 4);
        let eq = pool.eq(x, c);
        let ne = pool.not(eq);
        let mut b = Blaster::new(&pool, &mut solver, &mut euf);
        b.assert_true(ne);
        let bx = b.bits_of(x);
        assert_eq!(solver.solve(&mut euf), SatResult::Sat);
        let got = bx.iter().enumerate().fold(0u64, |acc, (i, &l)| {
            acc | (((solver.model_value(l.var()) ^ l.is_neg()) as u64) << i)
        });
        assert_ne!(got, 9);
    }

    #[test]
    fn ule_total_order_conflict() {
        // x <= 3 and x >= 12 on 4 bits: UNSAT.
        let (mut pool, mut solver, mut euf) = setup();
        let x = pool.var("x", Sort::bitvec(4));
        let three = pool.bv_const(3, 4);
        let twelve = pool.bv_const(12, 4);
        let a = pool.bv_ule(x, three);
        let b2 = pool.bv_ule(twelve, x);
        let mut b = Blaster::new(&pool, &mut solver, &mut euf);
        b.assert_true(a);
        b.assert_true(b2);
        assert_eq!(solver.solve(&mut euf), SatResult::Unsat);
    }

    #[test]
    fn ule_range_sat() {
        let (mut pool, mut solver, mut euf) = setup();
        let x = pool.var("x", Sort::bitvec(6));
        let lo = pool.bv_const(10, 6);
        let hi = pool.bv_const(12, 6);
        let a = pool.bv_ule(lo, x);
        let b2 = pool.bv_ule(x, hi);
        let mut b = Blaster::new(&pool, &mut solver, &mut euf);
        b.assert_true(a);
        b.assert_true(b2);
        let bx = b.bits_of(x);
        assert_eq!(solver.solve(&mut euf), SatResult::Sat);
        let got = bx.iter().enumerate().fold(0u64, |acc, (i, &l)| {
            acc | (((solver.model_value(l.var()) ^ l.is_neg()) as u64) << i)
        });
        assert!((10..=12).contains(&got), "x = {got}");
    }

    #[test]
    fn extract_links_fields() {
        // Top nibble of x must equal 0xA while x = 0xA5 is consistent.
        let (mut pool, mut solver, mut euf) = setup();
        let x = pool.var("x", Sort::bitvec(8));
        let hi = pool.bv_extract(x, 7, 4);
        let a_const = pool.bv_const(0xA, 4);
        let full = pool.bv_const(0xA5, 8);
        let c1 = pool.eq(hi, a_const);
        let c2 = pool.eq(x, full);
        let mut b = Blaster::new(&pool, &mut solver, &mut euf);
        b.assert_true(c1);
        b.assert_true(c2);
        assert_eq!(solver.solve(&mut euf), SatResult::Sat);
    }

    #[test]
    fn extract_conflicts_with_mismatched_constant() {
        let (mut pool, mut solver, mut euf) = setup();
        let x = pool.var("x", Sort::bitvec(8));
        let hi = pool.bv_extract(x, 7, 4);
        let b_const = pool.bv_const(0xB, 4);
        let full = pool.bv_const(0xA5, 8);
        let c1 = pool.eq(hi, b_const);
        let c2 = pool.eq(x, full);
        let mut b = Blaster::new(&pool, &mut solver, &mut euf);
        b.assert_true(c1);
        b.assert_true(c2);
        assert_eq!(solver.solve(&mut euf), SatResult::Unsat);
    }

    #[test]
    fn bv_ite_selects_branch() {
        let (mut pool, mut solver, mut euf) = setup();
        let c = pool.var("c", Sort::Bool);
        let a = pool.bv_const(1, 4);
        let b2 = pool.bv_const(2, 4);
        let ite = pool.ite(c, a, b2);
        let two = pool.bv_const(2, 4);
        let eq = pool.eq(ite, two);
        let mut b = Blaster::new(&pool, &mut solver, &mut euf);
        b.assert_true(eq);
        let cl = b.lit_of(c);
        assert_eq!(solver.solve(&mut euf), SatResult::Sat);
        let cval = solver.model_value(cl.var()) ^ cl.is_neg();
        assert!(!cval, "condition must be false to select 2");
    }
}
