//! A self-contained SMT solver used as the decision procedure for VMN,
//! the mutable-datapath network verifier.
//!
//! The paper this repository reproduces ("Verifying Reachability in
//! Networks with Mutable Datapaths", NSDI 2017) discharges its verification
//! conditions with Z3. This crate is the from-scratch substitute: a
//! [CDCL](sat) SAT core extended DPLL(T)-style with an
//! [equality-and-uninterpreted-functions](euf) theory solver, plus a
//! [bit-vector front end](blast) that lowers fixed-width terms to
//! propositional logic.
//!
//! The solver handles the quantifier-free fragment the VMN encoder emits
//! after bounded-trace grounding (see `vmn-logic`):
//!
//! * booleans with the usual connectives,
//! * fixed-width bit-vectors with equality, extraction and unsigned
//!   comparison (network addresses, ports, header fields),
//! * uninterpreted sorts, constants and function/predicate applications
//!   (packet identities and classification oracles).
//!
//! # Example
//!
//! ```
//! use vmn_smt::{Context, SatResult};
//!
//! let mut ctx = Context::new();
//! let pkt = ctx.sorts_mut().declare("Packet");
//! let p = ctx.fresh_const("p", pkt);
//! let q = ctx.fresh_const("q", pkt);
//! let malicious = ctx.declare_fun("malicious?", &[pkt], vmn_smt::Sort::BOOL);
//!
//! let mp = ctx.apply(malicious, &[p]);
//! let mq = ctx.apply(malicious, &[q]);
//! let same = ctx.eq(p, q);
//! let not_mq = ctx.not(mq);
//!
//! // p = q, malicious?(p), !malicious?(q) is unsatisfiable by congruence.
//! ctx.assert(same);
//! ctx.assert(mp);
//! ctx.assert(not_mq);
//! assert_eq!(ctx.check(), SatResult::Unsat);
//! ```

#![forbid(unsafe_code)]

pub mod blast;
pub mod euf;
pub mod model;
pub mod sat;
pub mod simplify;
pub mod solver;
pub mod sorts;
pub mod term;

pub use model::{Model, Value};
pub use sat::{Lit, ProofLog, SatResult as CoreSatResult, SolverStats, Var};
pub use solver::{Context, SatResult};
pub use sorts::{Sort, SortId, SortStore};
pub use term::{FuncDecl, FuncId, Term, TermId, TermPool};
