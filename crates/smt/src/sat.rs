//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This is a MiniSat-lineage solver: two-watched-literal propagation,
//! first-UIP conflict analysis with recursive clause minimisation, EVSIDS
//! variable activities with an indexed binary heap, phase saving, Luby
//! restarts and activity-driven deletion of learnt clauses.
//!
//! Clause storage is a flat literal arena: every clause is a `(start, len)`
//! window into one contiguous `Vec<Lit>` (a `u32` each), so the propagation
//! hot path walks cache-friendly memory and adding a clause performs no
//! per-clause allocation.
//!
//! The solver is **incremental**: [`Solver::solve_with_assumptions`] takes a
//! set of literals that are enqueued as pseudo-decisions below all real
//! decisions. An UNSAT answer then means "unsatisfiable under these
//! assumptions" — the solver itself stays usable, and everything learned
//! (clauses, variable activities, saved phases) persists into the next
//! call. Between calls the trail is rewound to decision level zero, which
//! also rewinds any attached theory via [`Theory::on_backtrack`].
//!
//! The solver exposes a small DPLL(T) hook ([`Theory`]): every literal
//! assignment (decision or propagation) is reported to the theory, which
//! may veto it with a conflict explanation; backtracking is mirrored into
//! the theory. The EUF solver in [`crate::euf`] plugs in through this
//! trait.

use std::fmt;
use vmn_check::{CheckRecord, ClauseId, Outcome, ProofStep, SessionProof};

/// A propositional variable, numbered from zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var << 1 | sign` where `sign == 1` means negated, so that
/// a literal indexes watch lists directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    #[inline]
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var.0 << 1 | negated as u32)
    }

    #[inline]
    pub fn pos(var: Var) -> Lit {
        Lit::new(var, false)
    }

    #[inline]
    pub fn neg(var: Var) -> Lit {
        Lit::new(var, true)
    }

    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Index suitable for watch lists (`2 * var + sign`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "!" } else { "" }, self.0 >> 1)
    }
}

/// Three-valued assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// Result of a satisfiability call on the core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    Sat,
    Unsat,
}

/// Conflict raised by a theory solver: a set of literals that are all
/// currently assigned true but jointly inconsistent with the theory.
#[derive(Clone, Debug)]
pub struct TheoryConflict {
    pub lits: Vec<Lit>,
}

/// DPLL(T) hook. Implementations are notified of every assignment in trail
/// order and of backtracking; they may reject an assignment by returning a
/// [`TheoryConflict`] whose literals must all be true under the current
/// assignment (including the literal just asserted).
pub trait Theory {
    /// Called for every literal as it becomes true (decision or propagation).
    fn on_assert(&mut self, lit: Lit) -> Result<(), TheoryConflict>;
    /// Called when the trail is truncated to `new_len` entries.
    fn on_backtrack(&mut self, new_len: usize);
    /// Called once a full assignment is reached, before the solver reports
    /// SAT. Check-only theories that validate eagerly can return `Ok(())`.
    fn final_check(&mut self) -> Result<(), TheoryConflict>;
}

/// A theory that accepts everything; used for pure SAT solving.
pub struct NoTheory;

impl Theory for NoTheory {
    fn on_assert(&mut self, _lit: Lit) -> Result<(), TheoryConflict> {
        Ok(())
    }
    fn on_backtrack(&mut self, _new_len: usize) {}
    fn final_check(&mut self) -> Result<(), TheoryConflict> {
        Ok(())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ClauseRef(u32);

/// Per-clause metadata; the literals live in the shared arena at
/// `arena[start .. start + len]`.
struct ClauseMeta {
    start: u32,
    len: u32,
    learnt: bool,
    deleted: bool,
    /// Activity for learnt-clause garbage collection.
    activity: f64,
    /// Cone membership bitmask (see [`Solver::set_open_cone`]): for an
    /// original clause, the cones open when it was added; for a learnt
    /// clause, the union over every clause resolved in its derivation —
    /// so a learnt clause is tagged with every sub-query whose encoding
    /// it (transitively) depends on. Tags ≥ 63 share the top bit, which
    /// only ever causes sound over-forgetting of redundant clauses.
    cone: u64,
    /// Proof-log clause id (0 when proof logging is off). Unlike
    /// [`ClauseRef`], which [`Solver::compact_arena`] renumbers, the proof
    /// id is stable for the lifetime of the session — deletions and hints
    /// in the log refer to it.
    pid: ClauseId,
}

#[derive(Clone, Copy)]
struct Watch {
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and we can skip inspecting it.
    blocker: Lit,
}

/// Indexed max-heap over variable activities (the VSIDS order).
struct VarOrder {
    heap: Vec<Var>,
    /// position of a variable in `heap`, or `usize::MAX`.
    index: Vec<usize>,
}

impl VarOrder {
    fn new() -> VarOrder {
        VarOrder { heap: Vec::new(), index: Vec::new() }
    }

    fn contains(&self, v: Var) -> bool {
        self.index.get(v.index()).is_some_and(|&i| i != usize::MAX)
    }

    fn grow(&mut self, n: usize) {
        if self.index.len() < n {
            self.index.resize(n, usize::MAX);
        }
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.grow(v.index() + 1);
        self.index[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.index[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        if let Some(&i) = self.index.get(v.index()) {
            if i != usize::MAX {
                self.sift_up(i, act);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.index[self.heap[a].index()] = a;
        self.index[self.heap[b].index()] = b;
    }
}

/// Luby restart sequence: 1 1 2 1 1 2 4 ...
fn luby(mut i: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) >> 1;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

/// Statistics reported by [`Solver::stats`]. Cumulative over the lifetime
/// of the solver (incremental solving keeps one solver across many calls);
/// use [`SolverStats::delta_since`] to attribute work to a single check.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    pub decisions: u64,
    pub propagations: u64,
    pub conflicts: u64,
    pub restarts: u64,
    pub learnt_clauses: u64,
    pub deleted_clauses: u64,
    /// Clause-arena garbage collections (see [`Solver::compact_arena`]).
    pub arena_compactions: u64,
    /// Literal slots reclaimed by arena compactions, cumulative.
    pub reclaimed_lits: u64,
}

impl SolverStats {
    /// Field-wise difference against an earlier snapshot of the same
    /// solver — the per-check delta on a persistent, cumulative core.
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses.saturating_sub(earlier.learnt_clauses),
            deleted_clauses: self.deleted_clauses.saturating_sub(earlier.deleted_clauses),
            arena_compactions: self.arena_compactions.saturating_sub(earlier.arena_compactions),
            reclaimed_lits: self.reclaimed_lits.saturating_sub(earlier.reclaimed_lits),
        }
    }
}

impl std::ops::Add for SolverStats {
    type Output = SolverStats;
    fn add(self, o: SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions + o.decisions,
            propagations: self.propagations + o.propagations,
            conflicts: self.conflicts + o.conflicts,
            restarts: self.restarts + o.restarts,
            learnt_clauses: self.learnt_clauses + o.learnt_clauses,
            deleted_clauses: self.deleted_clauses + o.deleted_clauses,
            arena_compactions: self.arena_compactions + o.arena_compactions,
            reclaimed_lits: self.reclaimed_lits + o.reclaimed_lits,
        }
    }
}

const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;

/// DRAT/LRAT-style proof log of one solver session (see [`vmn_check`] for
/// the step vocabulary and the trusted checker that consumes it).
///
/// The log is **append-only** and records only base-level (decision level
/// zero) facts: original clauses as they are handed to [`Solver::add_clause`]
/// (inputs), theory conflict explanations asserted as axioms, learnt clauses
/// with their antecedent hints, and clause deletions from learnt-database
/// reduction or cone forgetting. Nothing trail- or search-state-dependent is
/// ever logged, so rewinding the solver to the base level
/// ([`Solver::backtrack_to_base`], theory unsealing, search-state scrubs)
/// needs no log truncation — the log is already a base-level object, and a
/// pooled session's shared log stays valid for every check ever taken
/// against a prefix of it.
///
/// Each [`Solver::solve_with_assumptions`] call additionally records a
/// check: the assumption literals with the claimed outcome, pinned to the
/// current log prefix. For UNSAT outcomes this is the ISSUE's "final
/// derivation of the negated-assumptions clause": the checker establishes
/// `{¬a | a ∈ assumptions}` by reverse unit propagation over the prefix.
pub struct ProofLog {
    steps: Vec<ProofStep>,
    checks: Vec<CheckRecord>,
    next_id: ClauseId,
}

impl ProofLog {
    fn new() -> ProofLog {
        ProofLog { steps: Vec::new(), checks: Vec::new(), next_id: 1 }
    }

    /// DIMACS rendering of a literal: `var + 1`, negative when negated.
    fn plit(l: Lit) -> i32 {
        let v = l.var().0 as i32 + 1;
        if l.is_neg() {
            -v
        } else {
            v
        }
    }

    fn plits(lits: &[Lit]) -> Vec<i32> {
        lits.iter().map(|&l| Self::plit(l)).collect()
    }

    fn log_input(&mut self, lits: &[Lit]) -> ClauseId {
        let id = self.next_id;
        self.next_id += 1;
        self.steps.push(ProofStep::Input { id, lits: Self::plits(lits) });
        id
    }

    fn log_axiom(&mut self, lits: &[Lit]) -> ClauseId {
        let id = self.next_id;
        self.next_id += 1;
        self.steps.push(ProofStep::Axiom { id, lits: Self::plits(lits) });
        id
    }

    fn log_derived(&mut self, lits: &[Lit], hints: Vec<ClauseId>) -> ClauseId {
        let id = self.next_id;
        self.next_id += 1;
        self.steps.push(ProofStep::Derived { id, lits: Self::plits(lits), hints });
        id
    }

    fn log_delete(&mut self, id: ClauseId) {
        debug_assert_ne!(id, 0, "deleting a clause that was never logged");
        if id != 0 {
            self.steps.push(ProofStep::Delete { id });
        }
    }

    fn record_unsat(&mut self, assumptions: &[Lit]) {
        self.checks.push(CheckRecord {
            steps_upto: self.steps.len(),
            assumptions: Self::plits(assumptions),
            outcome: Outcome::Unsat,
        });
    }

    fn record_sat(&mut self, assumptions: &[Lit], model: &[bool]) {
        self.checks.push(CheckRecord {
            steps_upto: self.steps.len(),
            assumptions: Self::plits(assumptions),
            outcome: Outcome::Sat { model: model.to_vec() },
        });
    }

    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    pub fn num_checks(&self) -> usize {
        self.checks.len()
    }

    /// Exports the proof as a checkable session: the full shared step log,
    /// with the check records from `checks_from` onwards. Callers sharing
    /// one session across sub-queries (the VMN session pool) snapshot the
    /// check watermark when they enter the session and export only their
    /// own checks — each still validated against its own log prefix.
    pub fn session_slice(&self, num_vars: u32, checks_from: usize) -> SessionProof {
        SessionProof {
            num_vars,
            steps: self.steps.clone(),
            checks: self.checks.get(checks_from..).unwrap_or(&[]).to_vec(),
        }
    }
}

/// The CDCL solver.
///
/// Clauses are added with [`Solver::add_clause`]; variables are created
/// with [`Solver::new_var`]. [`Solver::solve`] runs the search with an
/// optional theory plugged in; [`Solver::solve_with_assumptions`] solves
/// under a set of assumption literals while keeping all learned state for
/// subsequent calls.
pub struct Solver {
    /// Flat clause storage: all literals of all clauses, contiguously.
    arena: Vec<Lit>,
    clauses: Vec<ClauseMeta>,
    watches: Vec<Vec<Watch>>,
    assigns: Vec<LBool>,
    /// Saved phase per variable.
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Trail prefix already announced to the theory; persists across
    /// solve calls so permanent (level-zero) literals are announced once.
    theory_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    order: VarOrder,
    /// Scratch: seen markers for conflict analysis.
    seen: Vec<bool>,
    /// False once an unconditional contradiction has been derived.
    ok: bool,
    stats: SolverStats,
    learnt_refs: Vec<ClauseRef>,
    max_learnts: f64,
    /// Cone bitmask applied to clauses added while it is non-zero (see
    /// [`Solver::set_open_cone`]).
    open_cone: u64,
    /// Cone mask of the conflict clause currently under analysis; the
    /// learnt clause unions this with every resolved reason's mask.
    analyze_cone: u64,
    /// Literal slots occupied by deleted clauses; once a large enough
    /// fraction of the arena is dead, `reduce_db` compacts it.
    dead_lits: usize,
    /// Snapshot of the last satisfying assignment (one bool per var);
    /// survives the backtrack-to-zero between incremental calls.
    model: Vec<bool>,
    /// Optional DRAT-style proof log (off by default; see
    /// [`Solver::enable_proof`]).
    proof: Option<ProofLog>,
    /// Scratch: proof-log antecedent ids of the conflict clause and every
    /// reason resolved by the in-flight `analyze` call (parallel to
    /// `analyze_cone`; only maintained while proof logging is on).
    analyze_hints: Vec<ClauseId>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    pub fn new() -> Solver {
        Solver {
            arena: Vec::new(),
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            theory_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            order: VarOrder::new(),
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            learnt_refs: Vec::new(),
            max_learnts: 4000.0,
            open_cone: 0,
            analyze_cone: 0,
            dead_lits: 0,
            model: Vec::new(),
            proof: None,
            analyze_hints: Vec::new(),
        }
    }

    /// Turns on proof logging for this solver's lifetime. Must be called
    /// before any clause is added, so the log is a self-contained account
    /// of the whole session; idempotent. Off by default — the only cost
    /// when disabled is a branch per logging site.
    pub fn enable_proof(&mut self) {
        if self.proof.is_some() {
            return;
        }
        assert!(
            self.clauses.is_empty() && self.trail.is_empty(),
            "proof logging must be enabled on a pristine solver"
        );
        self.proof = Some(ProofLog::new());
    }

    /// The proof log, if [`Solver::enable_proof`] was called.
    pub fn proof(&self) -> Option<&ProofLog> {
        self.proof.as_ref()
    }

    /// Exports the session proof for the trusted checker: the full shared
    /// step log plus the check records from `checks_from` onwards (pass 0
    /// for all of them). `None` unless proof logging is enabled.
    pub fn proof_session(&self, checks_from: usize) -> Option<SessionProof> {
        let nv = self.num_vars() as u32;
        self.proof.as_ref().map(|p| p.session_slice(nv, checks_from))
    }

    /// Bit for cone tag `tag` (tags ≥ 63 saturate into the shared top
    /// bit; forgetting that bit over-forgets, which is sound — learnt
    /// clauses are redundant).
    #[inline]
    pub fn cone_bit(tag: u32) -> u64 {
        1u64 << tag.min(63)
    }

    /// Declares the *cone* membership of subsequently added clauses: while
    /// the mask is non-zero, every clause added (original or learnt) is
    /// tagged with it, marking the clause as part of the encoding of one
    /// sub-query (an invariant, in the VMN verifier). Conflict analysis
    /// propagates tags: a learnt clause carries the union of the masks of
    /// every clause resolved in its derivation, so
    /// [`Solver::forget_learnts_in_cones`] can later discard exactly the
    /// lemmas that depend on a deselected sub-query's encoding. Pass 0 to
    /// close the cone (clauses added outside any cone are never forgotten
    /// by cone, only by the literal scan).
    pub fn set_open_cone(&mut self, mask: u64) {
        self.open_cone = mask;
    }

    /// Overrides the learnt-clause budget that triggers learnt-database
    /// reduction (default 4000, grown 10% every 1000 conflicts). Lower
    /// values trade search power for memory — and make long incremental
    /// sessions lean on clause deletion + arena compaction much sooner,
    /// which is also how the compaction stress tests exercise the GC
    /// deterministically.
    pub fn set_max_learnts(&mut self, limit: f64) {
        self.max_learnts = limit.max(1.0);
    }

    /// Allocates and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    #[inline]
    pub fn value(&self, lit: Lit) -> LBool {
        match self.assigns[lit.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(!lit.is_neg()),
            LBool::False => LBool::from_bool(lit.is_neg()),
        }
    }

    /// Value of a variable in the most recent model. Meaningful only after
    /// a solve call returned [`SatResult::Sat`]; the snapshot survives the
    /// backtracking performed between incremental calls.
    pub fn model_value(&self, v: Var) -> bool {
        self.model.get(v.index()).copied().unwrap_or(false)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Literals of a clause, as a slice of the arena.
    #[inline]
    fn clause_lits(&self, cref: ClauseRef) -> &[Lit] {
        let m = &self.clauses[cref.0 as usize];
        &self.arena[m.start as usize..(m.start + m.len) as usize]
    }

    #[inline]
    fn lit_at(&self, cref: ClauseRef, i: usize) -> Lit {
        self.arena[self.clauses[cref.0 as usize].start as usize + i]
    }

    /// Adds a clause. Returns `false` if the clause made the instance
    /// trivially unsatisfiable. Must be called at decision level zero.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        // Log the clause as handed to us, before normalisation: the checker
        // must see the self-contained input CNF, and normalisation (dropping
        // root-false literals, discarding root-satisfied clauses) is only
        // valid relative to root facts the checker re-derives itself.
        let pid = match &mut self.proof {
            Some(p) => p.log_input(lits),
            None => 0,
        };
        // Normalise: drop duplicate and false literals, detect tautologies.
        let mut cl: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for &l in &sorted {
            debug_assert!(l.var().index() < self.num_vars(), "literal references unknown var");
            if sorted.binary_search(&!l).is_ok() {
                return true; // tautology: contains l and !l
            }
            match self.value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => cl.push(l),
            }
        }
        match cl.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(cl[0], None);
                // Theory literals are re-announced during solve(); unit
                // propagation here keeps level-0 implications tight.
                if self.propagate_no_theory().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let cref = self.attach_clause(&cl, false);
                self.clauses[cref.0 as usize].pid = pid;
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.clauses.len() as u32);
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(lits);
        self.clauses.push(ClauseMeta {
            start,
            len: lits.len() as u32,
            learnt,
            deleted: false,
            activity: 0.0,
            // Learnt clauses inherit the union of their derivation's cones
            // (accumulated by `analyze`); originals take the open cone.
            cone: if learnt { self.analyze_cone } else { self.open_cone },
            // Callers patch in the proof id after attaching.
            pid: 0,
        });
        self.watches[(!lits[0]).index()].push(Watch { cref, blocker: lits[1] });
        self.watches[(!lits[1]).index()].push(Watch { cref, blocker: lits[0] });
        if learnt {
            self.learnt_refs.push(cref);
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    #[inline]
    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(lit), LBool::Undef);
        let v = lit.var();
        self.assigns[v.index()] = LBool::from_bool(!lit.is_neg());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation without theory notification (used while loading).
    fn propagate_no_theory(&mut self) -> Option<ClauseRef> {
        let mut confl = None;
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            if let Some(c) = self.propagate_lit(lit) {
                confl = Some(c);
                self.qhead = self.trail.len();
            }
        }
        confl
    }

    /// Propagates the consequences of `lit` being true through the watch
    /// lists. Returns a conflicting clause if one is found.
    fn propagate_lit(&mut self, lit: Lit) -> Option<ClauseRef> {
        self.stats.propagations += 1;
        let mut watches = std::mem::take(&mut self.watches[lit.index()]);
        let mut i = 0;
        let mut conflict = None;
        'watches: while i < watches.len() {
            let w = watches[i];
            if self.value(w.blocker) == LBool::True {
                i += 1;
                continue;
            }
            let cref = w.cref;
            let meta = &self.clauses[cref.0 as usize];
            if meta.deleted {
                watches.swap_remove(i);
                continue;
            }
            let start = meta.start as usize;
            let len = meta.len as usize;
            // Make sure the false literal is at position 1.
            let false_lit = !lit;
            if self.arena[start] == false_lit {
                self.arena.swap(start, start + 1);
            }
            debug_assert_eq!(self.arena[start + 1], false_lit);
            let first = self.arena[start];
            if first != w.blocker && self.value(first) == LBool::True {
                watches[i] = Watch { cref, blocker: first };
                i += 1;
                continue;
            }
            // Look for a new literal to watch.
            for k in 2..len {
                let lk = self.arena[start + k];
                if self.value(lk) != LBool::False {
                    self.arena.swap(start + 1, start + k);
                    self.watches[(!lk).index()].push(Watch { cref, blocker: first });
                    watches.swap_remove(i);
                    continue 'watches;
                }
            }
            // Clause is unit or conflicting.
            watches[i] = Watch { cref, blocker: first };
            i += 1;
            if self.value(first) == LBool::False {
                conflict = Some(cref);
                break;
            }
            self.unchecked_enqueue(first, Some(cref));
        }
        // Put back remaining watches (including any not yet visited after a
        // conflict).
        let slot = &mut self.watches[lit.index()];
        if slot.is_empty() {
            *slot = watches;
        } else {
            slot.extend_from_slice(&watches);
        }
        conflict
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let cl = &mut self.clauses[cref.0 as usize];
        if !cl.learnt {
            return;
        }
        cl.activity += self.clause_inc;
        if cl.activity > RESCALE_LIMIT {
            for &r in &self.learnt_refs {
                self.clauses[r.0 as usize].activity *= 1e-100;
            }
            self.clause_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. `conflict` is the set of literals of the
    /// conflicting clause (all false under the current assignment). Returns
    /// the learnt clause (asserting literal first) and the backjump level.
    ///
    /// Assumptions need no special handling here: they are decisions, so
    /// resolution stops at them and they appear (negated) in the learnt
    /// clause, which is therefore implied by the clause database alone and
    /// safe to keep across incremental calls.
    fn analyze(&mut self, conflict: &[Lit]) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let p: Option<Lit>;
        let mut trail_idx = self.trail.len();
        let mut reason_lits: Vec<Lit> = conflict.to_vec();

        loop {
            for &q in &reason_lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal from the trail to resolve on.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[trail_idx];
            let v = lit.var();
            self.seen[v.index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            let cref = self.reason[v.index()].expect("non-decision must have a reason");
            self.bump_clause(cref);
            self.analyze_cone |= self.clauses[cref.0 as usize].cone;
            if self.proof.is_some() {
                self.analyze_hints.push(self.clauses[cref.0 as usize].pid);
            }
            // Skip the asserting literal itself (position 0 by invariant).
            reason_lits.clear();
            let m = &self.clauses[cref.0 as usize];
            let (s, l) = (m.start as usize, m.len as usize);
            reason_lits.extend(self.arena[s..s + l].iter().copied().filter(|&q| q.var() != v));
        }
        learnt[0] = !p.expect("found UIP");

        // Conflict-clause minimisation: drop literals implied by the rest.
        // Dropping a literal resolves with its reason clause, so that
        // clause's cone joins the derivation too (same as the main loop —
        // otherwise the learnt clause under-reports its cones and
        // forget-by-cone keeps it as dead weight).
        let mut keep: Vec<bool> = Vec::with_capacity(learnt.len());
        for (i, &l) in learnt.iter().enumerate() {
            let redundant = i != 0 && self.redundant(l);
            if redundant {
                let cref = self.reason[l.var().index()].expect("redundant literals have a reason");
                self.analyze_cone |= self.clauses[cref.0 as usize].cone;
                if self.proof.is_some() {
                    self.analyze_hints.push(self.clauses[cref.0 as usize].pid);
                }
            }
            keep.push(!redundant);
        }
        let mut out: Vec<Lit> = learnt
            .iter()
            .zip(&keep)
            .filter_map(|(&l, &k)| if k { Some(l) } else { None })
            .collect();
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Find backjump level: second-highest level in the clause.
        let bt = if out.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..out.len() {
                if self.level[out[i].var().index()] > self.level[out[max_i].var().index()] {
                    max_i = i;
                }
            }
            out.swap(1, max_i);
            self.level[out[1].var().index()]
        };
        (out, bt)
    }

    /// A literal is redundant in the learnt clause if its reason literals
    /// are all already in the clause (single-step self-subsumption).
    fn redundant(&self, l: Lit) -> bool {
        let v = l.var();
        match self.reason[v.index()] {
            None => false,
            Some(cref) => self.clause_lits(cref).iter().all(|&q| {
                q.var() == v || self.seen[q.var().index()] || self.level[q.var().index()] == 0
            }),
        }
    }

    fn cancel_until(&mut self, level: u32, theory: &mut dyn Theory) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for i in (target..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            self.polarity[v.index()] = !lit.is_neg();
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = target;
        self.theory_head = self.theory_head.min(target);
        theory.on_backtrack(target);
    }

    /// Rewinds the solver (and the theory) to decision level zero,
    /// discarding any assignment left over from a previous solve call.
    /// Level-zero facts, learnt clauses, activities and saved phases all
    /// survive. Called automatically at the start of every solve; exposed
    /// so callers can rewind eagerly before adding clauses or registering
    /// new theory state.
    pub fn backtrack_to_base(&mut self, theory: &mut dyn Theory) {
        self.cancel_until(0, theory);
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(Lit::new(v, !self.polarity[v.index()]));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        let mut refs = std::mem::take(&mut self.learnt_refs);
        refs.retain(|r| !self.clauses[r.0 as usize].deleted);
        refs.sort_by(|a, b| {
            let ca = self.clauses[a.0 as usize].activity;
            let cb = self.clauses[b.0 as usize].activity;
            ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = refs
            .iter()
            .map(|r| {
                // Clause is a reason for its first literal.
                let first = self.lit_at(*r, 0);
                self.value(first) == LBool::True && self.reason[first.var().index()] == Some(*r)
            })
            .collect();
        let limit = refs.len() / 2;
        for (i, r) in refs.iter().enumerate() {
            let short = self.clauses[r.0 as usize].len <= 2;
            if i < limit && !locked[i] && !short {
                self.clauses[r.0 as usize].deleted = true;
                self.dead_lits += self.clauses[r.0 as usize].len as usize;
                self.stats.deleted_clauses += 1;
                let pid = self.clauses[r.0 as usize].pid;
                if let Some(p) = &mut self.proof {
                    p.log_delete(pid);
                }
            }
        }
        refs.retain(|r| !self.clauses[r.0 as usize].deleted);
        self.learnt_refs = refs;
        // Deleted clauses leave their literals behind in the arena; once a
        // third of it is dead, copy the survivors into a fresh arena so
        // very long incremental sessions stay memory-bounded.
        if self.dead_lits * 3 >= self.arena.len() && self.arena.len() >= 1024 {
            self.compact_arena();
        }
    }

    /// Deletes every learnt clause containing one of the given literals
    /// — with exactly that polarity — (unless it is currently the reason
    /// of an assigned literal), then compacts the arena if enough
    /// literals died. Incremental sessions use this when a sub-query is
    /// deselected: pass the literal the standing assumptions will keep
    /// *true* (e.g. `¬activation`) — clauses containing it are
    /// permanently satisfied, so they can prune nothing yet still cost
    /// watch-list traversals on every propagation. Clauses mentioning
    /// only the opposite polarity keep pruning and are kept. Must be
    /// called at decision level zero.
    pub fn forget_learnts_with(&mut self, lits: &[Lit]) {
        self.forget_learnts_in_cones(0, lits);
    }

    /// Like [`Solver::forget_learnts_with`], but additionally deletes
    /// every learnt clause whose cone mask intersects `cones` — i.e.
    /// every lemma whose derivation (transitively) used a clause added
    /// inside one of the given cones (see [`Solver::set_open_cone`]).
    /// This catches the lemmas the literal scan misses: clauses learnt
    /// from a deselected sub-query's *Tseitin interior*, which never
    /// mention its activation literal yet are dead weight once the
    /// sub-query is deselected for good. Locked clauses (reasons of
    /// assigned literals) always survive. Must be called at decision
    /// level zero.
    pub fn forget_learnts_in_cones(&mut self, cones: u64, lits: &[Lit]) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut mark = vec![false; 2 * self.num_vars()];
        for l in lits {
            mark[l.index()] = true;
        }
        let mut refs = std::mem::take(&mut self.learnt_refs);
        refs.retain(|r| {
            let meta = &self.clauses[r.0 as usize];
            let (s, l) = (meta.start as usize, meta.len as usize);
            if meta.cone & cones == 0 && !self.arena[s..s + l].iter().any(|&q| mark[q.index()]) {
                return true;
            }
            // Locked clauses (reasons of assigned literals) must survive.
            let first = self.arena[s];
            if self.value(first) == LBool::True && self.reason[first.var().index()] == Some(*r) {
                return true;
            }
            self.clauses[r.0 as usize].deleted = true;
            self.dead_lits += l;
            self.stats.deleted_clauses += 1;
            let pid = self.clauses[r.0 as usize].pid;
            if let Some(p) = &mut self.proof {
                p.log_delete(pid);
            }
            false
        });
        self.learnt_refs = refs;
        if self.dead_lits * 3 >= self.arena.len() && self.arena.len() >= 1024 {
            self.compact_arena();
        }
    }

    /// Resets the search heuristics — EVSIDS activities, the branching
    /// heap and saved phases — to their initial state, keeping the clause
    /// database (originals *and* learnt) intact. A long-lived incremental
    /// session that has absorbed a heavyweight search carries an activity
    /// profile tuned to a *different* query; re-entering it for a new
    /// sub-query with that foreign profile measurably degrades the search
    /// (more conflicts than a cold start), while the learnt skeleton
    /// lemmas are still worth keeping. This resets the former without
    /// giving up the latter. Must be called at decision level zero.
    pub fn reset_search_state(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for a in &mut self.activity {
            *a = 0.0;
        }
        self.var_inc = 1.0;
        for p in &mut self.polarity {
            *p = false;
        }
        // Re-insert every unassigned variable into the branching heap
        // (no-op for those already queued): with all activities zero the
        // next search starts from a cold, uniform order.
        for i in 0..self.num_vars() {
            let v = Var(i as u32);
            if self.assigns[v.index()] == LBool::Undef {
                self.order.insert(v, &self.activity);
            }
        }
    }

    /// Current length of the clause arena in literal slots (live + dead).
    /// Exposed so callers (and the GC tests) can observe that compaction
    /// keeps long incremental sessions bounded.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// MiniSat-style clause garbage collection: copies every live clause
    /// into a fresh arena, drops deleted ones, and remaps watch lists,
    /// reason references and the learnt-clause index to the new
    /// [`ClauseRef`] numbering.
    ///
    /// Safe at any point of the search: clause literal windows are copied
    /// verbatim (watched literals stay at positions 0 and 1), so the
    /// two-watched-literal invariant and the trail's reason clauses carry
    /// over unchanged. `reduce_db` never deletes a clause that is the
    /// reason of an assigned literal, so every reason survives.
    pub fn compact_arena(&mut self) {
        let mut remap: Vec<u32> = vec![u32::MAX; self.clauses.len()];
        let mut arena: Vec<Lit> =
            Vec::with_capacity(self.arena.len().saturating_sub(self.dead_lits));
        let mut clauses: Vec<ClauseMeta> = Vec::with_capacity(self.clauses.len());
        for (i, m) in self.clauses.iter().enumerate() {
            if m.deleted {
                continue;
            }
            remap[i] = clauses.len() as u32;
            let start = arena.len() as u32;
            arena.extend_from_slice(&self.arena[m.start as usize..(m.start + m.len) as usize]);
            clauses.push(ClauseMeta {
                start,
                len: m.len,
                learnt: m.learnt,
                deleted: false,
                activity: m.activity,
                cone: m.cone,
                // Proof ids are stable across compaction: the log (and its
                // hints and deletions) never see the renumbered ClauseRefs.
                pid: m.pid,
            });
        }
        self.stats.reclaimed_lits += (self.arena.len() - arena.len()) as u64;
        self.arena = arena;
        self.clauses = clauses;
        for list in &mut self.watches {
            list.retain_mut(|w| {
                let n = remap[w.cref.0 as usize];
                w.cref = ClauseRef(n);
                n != u32::MAX
            });
        }
        for cref in self.reason.iter_mut().flatten() {
            let n = remap[cref.0 as usize];
            debug_assert_ne!(n, u32::MAX, "a reason clause is locked and never deleted");
            *cref = ClauseRef(n);
        }
        for r in &mut self.learnt_refs {
            let n = remap[r.0 as usize];
            debug_assert_ne!(n, u32::MAX, "reduce_db drops deleted refs before compaction");
            *r = ClauseRef(n);
        }
        self.dead_lits = 0;
        self.stats.arena_compactions += 1;
    }

    /// Announces to the theory every trail literal from `theory_head`
    /// onwards. Returns a conflict if the theory rejects one of them.
    fn theory_sync(&mut self, theory: &mut dyn Theory) -> Option<TheoryConflict> {
        while self.theory_head < self.trail.len() {
            let lit = self.trail[self.theory_head];
            self.theory_head += 1;
            if let Err(c) = theory.on_assert(lit) {
                debug_assert!(
                    c.lits.iter().all(|&l| self.value(l) == LBool::True),
                    "theory conflict literals must be true: {:?}",
                    c.lits
                );
                return Some(c);
            }
        }
        None
    }

    /// Runs the CDCL search (with restarts) until the instance is decided.
    pub fn solve(&mut self, theory: &mut dyn Theory) -> SatResult {
        self.solve_with_assumptions(&[], theory)
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions are enqueued as pseudo-decisions below all real
    /// decisions (one decision level each, MiniSat-style), so conflict
    /// analysis treats them like decisions and every learnt clause remains
    /// implied by the clause database alone. [`SatResult::Unsat`] therefore
    /// means *unsatisfiable under these assumptions*: the solver stays
    /// usable and keeps its learnt clauses, activities and phases for the
    /// next call. On [`SatResult::Sat`] the full assignment is left in
    /// place (so an attached theory can be queried for model values); it is
    /// discarded by the backtrack-to-zero at the start of the next call or
    /// by an explicit [`Solver::backtrack_to_base`].
    pub fn solve_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        theory: &mut dyn Theory,
    ) -> SatResult {
        if !self.ok {
            // The log already derives a root contradiction; the record is
            // checkable without any further derivation.
            if let Some(p) = &mut self.proof {
                p.record_unsat(assumptions);
            }
            return SatResult::Unsat;
        }
        debug_assert!(assumptions.iter().all(|l| l.var().index() < self.num_vars()));
        // Start from a clean base level; everything learnt persists.
        self.backtrack_to_base(theory);
        let mut restarts: u64 = 0;
        let mut conflicts_until_restart = 100 * luby(restarts);

        loop {
            // Propagate, keeping the theory in sync with the trail.
            let conflict: Option<Vec<Lit>> = 'prop: loop {
                if let Some(cref) = self.propagate_no_theory() {
                    let lits = self.clause_lits(cref).to_vec();
                    self.bump_clause(cref);
                    // Seed the learnt clause's cone with the conflicting
                    // clause's; `analyze` unions in every resolved reason.
                    self.analyze_cone = self.clauses[cref.0 as usize].cone;
                    if self.proof.is_some() {
                        let pid = self.clauses[cref.0 as usize].pid;
                        self.analyze_hints.clear();
                        self.analyze_hints.push(pid);
                    }
                    break 'prop Some(lits);
                }
                match self.theory_sync(theory) {
                    Some(c) => {
                        // Theory conflicts carry no clause provenance; the
                        // resolved reasons still contribute their cones.
                        self.analyze_cone = 0;
                        let cl: Vec<Lit> = c.lits.iter().map(|&l| !l).collect();
                        // The explanation clause is theory-valid but not in
                        // the clause database: log it as an asserted axiom
                        // so the checker's CNF stays self-contained, and
                        // seed the hints with it — it is the conflict
                        // clause the next `analyze` starts from.
                        if let Some(p) = &mut self.proof {
                            let id = p.log_axiom(&cl);
                            self.analyze_hints.clear();
                            self.analyze_hints.push(id);
                        }
                        break 'prop Some(cl);
                    }
                    None => {
                        if self.qhead == self.trail.len() {
                            break 'prop None;
                        }
                    }
                }
            };

            match conflict {
                Some(cl) => {
                    self.stats.conflicts += 1;
                    // A theory conflict replayed from the backlog may live
                    // entirely below the current decision level; analysis
                    // needs the conflict to involve the current level, so
                    // drop to the highest level among its literals first.
                    let conflict_level =
                        cl.iter().map(|l| self.level[l.var().index()]).max().unwrap_or(0);
                    if conflict_level < self.decision_level() {
                        self.cancel_until(conflict_level, theory);
                    }
                    if self.decision_level() == 0 {
                        self.ok = false;
                        // The checker reproduces this conflict by root unit
                        // propagation of the logged clauses alone.
                        if let Some(p) = &mut self.proof {
                            p.record_unsat(assumptions);
                        }
                        return SatResult::Unsat;
                    }
                    let (learnt, bt_level) = self.analyze(&cl);
                    self.cancel_until(bt_level, theory);
                    let pid = match &mut self.proof {
                        Some(p) => {
                            let hints = std::mem::take(&mut self.analyze_hints);
                            p.log_derived(&learnt, hints)
                        }
                        None => 0,
                    };
                    if learnt.len() == 1 {
                        // Unit learnt clauses never join the clause DB (the
                        // enqueue is reason-less), but they are logged like
                        // any other derivation: the checker root-propagates
                        // them, which is exactly what this enqueue does.
                        self.unchecked_enqueue(learnt[0], None);
                    } else {
                        let cref = self.attach_clause(&learnt, true);
                        self.clauses[cref.0 as usize].pid = pid;
                        self.bump_clause(cref);
                        self.unchecked_enqueue(learnt[0], Some(cref));
                    }
                    self.var_inc /= VAR_DECAY;
                    self.clause_inc /= CLAUSE_DECAY;
                    if self.stats.conflicts.is_multiple_of(1000) {
                        self.max_learnts *= 1.1;
                    }
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                }
                None => {
                    if conflicts_until_restart == 0 && self.decision_level() > 0 {
                        restarts += 1;
                        self.stats.restarts += 1;
                        conflicts_until_restart = 100 * luby(restarts);
                        self.cancel_until(0, theory);
                        continue;
                    }
                    if self.learnt_refs.len() as f64 > self.max_learnts {
                        self.reduce_db();
                    }
                    // Take the next assumption as a pseudo-decision; real
                    // branching starts only above the assumption levels.
                    let mut next_assumption = None;
                    while (self.decision_level() as usize) < assumptions.len() {
                        let p = assumptions[self.decision_level() as usize];
                        match self.value(p) {
                            // Already implied: open an empty level so the
                            // level/assumption indices stay aligned.
                            LBool::True => self.trail_lim.push(self.trail.len()),
                            // Contradicted by the formula (plus earlier
                            // assumptions): UNSAT under assumptions, but the
                            // solver itself remains consistent. The checker
                            // reproduces this by propagating the full
                            // assumption set — unit propagation is monotone
                            // in the assignment, so the conflict the solver
                            // saw under a prefix is still reached.
                            LBool::False => {
                                if let Some(p) = &mut self.proof {
                                    p.record_unsat(assumptions);
                                }
                                self.backtrack_to_base(theory);
                                return SatResult::Unsat;
                            }
                            LBool::Undef => {
                                next_assumption = Some(p);
                                break;
                            }
                        }
                    }
                    match next_assumption {
                        Some(p) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                        }
                        None => match self.pick_branch() {
                            None => {
                                // Full assignment; give the theory a last word.
                                match theory.final_check() {
                                    Ok(()) => {
                                        self.model.clear();
                                        self.model
                                            .extend(self.assigns.iter().map(|&a| a == LBool::True));
                                        if let Some(p) = &mut self.proof {
                                            p.record_sat(assumptions, &self.model);
                                        }
                                        return SatResult::Sat;
                                    }
                                    Err(c) => {
                                        self.stats.conflicts += 1;
                                        self.analyze_cone = 0;
                                        let cl: Vec<Lit> = c.lits.iter().map(|&l| !l).collect();
                                        // Theory-valid explanation: asserted
                                        // as an axiom, like in the main loop.
                                        if let Some(p) = &mut self.proof {
                                            let id = p.log_axiom(&cl);
                                            self.analyze_hints.clear();
                                            self.analyze_hints.push(id);
                                        }
                                        let conflict_level = cl
                                            .iter()
                                            .map(|l| self.level[l.var().index()])
                                            .max()
                                            .unwrap_or(0);
                                        if conflict_level < self.decision_level() {
                                            self.cancel_until(conflict_level, theory);
                                        }
                                        if self.decision_level() == 0 {
                                            self.ok = false;
                                            if let Some(p) = &mut self.proof {
                                                p.record_unsat(assumptions);
                                            }
                                            return SatResult::Unsat;
                                        }
                                        let (learnt, bt_level) = self.analyze(&cl);
                                        self.cancel_until(bt_level, theory);
                                        let pid = match &mut self.proof {
                                            Some(p) => {
                                                let hints = std::mem::take(&mut self.analyze_hints);
                                                p.log_derived(&learnt, hints)
                                            }
                                            None => 0,
                                        };
                                        if learnt.len() == 1 {
                                            self.unchecked_enqueue(learnt[0], None);
                                        } else {
                                            let cref = self.attach_clause(&learnt, true);
                                            self.clauses[cref.0 as usize].pid = pid;
                                            self.unchecked_enqueue(learnt[0], Some(cref));
                                        }
                                    }
                                }
                            }
                            Some(lit) => {
                                self.stats.decisions += 1;
                                self.trail_lim.push(self.trail.len());
                                self.unchecked_enqueue(lit, None);
                            }
                        },
                    }
                }
            }
        }
    }

    /// Convenience: solve without a theory.
    pub fn solve_pure(&mut self) -> SatResult {
        self.solve(&mut NoTheory)
    }

    /// Convenience: solve under assumptions without a theory.
    pub fn solve_pure_assuming(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_with_assumptions(assumptions, &mut NoTheory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver_vars: &[Var], spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&i| {
                let v = solver_vars[(i.unsigned_abs() - 1) as usize];
                Lit::new(v, i < 0)
            })
            .collect()
    }

    fn n_vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 2);
        s.add_clause(&lits(&vs, &[1, 2]));
        assert_eq!(s.solve_pure(), SatResult::Sat);
        assert!(s.model_value(vs[0]) || s.model_value(vs[1]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 1);
        s.add_clause(&lits(&vs, &[1]));
        s.add_clause(&lits(&vs, &[-1]));
        assert_eq!(s.solve_pure(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve_pure(), SatResult::Unsat);
    }

    #[test]
    fn unit_chain() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 4);
        s.add_clause(&lits(&vs, &[1]));
        s.add_clause(&lits(&vs, &[-1, 2]));
        s.add_clause(&lits(&vs, &[-2, 3]));
        s.add_clause(&lits(&vs, &[-3, 4]));
        assert_eq!(s.solve_pure(), SatResult::Sat);
        for v in vs {
            assert!(s.model_value(v));
        }
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 1);
        assert!(s.add_clause(&lits(&vs, &[1, -1])));
        assert_eq!(s.solve_pure(), SatResult::Sat);
    }

    /// Pigeonhole principle: n+1 pigeons into n holes is UNSAT and requires
    /// genuine conflict-driven search.
    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let pigeons = n + 1;
        let vars: Vec<Vec<Var>> =
            (0..pigeons).map(|_| (0..n).map(|_| s.new_var()).collect()).collect();
        for p in 0..pigeons {
            let cl: Vec<Lit> = (0..n).map(|h| Lit::pos(vars[p][h])).collect();
            s.add_clause(&cl);
        }
        for h in 0..n {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[Lit::neg(vars[p1][h]), Lit::neg(vars[p2][h])]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=6 {
            let mut s = pigeonhole(n);
            assert_eq!(s.solve_pure(), SatResult::Unsat, "php({n})");
        }
    }

    #[test]
    fn graph_coloring_sat() {
        // 3-colour a 5-cycle (possible).
        let mut s = Solver::new();
        let k = 3;
        let n = 5;
        let v: Vec<Vec<Var>> = (0..n).map(|_| (0..k).map(|_| s.new_var()).collect()).collect();
        for i in 0..n {
            let cl: Vec<Lit> = (0..k).map(|c| Lit::pos(v[i][c])).collect();
            s.add_clause(&cl);
            for c1 in 0..k {
                for c2 in (c1 + 1)..k {
                    s.add_clause(&[Lit::neg(v[i][c1]), Lit::neg(v[i][c2])]);
                }
            }
        }
        for i in 0..n {
            let j = (i + 1) % n;
            for c in 0..k {
                s.add_clause(&[Lit::neg(v[i][c]), Lit::neg(v[j][c])]);
            }
        }
        assert_eq!(s.solve_pure(), SatResult::Sat);
        // Verify: each node exactly one colour, endpoints differ.
        let colour = |i: usize, s: &Solver| (0..k).find(|&c| s.model_value(v[i][c])).unwrap();
        for i in 0..n {
            assert_ne!(colour(i, &s), colour((i + 1) % n, &s));
        }
    }

    #[test]
    fn two_coloring_odd_cycle_unsat() {
        let mut s = Solver::new();
        let n = 7;
        // var true = colour A, false = colour B; adjacent must differ.
        let v = n_vars(&mut s, n);
        for i in 0..n {
            let j = (i + 1) % n;
            s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[j])]);
            s.add_clause(&[Lit::neg(v[i]), Lit::neg(v[j])]);
        }
        assert_eq!(s.solve_pure(), SatResult::Unsat);
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    /// Brute-force model check for random 3-CNF instances: compare solver
    /// answer against exhaustive enumeration.
    #[test]
    fn random_3cnf_vs_bruteforce() {
        // Simple deterministic LCG so the test is reproducible without rand.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..60 {
            let nv = 4 + (next() % 6) as usize; // 4..=9 vars
            let nc = 6 + (next() % 30) as usize;
            let clauses: Vec<Vec<i32>> = (0..nc)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let var = (next() % nv as u32) as i32 + 1;
                            if next() % 2 == 0 {
                                var
                            } else {
                                -var
                            }
                        })
                        .collect()
                })
                .collect();
            let brute = (0..(1u32 << nv)).any(|m| {
                clauses.iter().all(|cl| {
                    cl.iter().any(|&l| {
                        let bit = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                        if l > 0 {
                            bit
                        } else {
                            !bit
                        }
                    })
                })
            });
            let mut s = Solver::new();
            let vs = n_vars(&mut s, nv);
            for cl in &clauses {
                s.add_clause(&lits(&vs, cl));
            }
            let got = s.solve_pure() == SatResult::Sat;
            assert_eq!(got, brute, "round {round}: clauses {clauses:?}");
            if got {
                // Check the model actually satisfies all clauses.
                for cl in &clauses {
                    assert!(cl.iter().any(|&l| {
                        let val = s.model_value(vs[(l.unsigned_abs() - 1) as usize]);
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    }));
                }
            }
        }
    }

    // ---- assumption-based (incremental) solving -------------------------

    #[test]
    fn unsat_under_assumptions_sat_without() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 2);
        s.add_clause(&lits(&vs, &[1, 2])); // x ∨ y
        let a = lits(&vs, &[-1, -2]); // assume ¬x, ¬y
        assert_eq!(s.solve_pure_assuming(&a), SatResult::Unsat);
        // Dropping one assumption restores satisfiability.
        assert_eq!(s.solve_pure_assuming(&lits(&vs, &[-1])), SatResult::Sat);
        assert!(s.model_value(vs[1]), "y must carry the clause");
        // And the solver is still globally consistent.
        assert_eq!(s.solve_pure(), SatResult::Sat);
    }

    #[test]
    fn assumption_scenarios_toggle_like_activation_literals() {
        // Two "scenario" guards forcing opposite values of x.
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 3); // g1, g2, x
        s.add_clause(&lits(&vs, &[-1, 3])); // g1 → x
        s.add_clause(&lits(&vs, &[-2, -3])); // g2 → ¬x
        assert_eq!(s.solve_pure_assuming(&lits(&vs, &[1, -2])), SatResult::Sat);
        assert!(s.model_value(vs[2]));
        assert_eq!(s.solve_pure_assuming(&lits(&vs, &[2, -1])), SatResult::Sat);
        assert!(!s.model_value(vs[2]));
        assert_eq!(s.solve_pure_assuming(&lits(&vs, &[1, 2])), SatResult::Unsat);
        assert_eq!(s.solve_pure(), SatResult::Sat, "solver survives scenario UNSAT");
    }

    #[test]
    fn learnt_clauses_persist_across_assumption_calls() {
        // Pigeonhole guarded by an activation literal g: UNSAT under g,
        // SAT under ¬g; repeated calls must keep (and reuse) learnt clauses.
        let n = 5;
        let mut s = Solver::new();
        let g = s.new_var();
        let pigeons = n + 1;
        let vars: Vec<Vec<Var>> =
            (0..pigeons).map(|_| (0..n).map(|_| s.new_var()).collect()).collect();
        for p in 0..pigeons {
            let mut cl: Vec<Lit> = (0..n).map(|h| Lit::pos(vars[p][h])).collect();
            cl.push(Lit::neg(g));
            s.add_clause(&cl);
        }
        for h in 0..n {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[Lit::neg(vars[p1][h]), Lit::neg(vars[p2][h]), Lit::neg(g)]);
                }
            }
        }
        assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
        let learnt_after_first = s.stats().learnt_clauses;
        let conflicts_after_first = s.stats().conflicts;
        assert!(learnt_after_first > 0, "pigeonhole forces real learning");

        // Second identical call: the learnt clauses are still there, so the
        // proof is found again with far less work.
        assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
        assert!(s.stats().learnt_clauses >= learnt_after_first, "no learnt state was reset");
        let second_call_conflicts = s.stats().conflicts - conflicts_after_first;
        assert!(
            second_call_conflicts <= conflicts_after_first,
            "reuse must not be more expensive than the first proof \
             ({second_call_conflicts} vs {conflicts_after_first})"
        );

        // Dropping the activation literal: satisfiable, and the model must
        // respect everything learnt (g must come out false only if forced —
        // here ¬g is implied by the formula being unsat under g only when g
        // was *assumed*, so both phases remain possible; just check SAT).
        assert_eq!(s.solve_pure_assuming(&[Lit::neg(g)]), SatResult::Sat);
        assert!(!s.model_value(g));
        assert_eq!(s.solve_pure(), SatResult::Sat);
    }

    #[test]
    fn duplicate_and_contradictory_assumptions() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 2);
        s.add_clause(&lits(&vs, &[1, 2]));
        // Duplicate assumption is harmless.
        assert_eq!(s.solve_pure_assuming(&lits(&vs, &[1, 1])), SatResult::Sat);
        // Directly contradictory assumptions are UNSAT without poisoning
        // the solver.
        assert_eq!(s.solve_pure_assuming(&lits(&vs, &[1, -1])), SatResult::Unsat);
        assert_eq!(s.solve_pure(), SatResult::Sat);
    }

    #[test]
    fn globally_unsat_stays_unsat_with_assumptions() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 2);
        s.add_clause(&lits(&vs, &[1]));
        s.add_clause(&lits(&vs, &[-1]));
        assert_eq!(s.solve_pure(), SatResult::Unsat);
        assert_eq!(s.solve_pure_assuming(&lits(&vs, &[2])), SatResult::Unsat);
    }

    // ---- clause-arena garbage collection --------------------------------

    /// Guarded pigeonhole: UNSAT under `g`, SAT under `¬g`. Returns the
    /// solver and the guard variable.
    fn guarded_pigeonhole(s: &mut Solver, n: usize) -> Var {
        let g = s.new_var();
        let pigeons = n + 1;
        let vars: Vec<Vec<Var>> =
            (0..pigeons).map(|_| (0..n).map(|_| s.new_var()).collect()).collect();
        for p in 0..pigeons {
            let mut cl: Vec<Lit> = (0..n).map(|h| Lit::pos(vars[p][h])).collect();
            cl.push(Lit::neg(g));
            s.add_clause(&cl);
        }
        for h in 0..n {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[Lit::neg(vars[p1][h]), Lit::neg(vars[p2][h]), Lit::neg(g)]);
                }
            }
        }
        g
    }

    #[test]
    fn compaction_remaps_watches_and_reasons() {
        // Learn real clauses, then delete a batch by hand (mimicking
        // reduce_db) and compact with a live level-zero trail: watch
        // lists and reason references must survive the renumbering, so
        // every later verdict is unchanged.
        let mut s = Solver::new();
        let g = guarded_pigeonhole(&mut s, 5);
        assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
        assert!(s.stats().learnt_clauses > 0, "pigeonhole forces learning");

        let refs: Vec<ClauseRef> = s.learnt_refs.clone();
        for r in refs.iter().step_by(2) {
            let first = s.lit_at(*r, 0);
            let locked = s.value(first) == LBool::True && s.reason[first.var().index()] == Some(*r);
            if locked || s.clauses[r.0 as usize].len <= 2 {
                continue;
            }
            s.clauses[r.0 as usize].deleted = true;
            s.dead_lits += s.clauses[r.0 as usize].len as usize;
        }
        let mut live = std::mem::take(&mut s.learnt_refs);
        live.retain(|r| !s.clauses[r.0 as usize].deleted);
        s.learnt_refs = live;
        assert!(s.dead_lits > 0, "some learnt clause must be deletable");

        let before = s.arena_len();
        s.compact_arena();
        assert!(s.arena_len() < before, "compaction reclaims dead literals");
        assert_eq!(s.stats().arena_compactions, 1);
        assert_eq!(s.stats().reclaimed_lits as usize, before - s.arena_len());
        assert_eq!(s.dead_lits, 0);

        // Search still behaves identically after the renumbering.
        assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
        assert_eq!(s.solve_pure_assuming(&[Lit::neg(g)]), SatResult::Sat);
        assert_eq!(s.solve_pure(), SatResult::Sat);
    }

    #[test]
    fn forget_learnts_is_polarity_aware() {
        // Refuting the pigeonhole under `g` learns clauses tagged with
        // ¬g (the falsified guard literal from the original clauses).
        // Deselecting g for good (assuming ¬g from now on) makes exactly
        // those clauses permanently satisfied: forgetting by the literal
        // ¬g must delete them, while forgetting by the literal g — the
        // polarity that would still prune — must delete nothing.
        let mut s = Solver::new();
        let g = guarded_pigeonhole(&mut s, 5);
        assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
        let learnt_before = s.learnt_refs.len();
        assert!(learnt_before > 0, "pigeonhole forces learning");
        let tagged =
            s.learnt_refs.iter().filter(|r| s.clause_lits(**r).contains(&Lit::neg(g))).count();
        assert!(tagged > 0, "guard tagging must occur");

        s.forget_learnts_with(&[Lit::pos(g)]);
        assert_eq!(s.learnt_refs.len(), learnt_before, "wrong polarity must not delete");
        s.forget_learnts_with(&[Lit::neg(g)]);
        assert!(s.learnt_refs.len() < learnt_before, "¬g-tagged clauses must be deleted");
        // Every surviving ¬g-tagged clause must be locked (the reason of
        // a currently-assigned literal) — nothing else may linger.
        for r in &s.learnt_refs {
            if s.clause_lits(*r).contains(&Lit::neg(g)) {
                let first = s.lit_at(*r, 0);
                assert!(
                    s.value(first) == LBool::True && s.reason[first.var().index()] == Some(*r),
                    "unlocked ¬g-tagged clause survived the forget"
                );
            }
        }
        // Verdicts unchanged: learnt clauses are redundant by construction.
        assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
        assert_eq!(s.solve_pure_assuming(&[Lit::neg(g)]), SatResult::Sat);
    }

    #[test]
    fn long_incremental_session_arena_stays_bounded() {
        // Many guarded pigeonhole instances solved on ONE solver with a
        // tiny learnt budget: reduce_db keeps deleting, the arena keeps
        // accumulating dead literals, and the mid-search compaction
        // trigger must fire — without changing a single verdict.
        let mut s = Solver::new();
        s.set_max_learnts(30.0);
        let guards: Vec<Var> = (0..8).map(|_| guarded_pigeonhole(&mut s, 5)).collect();
        for (i, &g) in guards.iter().enumerate() {
            let mut assumptions = vec![Lit::pos(g)];
            assumptions.extend(guards.iter().take(i).map(|&h| Lit::neg(h)));
            assert_eq!(s.solve_pure_assuming(&assumptions), SatResult::Unsat, "php {i}");
        }
        assert!(s.stats().deleted_clauses > 0, "low budget must force deletions");
        assert!(s.stats().arena_compactions >= 1, "the GC trigger must have fired");
        // The trigger's invariant: never more than a third of a
        // non-trivial arena is dead.
        assert!(
            s.dead_lits * 3 < s.arena_len() || s.arena_len() < 1024,
            "arena unbounded: {} dead of {}",
            s.dead_lits,
            s.arena_len()
        );
        // Verdicts are stable on re-query, and the solver is still
        // globally consistent.
        for &g in &guards {
            assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
        }
        let all_off: Vec<Lit> = guards.iter().map(|&g| Lit::neg(g)).collect();
        assert_eq!(s.solve_pure_assuming(&all_off), SatResult::Sat);
    }

    #[test]
    fn compaction_under_low_budget_matches_bruteforce() {
        // Differential: guarded random 3-CNF instances accumulate on one
        // low-budget solver; deletion + compaction must never change an
        // answer versus exhaustive enumeration of each instance.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut s = Solver::new();
        s.set_max_learnts(15.0);
        let mut guards: Vec<Var> = Vec::new();
        for round in 0..30 {
            let nv = 6 + (next() % 5) as usize; // 6..=10 vars
            let nc = 20 + (next() % 25) as usize;
            // A previous SAT call leaves its assignment in place; rewind
            // so the new clauses are added at decision level zero.
            s.backtrack_to_base(&mut NoTheory);
            let g = s.new_var();
            let vs = n_vars(&mut s, nv);
            let clauses: Vec<Vec<i32>> = (0..nc)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let var = (next() % nv as u32) as i32 + 1;
                            if next() % 2 == 0 {
                                var
                            } else {
                                -var
                            }
                        })
                        .collect()
                })
                .collect();
            for cl in &clauses {
                let mut lits = lits(&vs, cl);
                lits.push(Lit::neg(g));
                s.add_clause(&lits);
            }
            let brute = (0..(1u32 << nv)).any(|m| {
                clauses.iter().all(|cl| {
                    cl.iter().any(|&l| {
                        let bit = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                        if l > 0 {
                            bit
                        } else {
                            !bit
                        }
                    })
                })
            });
            let mut assumptions = vec![Lit::pos(g)];
            assumptions.extend(guards.iter().map(|&h| Lit::neg(h)));
            let got = s.solve_pure_assuming(&assumptions) == SatResult::Sat;
            assert_eq!(got, brute, "round {round} diverged from brute force");
            // Compact while the satisfying assignment (and its reason
            // references) is still on the trail — the automatic trigger
            // fires in exactly such mid-search states from reduce_db.
            s.compact_arena();
            guards.push(g);
        }
        assert!(s.stats().arena_compactions >= 30, "every round must have compacted");
        assert!(s.stats().deleted_clauses > 0, "low budget must force deletions");
    }

    // ---- cone-tagged learnt clauses --------------------------------------

    /// A guarded pigeonhole whose guard is *indirect*, mimicking a Tseitin
    /// interior: `g → z` and the pigeonhole clauses are guarded by `¬z`,
    /// so refutation lemmas usually range over pigeon variables only and
    /// mention neither `g` nor `¬g`. Returns the guard variable. All
    /// clauses are added inside the currently open cone.
    fn tseitin_guarded_pigeonhole(s: &mut Solver, n: usize) -> Var {
        let g = s.new_var();
        let z = s.new_var();
        s.add_clause(&[Lit::neg(g), Lit::pos(z)]);
        let pigeons = n + 1;
        let vars: Vec<Vec<Var>> =
            (0..pigeons).map(|_| (0..n).map(|_| s.new_var()).collect()).collect();
        for p in 0..pigeons {
            let mut cl: Vec<Lit> = (0..n).map(|h| Lit::pos(vars[p][h])).collect();
            cl.push(Lit::neg(z));
            s.add_clause(&cl);
        }
        for h in 0..n {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[Lit::neg(vars[p1][h]), Lit::neg(vars[p2][h]), Lit::neg(z)]);
                }
            }
        }
        g
    }

    /// Builds the two-cone workload deterministically: cone 1 holds an
    /// indirectly-guarded pigeonhole (guard g1), cone 2 a directly-guarded
    /// one (guard g2); both are refuted once so the solver holds learnt
    /// clauses from both cones.
    fn two_cone_solver() -> (Solver, Var, Var) {
        let mut s = Solver::new();
        s.set_open_cone(Solver::cone_bit(1));
        let g1 = tseitin_guarded_pigeonhole(&mut s, 5);
        s.set_open_cone(Solver::cone_bit(2));
        let g2 = guarded_pigeonhole(&mut s, 4);
        s.set_open_cone(0);
        assert_eq!(s.solve_pure_assuming(&[Lit::pos(g1), Lit::neg(g2)]), SatResult::Unsat);
        assert_eq!(s.solve_pure_assuming(&[Lit::pos(g2), Lit::neg(g1)]), SatResult::Unsat);
        (s, g1, g2)
    }

    #[test]
    fn learnt_clauses_inherit_cones_of_their_derivation() {
        let (s, _, _) = two_cone_solver();
        let cone1 = s
            .learnt_refs
            .iter()
            .filter(|r| s.clauses[r.0 as usize].cone & Solver::cone_bit(1) != 0)
            .count();
        let cone2 = s
            .learnt_refs
            .iter()
            .filter(|r| s.clauses[r.0 as usize].cone & Solver::cone_bit(2) != 0)
            .count();
        assert!(cone1 > 0, "refuting the cone-1 pigeonhole must learn cone-1 lemmas");
        assert!(cone2 > 0, "refuting the cone-2 pigeonhole must learn cone-2 lemmas");
    }

    #[test]
    fn cone_forget_is_strictly_sharper_than_literal_scan() {
        // The old scan deletes learnt clauses *containing* the deselected
        // guard's satisfied literal. Lemmas learnt from the guarded
        // instance's interior never mention the guard (the indirect `z`
        // bridge stands in for Tseitin aux vars), so the scan misses
        // them; the cone tag catches them. Two identical deterministic
        // solvers, one forget each — the cone forget must delete strictly
        // more.
        let (mut by_lit, g1, _) = two_cone_solver();
        let (mut by_cone, g1b, _) = two_cone_solver();
        assert_eq!(g1, g1b, "identical construction");

        let lit_deleted_before = by_lit.stats().deleted_clauses;
        by_lit.backtrack_to_base(&mut NoTheory);
        by_lit.forget_learnts_with(&[Lit::neg(g1)]);
        let lit_deleted = by_lit.stats().deleted_clauses - lit_deleted_before;

        let cone_deleted_before = by_cone.stats().deleted_clauses;
        by_cone.backtrack_to_base(&mut NoTheory);
        by_cone.forget_learnts_in_cones(Solver::cone_bit(1), &[Lit::neg(g1)]);
        let cone_deleted = by_cone.stats().deleted_clauses - cone_deleted_before;

        assert!(
            cone_deleted > lit_deleted,
            "cone tagging must forget strictly more stale lemmas \
             (cone {cone_deleted} vs literal {lit_deleted})"
        );
        // Verdicts survive the sharper forget.
        assert_eq!(by_cone.solve_pure_assuming(&[Lit::pos(g1)]), SatResult::Unsat);
        assert_eq!(by_cone.solve_pure_assuming(&[Lit::neg(g1)]), SatResult::Sat);
    }

    #[test]
    fn cone_forget_on_switch_matches_bruteforce() {
        // Differential for the invariant-switch idiom: guarded random
        // 3-CNF instances accumulate on one solver, each round's clauses
        // added under its own cone; when round i+1 "registers", round i's
        // cone is forgotten (the verifier's forget-on-switch). No verdict
        // — current or revisited — may ever diverge from brute force.
        let mut state = 0x51A5_EED5_EED5_EED5u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut s = Solver::new();
        let mut rounds: Vec<(Var, bool, Vec<Vec<i32>>, Vec<Var>)> = Vec::new();
        for round in 0..24u32 {
            let nv = 5 + (next() % 5) as usize; // 5..=9 vars
            let nc = 15 + (next() % 20) as usize;
            s.backtrack_to_base(&mut NoTheory);
            if let Some((prev_g, ..)) = rounds.last() {
                // The previous round is deselected for good: forget its
                // cone and its satisfied guard literal.
                s.forget_learnts_in_cones(Solver::cone_bit(round - 1), &[Lit::neg(*prev_g)]);
            }
            s.set_open_cone(Solver::cone_bit(round));
            let g = s.new_var();
            let vs = n_vars(&mut s, nv);
            let clauses: Vec<Vec<i32>> = (0..nc)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let var = (next() % nv as u32) as i32 + 1;
                            if next() % 2 == 0 {
                                var
                            } else {
                                -var
                            }
                        })
                        .collect()
                })
                .collect();
            for cl in &clauses {
                let mut lits = lits(&vs, cl);
                lits.push(Lit::neg(g));
                s.add_clause(&lits);
            }
            s.set_open_cone(0);
            let brute = (0..(1u32 << nv)).any(|m| {
                clauses.iter().all(|cl| {
                    cl.iter().any(|&l| {
                        let bit = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                        if l > 0 {
                            bit
                        } else {
                            !bit
                        }
                    })
                })
            });
            let mut assumptions = vec![Lit::pos(g)];
            assumptions.extend(rounds.iter().map(|(h, ..)| Lit::neg(*h)));
            let got = s.solve_pure_assuming(&assumptions) == SatResult::Sat;
            assert_eq!(got, brute, "round {round} diverged from brute force after cone forget");
            rounds.push((g, brute, clauses, vs));
        }
        assert!(s.stats().deleted_clauses > 0, "the forgets must have deleted something");
        // Revisit every earlier round (its cone was forgotten): the
        // verdict is decided by the original clauses alone and must still
        // match brute force.
        let guards: Vec<Var> = rounds.iter().map(|(g, ..)| *g).collect();
        for (i, (g, brute, ..)) in rounds.iter().enumerate() {
            let mut assumptions = vec![Lit::pos(*g)];
            assumptions.extend(
                guards.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, h)| Lit::neg(*h)),
            );
            let got = s.solve_pure_assuming(&assumptions) == SatResult::Sat;
            assert_eq!(got, *brute, "revisited round {i} diverged after its cone was forgotten");
        }
    }

    #[test]
    fn clauses_can_be_added_between_assumption_calls() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 3);
        s.add_clause(&lits(&vs, &[1, 2]));
        assert_eq!(s.solve_pure_assuming(&lits(&vs, &[-1])), SatResult::Sat);
        // New clause after a SAT call (solver auto-rewinds to level 0 on
        // the next call; rewind eagerly here to add at level 0).
        s.backtrack_to_base(&mut NoTheory);
        s.add_clause(&lits(&vs, &[-2, 3]));
        assert_eq!(s.solve_pure_assuming(&lits(&vs, &[-1, -3])), SatResult::Unsat);
        assert_eq!(s.solve_pure_assuming(&lits(&vs, &[-1])), SatResult::Sat);
        assert!(s.model_value(vs[1]) && s.model_value(vs[2]));
    }
}
