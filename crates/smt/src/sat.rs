//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This is a MiniSat-lineage solver: two-watched-literal propagation,
//! first-UIP conflict analysis with recursive clause minimisation, EVSIDS
//! variable activities with an indexed binary heap, phase saving, Luby
//! restarts and activity-driven deletion of learnt clauses.
//!
//! The solver exposes a small DPLL(T) hook ([`Theory`]): every literal
//! assignment (decision or propagation) is reported to the theory, which
//! may veto it with a conflict explanation; backtracking is mirrored into
//! the theory. The EUF solver in [`crate::euf`] plugs in through this
//! trait.

use std::fmt;

/// A propositional variable, numbered from zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var << 1 | sign` where `sign == 1` means negated, so that
/// a literal indexes watch lists directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    #[inline]
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var.0 << 1 | negated as u32)
    }

    #[inline]
    pub fn pos(var: Var) -> Lit {
        Lit::new(var, false)
    }

    #[inline]
    pub fn neg(var: Var) -> Lit {
        Lit::new(var, true)
    }

    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Index suitable for watch lists (`2 * var + sign`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "!" } else { "" }, self.0 >> 1)
    }
}

/// Three-valued assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// Result of a satisfiability call on the core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    Sat,
    Unsat,
}

/// Conflict raised by a theory solver: a set of literals that are all
/// currently assigned true but jointly inconsistent with the theory.
#[derive(Clone, Debug)]
pub struct TheoryConflict {
    pub lits: Vec<Lit>,
}

/// DPLL(T) hook. Implementations are notified of every assignment in trail
/// order and of backtracking; they may reject an assignment by returning a
/// [`TheoryConflict`] whose literals must all be true under the current
/// assignment (including the literal just asserted).
pub trait Theory {
    /// Called for every literal as it becomes true (decision or propagation).
    fn on_assert(&mut self, lit: Lit) -> Result<(), TheoryConflict>;
    /// Called when the trail is truncated to `new_len` entries.
    fn on_backtrack(&mut self, new_len: usize);
    /// Called once a full assignment is reached, before the solver reports
    /// SAT. Check-only theories that validate eagerly can return `Ok(())`.
    fn final_check(&mut self) -> Result<(), TheoryConflict>;
}

/// A theory that accepts everything; used for pure SAT solving.
pub struct NoTheory;

impl Theory for NoTheory {
    fn on_assert(&mut self, _lit: Lit) -> Result<(), TheoryConflict> {
        Ok(())
    }
    fn on_backtrack(&mut self, _new_len: usize) {}
    fn final_check(&mut self) -> Result<(), TheoryConflict> {
        Ok(())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ClauseRef(u32);

struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    /// Activity for learnt-clause garbage collection.
    activity: f64,
    deleted: bool,
}

#[derive(Clone, Copy)]
struct Watch {
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and we can skip inspecting it.
    blocker: Lit,
}

/// Indexed max-heap over variable activities (the VSIDS order).
struct VarOrder {
    heap: Vec<Var>,
    /// position of a variable in `heap`, or `usize::MAX`.
    index: Vec<usize>,
}

impl VarOrder {
    fn new() -> VarOrder {
        VarOrder { heap: Vec::new(), index: Vec::new() }
    }

    fn contains(&self, v: Var) -> bool {
        self.index.get(v.index()).is_some_and(|&i| i != usize::MAX)
    }

    fn grow(&mut self, n: usize) {
        if self.index.len() < n {
            self.index.resize(n, usize::MAX);
        }
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.grow(v.index() + 1);
        self.index[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.index[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        if let Some(&i) = self.index.get(v.index()) {
            if i != usize::MAX {
                self.sift_up(i, act);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.index[self.heap[a].index()] = a;
        self.index[self.heap[b].index()] = b;
    }
}

/// Luby restart sequence: 1 1 2 1 1 2 4 ...
fn luby(i: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    let mut size = size;
    let mut seq = seq;
    while size - 1 != i {
        size = (size - 1) >> 1;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

/// Statistics reported by [`Solver::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    pub decisions: u64,
    pub propagations: u64,
    pub conflicts: u64,
    pub restarts: u64,
    pub learnt_clauses: u64,
    pub deleted_clauses: u64,
}

const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;

/// The CDCL solver.
///
/// Clauses are added with [`Solver::add_clause`]; variables are created
/// lazily or explicitly with [`Solver::new_var`]. [`Solver::solve`] runs the
/// search with an optional theory plugged in.
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assigns: Vec<LBool>,
    /// Saved phase per variable.
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    order: VarOrder,
    /// Scratch: seen markers for conflict analysis.
    seen: Vec<bool>,
    /// False once an unconditional contradiction has been derived.
    ok: bool,
    stats: SolverStats,
    learnt_refs: Vec<ClauseRef>,
    max_learnts: f64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            order: VarOrder::new(),
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            learnt_refs: Vec::new(),
            max_learnts: 4000.0,
        }
    }

    /// Allocates and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    #[inline]
    pub fn value(&self, lit: Lit) -> LBool {
        match self.assigns[lit.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(!lit.is_neg()),
            LBool::False => LBool::from_bool(lit.is_neg()),
        }
    }

    /// Value of a variable in the most recent model. Meaningful only after
    /// [`Solver::solve`] returned [`SatResult::Sat`].
    pub fn model_value(&self, v: Var) -> bool {
        matches!(self.assigns[v.index()], LBool::True)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the clause made the instance
    /// trivially unsatisfiable. Must be called at decision level zero.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        // Normalise: drop duplicate and false literals, detect tautologies.
        let mut cl: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for &l in &sorted {
            debug_assert!(l.var().index() < self.num_vars(), "literal references unknown var");
            if sorted.binary_search(&!l).is_ok() {
                return true; // tautology: contains l and !l
            }
            match self.value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => cl.push(l),
            }
        }
        match cl.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(cl[0], None);
                // Theory literals are re-announced during solve(); unit
                // propagation here keeps level-0 implications tight.
                if self.propagate_no_theory().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(cl, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.clauses.len() as u32);
        self.watches[(!lits[0]).index()].push(Watch { cref, blocker: lits[1] });
        self.watches[(!lits[1]).index()].push(Watch { cref, blocker: lits[0] });
        self.clauses.push(Clause { lits, learnt, activity: 0.0, deleted: false });
        if learnt {
            self.learnt_refs.push(cref);
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    #[inline]
    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(lit), LBool::Undef);
        let v = lit.var();
        self.assigns[v.index()] = LBool::from_bool(!lit.is_neg());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation without theory notification (used while loading).
    fn propagate_no_theory(&mut self) -> Option<ClauseRef> {
        let mut confl = None;
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            if let Some(c) = self.propagate_lit(lit) {
                confl = Some(c);
                self.qhead = self.trail.len();
            }
        }
        confl
    }

    /// Propagates the consequences of `lit` being true through the watch
    /// lists. Returns a conflicting clause if one is found.
    fn propagate_lit(&mut self, lit: Lit) -> Option<ClauseRef> {
        self.stats.propagations += 1;
        let mut watches = std::mem::take(&mut self.watches[lit.index()]);
        let mut i = 0;
        let mut conflict = None;
        'watches: while i < watches.len() {
            let w = watches[i];
            if self.value(w.blocker) == LBool::True {
                i += 1;
                continue;
            }
            let cref = w.cref;
            if self.clauses[cref.0 as usize].deleted {
                watches.swap_remove(i);
                continue;
            }
            // Make sure the false literal is at position 1.
            {
                let cl = &mut self.clauses[cref.0 as usize];
                let false_lit = !lit;
                if cl.lits[0] == false_lit {
                    cl.lits.swap(0, 1);
                }
                debug_assert_eq!(cl.lits[1], false_lit);
            }
            let first = self.clauses[cref.0 as usize].lits[0];
            if first != w.blocker && self.value(first) == LBool::True {
                watches[i] = Watch { cref, blocker: first };
                i += 1;
                continue;
            }
            // Look for a new literal to watch.
            let len = self.clauses[cref.0 as usize].lits.len();
            for k in 2..len {
                let lk = self.clauses[cref.0 as usize].lits[k];
                if self.value(lk) != LBool::False {
                    self.clauses[cref.0 as usize].lits.swap(1, k);
                    self.watches[(!lk).index()].push(Watch { cref, blocker: first });
                    watches.swap_remove(i);
                    continue 'watches;
                }
            }
            // Clause is unit or conflicting.
            watches[i] = Watch { cref, blocker: first };
            i += 1;
            if self.value(first) == LBool::False {
                conflict = Some(cref);
                break;
            }
            self.unchecked_enqueue(first, Some(cref));
        }
        // Put back remaining watches (including any not yet visited after a
        // conflict).
        let slot = &mut self.watches[lit.index()];
        if slot.is_empty() {
            *slot = watches;
        } else {
            slot.extend_from_slice(&watches);
        }
        conflict
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let cl = &mut self.clauses[cref.0 as usize];
        if !cl.learnt {
            return;
        }
        cl.activity += self.clause_inc;
        if cl.activity > RESCALE_LIMIT {
            for &r in &self.learnt_refs {
                self.clauses[r.0 as usize].activity *= 1e-100;
            }
            self.clause_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. `conflict` is the set of literals of the
    /// conflicting clause (all false under the current assignment). Returns
    /// the learnt clause (asserting literal first) and the backjump level.
    fn analyze(&mut self, conflict: &[Lit]) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let p: Option<Lit>;
        let mut trail_idx = self.trail.len();
        let mut reason_lits: Vec<Lit> = conflict.to_vec();

        loop {
            for &q in &reason_lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal from the trail to resolve on.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[trail_idx];
            let v = lit.var();
            self.seen[v.index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            let cref = self.reason[v.index()].expect("non-decision must have a reason");
            self.bump_clause(cref);
            let cl = &self.clauses[cref.0 as usize];
            // Skip the asserting literal itself (position 0 by invariant).
            reason_lits.clear();
            reason_lits.extend(cl.lits.iter().copied().filter(|&l| l.var() != v));
        }
        learnt[0] = !p.expect("found UIP");

        // Conflict-clause minimisation: drop literals implied by the rest.
        let keep: Vec<bool> =
            learnt.iter().enumerate().map(|(i, &l)| i == 0 || !self.redundant(l)).collect();
        let mut out: Vec<Lit> = learnt
            .iter()
            .zip(&keep)
            .filter_map(|(&l, &k)| if k { Some(l) } else { None })
            .collect();
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Find backjump level: second-highest level in the clause.
        let bt = if out.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..out.len() {
                if self.level[out[i].var().index()] > self.level[out[max_i].var().index()] {
                    max_i = i;
                }
            }
            out.swap(1, max_i);
            self.level[out[1].var().index()]
        };
        (out, bt)
    }

    /// A literal is redundant in the learnt clause if its reason literals
    /// are all already in the clause (single-step self-subsumption).
    fn redundant(&self, l: Lit) -> bool {
        let v = l.var();
        match self.reason[v.index()] {
            None => false,
            Some(cref) => self.clauses[cref.0 as usize].lits.iter().all(|&q| {
                q.var() == v || self.seen[q.var().index()] || self.level[q.var().index()] == 0
            }),
        }
    }

    fn cancel_until(&mut self, level: u32, theory: &mut dyn Theory) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for i in (target..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            self.polarity[v.index()] = !lit.is_neg();
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = target;
        theory.on_backtrack(target);
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(Lit::new(v, !self.polarity[v.index()]));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        let mut refs = std::mem::take(&mut self.learnt_refs);
        refs.retain(|r| !self.clauses[r.0 as usize].deleted);
        refs.sort_by(|a, b| {
            let ca = self.clauses[a.0 as usize].activity;
            let cb = self.clauses[b.0 as usize].activity;
            ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = refs
            .iter()
            .map(|r| {
                let cl = &self.clauses[r.0 as usize];
                // Clause is a reason for its first literal.
                self.value(cl.lits[0]) == LBool::True
                    && self.reason[cl.lits[0].var().index()] == Some(*r)
            })
            .collect();
        let limit = refs.len() / 2;
        for (i, r) in refs.iter().enumerate() {
            let short = self.clauses[r.0 as usize].lits.len() <= 2;
            if i < limit && !locked[i] && !short {
                self.clauses[r.0 as usize].deleted = true;
                self.stats.deleted_clauses += 1;
            }
        }
        refs.retain(|r| !self.clauses[r.0 as usize].deleted);
        self.learnt_refs = refs;
    }

    /// Announces to the theory every trail literal from `from` onwards.
    /// Returns a conflict if the theory rejects one of them.
    fn theory_sync(&mut self, from: &mut usize, theory: &mut dyn Theory) -> Option<TheoryConflict> {
        while *from < self.trail.len() {
            let lit = self.trail[*from];
            *from += 1;
            if let Err(c) = theory.on_assert(lit) {
                debug_assert!(
                    c.lits.iter().all(|&l| self.value(l) == LBool::True),
                    "theory conflict literals must be true: {:?}",
                    c.lits
                );
                return Some(c);
            }
        }
        None
    }

    /// Runs the CDCL search (with restarts) until the instance is decided.
    pub fn solve(&mut self, theory: &mut dyn Theory) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        let mut theory_head = 0usize;
        let mut restarts: u64 = 0;
        let mut conflicts_until_restart = 100 * luby(restarts);

        loop {
            // Propagate, keeping the theory in sync with the trail.
            let conflict: Option<Vec<Lit>> = 'prop: loop {
                if let Some(cref) = self.propagate_no_theory() {
                    let lits = self.clauses[cref.0 as usize].lits.clone();
                    self.bump_clause(cref);
                    break 'prop Some(lits);
                }
                match self.theory_sync(&mut theory_head, theory) {
                    Some(c) => {
                        break 'prop Some(c.lits.iter().map(|&l| !l).collect());
                    }
                    None => {
                        if self.qhead == self.trail.len() {
                            break 'prop None;
                        }
                    }
                }
            };

            match conflict {
                Some(cl) => {
                    self.stats.conflicts += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return SatResult::Unsat;
                    }
                    let (learnt, bt_level) = self.analyze(&cl);
                    self.cancel_until(bt_level, theory);
                    theory_head = theory_head.min(self.trail.len());
                    if learnt.len() == 1 {
                        self.unchecked_enqueue(learnt[0], None);
                    } else {
                        let cref = self.attach_clause(learnt.clone(), true);
                        self.bump_clause(cref);
                        self.unchecked_enqueue(learnt[0], Some(cref));
                    }
                    self.var_inc /= VAR_DECAY;
                    self.clause_inc /= CLAUSE_DECAY;
                    if self.stats.conflicts % 1000 == 0 {
                        self.max_learnts *= 1.1;
                    }
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                }
                None => {
                    if conflicts_until_restart == 0 && self.decision_level() > 0 {
                        restarts += 1;
                        self.stats.restarts += 1;
                        conflicts_until_restart = 100 * luby(restarts);
                        self.cancel_until(0, theory);
                        theory_head = theory_head.min(self.trail.len());
                        continue;
                    }
                    if self.learnt_refs.len() as f64 > self.max_learnts {
                        self.reduce_db();
                    }
                    match self.pick_branch() {
                        None => {
                            // Full assignment; give the theory a last word.
                            match theory.final_check() {
                                Ok(()) => return SatResult::Sat,
                                Err(c) => {
                                    self.stats.conflicts += 1;
                                    if self.decision_level() == 0 {
                                        self.ok = false;
                                        return SatResult::Unsat;
                                    }
                                    let cl: Vec<Lit> = c.lits.iter().map(|&l| !l).collect();
                                    let (learnt, bt_level) = self.analyze(&cl);
                                    self.cancel_until(bt_level, theory);
                                    theory_head = theory_head.min(self.trail.len());
                                    if learnt.len() == 1 {
                                        self.unchecked_enqueue(learnt[0], None);
                                    } else {
                                        let cref = self.attach_clause(learnt.clone(), true);
                                        self.unchecked_enqueue(learnt[0], Some(cref));
                                    }
                                }
                            }
                        }
                        Some(lit) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }

    /// Convenience: solve without a theory.
    pub fn solve_pure(&mut self) -> SatResult {
        self.solve(&mut NoTheory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver_vars: &[Var], spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&i| {
                let v = solver_vars[(i.unsigned_abs() - 1) as usize];
                Lit::new(v, i < 0)
            })
            .collect()
    }

    fn n_vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 2);
        s.add_clause(&lits(&vs, &[1, 2]));
        assert_eq!(s.solve_pure(), SatResult::Sat);
        assert!(s.model_value(vs[0]) || s.model_value(vs[1]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 1);
        s.add_clause(&lits(&vs, &[1]));
        s.add_clause(&lits(&vs, &[-1]));
        assert_eq!(s.solve_pure(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve_pure(), SatResult::Unsat);
    }

    #[test]
    fn unit_chain() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 4);
        s.add_clause(&lits(&vs, &[1]));
        s.add_clause(&lits(&vs, &[-1, 2]));
        s.add_clause(&lits(&vs, &[-2, 3]));
        s.add_clause(&lits(&vs, &[-3, 4]));
        assert_eq!(s.solve_pure(), SatResult::Sat);
        for v in vs {
            assert!(s.model_value(v));
        }
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        let vs = n_vars(&mut s, 1);
        assert!(s.add_clause(&lits(&vs, &[1, -1])));
        assert_eq!(s.solve_pure(), SatResult::Sat);
    }

    /// Pigeonhole principle: n+1 pigeons into n holes is UNSAT and requires
    /// genuine conflict-driven search.
    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let pigeons = n + 1;
        let vars: Vec<Vec<Var>> =
            (0..pigeons).map(|_| (0..n).map(|_| s.new_var()).collect()).collect();
        for p in 0..pigeons {
            let cl: Vec<Lit> = (0..n).map(|h| Lit::pos(vars[p][h])).collect();
            s.add_clause(&cl);
        }
        for h in 0..n {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[Lit::neg(vars[p1][h]), Lit::neg(vars[p2][h])]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=6 {
            let mut s = pigeonhole(n);
            assert_eq!(s.solve_pure(), SatResult::Unsat, "php({n})");
        }
    }

    #[test]
    fn graph_coloring_sat() {
        // 3-colour a 5-cycle (possible).
        let mut s = Solver::new();
        let k = 3;
        let n = 5;
        let v: Vec<Vec<Var>> = (0..n).map(|_| (0..k).map(|_| s.new_var()).collect()).collect();
        for i in 0..n {
            let cl: Vec<Lit> = (0..k).map(|c| Lit::pos(v[i][c])).collect();
            s.add_clause(&cl);
            for c1 in 0..k {
                for c2 in (c1 + 1)..k {
                    s.add_clause(&[Lit::neg(v[i][c1]), Lit::neg(v[i][c2])]);
                }
            }
        }
        for i in 0..n {
            let j = (i + 1) % n;
            for c in 0..k {
                s.add_clause(&[Lit::neg(v[i][c]), Lit::neg(v[j][c])]);
            }
        }
        assert_eq!(s.solve_pure(), SatResult::Sat);
        // Verify: each node exactly one colour, endpoints differ.
        let colour = |i: usize, s: &Solver| (0..k).find(|&c| s.model_value(v[i][c])).unwrap();
        for i in 0..n {
            assert_ne!(colour(i, &s), colour((i + 1) % n, &s));
        }
    }

    #[test]
    fn two_coloring_odd_cycle_unsat() {
        let mut s = Solver::new();
        let n = 7;
        // var true = colour A, false = colour B; adjacent must differ.
        let v = n_vars(&mut s, n);
        for i in 0..n {
            let j = (i + 1) % n;
            s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[j])]);
            s.add_clause(&[Lit::neg(v[i]), Lit::neg(v[j])]);
        }
        assert_eq!(s.solve_pure(), SatResult::Unsat);
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    /// Brute-force model check for random 3-CNF instances: compare solver
    /// answer against exhaustive enumeration.
    #[test]
    fn random_3cnf_vs_bruteforce() {
        // Simple deterministic LCG so the test is reproducible without rand.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..60 {
            let nv = 4 + (next() % 6) as usize; // 4..=9 vars
            let nc = 6 + (next() % 30) as usize;
            let clauses: Vec<Vec<i32>> = (0..nc)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let var = (next() % nv as u32) as i32 + 1;
                            if next() % 2 == 0 {
                                var
                            } else {
                                -var
                            }
                        })
                        .collect()
                })
                .collect();
            let brute = (0..(1u32 << nv)).any(|m| {
                clauses.iter().all(|cl| {
                    cl.iter().any(|&l| {
                        let bit = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                        if l > 0 {
                            bit
                        } else {
                            !bit
                        }
                    })
                })
            });
            let mut s = Solver::new();
            let vs = n_vars(&mut s, nv);
            for cl in &clauses {
                s.add_clause(&lits(&vs, cl));
            }
            let got = s.solve_pure() == SatResult::Sat;
            assert_eq!(got, brute, "round {round}: clauses {clauses:?}");
            if got {
                // Check the model actually satisfies all clauses.
                for cl in &clauses {
                    assert!(cl.iter().any(|&l| {
                        let val = s.model_value(vs[(l.unsigned_abs() - 1) as usize]);
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    }));
                }
            }
        }
    }
}
